//! Workspace-level integration tests: the umbrella crate's public API
//! exercised across every subsystem at once.

use shardstore::chunk::Stream;
use shardstore::faults::{coverage, FaultConfig};
use shardstore::harness::detect::sample_sequences;
use shardstore::harness::gen::{node_ops, GenConfig};
use shardstore::harness::simulate::{run_node_sim, run_rpc_sim, SimOptions};
use shardstore::harness::swarm::{run_swarm, SwarmConfig};
use shardstore::harness::ConformanceConfig;
use shardstore::sim::{PerturbProfile, SimSchedule};
use shardstore::vdisk::{CrashPlan, Geometry};
use shardstore::{Node, Store, StoreConfig};

fn store() -> Store {
    Store::format(Geometry::small(), StoreConfig::small(), FaultConfig::none())
}

#[test]
fn full_lifecycle_small_store() {
    let s = store();
    // Write a working set with overwrites and deletes.
    let value = |k: u128, gen: u8| vec![k as u8 ^ gen; 30 + (k as usize % 50)];
    let mut expected = std::collections::BTreeMap::new();
    for k in 0..10u128 {
        s.put(k, &value(k, 0)).unwrap();
        expected.insert(k, value(k, 0));
    }
    for k in (0..10u128).step_by(2) {
        s.put(k, &value(k, 1)).unwrap();
        expected.insert(k, value(k, 1));
    }
    for k in (0..10u128).step_by(3) {
        s.delete(k).unwrap();
        expected.remove(&k);
    }
    // Maintenance: flush, compact, reclaim every stream.
    s.flush_index().unwrap();
    s.compact_index().unwrap();
    for stream in [Stream::Data, Stream::Lsm, Stream::Meta] {
        while s.reclaim(stream).unwrap() {
            s.pump().unwrap();
        }
    }
    // Verify, crash, verify again.
    for (k, v) in &expected {
        assert_eq!(s.get(*k).unwrap().as_ref(), Some(v), "key {k}");
    }
    assert_eq!(s.list().unwrap(), expected.keys().copied().collect::<Vec<_>>());
    s.clean_shutdown().unwrap();
    let s = s.dirty_reboot(&CrashPlan::LoseAll).unwrap();
    for (k, v) in &expected {
        assert_eq!(s.get(*k).unwrap().as_ref(), Some(v), "key {k} after crash");
    }
}

#[test]
fn deep_reboot_chain_with_mixed_crash_plans() {
    let mut s = store();
    let mut durable = std::collections::BTreeMap::new();
    for round in 0..6u8 {
        let k = round as u128;
        let v = vec![round; 20];
        let dep = s.put(k, &v).unwrap();
        if round % 2 == 0 {
            // Persist this round before crashing.
            s.flush_index().unwrap();
            s.pump().unwrap();
            assert!(dep.is_persistent());
            durable.insert(k, v);
        }
        let plan = if round % 3 == 0 { CrashPlan::LoseAll } else { CrashPlan::KeepAll };
        s = s.dirty_reboot(&plan).unwrap();
        for (k, v) in &durable {
            assert_eq!(s.get(*k).unwrap().as_ref(), Some(v), "round {round} key {k}");
        }
    }
}

#[test]
fn node_spanning_workload_with_disk_cycling() {
    let node = Node::new(3, Geometry::small(), StoreConfig::small(), FaultConfig::none());
    for k in 0..15u128 {
        node.put(k, &[k as u8; 25]).unwrap();
    }
    node.check_catalog_consistent().unwrap();
    // Cycle every disk out and back; nothing may be lost.
    for disk in 0..3 {
        node.remove_disk(disk).unwrap();
        node.return_disk(disk).unwrap();
    }
    for k in 0..15u128 {
        assert_eq!(node.get(k).unwrap().unwrap(), vec![k as u8; 25]);
    }
    node.check_catalog_consistent().unwrap();
}

#[test]
fn coverage_probes_fire_across_the_stack() {
    // §4.2: the harness watches coverage probes to detect blind spots.
    // This test pins the probe names the validation effort relies on.
    let _rec = coverage::Recording::start();
    let s = store();
    for k in 0..8u128 {
        s.put(k, &[k as u8; 60]).unwrap();
    }
    s.flush_index().unwrap();
    s.delete(0).unwrap();
    s.flush_index().unwrap();
    s.compact_index().unwrap();
    s.pump().unwrap();
    while s.reclaim(Stream::Data).unwrap() {
        s.pump().unwrap();
    }
    s.cache().clear();
    for k in 1..8u128 {
        s.get(k).unwrap();
    }
    let s2 = s.dirty_reboot(&CrashPlan::LoseAll).unwrap();
    s2.get(1).unwrap();
    for probe in [
        "lsm.flush.done",
        "lsm.compact.done",
        "lsm.metadata.written",
        "cache.miss",
        "chunk.reclaim.evacuate",
        "superblock.extent.reset",
        "store.recovered",
        "chunk.recover.scan_extent",
    ] {
        assert!(coverage::count(probe) > 0, "probe {probe} never fired");
    }
}

#[test]
fn simulator_drives_the_node_and_rpc_planes() {
    // The whole stack — multi-disk node, RPC codec, engine — under the
    // deterministic simulator with seed-derived perturbation schedules
    // (message drops, delivery delays, timer ticks, faults).
    let cfg = ConformanceConfig::default();
    let base = 0xE2E_51Au64;
    for (i, ops) in sample_sequences(node_ops(GenConfig::conformance()), base, 3).enumerate() {
        let seed = base + i as u64;
        let schedule = SimSchedule::perturbed(seed, ops.len(), &PerturbProfile::default());
        run_node_sim(&ops, &cfg, 3, &schedule, &SimOptions::default())
            .unwrap_or_else(|d| panic!("node world, seed {seed:#x}: {d}"));
        run_rpc_sim(&ops, &cfg, 3, &schedule, &SimOptions::default())
            .unwrap_or_else(|d| panic!("rpc world, seed {seed:#x}: {d}"));
    }
}

#[test]
fn simulator_swarm_smoke() {
    // A small swarm batch end to end: every seed must pass, and the
    // simulator must have actually dispatched work.
    let outcome = run_swarm(&SwarmConfig { base_seed: 0xE2E_5EED, runs: 4, ..SwarmConfig::default() });
    assert!(
        outcome.failures.is_empty(),
        "swarm smoke found failures: {:?}",
        outcome.failures.iter().map(|f| &f.message).collect::<Vec<_>>()
    );
    assert!(outcome.stats.ops > 0 && outcome.stats.events > outcome.stats.ops);
}

#[test]
fn dependency_api_shape_matches_paper() {
    // The §2.2 contract: dependencies combine with `and` and poll with
    // `is_persistent`; forward progress after clean shutdown.
    let s = store();
    let d1 = s.put(1, b"one").unwrap();
    let d2 = s.put(2, b"two").unwrap();
    let both = d1.and(&d2);
    assert!(!both.is_persistent());
    s.clean_shutdown().unwrap();
    assert!(both.is_persistent());
}

#[test]
fn geometry_variants_all_work() {
    for geometry in [
        Geometry::small(),
        Geometry::new(8, 4, 256),
        Geometry::new(64, 16, 1024),
    ] {
        let config = StoreConfig::builder()
            .max_chunk_size(geometry.page_size / 2)
            .flush_threshold(4)
            .cache_capacity(geometry.page_size * 2)
            .uuid_seed(5)
            .build()
            .unwrap();
        let s = Store::format(geometry, config, FaultConfig::none());
        s.put(1, &vec![9u8; geometry.page_size + 3]).unwrap();
        s.clean_shutdown().unwrap();
        let s = s.dirty_reboot(&CrashPlan::LoseAll).unwrap();
        assert_eq!(s.get(1).unwrap().unwrap(), vec![9u8; geometry.page_size + 3]);
    }
}
