//! Larger-scale integration stress: production-shaped geometry, thousands
//! of operations, interleaved maintenance, repeated crash/recovery — the
//! kind of workload the paper's continuous-integration runs sustain.

use std::collections::BTreeMap;

use shardstore::chunk::Stream;
use shardstore::faults::FaultConfig;
use shardstore::harness::detect::sample_sequences;
use shardstore::harness::gen::{kv_ops, GenConfig};
use shardstore::harness::ops::{KeyRef, KvOp, ValueSpec};
use shardstore::harness::simulate::{run_crash_sim, SimOptions};
use shardstore::harness::ConformanceConfig;
use shardstore::sim::{CrashPoint, PerturbProfile, SimSchedule};
use shardstore::vdisk::{CrashPlan, Geometry};
use shardstore::{Store, StoreConfig};

fn value_for(key: u128, generation: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (key as usize ^ generation as usize).wrapping_add(i).wrapping_mul(131) as u8)
        .collect()
}

#[test]
fn thousand_op_churn_with_maintenance() {
    let store =
        Store::format(Geometry::new(64, 16, 1024), StoreConfig::default(), FaultConfig::none());
    let mut expected: BTreeMap<u128, Vec<u8>> = BTreeMap::new();
    let mut rng: u64 = 0x3333_7777;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for step in 0..1000u32 {
        let key = (next() % 64) as u128;
        match next() % 10 {
            0..=5 => {
                let len = (next() % 700) as usize;
                let value = value_for(key, step, len);
                store.put(key, &value).unwrap();
                expected.insert(key, value);
            }
            6..=7 => {
                store.delete(key).unwrap();
                expected.remove(&key);
            }
            8 => {
                let got = store.get(key).unwrap();
                assert_eq!(got.as_ref(), expected.get(&key), "step {step} key {key}");
            }
            _ => match next() % 4 {
                0 => store.flush_index().unwrap(),
                1 => store.compact_index().unwrap(),
                2 => {
                    let _ = store.reclaim(Stream::Data).unwrap();
                }
                _ => {
                    let _ = store.reclaim(Stream::Lsm).unwrap();
                }
            },
        }
        if step % 250 == 249 {
            // Periodic full verification.
            assert_eq!(
                store.list().unwrap(),
                expected.keys().copied().collect::<Vec<_>>(),
                "step {step}"
            );
        }
    }
    // Survive a crash with everything flushed.
    store.clean_shutdown().unwrap();
    let store = store.dirty_reboot(&CrashPlan::LoseAll).unwrap();
    for (key, value) in &expected {
        assert_eq!(store.get(*key).unwrap().as_ref(), Some(value), "post-crash key {key}");
    }
}

#[test]
fn sstables_spanning_many_chunks() {
    // A tiny-extent geometry forces every SSTable across several chunks
    // (the tree is "stored as chunks", plural — §2.1 / Fig. 1).
    let geometry = Geometry::new(48, 8, 128); // 1 KiB extents, 64-byte max chunks
    let config = StoreConfig::builder()
        .max_chunk_size(64)
        .flush_threshold(64) // flush manually
        .cache_capacity(512)
        .uuid_seed(9)
        .build()
        .unwrap();
    let store = Store::format(geometry, config, FaultConfig::none());
    // Enough distinct keys that one SSTable far exceeds an extent.
    for key in 0..24u128 {
        store.put(key, &value_for(key, 0, 40)).unwrap();
    }
    store.flush_index().unwrap();
    store.pump().unwrap();
    for key in 0..24u128 {
        assert_eq!(store.get(key).unwrap().unwrap(), value_for(key, 0, 40));
    }
    // Compaction rewrites the multi-chunk table; recovery reloads it.
    store.compact_index().unwrap();
    store.clean_shutdown().unwrap();
    let store = store.dirty_reboot(&CrashPlan::LoseAll).unwrap();
    for key in 0..24u128 {
        assert_eq!(store.get(key).unwrap().unwrap(), value_for(key, 0, 40), "key {key}");
    }
    assert_eq!(store.list().unwrap().len(), 24);
}

#[test]
fn simulator_churn_across_seeds() {
    // The same kind of sustained churn, driven through the deterministic
    // simulator: generated crash-alphabet sequences under seed-derived
    // perturbation schedules (timer ticks, faults, drops, delays,
    // whole-node crash-restart), checked against the reference model and
    // trace oracles on every step.
    let cfg = ConformanceConfig::default();
    let base = 0x57E5_5001u64;
    for (i, ops) in sample_sequences(kv_ops(GenConfig::crash()), base, 6).enumerate() {
        let seed = base + i as u64;
        let schedule = SimSchedule::perturbed(seed, ops.len(), &PerturbProfile::default());
        run_crash_sim(&ops, &cfg, &schedule, &SimOptions::default())
            .unwrap_or_else(|d| panic!("seed {seed:#x}: {d}"));
    }
}

#[test]
fn simulator_sustains_repeated_crash_restarts() {
    // Mirror of `repeated_dirty_reboots_under_load` on the simulator
    // substrate: a long write-heavy sequence with a crash-restart event
    // injected every few operations, all from one schedule.
    let mut ops = Vec::new();
    for round in 0..12u8 {
        for k in 0..4u8 {
            ops.push(KvOp::Put(KeyRef::Literal(k + (round % 3) * 10), ValueSpec::Small(k + 40)));
        }
        ops.push(KvOp::IndexFlush);
        ops.push(KvOp::Pump(2));
        ops.push(KvOp::Get(KeyRef::Recent(1)));
    }
    let crashes = (0..12u64)
        .map(|round| CrashPoint { at_op: (round as usize) * 7 + 6, keep_mask: round * 0x9E37 })
        .collect();
    let schedule = SimSchedule { crashes, tick_every: 5, ..SimSchedule::clean() };
    let outcome = run_crash_sim(
        &ops,
        &ConformanceConfig::default(),
        &schedule,
        &SimOptions::default(),
    )
    .unwrap_or_else(|d| panic!("repeated crash-restarts diverged: {d}"));
    assert_eq!(outcome.sim.crashes, 12, "every scheduled crash-restart should fire");
}

#[test]
fn repeated_dirty_reboots_under_load() {
    let mut store =
        Store::format(Geometry::new(32, 16, 512), StoreConfig::default(), FaultConfig::none());
    let mut durable: BTreeMap<u128, Vec<u8>> = BTreeMap::new();
    for round in 0..12u32 {
        // A burst of writes, half of which get persisted.
        for k in 0..6u128 {
            let value = value_for(k, round, 50 + (k as usize * 17) % 200);
            store.put(k + (round as u128 % 3) * 10, &value).unwrap();
            if k % 2 == 0 {
                durable.insert(k + (round as u128 % 3) * 10, value);
            }
        }
        // Persist the even keys' state.
        store.flush_index().unwrap();
        store.pump().unwrap();
        // Re-record what is actually durable now (everything flushed).
        for k in 0..6u128 {
            let key = k + (round as u128 % 3) * 10;
            if let Some(v) = store.get(key).unwrap() {
                durable.insert(key, v);
            }
        }
        store = store.dirty_reboot(&CrashPlan::LoseAll).unwrap();
        for (key, value) in &durable {
            assert_eq!(
                store.get(*key).unwrap().as_ref(),
                Some(value),
                "round {round} key {key}"
            );
        }
    }
}
