//! `shardstore-obs`: the unified observability layer — deterministic
//! structured tracing plus a lock-free metrics registry, and the
//! trace-based oracles the validation harnesses assert with.
//!
//! The paper's methodology depends on being able to *see* what the system
//! did: conformance failures, crash states, and fault schedules are only
//! debuggable from a faithful record of events (§8 leans on exactly this
//! kind of telemetry in production). This crate replaces the ad-hoc
//! counters that had grown in isolation (`SchedulerStats`, per-segment
//! cache tallies, LSM stats) with one substrate:
//!
//! - [`metrics`] — named counters, gauges, and fixed-bucket histograms.
//!   Hot-path recording is a single atomic RMW (no lock); snapshots
//!   ([`metrics::MetricsSnapshot`]) serialize to JSON and round-trip.
//! - [`trace`] — a bounded ring buffer of typed events stamped with a
//!   **logical clock** (a sequence number handed out under the ring's
//!   lock). Wall-clock time never appears on checked paths, so a trace is
//!   byte-identical across runs of the same schedule — which is what lets
//!   the model checker and `SHARDSTORE_SEED`-driven harnesses diff traces
//!   directly. Overflow is never silent: wrapped events bump a
//!   `dropped_events` counter surfaced in every snapshot.
//! - [`oracle`] — harness-side assertions over a captured trace: causal
//!   invariants the state-based checkers can't see (acknowledged
//!   durability is dominated by persistence events, retries stay within
//!   budget, no cache hit after quarantine, no stale hit after an extent
//!   reset), plus a per-op timeline pretty-printer attached to minimized
//!   counterexamples.
//! - [`walltime`] — the *opt-in* wall-clock layer for benches only. It is
//!   the single place `std::time::Instant` is allowed; nothing on a
//!   checked path may use it.
//!
//! One [`Obs`] instance is shared by an entire store stack: the IO
//! scheduler creates it and attaches it to the disk, and every layer above
//! reaches it through the scheduler, so constructors stay unchanged.

pub mod json;
pub mod metrics;
pub mod oracle;
pub mod trace;
pub mod walltime;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use trace::{OpKind, TraceEvent, TraceLog, TraceRecord};

/// Default trace-ring capacity: large enough that harness runs (a few
/// hundred ops, a handful of events each) never wrap, small enough that a
/// soak run wraps instead of growing without bound.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

struct ObsInner {
    registry: Registry,
    trace: TraceLog,
    next_op: AtomicU64,
}

/// The shared observability handle: one metrics registry plus one trace
/// log. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("trace_len", &self.inner.trace.len()).finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Obs {
    /// Creates an observability handle with the given trace-ring capacity.
    pub fn new(trace_capacity: usize) -> Self {
        Self {
            inner: Arc::new(ObsInner {
                registry: Registry::new(),
                trace: TraceLog::new(trace_capacity),
                next_op: AtomicU64::new(0),
            }),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.inner.trace
    }

    /// Opens an operation span: allocates the next op id and records
    /// [`TraceEvent::OpStart`]. Close it with [`Obs::end_op`].
    pub fn begin_op(&self, kind: OpKind, key: u128) -> u64 {
        let op = self.inner.next_op.fetch_add(1, Ordering::Relaxed);
        self.inner.trace.event(TraceEvent::OpStart { op, kind, key });
        op
    }

    /// Closes an operation span.
    pub fn end_op(&self, op: u64, ok: bool) {
        self.inner.trace.event(TraceEvent::OpEnd { op, ok });
    }

    /// Snapshots every metric, folding in the trace log's own counters
    /// (`trace.recorded_events`, `trace.dropped_events`) so a truncated
    /// trace is visible from the snapshot alone — the oracles refuse to
    /// certify causal properties over a trace that wrapped.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.registry.snapshot();
        snap.counters.insert("trace.recorded_events".into(), self.inner.trace.recorded());
        snap.counters.insert("trace.dropped_events".into(), self.inner.trace.dropped());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_ids_are_sequential() {
        let obs = Obs::default();
        assert_eq!(obs.begin_op(OpKind::Put, 1), 0);
        assert_eq!(obs.begin_op(OpKind::Get, 2), 1);
        obs.end_op(0, true);
        let trace = obs.trace().snapshot();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].seq, 0);
        assert_eq!(trace[2].seq, 2);
    }

    #[test]
    fn snapshot_carries_trace_counters() {
        let obs = Obs::new(2);
        for i in 0..5 {
            obs.begin_op(OpKind::Get, i);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.counters["trace.recorded_events"], 5);
        assert_eq!(snap.counters["trace.dropped_events"], 3);
    }
}
