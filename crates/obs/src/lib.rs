//! `shardstore-obs`: the unified observability layer — deterministic
//! structured tracing plus a lock-free metrics registry, and the
//! trace-based oracles the validation harnesses assert with.
//!
//! The paper's methodology depends on being able to *see* what the system
//! did: conformance failures, crash states, and fault schedules are only
//! debuggable from a faithful record of events (§8 leans on exactly this
//! kind of telemetry in production). This crate replaces the ad-hoc
//! counters that had grown in isolation (`SchedulerStats`, per-segment
//! cache tallies, LSM stats) with one substrate:
//!
//! - [`metrics`] — named counters, gauges, and fixed-bucket histograms.
//!   Hot-path recording is a single atomic RMW (no lock); snapshots
//!   ([`metrics::MetricsSnapshot`]) serialize to JSON and round-trip.
//! - [`trace`] — a bounded ring buffer of typed events stamped with a
//!   **logical clock** (a sequence number handed out under the ring's
//!   lock). Wall-clock time never appears on checked paths, so a trace is
//!   byte-identical across runs of the same schedule — which is what lets
//!   the model checker and `SHARDSTORE_SEED`-driven harnesses diff traces
//!   directly. Overflow is never silent: wrapped events bump a
//!   `dropped_events` counter surfaced in every snapshot.
//! - [`oracle`] — harness-side assertions over a captured trace: causal
//!   invariants the state-based checkers can't see (acknowledged
//!   durability is dominated by persistence events, retries stay within
//!   budget, no cache hit after quarantine, no stale hit after an extent
//!   reset), plus a per-op timeline pretty-printer attached to minimized
//!   counterexamples.
//! - [`walltime`] — the *opt-in* wall-clock layer for benches only. It is
//!   the single place `std::time::Instant` is allowed; nothing on a
//!   checked path may use it.
//!
//! One [`Obs`] instance is shared by an entire store stack: the IO
//! scheduler creates it and attaches it to the disk, and every layer above
//! reaches it through the scheduler, so constructors stay unchanged.

pub mod json;
pub mod metrics;
pub mod oracle;
pub mod trace;
pub mod walltime;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use trace::{OpKind, ReqFrame, TraceEvent, TraceLog, TraceRecord};

/// Default trace-ring capacity: large enough that harness runs (a few
/// hundred ops, a handful of events each) never wrap, small enough that a
/// soak run wraps instead of growing without bound.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Inclusive upper bounds for the logical-latency histograms
/// (`latency.<kind>`). The unit is **trace-sequence deltas** between a
/// span's `OpStart` and `OpEnd` — a logical clock, so the histograms are
/// byte-deterministic under the checker and the simulator. Wall-time
/// latency stays bench-only behind [`walltime`].
pub const LOGICAL_LATENCY_BOUNDS: &[u64] =
    &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384];

struct ObsInner {
    registry: Registry,
    trace: TraceLog,
    next_op: AtomicU64,
    /// Open op spans: op id → (kind, `OpStart` seq). `end_op` turns the
    /// entry into a logical-latency observation at span close.
    open_spans: Mutex<BTreeMap<u64, (OpKind, u64)>>,
}

/// The shared observability handle: one metrics registry plus one trace
/// log. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("trace_len", &self.inner.trace.len()).finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Obs {
    /// Creates an observability handle with the given trace-ring capacity.
    pub fn new(trace_capacity: usize) -> Self {
        Self {
            inner: Arc::new(ObsInner {
                registry: Registry::new(),
                trace: TraceLog::new(trace_capacity),
                next_op: AtomicU64::new(0),
                open_spans: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.inner.trace
    }

    /// Opens an operation span: allocates the next op id, pushes a
    /// request frame (so a direct `Store` caller's op acts as its own
    /// request, and every event it causes is stamped with its id), and
    /// records [`TraceEvent::OpStart`]. Close it with [`Obs::end_op`].
    pub fn begin_op(&self, kind: OpKind, key: u128) -> u64 {
        let op = self.inner.next_op.fetch_add(1, Ordering::Relaxed);
        self.inner.trace.push_req(op);
        if let Some(seq) = self.inner.trace.event(TraceEvent::OpStart { op, kind, key }) {
            self.inner.open_spans.lock().expect("spans lock").insert(op, (kind, seq));
        }
        op
    }

    /// Closes an operation span, records the logical latency (the
    /// trace-sequence delta since `OpStart`) into the per-kind
    /// `latency.<kind>` histogram, and pops the op's request frame.
    pub fn end_op(&self, op: u64, ok: bool) {
        let end = self.inner.trace.event(TraceEvent::OpEnd { op, ok });
        self.inner.trace.pop_req();
        let Some(end_seq) = end else { return };
        let span = self.inner.open_spans.lock().expect("spans lock").remove(&op);
        if let Some((kind, start_seq)) = span {
            self.inner
                .registry
                .histogram(&format!("latency.{kind}"), LOGICAL_LATENCY_BOUNDS)
                .record(end_seq.saturating_sub(start_seq));
        }
    }

    /// Mints a request id at the engine boundary, from the same counter
    /// space as op ids so request and op ids never collide. The engine
    /// stamps subsequent events by executing the request inside
    /// [`TraceLog::req_frame`].
    pub fn mint_req(&self) -> u64 {
        self.inner.next_op.fetch_add(1, Ordering::Relaxed)
    }

    /// Renders the causal timeline of one request: every event stamped
    /// with `req`, plus scheduler-node events (persist, loss, ack)
    /// attributed to ops the request executed. Notes trace truncation
    /// instead of presenting a partial timeline as complete.
    pub fn timeline(&self, req: u64) -> String {
        oracle::render_req_timeline(&self.inner.trace.snapshot(), req, self.inner.trace.dropped())
    }

    /// Snapshots every metric, folding in the trace log's own counters
    /// (`trace.recorded_events`, `trace.dropped_events`) so a truncated
    /// trace is visible from the snapshot alone — the oracles refuse to
    /// certify causal properties over a trace that wrapped.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.registry.snapshot();
        snap.counters.insert("trace.recorded_events".into(), self.inner.trace.recorded());
        snap.counters.insert("trace.dropped_events".into(), self.inner.trace.dropped());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_ids_are_sequential() {
        let obs = Obs::default();
        assert_eq!(obs.begin_op(OpKind::Put, 1), 0);
        assert_eq!(obs.begin_op(OpKind::Get, 2), 1);
        obs.end_op(0, true);
        let trace = obs.trace().snapshot();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].seq, 0);
        assert_eq!(trace[2].seq, 2);
    }

    #[test]
    fn snapshot_carries_trace_counters() {
        let obs = Obs::new(2);
        for i in 0..5 {
            let op = obs.begin_op(OpKind::Get, i);
            obs.end_op(op, true);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.counters["trace.recorded_events"], 10);
        assert_eq!(snap.counters["trace.dropped_events"], 8);
    }

    #[test]
    fn span_close_records_logical_latency() {
        let obs = Obs::default();
        let op = obs.begin_op(OpKind::Put, 1);
        obs.trace().event(TraceEvent::FlushExtent { extent: 0 });
        obs.end_op(op, true); // OpStart seq 0 → OpEnd seq 2: latency 2
        let get = obs.begin_op(OpKind::Get, 2);
        obs.end_op(get, true); // latency 1
        let snap = obs.snapshot();
        let put = &snap.histograms["latency.put"];
        assert_eq!((put.count, put.sum), (1, 2));
        let get = &snap.histograms["latency.get"];
        assert_eq!((get.count, get.sum), (1, 1));
    }

    #[test]
    fn latency_skipped_when_trace_disabled() {
        let obs = Obs::default();
        obs.trace().set_enabled(false);
        let op = obs.begin_op(OpKind::Put, 1);
        obs.end_op(op, true);
        assert!(obs.snapshot().histograms.is_empty());
    }

    #[test]
    fn minted_reqs_share_the_op_id_space() {
        let obs = Obs::default();
        let req = obs.mint_req();
        let op = obs.begin_op(OpKind::Put, 1);
        obs.end_op(op, true);
        assert_ne!(req, op);
    }

    #[test]
    fn timeline_filters_to_one_request() {
        let obs = Obs::default();
        let a = obs.begin_op(OpKind::Put, 1);
        obs.trace().event(TraceEvent::OpWrites { op: a, nodes: vec![10] });
        obs.end_op(a, true);
        let b = obs.begin_op(OpKind::Get, 2);
        obs.end_op(b, false);
        // Background persistence attributed through the node map.
        obs.trace().event(TraceEvent::WritePersisted { node: 10 });
        let t = obs.timeline(a);
        assert!(t.contains(&format!("req {a}:")), "{t}");
        assert!(t.contains("start put"), "{t}");
        assert!(t.contains("node #10 persisted"), "{t}");
        assert!(!t.contains("start get"), "{t}");
    }
}
