//! Trace-based oracles: causal assertions over a captured [`TraceLog`]
//! snapshot, for harnesses to run alongside their state-based checks.
//!
//! State-based checkers (conformance against the reference model, crash
//! consistency against the dependency spec) validate *outcomes*. These
//! oracles validate *causality* — orderings the outcome can't expose:
//!
//! - an acknowledged dependency must be dominated by `WritePersisted`
//!   events for every data write the op submitted ([`check_acked_durability`]);
//! - in-call retries must stay within the scheduler's budget per extent
//!   per failure burst ([`check_retry_budget`]);
//! - a quarantined extent must never serve a cache hit afterwards
//!   ([`check_quarantine_isolation`]);
//! - an extent reset must not be followed by a cache hit for a chunk
//!   address on that extent unless the cache missed (repopulated) it
//!   first ([`check_cache_coherence`]).
//!
//! All oracles begin by *certifying* the trace: a ring that wrapped
//! (`dropped > 0`) has lost history, and a causal check over partial
//! history can pass vacuously — so [`certify`] turns truncation into an
//! explicit failure instead.
//!
//! [`render_timeline`] is the companion debugging tool: it groups events
//! by operation (attributing scheduler-node events to the op that
//! submitted them) and pretty-prints a per-op timeline, which the
//! harnesses attach to minimized counterexamples.

use std::collections::{BTreeMap, BTreeSet};

use crate::trace::{TraceEvent, TraceRecord};
use crate::TraceLog;

/// A failed oracle: which invariant broke and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleViolation {
    /// Which oracle fired (stable identifier, e.g. `acked_durability`).
    pub oracle: &'static str,
    /// Human-readable description of the breakage.
    pub detail: String,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace oracle `{}`: {}", self.oracle, self.detail)
    }
}

/// Refuses a truncated trace. Every causal oracle calls this first: if
/// the ring wrapped, events are missing and "no violation found" would be
/// meaningless.
pub fn certify(log: &TraceLog) -> Result<Vec<TraceRecord>, OracleViolation> {
    let dropped = log.dropped();
    if dropped > 0 {
        return Err(OracleViolation {
            oracle: "certify",
            detail: format!(
                "trace ring wrapped: {dropped} events dropped of {} recorded; \
                 causal oracles cannot certify a truncated trace \
                 (raise the trace capacity)",
                log.recorded()
            ),
        });
    }
    Ok(log.snapshot())
}

/// Acked durability: for every `Acked {{ dep }}`, the dependency's op (via
/// `OpReturn`) must have had **all** of its data-write nodes (via
/// `OpWrites`) persisted before the ack, and the returned dep node itself
/// must be persisted. This is the trace-level image of the paper's
/// durability property: nothing is acknowledged ahead of its writes.
pub fn check_acked_durability(records: &[TraceRecord]) -> Result<(), OracleViolation> {
    // dep node -> op, op -> data-write nodes.
    let mut dep_to_op: BTreeMap<u64, u64> = BTreeMap::new();
    let mut op_writes: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for r in records {
        match &r.event {
            TraceEvent::OpReturn { op, dep } => {
                dep_to_op.insert(*dep, *op);
            }
            TraceEvent::OpWrites { op, nodes } => {
                op_writes.entry(*op).or_default().extend(nodes.iter().copied());
            }
            _ => {}
        }
    }
    let mut persisted: BTreeSet<u64> = BTreeSet::new();
    for r in records {
        match &r.event {
            TraceEvent::WritePersisted { node } => {
                persisted.insert(*node);
            }
            TraceEvent::Acked { dep } => {
                if !persisted.contains(dep) {
                    return Err(OracleViolation {
                        oracle: "acked_durability",
                        detail: format!(
                            "dep #{dep} acked at seq {} before its own \
                             WritePersisted event",
                            r.seq
                        ),
                    });
                }
                if let Some(op) = dep_to_op.get(dep) {
                    if let Some(nodes) = op_writes.get(op) {
                        for node in nodes {
                            if !persisted.contains(node) {
                                return Err(OracleViolation {
                                    oracle: "acked_durability",
                                    detail: format!(
                                        "dep #{dep} (op {op}) acked at seq {} but \
                                         data write #{node} was not yet persisted",
                                        r.seq
                                    ),
                                });
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Retry budget: within one failure burst on an extent (a run of `Retry`
/// events not interrupted by a successful event on that extent), the
/// attempt number must never exceed `budget`. Attempt numbers are 1-based.
pub fn check_retry_budget(records: &[TraceRecord], budget: u32) -> Result<(), OracleViolation> {
    for r in records {
        if let TraceEvent::Retry { extent, attempt } = r.event {
            if attempt > budget {
                return Err(OracleViolation {
                    oracle: "retry_budget",
                    detail: format!(
                        "extent {extent} retried attempt {attempt} at seq {} \
                         exceeding budget {budget}",
                        r.seq
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Quarantine isolation: once an extent is quarantined, no later cache
/// hit may be served for a chunk on that extent. (The degraded salvage
/// path deliberately emits no `CacheHit`, so reads that *knowingly*
/// salvage stale bytes don't trip this.) Only meaningful on deterministic
/// runs — background writeback can interleave a racing hit benignly, so
/// harnesses skip this oracle there.
pub fn check_quarantine_isolation(records: &[TraceRecord]) -> Result<(), OracleViolation> {
    let mut quarantined: BTreeSet<u32> = BTreeSet::new();
    for r in records {
        match &r.event {
            TraceEvent::Quarantine { extent } => {
                quarantined.insert(*extent);
            }
            TraceEvent::CacheHit { extent, offset } if quarantined.contains(extent) => {
                return Err(OracleViolation {
                    oracle: "quarantine_isolation",
                    detail: format!(
                        "cache hit for ext {extent} off {offset} at seq {} \
                         after the extent was quarantined",
                        r.seq
                    ),
                });
            }
            _ => {}
        }
    }
    Ok(())
}

/// Cache coherence across extent reuse: after `ExtentReset {{ extent }}`,
/// any address on that extent must first `CacheMiss` (be repopulated
/// from the store) before it may `CacheHit` again. A hit without an
/// intervening miss is a stale entry surviving reclamation — exactly the
/// seeded B2 "cache not drained" bug.
pub fn check_cache_coherence(records: &[TraceRecord]) -> Result<(), OracleViolation> {
    // Addresses on reset extents that have not been repopulated yet.
    let mut stale: BTreeSet<(u32, u32)> = BTreeSet::new();
    // Every address ever touched, so a reset can invalidate them.
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    for r in records {
        match &r.event {
            TraceEvent::CacheMiss { extent, offset } => {
                seen.insert((*extent, *offset));
                stale.remove(&(*extent, *offset));
            }
            TraceEvent::CacheHit { extent, offset } => {
                if stale.contains(&(*extent, *offset)) {
                    return Err(OracleViolation {
                        oracle: "cache_coherence",
                        detail: format!(
                            "stale cache hit for ext {extent} off {offset} at seq {} \
                             after the extent was reset without repopulation",
                            r.seq
                        ),
                    });
                }
                seen.insert((*extent, *offset));
            }
            TraceEvent::ExtentReset { extent } => {
                let ext = *extent;
                for addr in seen.iter().filter(|(e, _)| *e == ext) {
                    stale.insert(*addr);
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Compaction discipline: `CompactionStart` and `CompactionEnd` events
/// strictly alternate beginning with a Start (the maintenance lock
/// serializes rounds, and the round always emits its End — even on
/// error); every Start picks at least two tables; and the round's output
/// never exceeds its input by more than a fixed per-table framing slack
/// (a merge can only shrink data — a round that *grows* it beyond
/// headers would mean O(total-data) write amplification crept back in).
pub fn check_compaction_discipline(records: &[TraceRecord]) -> Result<(), OracleViolation> {
    /// Per-round headroom for block/footer framing when merging tiny
    /// tables whose payloads don't amortize the fixed overhead.
    const FRAMING_SLACK: u64 = 256;
    let mut open: Option<(u64, u64)> = None; // (seq of Start, bytes_in)
    for r in records {
        match &r.event {
            TraceEvent::CompactionStart { picked, bytes_in } => {
                if let Some((start_seq, _)) = open {
                    return Err(OracleViolation {
                        oracle: "compaction_discipline",
                        detail: format!(
                            "compaction started at seq {} while the round from \
                             seq {start_seq} never ended",
                            r.seq
                        ),
                    });
                }
                if *picked < 2 {
                    return Err(OracleViolation {
                        oracle: "compaction_discipline",
                        detail: format!(
                            "compaction at seq {} picked {picked} tables; a round \
                             must merge at least two",
                            r.seq
                        ),
                    });
                }
                open = Some((r.seq, *bytes_in));
            }
            TraceEvent::CompactionEnd { bytes_out, .. } => {
                let Some((_, bytes_in)) = open.take() else {
                    return Err(OracleViolation {
                        oracle: "compaction_discipline",
                        detail: format!(
                            "compaction end at seq {} without a matching start",
                            r.seq
                        ),
                    });
                };
                if *bytes_out > bytes_in + FRAMING_SLACK {
                    return Err(OracleViolation {
                        oracle: "compaction_discipline",
                        detail: format!(
                            "compaction at seq {} wrote {bytes_out} bytes from \
                             {bytes_in} bytes in — a merge must not grow its \
                             input beyond framing slack",
                            r.seq
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Span well-formedness: every opened op span closes exactly once, no
/// op-scoped event (`OpReturn` / `OpWrites`) appears outside its span,
/// and spans belonging to the same request nest LIFO (a child span opened
/// inside a request closes before its parent does — one request executes
/// on one thread, so interleaved closes would mean attribution is lying).
/// Run at quiescence: an in-flight span would report as never closed.
pub fn check_span_wellformed(records: &[TraceRecord]) -> Result<(), OracleViolation> {
    const ORACLE: &str = "span_wellformed";
    let fail = |detail: String| Err(OracleViolation { oracle: ORACLE, detail });
    // op id → closed? (present = started)
    let mut spans: BTreeMap<u64, bool> = BTreeMap::new();
    // request id → stack of open op spans attributed to it.
    let mut nesting: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for r in records {
        match &r.event {
            TraceEvent::OpStart { op, .. } => {
                if spans.insert(*op, false).is_some() {
                    return fail(format!("op {op} started again at seq {}", r.seq));
                }
                if let Some(req) = r.req {
                    nesting.entry(req).or_default().push(*op);
                }
            }
            TraceEvent::OpEnd { op, .. } => match spans.get(op).copied() {
                Some(false) => {
                    spans.insert(*op, true);
                    if let Some(req) = r.req {
                        let stack = nesting.entry(req).or_default();
                        match stack.pop() {
                            Some(top) if top == *op => {}
                            Some(top) => {
                                return fail(format!(
                                    "op {op} closed at seq {} while its child span \
                                     op {top} (request {req}) was still open — \
                                     spans must nest",
                                    r.seq
                                ));
                            }
                            // The start predates the request stamp (e.g.
                            // recording was enabled mid-span): nothing to
                            // check without inventing history.
                            None => {}
                        }
                    }
                }
                Some(true) => {
                    return fail(format!("op {op} closed again at seq {}", r.seq));
                }
                None => {
                    return fail(format!("op {op} closed at seq {} without a start", r.seq));
                }
            },
            TraceEvent::OpReturn { op, .. } | TraceEvent::OpWrites { op, .. } => {
                match spans.get(op) {
                    Some(false) => {}
                    Some(true) => {
                        return fail(format!(
                            "op {op} event at seq {} after its span closed",
                            r.seq
                        ));
                    }
                    None => {
                        return fail(format!(
                            "op {op} event at seq {} before its span opened",
                            r.seq
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    if let Some((op, _)) = spans.iter().find(|(_, closed)| !**closed) {
        return fail(format!("op {op} span never closed"));
    }
    Ok(())
}

/// Runs every oracle applicable to a deterministic run. `retry_budget`
/// is the scheduler's configured in-call retry budget.
pub fn check_all(log: &TraceLog, retry_budget: u32) -> Result<(), OracleViolation> {
    let records = certify(log)?;
    check_span_wellformed(&records)?;
    check_acked_durability(&records)?;
    check_retry_budget(&records, retry_budget)?;
    check_quarantine_isolation(&records)?;
    check_cache_coherence(&records)?;
    check_compaction_discipline(&records)?;
    Ok(())
}

/// Pretty-prints a per-operation timeline from a trace snapshot. Events
/// carrying an op id land under that op; scheduler-node events are
/// attributed to the op that submitted the node (via `OpWrites` /
/// `OpReturn`); everything else goes under a `[system]` heading. The
/// result is what the harnesses attach to minimized counterexamples.
pub fn render_timeline(records: &[TraceRecord]) -> String {
    // First pass: node -> op attribution.
    let mut node_op: BTreeMap<u64, u64> = BTreeMap::new();
    for r in records {
        match &r.event {
            TraceEvent::OpWrites { op, nodes } => {
                for n in nodes {
                    node_op.insert(*n, *op);
                }
            }
            TraceEvent::OpReturn { op, dep } => {
                node_op.insert(*dep, *op);
            }
            _ => {}
        }
    }
    let op_of = |ev: &TraceEvent| -> Option<u64> {
        match ev {
            TraceEvent::OpStart { op, .. }
            | TraceEvent::OpEnd { op, .. }
            | TraceEvent::OpReturn { op, .. }
            | TraceEvent::OpWrites { op, .. } => Some(*op),
            TraceEvent::Acked { dep } => node_op.get(dep).copied(),
            TraceEvent::WriteIssued { node, .. }
            | TraceEvent::WritePersisted { node }
            | TraceEvent::WriteLost { node } => node_op.get(node).copied(),
            _ => None,
        }
    };
    // Second pass: group in logical-clock order.
    let mut by_op: BTreeMap<Option<u64>, Vec<&TraceRecord>> = BTreeMap::new();
    for r in records {
        by_op.entry(op_of(&r.event)).or_default().push(r);
    }
    let mut out = String::new();
    // None (system events) sorts first in the BTreeMap; print it last for
    // readability.
    for (op, evs) in by_op.iter().filter(|(op, _)| op.is_some()) {
        let op = op.expect("filtered");
        out.push_str(&format!("op {op}:\n"));
        for r in evs {
            out.push_str(&format!("  #{:06}  {}\n", r.seq, r.event));
        }
    }
    if let Some(evs) = by_op.get(&None) {
        out.push_str("[system]:\n");
        for r in evs {
            out.push_str(&format!("  #{:06}  {}\n", r.seq, r.event));
        }
    }
    out
}

/// [`render_timeline`] over only the trailing `tail` events — for
/// attaching a bounded excerpt to a failure report from a long run.
pub fn render_timeline_tail(records: &[TraceRecord], tail: usize) -> String {
    let start = records.len().saturating_sub(tail);
    render_timeline(&records[start..])
}

/// Renders the causal timeline of a single request, in logical-clock
/// order: every record stamped with `req`, plus scheduler-node events
/// (`WriteIssued`/`WritePersisted`/`WriteLost`/`Acked`) attributed — via
/// the op→node maps — to ops the request executed. `dropped` is the
/// trace ring's drop count; when non-zero the timeline says so up front
/// instead of presenting partial history as complete.
pub fn render_req_timeline(records: &[TraceRecord], req: u64, dropped: u64) -> String {
    // Ops owned by the request: the request id itself (a direct Store
    // caller's op is its own request) plus every op whose records carry
    // the request stamp.
    let mut owned: BTreeSet<u64> = BTreeSet::new();
    owned.insert(req);
    let direct_op = |ev: &TraceEvent| -> Option<u64> {
        match ev {
            TraceEvent::OpStart { op, .. }
            | TraceEvent::OpEnd { op, .. }
            | TraceEvent::OpReturn { op, .. }
            | TraceEvent::OpWrites { op, .. } => Some(*op),
            _ => None,
        }
    };
    let mut node_op: BTreeMap<u64, u64> = BTreeMap::new();
    for r in records {
        if r.req == Some(req) {
            if let Some(op) = direct_op(&r.event) {
                owned.insert(op);
            }
        }
        match &r.event {
            TraceEvent::OpWrites { op, nodes } => {
                for n in nodes {
                    node_op.insert(*n, *op);
                }
            }
            TraceEvent::OpReturn { op, dep } => {
                node_op.insert(*dep, *op);
            }
            _ => {}
        }
    }
    let node_owned = |ev: &TraceEvent| -> bool {
        let node = match ev {
            TraceEvent::Acked { dep } => dep,
            TraceEvent::WriteIssued { node, .. }
            | TraceEvent::WritePersisted { node }
            | TraceEvent::WriteLost { node } => node,
            _ => return false,
        };
        node_op.get(node).is_some_and(|op| owned.contains(op))
    };
    let mut out = format!("req {req}:\n");
    if dropped > 0 {
        out.push_str(&format!(
            "  (trace truncated: {dropped} events dropped — this timeline may be incomplete)\n"
        ));
    }
    let mut any = false;
    for r in records {
        let mine = r.req == Some(req)
            || direct_op(&r.event).is_some_and(|op| owned.contains(&op))
            || node_owned(&r.event);
        if mine {
            any = true;
            out.push_str(&format!("  #{:06}  {}\n", r.seq, r.event));
        }
    }
    if !any {
        out.push_str("  (no events recorded for this request)\n");
    }
    out
}

/// Renders the causal timeline of the most recently active request in
/// `records` (the request stamped on the last req-attributed event).
/// Empty when no request was ever stamped — callers can append it to a
/// failure report unconditionally.
pub fn render_last_req_timeline(records: &[TraceRecord], dropped: u64) -> String {
    match records.iter().rev().find_map(|r| r.req) {
        Some(req) => render_req_timeline(records, req, dropped),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OpKind;

    fn rec(seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, req: None, event }
    }

    fn rec_req(seq: u64, req: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, req: Some(req), event }
    }

    #[test]
    fn certify_rejects_wrapped_trace() {
        let log = TraceLog::new(1);
        log.event(TraceEvent::RecoveryStart);
        log.event(TraceEvent::RecoveryEnd { ok: true });
        let err = certify(&log).unwrap_err();
        assert_eq!(err.oracle, "certify");
    }

    #[test]
    fn acked_durability_accepts_persist_then_ack() {
        let records = vec![
            rec(0, TraceEvent::OpWrites { op: 0, nodes: vec![1, 2] }),
            rec(1, TraceEvent::OpReturn { op: 0, dep: 3 }),
            rec(2, TraceEvent::WritePersisted { node: 1 }),
            rec(3, TraceEvent::WritePersisted { node: 2 }),
            rec(4, TraceEvent::WritePersisted { node: 3 }),
            rec(5, TraceEvent::Acked { dep: 3 }),
        ];
        check_acked_durability(&records).unwrap();
    }

    #[test]
    fn acked_durability_rejects_early_ack() {
        let records = vec![
            rec(0, TraceEvent::OpWrites { op: 0, nodes: vec![1] }),
            rec(1, TraceEvent::OpReturn { op: 0, dep: 2 }),
            rec(2, TraceEvent::WritePersisted { node: 2 }),
            // data write #1 never persisted
            rec(3, TraceEvent::Acked { dep: 2 }),
        ];
        let err = check_acked_durability(&records).unwrap_err();
        assert_eq!(err.oracle, "acked_durability");
        assert!(err.detail.contains("#1"), "{}", err.detail);
    }

    #[test]
    fn retry_budget_enforced() {
        let records = vec![
            rec(0, TraceEvent::Retry { extent: 4, attempt: 1 }),
            rec(1, TraceEvent::Retry { extent: 4, attempt: 2 }),
        ];
        check_retry_budget(&records, 2).unwrap();
        check_retry_budget(&records, 1).unwrap_err();
    }

    #[test]
    fn quarantine_isolation_flags_late_hit() {
        let records = vec![
            rec(0, TraceEvent::CacheHit { extent: 7, offset: 0 }),
            rec(1, TraceEvent::Quarantine { extent: 7 }),
            rec(2, TraceEvent::CacheHit { extent: 7, offset: 0 }),
        ];
        let err = check_quarantine_isolation(&records).unwrap_err();
        assert_eq!(err.oracle, "quarantine_isolation");
    }

    #[test]
    fn cache_coherence_requires_repopulation() {
        let stale = vec![
            rec(0, TraceEvent::CacheMiss { extent: 3, offset: 8 }),
            rec(1, TraceEvent::ExtentReset { extent: 3 }),
            rec(2, TraceEvent::CacheHit { extent: 3, offset: 8 }),
        ];
        assert_eq!(check_cache_coherence(&stale).unwrap_err().oracle, "cache_coherence");

        let repopulated = vec![
            rec(0, TraceEvent::CacheMiss { extent: 3, offset: 8 }),
            rec(1, TraceEvent::ExtentReset { extent: 3 }),
            rec(2, TraceEvent::CacheMiss { extent: 3, offset: 8 }),
            rec(3, TraceEvent::CacheHit { extent: 3, offset: 8 }),
        ];
        check_cache_coherence(&repopulated).unwrap();
    }

    #[test]
    fn span_wellformed_accepts_nested_spans() {
        let records = vec![
            rec_req(0, 0, TraceEvent::OpStart { op: 0, kind: OpKind::PutBatch, key: 0 }),
            rec_req(1, 0, TraceEvent::OpStart { op: 1, kind: OpKind::Put, key: 1 }),
            rec_req(2, 0, TraceEvent::OpWrites { op: 1, nodes: vec![4] }),
            rec_req(3, 0, TraceEvent::OpEnd { op: 1, ok: true }),
            rec_req(4, 0, TraceEvent::OpReturn { op: 0, dep: 5 }),
            rec_req(5, 0, TraceEvent::OpEnd { op: 0, ok: true }),
        ];
        check_span_wellformed(&records).unwrap();
    }

    #[test]
    fn span_wellformed_rejects_unclosed_span() {
        let records = vec![rec(0, TraceEvent::OpStart { op: 3, kind: OpKind::Get, key: 0 })];
        let err = check_span_wellformed(&records).unwrap_err();
        assert_eq!(err.oracle, "span_wellformed");
        assert!(err.detail.contains("never closed"), "{}", err.detail);
    }

    #[test]
    fn span_wellformed_rejects_double_close() {
        let records = vec![
            rec(0, TraceEvent::OpStart { op: 0, kind: OpKind::Get, key: 0 }),
            rec(1, TraceEvent::OpEnd { op: 0, ok: true }),
            rec(2, TraceEvent::OpEnd { op: 0, ok: true }),
        ];
        let err = check_span_wellformed(&records).unwrap_err();
        assert!(err.detail.contains("closed again"), "{}", err.detail);
    }

    #[test]
    fn span_wellformed_rejects_event_after_close() {
        let records = vec![
            rec(0, TraceEvent::OpStart { op: 0, kind: OpKind::Put, key: 0 }),
            rec(1, TraceEvent::OpEnd { op: 0, ok: true }),
            rec(2, TraceEvent::OpWrites { op: 0, nodes: vec![1] }),
        ];
        let err = check_span_wellformed(&records).unwrap_err();
        assert!(err.detail.contains("after its span closed"), "{}", err.detail);
    }

    #[test]
    fn span_wellformed_rejects_interleaved_children() {
        let records = vec![
            rec_req(0, 7, TraceEvent::OpStart { op: 8, kind: OpKind::PutBatch, key: 0 }),
            rec_req(1, 7, TraceEvent::OpStart { op: 9, kind: OpKind::Put, key: 1 }),
            rec_req(2, 7, TraceEvent::OpEnd { op: 8, ok: true }),
            rec_req(3, 7, TraceEvent::OpEnd { op: 9, ok: true }),
        ];
        let err = check_span_wellformed(&records).unwrap_err();
        assert!(err.detail.contains("must nest"), "{}", err.detail);
    }

    #[test]
    fn req_timeline_includes_owned_ops_and_nodes() {
        let records = vec![
            rec_req(0, 0, TraceEvent::ReqAdmitted { req: 0, disk: 1 }),
            rec_req(1, 0, TraceEvent::OpStart { op: 2, kind: OpKind::Put, key: 9 }),
            rec_req(2, 0, TraceEvent::OpWrites { op: 2, nodes: vec![5] }),
            rec_req(3, 0, TraceEvent::OpEnd { op: 2, ok: true }),
            rec(4, TraceEvent::OpStart { op: 3, kind: OpKind::Get, key: 1 }),
            rec(5, TraceEvent::OpEnd { op: 3, ok: true }),
            rec(6, TraceEvent::WritePersisted { node: 5 }),
            rec_req(7, 0, TraceEvent::ReqDone { req: 0, ok: true }),
        ];
        let text = render_req_timeline(&records, 0, 0);
        assert!(text.contains("req 0:"), "{text}");
        assert!(text.contains("admitted disk 1"), "{text}");
        assert!(text.contains("node #5 persisted"), "{text}");
        assert!(text.contains("req 0 done"), "{text}");
        assert!(!text.contains("start get"), "{text}");
        assert!(!text.contains("truncated"), "{text}");
    }

    #[test]
    fn req_timeline_notes_truncation_and_emptiness() {
        let text = render_req_timeline(&[], 4, 12);
        assert!(text.contains("12 events dropped"), "{text}");
        assert!(text.contains("no events recorded"), "{text}");
    }

    #[test]
    fn timeline_groups_by_op() {
        let records = vec![
            rec(0, TraceEvent::OpStart { op: 0, kind: OpKind::Put, key: 9 }),
            rec(1, TraceEvent::OpWrites { op: 0, nodes: vec![5] }),
            rec(2, TraceEvent::WriteIssued { node: 5, extent: 1, offset: 0, len: 16 }),
            rec(3, TraceEvent::FlushExtent { extent: 1 }),
            rec(4, TraceEvent::WritePersisted { node: 5 }),
            rec(5, TraceEvent::OpEnd { op: 0, ok: true }),
        ];
        let text = render_timeline(&records);
        assert!(text.contains("op 0:"), "{text}");
        assert!(text.contains("write #5 issued"), "{text}");
        assert!(text.contains("[system]:"), "{text}");
        assert!(text.contains("flush ext 1"), "{text}");
        // Node events attributed to op 0, not [system].
        let sys_at = text.find("[system]").unwrap();
        let issue_at = text.find("write #5 issued").unwrap();
        assert!(issue_at < sys_at, "{text}");
    }
}
