//! Structured event tracing with a logical clock.
//!
//! A [`TraceLog`] is a bounded ring buffer of typed [`TraceEvent`]s. Each
//! recorded event is stamped with a **logical sequence number** handed out
//! under the ring's lock — never wall-clock time — so a trace of a
//! deterministic schedule is byte-identical across runs. That is the
//! property the model checker and the `SHARDSTORE_SEED` determinism suite
//! rely on, and it is why wall clock is banned on checked paths (the
//! opt-in [`crate::walltime`] layer exists for benches).
//!
//! When the ring is full the oldest event is dropped **and counted**: the
//! `dropped_events` tally is surfaced through [`TraceLog::dropped`] and in
//! every [`crate::Obs::snapshot`], so harness oracles can refuse to
//! certify causal properties over a truncated trace instead of silently
//! passing on missing history.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Per-thread stack of open request frames: `(trace-log identity,
    /// request id)`. A frame is pushed when a request (or a store op
    /// acting as its own request) enters this thread and popped when it
    /// leaves; [`TraceLog::event`] stamps each record with the
    /// *outermost* frame belonging to the same log, so every event a
    /// request causes — across core, dependency, lsm, chunk, and vdisk —
    /// carries the request id without any signature changes in those
    /// layers. Keying frames by log identity keeps cross-disk operations
    /// (e.g. a migrate touching two stores) from stamping one disk's
    /// request id onto another disk's events.
    static REQ_FRAMES: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The kind of store-level operation an op span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `Store::put`.
    Put,
    /// One element of `Store::put_batch`.
    PutBatch,
    /// `Store::get`.
    Get,
    /// `Store::delete`.
    Delete,
    /// `Store::scan` (a range scan; the span key is the range start).
    Scan,
    /// Store recovery after a reboot.
    Recovery,
    /// An index flush.
    Flush,
    /// A reclamation pass.
    Reclaim,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::Put => "put",
            OpKind::PutBatch => "put_batch",
            OpKind::Get => "get",
            OpKind::Delete => "delete",
            OpKind::Scan => "scan",
            OpKind::Recovery => "recovery",
            OpKind::Flush => "flush",
            OpKind::Reclaim => "reclaim",
        };
        f.write_str(s)
    }
}

/// One typed trace event. Every payload is a plain integer (node ids,
/// extent numbers, logical counts) — no strings, no times — so rendering
/// is deterministic and cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A store-level operation span opened.
    OpStart {
        /// Op id (from the shared per-`Obs` counter).
        op: u64,
        /// What kind of operation.
        kind: OpKind,
        /// The shard key (0 where not applicable).
        key: u128,
    },
    /// The span closed.
    OpEnd {
        /// Op id.
        op: u64,
        /// Whether the operation returned Ok.
        ok: bool,
    },
    /// The op returned this dependency node as its durability handle.
    OpReturn {
        /// Op id.
        op: u64,
        /// Scheduler node id of the returned dependency.
        dep: u64,
    },
    /// The data-write nodes the op submitted.
    OpWrites {
        /// Op id.
        op: u64,
        /// Scheduler node ids of the op's data writes.
        nodes: Vec<u64>,
    },
    /// A client observed the dependency persistent (acknowledgement).
    Acked {
        /// Scheduler node id of the acknowledged dependency.
        dep: u64,
    },
    /// A write node was issued to the disk's volatile cache.
    WriteIssued {
        /// Scheduler node id.
        node: u64,
        /// Target extent.
        extent: u32,
        /// Byte offset within the extent.
        offset: u32,
        /// Length in bytes.
        len: u32,
    },
    /// A dependency node became persistent (write flushed, join resolved).
    WritePersisted {
        /// Scheduler node id.
        node: u64,
    },
    /// A disk IO failed.
    WriteFailed {
        /// Failing extent.
        extent: u32,
        /// True for injected transient failures, false for permanent.
        transient: bool,
    },
    /// A write node was permanently lost (crash or extent quarantine).
    WriteLost {
        /// Scheduler node id.
        node: u64,
    },
    /// An in-call retry of a transient write failure.
    Retry {
        /// Retried extent.
        extent: u32,
        /// 1-based attempt number within the retry budget.
        attempt: u32,
    },
    /// An extent fence (flush barrier) completed.
    FlushExtent {
        /// Fenced extent.
        extent: u32,
    },
    /// Buffer-cache hit.
    CacheHit {
        /// Extent of the cached chunk.
        extent: u32,
        /// Offset of the cached chunk.
        offset: u32,
    },
    /// Buffer-cache miss (the entry is populated from the store).
    CacheMiss {
        /// Extent of the missed chunk.
        extent: u32,
        /// Offset of the missed chunk.
        offset: u32,
    },
    /// Buffer-cache eviction.
    CacheEvict {
        /// Extent of the evicted chunk.
        extent: u32,
        /// Offset of the evicted chunk.
        offset: u32,
    },
    /// An LSM memtable flush wrote a new SSTable.
    LsmFlush {
        /// Entries flushed.
        entries: u32,
        /// Id of the table written.
        table: u64,
    },
    /// An SSTable was decoded from disk (decoded-cache miss).
    TableLoad {
        /// Table id.
        table: u64,
    },
    /// A compaction round started: the picker chose a run of tables.
    CompactionStart {
        /// Tables in the picked run (always ≥ 2).
        picked: u64,
        /// Total serialized bytes of the picked tables.
        bytes_in: u64,
    },
    /// The compaction round finished (emitted on success and error
    /// alike, so Start/End strictly alternate in any complete trace).
    CompactionEnd {
        /// Serialized size of the merged output table (0 on error).
        bytes_out: u64,
        /// Live tables after the round.
        tables_after: u64,
    },
    /// A live chunk was relocated (reclamation or quarantine evacuation).
    Relocation {
        /// Source extent.
        from_extent: u32,
        /// Destination extent.
        to_extent: u32,
    },
    /// An extent was quarantined after a permanent fault.
    Quarantine {
        /// The quarantined extent.
        extent: u32,
    },
    /// An extent was reset (reclamation reclaimed it for reuse).
    ExtentReset {
        /// The reset extent.
        extent: u32,
    },
    /// A fail-stop crash was injected at the disk.
    CrashPoint {
        /// Volatile pages that survived per the crash plan.
        pages_kept: u32,
        /// Volatile pages lost.
        pages_lost: u32,
    },
    /// Store recovery began.
    RecoveryStart,
    /// Store recovery finished.
    RecoveryEnd {
        /// Whether recovery succeeded.
        ok: bool,
    },
    /// An RPC request was rejected at admission: the target disk
    /// executor's bounded queue was full (typed backpressure — the
    /// client sees an `Overloaded` error).
    RpcOverloaded {
        /// Target disk slot.
        disk: u32,
        /// Queue depth observed at rejection (the configured bound).
        depth: u32,
    },
    /// A run of co-routed puts was funnelled into one `Store::put_batch`
    /// by a disk executor's batched dispatch.
    RpcBatch {
        /// Executing disk slot.
        disk: u32,
        /// Number of puts in the funnelled run.
        puts: u32,
    },
    /// One disk's slice of a fanned-out scan completed and contributed a
    /// page of entries to the merged response.
    ScanPage {
        /// Executing disk slot.
        disk: u32,
        /// Entries this slice contributed.
        entries: u32,
    },
    /// A request was admitted at the engine boundary: it passed the
    /// bounded-queue check and was enqueued for its disk executor.
    ReqAdmitted {
        /// The minted request id.
        req: u64,
        /// Target disk slot.
        disk: u32,
    },
    /// The engine finished executing a request (the reply was set).
    ReqDone {
        /// The request id.
        req: u64,
        /// Whether the request produced a non-error response.
        ok: bool,
    },
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
                TraceEvent::OpStart { op, kind, key } => {
                    write!(f, "op {op} start {kind} key={key:#x}")
                }
                TraceEvent::OpEnd { op, ok } => write!(f, "op {op} end ok={ok}"),
                TraceEvent::OpReturn { op, dep } => write!(f, "op {op} returns dep #{dep}"),
                TraceEvent::OpWrites { op, nodes } => write!(f, "op {op} writes {nodes:?}"),
                TraceEvent::Acked { dep } => write!(f, "acked dep #{dep}"),
                TraceEvent::WriteIssued { node, extent, offset, len } => {
                    write!(f, "write #{node} issued ext {extent} off {offset} len {len}")
                }
                TraceEvent::WritePersisted { node } => write!(f, "node #{node} persisted"),
                TraceEvent::WriteFailed { extent, transient } => {
                    write!(f, "io failed ext {extent} transient={transient}")
                }
                TraceEvent::WriteLost { node } => write!(f, "write #{node} lost"),
                TraceEvent::Retry { extent, attempt } => {
                    write!(f, "retry ext {extent} attempt {attempt}")
                }
                TraceEvent::FlushExtent { extent } => write!(f, "flush ext {extent}"),
                TraceEvent::CacheHit { extent, offset } => {
                    write!(f, "cache hit ext {extent} off {offset}")
                }
                TraceEvent::CacheMiss { extent, offset } => {
                    write!(f, "cache miss ext {extent} off {offset}")
                }
                TraceEvent::CacheEvict { extent, offset } => {
                    write!(f, "cache evict ext {extent} off {offset}")
                }
                TraceEvent::LsmFlush { entries, table } => {
                    write!(f, "lsm flush {entries} entries -> table {table}")
                }
                TraceEvent::TableLoad { table } => write!(f, "table {table} decoded"),
                TraceEvent::CompactionStart { picked, bytes_in } => {
                    write!(f, "compaction start picked {picked} tables ({bytes_in} bytes)")
                }
                TraceEvent::CompactionEnd { bytes_out, tables_after } => {
                    write!(f, "compaction end {bytes_out} bytes out, {tables_after} tables live")
                }
                TraceEvent::Relocation { from_extent, to_extent } => {
                    write!(f, "relocated ext {from_extent} -> ext {to_extent}")
                }
                TraceEvent::Quarantine { extent } => write!(f, "quarantine ext {extent}"),
                TraceEvent::ExtentReset { extent } => write!(f, "extent {extent} reset"),
                TraceEvent::CrashPoint { pages_kept, pages_lost } => {
                    write!(f, "crash: kept {pages_kept} pages, lost {pages_lost}")
                }
                TraceEvent::RecoveryStart => write!(f, "recovery start"),
                TraceEvent::RecoveryEnd { ok } => write!(f, "recovery end ok={ok}"),
                TraceEvent::RpcOverloaded { disk, depth } => {
                    write!(f, "rpc overloaded disk {disk} depth {depth}")
                }
                TraceEvent::RpcBatch { disk, puts } => {
                    write!(f, "rpc batch disk {disk} puts {puts}")
                }
                TraceEvent::ScanPage { disk, entries } => {
                    write!(f, "scan page disk {disk} entries {entries}")
                }
                TraceEvent::ReqAdmitted { req, disk } => {
                    write!(f, "req {req} admitted disk {disk}")
                }
                TraceEvent::ReqDone { req, ok } => write!(f, "req {req} done ok={ok}"),
        }
    }
}

/// One recorded event with its logical-clock stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Logical sequence number: a per-log counter, never wall clock.
    pub seq: u64,
    /// The request this event was caused by, when one was on the
    /// recording thread's frame stack (see [`TraceLog::push_req`]).
    /// `None` for background activity (writeback pump, maintenance).
    pub req: Option<u64>,
    /// The event.
    pub event: TraceEvent,
}

struct TraceInner {
    ring: VecDeque<TraceRecord>,
    next_seq: u64,
    dropped: u64,
}

/// The bounded event ring. Cheap interior mutability; every recording
/// takes the ring lock exactly once (sequence stamping and insertion are
/// atomic together, which is what makes the logical clock total).
pub struct TraceLog {
    inner: Mutex<TraceInner>,
    capacity: usize,
    enabled: AtomicBool,
}

impl TraceLog {
    /// A ring holding at most `capacity` events (0 disables recording).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(TraceInner {
                ring: VecDeque::with_capacity(capacity.min(1024)),
                next_seq: 0,
                dropped: 0,
            }),
            capacity,
            enabled: AtomicBool::new(capacity > 0),
        }
    }

    /// Turns recording on or off (benches turn it off to measure pure
    /// datapath cost; the dropped/recorded counters are unaffected).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on && self.capacity > 0, Ordering::Relaxed);
    }

    /// Records an event stamped with the current thread's outermost
    /// request frame for this log, returning its logical timestamp (or
    /// `None` when recording is disabled).
    pub fn event(&self, event: TraceEvent) -> Option<u64> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let req = self.current_req();
        self.record(event, req)
    }

    /// Records an event with an explicit request stamp, bypassing the
    /// thread's frame stack — for events emitted on behalf of a request
    /// from a thread that is not executing it (e.g. admission on the
    /// client thread before the executor picks the job up).
    pub fn event_with_req(&self, event: TraceEvent, req: Option<u64>) -> Option<u64> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        self.record(event, req)
    }

    fn record(&self, event: TraceEvent, req: Option<u64>) -> Option<u64> {
        let mut inner = self.inner.lock().expect("trace lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(TraceRecord { seq, req, event });
        Some(seq)
    }

    fn frame_key(&self) -> usize {
        self as *const TraceLog as usize
    }

    /// Pushes a request frame for this log onto the current thread's
    /// stack: until the matching [`TraceLog::pop_req`], every event this
    /// thread records into this log is stamped with `req`. Frames for
    /// *other* logs are unaffected, so a cross-disk operation never
    /// stamps its request id onto another disk's trace.
    pub fn push_req(&self, req: u64) {
        REQ_FRAMES.with(|f| f.borrow_mut().push((self.frame_key(), req)));
    }

    /// Pops the most recent request frame for this log from the current
    /// thread's stack (a no-op if none is open).
    pub fn pop_req(&self) {
        REQ_FRAMES.with(|f| {
            let mut frames = f.borrow_mut();
            if let Some(pos) = frames.iter().rposition(|(k, _)| *k == self.frame_key()) {
                frames.remove(pos);
            }
        });
    }

    /// The request currently attributed to this thread for this log: the
    /// *outermost* matching frame, so nested op spans inside a request
    /// stay attributed to the request that caused them.
    pub fn current_req(&self) -> Option<u64> {
        REQ_FRAMES
            .with(|f| f.borrow().iter().find(|(k, _)| *k == self.frame_key()).map(|&(_, r)| r))
    }

    /// RAII variant of [`TraceLog::push_req`]: the frame pops when the
    /// guard drops, so early returns cannot leak a frame.
    pub fn req_frame(&self, req: u64) -> ReqFrame<'_> {
        self.push_req(req);
        ReqFrame { log: self }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace lock").ring.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events recorded (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("trace lock").next_seq
    }

    /// Events lost to ring wrap. Non-zero means the trace is truncated
    /// and causal oracles must refuse to certify it.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace lock").dropped
    }

    /// Copies out the retained records in logical-clock order.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.inner.lock().expect("trace lock").ring.iter().cloned().collect()
    }

    /// Clears the ring and counters (a fresh logical clock).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("trace lock");
        inner.ring.clear();
        inner.next_seq = 0;
        inner.dropped = 0;
    }

    /// Renders the retained events one per line (`#seq  event`, with a
    /// `[req N]` suffix on request-attributed events). Two identical
    /// schedules render byte-identically — the determinism suite
    /// compares exactly this.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("trace lock");
        let mut out = String::new();
        for r in &inner.ring {
            out.push_str(&format!("#{:06}  {}", r.seq, r.event));
            if let Some(req) = r.req {
                out.push_str(&format!("  [req {req}]"));
            }
            out.push('\n');
        }
        out
    }
}

/// Guard returned by [`TraceLog::req_frame`]; pops the frame on drop.
#[derive(Debug)]
pub struct ReqFrame<'a> {
    log: &'a TraceLog,
}

impl Drop for ReqFrame<'_> {
    fn drop(&mut self) {
        self.log.pop_req();
    }
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("trace lock");
        f.debug_struct("TraceLog")
            .field("len", &inner.ring.len())
            .field("capacity", &self.capacity)
            .field("dropped", &inner.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wrap_counts_drops() {
        let log = TraceLog::new(3);
        for i in 0..5u32 {
            log.event(TraceEvent::FlushExtent { extent: i });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.recorded(), 5);
        // The retained window is the most recent events, stamps intact.
        let snap = log.snapshot();
        assert_eq!(snap[0].seq, 2);
        assert_eq!(snap[2].seq, 4);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = TraceLog::new(8);
        log.set_enabled(false);
        assert_eq!(log.event(TraceEvent::RecoveryStart), None);
        assert_eq!(log.recorded(), 0);
        log.set_enabled(true);
        assert_eq!(log.event(TraceEvent::RecoveryStart), Some(0));
    }

    #[test]
    fn zero_capacity_disables() {
        let log = TraceLog::new(0);
        assert_eq!(log.event(TraceEvent::RecoveryStart), None);
        log.set_enabled(true); // cannot re-enable a zero-capacity ring
        assert_eq!(log.event(TraceEvent::RecoveryStart), None);
    }

    #[test]
    fn req_frames_stamp_events() {
        let log = TraceLog::new(16);
        log.event(TraceEvent::RecoveryStart);
        {
            let _f = log.req_frame(7);
            log.event(TraceEvent::FlushExtent { extent: 1 });
            // Nested frames keep the outermost request attribution.
            let _inner = log.req_frame(9);
            log.event(TraceEvent::FlushExtent { extent: 2 });
        }
        log.event(TraceEvent::RecoveryEnd { ok: true });
        let snap = log.snapshot();
        assert_eq!(snap[0].req, None);
        assert_eq!(snap[1].req, Some(7));
        assert_eq!(snap[2].req, Some(7), "outermost frame wins");
        assert_eq!(snap[3].req, None, "frames popped on drop");
    }

    #[test]
    fn req_frames_are_per_log() {
        let a = TraceLog::new(16);
        let b = TraceLog::new(16);
        let _fa = a.req_frame(3);
        a.event(TraceEvent::FlushExtent { extent: 0 });
        b.event(TraceEvent::FlushExtent { extent: 0 });
        assert_eq!(a.snapshot()[0].req, Some(3));
        assert_eq!(b.snapshot()[0].req, None, "a's frame must not leak into b");
    }

    #[test]
    fn explicit_req_stamp_bypasses_frames() {
        let log = TraceLog::new(16);
        log.event_with_req(TraceEvent::ReqAdmitted { req: 5, disk: 0 }, Some(5));
        assert_eq!(log.snapshot()[0].req, Some(5));
    }

    #[test]
    fn render_is_deterministic() {
        let mk = || {
            let log = TraceLog::new(16);
            log.event(TraceEvent::OpStart { op: 0, kind: OpKind::Put, key: 0xbeef });
            log.event(TraceEvent::WriteIssued { node: 3, extent: 1, offset: 0, len: 64 });
            log.event(TraceEvent::OpEnd { op: 0, ok: true });
            log.render()
        };
        assert_eq!(mk(), mk());
    }
}
