//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms with lock-free hot-path recording.
//!
//! Registration (name → handle) takes a lock once; the returned handles
//! are `Arc`-shared atomics, so recording is a single atomic RMW. Counter
//! values are order-independent sums, which makes snapshots deterministic
//! at quiescence regardless of which thread recorded what — the property
//! the trace-determinism suite relies on in background-writeback mode.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{self, Json};

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depths, live bytes).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    #[inline]
    pub fn adjust(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    /// Inclusive upper bounds of the finite buckets; values above the last
    /// bound land in the overflow bucket.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets (the last one is overflow).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram. Bucket bounds are chosen at registration and
/// never change, so recording is bound-search plus one atomic increment.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("bounds", &self.0.bounds).finish()
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = self.0.bounds.partition_point(|&b| b < value);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            counts: self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Inclusive finite-bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The inclusive upper bound of the bucket holding the `q`-quantile
    /// observation (`q` in `[0, 1]`). Returns 0 for an empty histogram
    /// and `u64::MAX` when the quantile lands in the overflow bucket —
    /// the estimate is exact to within one bucket by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The metric registry. Cheap to clone; all clones share metrics.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry lock");
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self { inner: Arc::new(Mutex::new(RegistryInner::default())) }
    }

    /// Gets or creates the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry lock");
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Gets or creates the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry lock");
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// Gets or creates the named histogram. The bounds of the first
    /// registration win; later callers share the same buckets.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be ascending");
        let mut inner = self.inner.lock().expect("registry lock");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| {
                Histogram(Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// Snapshots every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry lock");
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }
}

/// A point-in-time view of every metric, ordered by name (BTreeMaps), so
/// two snapshots of identical state serialize byte-identically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram views by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a single deterministic JSON object.
    pub fn to_json(&self) -> String {
        Json::from(self).render()
    }

    /// Parses a snapshot back from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = json::parse(s)?;
        Self::from_value(&v)
    }

    fn from_value(v: &Json) -> Result<Self, String> {
        let obj = v.as_object().ok_or("snapshot: expected object")?;
        let mut out = MetricsSnapshot::default();
        if let Some(c) = obj.get("counters") {
            for (k, v) in c.as_object().ok_or("counters: expected object")? {
                out.counters.insert(k.clone(), v.as_u64().ok_or("counter: expected u64")?);
            }
        }
        if let Some(g) = obj.get("gauges") {
            for (k, v) in g.as_object().ok_or("gauges: expected object")? {
                out.gauges.insert(k.clone(), v.as_i64().ok_or("gauge: expected i64")?);
            }
        }
        if let Some(h) = obj.get("histograms") {
            for (k, v) in h.as_object().ok_or("histograms: expected object")? {
                let ho = v.as_object().ok_or("histogram: expected object")?;
                let nums = |key: &str| -> Result<Vec<u64>, String> {
                    ho.get(key)
                        .and_then(Json::as_array)
                        .ok_or_else(|| format!("histogram.{key}: expected array"))?
                        .iter()
                        .map(|n| n.as_u64().ok_or_else(|| format!("histogram.{key}: expected u64")))
                        .collect()
                };
                out.histograms.insert(
                    k.clone(),
                    HistogramSnapshot {
                        bounds: nums("bounds")?,
                        counts: nums("counts")?,
                        count: ho
                            .get("count")
                            .and_then(Json::as_u64)
                            .ok_or("histogram.count: expected u64")?,
                        sum: ho
                            .get("sum")
                            .and_then(Json::as_u64)
                            .ok_or("histogram.sum: expected u64")?,
                    },
                );
            }
        }
        Ok(out)
    }

    /// Convenience: counter value, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Folds `other` into `self`: counters and gauges add, and
    /// same-name histograms with identical bounds add bucket-wise.
    /// Histograms absent from `self` are copied in; a bounds mismatch
    /// keeps `self`'s buckets (the aggregator's schema wins). Used by
    /// swarm reporting to aggregate per-disk and per-seed snapshots.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
                Some(mine) if mine.bounds == h.bounds => {
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                }
                Some(_) => {}
            }
        }
    }
}

impl From<&MetricsSnapshot> for Json {
    fn from(s: &MetricsSnapshot) -> Json {
        let counters =
            s.counters.iter().map(|(k, v)| (k.clone(), Json::U64(*v))).collect::<Vec<_>>();
        let gauges = s.gauges.iter().map(|(k, v)| (k.clone(), Json::I64(*v))).collect::<Vec<_>>();
        let hists = s
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::object(vec![
                        ("bounds".into(), Json::u64_array(&h.bounds)),
                        ("counts".into(), Json::u64_array(&h.counts)),
                        ("count".into(), Json::U64(h.count)),
                        ("sum".into(), Json::U64(h.sum)),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        Json::object(vec![
            ("counters".into(), Json::object(counters)),
            ("gauges".into(), Json::object(gauges)),
            ("histograms".into(), Json::object(hists)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        r.counter("x").add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.snapshot().counter("x"), 5);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(7);
        g.adjust(-9);
        assert_eq!(g.get(), -2);
        assert_eq!(r.snapshot().gauges["depth"], -2);
    }

    #[test]
    fn histogram_buckets_values() {
        let r = Registry::new();
        let h = r.histogram("sizes", &[10, 100]);
        h.record(5); // bucket 0 (≤10)
        h.record(10); // bucket 0 (inclusive)
        h.record(50); // bucket 1 (≤100)
        h.record(1000); // overflow
        let snap = r.snapshot().histograms["sizes"].clone();
        assert_eq!(snap.counts, vec![2, 1, 1]);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1065);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let r = Registry::new();
        let h = r.histogram("lat", &[1, 2, 4, 8]);
        for v in [1, 1, 2, 3, 5] {
            h.record(v);
        }
        let snap = r.snapshot().histograms["lat"].clone();
        assert_eq!(snap.p50(), 2, "the 3rd of 5 sorted observations lands in the ≤2 bucket");
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(snap.quantile(1.0), 8);
        assert_eq!(snap.p99(), 8);
        h.record(100); // overflow
        let snap = r.snapshot().histograms["lat"].clone();
        assert_eq!(snap.quantile(1.0), u64::MAX);
        assert_eq!(HistogramSnapshot::default().p999(), 0);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let a = Registry::new();
        a.counter("c").add(2);
        a.gauge("g").set(1);
        a.histogram("h", &[10, 20]).record(5);
        let b = Registry::new();
        b.counter("c").add(3);
        b.counter("only_b").inc();
        b.gauge("g").set(4);
        b.histogram("h", &[10, 20]).record(15);
        b.histogram("h2", &[1]).record(1);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.counter("only_b"), 1);
        assert_eq!(snap.gauges["g"], 5);
        let h = &snap.histograms["h"];
        assert_eq!((h.count, h.sum), (2, 20));
        assert_eq!(h.counts, vec![1, 1, 0]);
        assert_eq!(snap.histograms["h2"].count, 1);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let r = Registry::new();
        r.counter("a.b").add(42);
        r.gauge("g").set(-17);
        let h = r.histogram("h", &[1, 2, 4]);
        h.record(3);
        h.record(9);
        let snap = r.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // Determinism: serializing twice is byte-identical.
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Registry::new().snapshot();
        assert_eq!(MetricsSnapshot::from_json(&snap.to_json()).unwrap(), snap);
    }
}
