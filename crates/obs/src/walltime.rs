//! The **opt-in** wall-clock layer — the only module in the workspace
//! allowed to touch `std::time`. Benches use it to turn op spans into
//! real latencies; nothing on a checked path may, because wall-clock
//! values would make traces and snapshots run-dependent and break the
//! byte-identical determinism the model checker and `SHARDSTORE_SEED`
//! suites compare against.

use std::time::Instant;

use crate::metrics::Histogram;

/// A running stopwatch that records elapsed microseconds into a
/// histogram when stopped (or dropped).
pub struct Stopwatch {
    start: Instant,
    histogram: Histogram,
    recorded: bool,
}

impl Stopwatch {
    /// Starts timing; the elapsed time lands in `histogram` (in
    /// microseconds) on [`Stopwatch::stop`] or drop.
    pub fn start(histogram: Histogram) -> Self {
        Self { start: Instant::now(), histogram, recorded: false }
    }

    /// Stops and records, returning the elapsed microseconds.
    pub fn stop(mut self) -> u64 {
        self.record()
    }

    fn record(&mut self) -> u64 {
        let micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        if !self.recorded {
            self.histogram.record(micros);
            self.recorded = true;
        }
        micros
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        if !self.recorded {
            self.record();
        }
    }
}

/// Runs `f`, returning its result and the elapsed wall-clock
/// milliseconds. Used by the file-backend recovery path (and benches) to
/// time work against real storage; nothing on a checked in-memory path
/// may call this.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = f();
    let ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    (out, ms)
}

/// Runs `f`, returning its result and the elapsed wall-clock
/// microseconds. The bench rig uses this to collect raw per-op latency
/// samples for percentile reporting.
pub fn time_us<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = f();
    let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    (out, us)
}

/// Latency bucket bounds (microseconds) suited to the in-memory disk:
/// sub-microsecond ops up through multi-millisecond stalls.
pub const LATENCY_BOUNDS_US: &[u64] = &[1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 5_000, 25_000];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn stopwatch_records_once() {
        let reg = Registry::new();
        let h = reg.histogram("bench.op_us", LATENCY_BOUNDS_US);
        let sw = Stopwatch::start(h.clone());
        sw.stop();
        assert_eq!(h.count(), 1);
        {
            let _sw = Stopwatch::start(h.clone());
            // recorded on drop
        }
        assert_eq!(h.count(), 2);
    }
}
