//! A minimal JSON value, writer, and parser — just enough for
//! [`crate::metrics::MetricsSnapshot`] to round-trip without pulling a
//! serialization dependency into the workspace's bottom crate.
//!
//! Supported subset: objects, arrays, strings (with `\"`, `\\`, `\n`,
//! `\t`, `\r`, and `\u` escapes), integers (u64/i64), booleans, null.
//! Object key order is preserved by the writer and irrelevant to the
//! snapshot parser (which targets BTreeMaps).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Object as an ordered list of key/value pairs.
    Object(Vec<(String, Json)>),
    /// Array.
    Array(Vec<Json>),
    /// String.
    Str(String),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always rendered with its sign).
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Json {
    /// Builds an object from pairs.
    pub fn object(pairs: Vec<(String, Json)>) -> Json {
        Json::Object(pairs)
    }

    /// Builds an array of u64s.
    pub fn u64_array(values: &[u64]) -> Json {
        Json::Array(values.iter().map(|&v| Json::U64(v)).collect())
    }

    /// Object accessor (pairs searchable by key).
    pub fn as_object(&self) -> Option<JsonObject<'_>> {
        match self {
            Json::Object(pairs) => Some(JsonObject(pairs)),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Unsigned integer accessor (accepts non-negative `I64` too).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Signed integer accessor.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Str(s) => write_string(s, out),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Null => out.push_str("null"),
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Borrowed object view with key lookup.
pub struct JsonObject<'a>(&'a [(String, Json)]);

impl<'a> JsonObject<'a> {
    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&'a Json> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

impl<'a> IntoIterator for JsonObject<'a> {
    type Item = &'a (String, Json);
    type IntoIter = std::slice::Iter<'a, (String, Json)>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Parses a JSON document (the subset this module writes).
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    _ => return Err(format!("unknown escape '\\{}'", esc as char)),
                }
            }
            c => {
                // Re-decode multi-byte UTF-8 sequences from the source.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let width = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = b.get(start..start + width).ok_or("truncated UTF-8")?;
                    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    *pos = start + width;
                }
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are UTF-8");
    if text.starts_with('-') {
        text.parse::<i64>().map(Json::I64).map_err(|e| e.to_string())
    } else {
        text.parse::<u64>().map(Json::U64).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_what_it_writes() {
        let v = Json::object(vec![
            ("a".into(), Json::U64(7)),
            ("b".into(), Json::I64(-3)),
            ("s".into(), Json::Str("he\"llo\nworld".into())),
            ("arr".into(), Json::u64_array(&[1, 2, 3])),
            ("t".into(), Json::Bool(true)),
            ("n".into(), Json::Null),
        ]);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn parses_whitespace_variants() {
        let v = parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.as_object().unwrap().get("k").unwrap().as_array().unwrap().len(), 2);
    }
}
