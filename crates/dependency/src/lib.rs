//! Soft-updates crash consistency: run-time dependency graphs and the IO
//! scheduler that enforces them (§2.2 of the paper).
//!
//! ShardStore avoids a write-ahead log by orchestrating the *order* in
//! which writes reach the disk, so that every crash state of the disk is
//! consistent (soft updates). Rather than global reasoning about writeback
//! orderings, crash-consistent orderings are specified *declaratively*: the
//! only way to write to disk is to submit a write to the [`IoScheduler`]
//! together with an input [`Dependency`], and the scheduler guarantees the
//! write is not issued to the disk until the input dependency has been
//! *persisted*. Every submission returns a new `Dependency` that can be
//! combined with others ([`Dependency::and`]) to build richer graphs, and
//! polled with [`Dependency::is_persistent`] — the exact API shape of the
//! paper's `fn append(&self, ..., dep: Dependency) -> Dependency`.
//!
//! Three node kinds make up a dependency graph:
//!
//! - **Write** nodes carry data destined for an extent. They move through
//!   `Pending` (queued, invisible to the disk) → `Issued` (in the disk's
//!   volatile cache) → `Persisted` (flushed). A crash drops pending writes
//!   entirely and may keep any page subset of issued-but-unflushed writes.
//! - **Join** nodes ([`Dependency::and`], [`IoScheduler::join`]) persist
//!   when all their dependencies persist.
//! - **Promise** nodes ([`IoScheduler::promise`]) are joins whose
//!   dependencies are filled in later — e.g. a `put`'s index entry becomes
//!   persistent only once some future LSM flush and metadata write land,
//!   so `put` returns a promise that the flush seals afterwards.
//!
//! # Group commit
//!
//! Persistence is resolved *event-driven*: every node counts its
//! unresolved dependencies, and completion events (a flush persisting a
//! write, a promise being sealed) cascade through reverse edges, feeding a
//! ready queue of issueable writes. Nothing is polled; pumping pops the
//! ready queue, groups the whole batch per extent, merges contiguous
//! same-extent writes into single disk IOs (Fig. 2's two puts sharing one
//! IO), and [`IoScheduler::flush_issued`] fences only the extents the
//! batch actually dirtied instead of barriering the whole disk. Pending
//! writes can also be *amended* in place
//! ([`IoScheduler::amend_pending_write`]), which is how superblock
//! soft-write-pointer updates from many appends fold into one superblock
//! write.
//!
//! Writeback can run on the caller's thread ([`WritebackMode::Deterministic`],
//! the default — checkers rely on it for deterministic schedules) or on a
//! background pump ([`WritebackMode::Background`]) signalled on every
//! submission and batching work within a configurable window. Under a
//! checked execution the pump becomes a checker-controlled task, so model
//! checking explores its interleavings too; harnesses must call
//! [`IoScheduler::quiesce`] before asserting (and before dropping a
//! controlled scheduler) so no pump task outlives the execution.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Weak};
use std::time::Duration;

use shardstore_conc::sync::{Condvar, Mutex};
use shardstore_obs::{Counter, Gauge, Obs, TraceEvent};
use shardstore_vdisk::{CrashPlan, Disk, ExtentId, IoError};

/// Index of a node in the scheduler's arena.
type NodeId = usize;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteState {
    Pending,
    Issued,
    Persisted,
    /// Dropped by a crash before persisting, or failed by an injected IO
    /// error. A lost node can never become persistent.
    Lost,
}

#[derive(Debug)]
enum NodeKind {
    Write { extent: ExtentId, offset: usize, len: usize, data: Option<Vec<u8>>, state: WriteState },
    Join { sealed: bool },
}

#[derive(Debug)]
struct Node {
    kind: NodeKind,
    deps: Vec<NodeId>,
    /// Reverse edges: nodes whose `unresolved` count includes this node.
    /// Drained when this node resolves; a lost node never drains its
    /// waiters, which is exactly what keeps them from persisting.
    waiters: Vec<NodeId>,
    /// How many of `deps` have not yet resolved. A pending write with
    /// `unresolved == 0` is ready to issue.
    unresolved: usize,
    /// "This node and everything below it has persisted." Maintained
    /// eagerly by the resolution cascade, so polling is O(1).
    persistent_memo: bool,
}

#[derive(Debug)]
struct Inner {
    nodes: Vec<Node>,
    /// Write nodes not yet issued, in submission order (the
    /// read-your-writes overlay and crash semantics need this order).
    pending: VecDeque<NodeId>,
    /// Pending writes whose dependencies have all resolved, in the order
    /// they became ready. Entries can go stale (amended with new deps,
    /// issued via a duplicate entry, lost to a crash); consumers re-check
    /// readiness when popping.
    ready: VecDeque<NodeId>,
    /// Issued-but-unflushed writes, grouped by the extent they dirtied.
    issued: BTreeMap<ExtentId, Vec<NodeId>>,
    issued_total: usize,
    /// When true, every write is flushed individually as it is issued
    /// (the "global barrier" ablation mode — no coalescing benefit).
    barrier_mode: bool,
    /// How many immediate in-call retries a transient (`Injected`) write
    /// failure gets before the batch is requeued and the error surfaced.
    retry_budget: u32,
    /// The shared observability handle (also attached to the disk); the
    /// scheduler emits its trace events through this.
    obs: Obs,
    /// Registry-backed counter handles. The registry is the single source
    /// of truth for scheduler statistics; read them back through
    /// [`IoScheduler::counter`] / [`IoScheduler::queue_depth`].
    counters: SchedCounters,
}

/// Pre-resolved handles for every scheduler metric, so hot-path recording
/// is one atomic increment with no registry lookup.
#[derive(Debug)]
struct SchedCounters {
    writes_submitted: Counter,
    ios_issued: Counter,
    writes_coalesced: Counter,
    flushes: Counter,
    writes_lost_pending: Counter,
    writes_lost_issued: Counter,
    waw_dependencies: Counter,
    writes_retried: Counter,
    retries: Counter,
    retry_exhausted: Counter,
    writes_failed: Counter,
    batches_issued: Counter,
    extents_fenced: Counter,
    queue_depth: Gauge,
}

impl SchedCounters {
    fn new(obs: &Obs) -> Self {
        let r = obs.registry();
        Self {
            writes_submitted: r.counter("sched.writes_submitted"),
            ios_issued: r.counter("sched.ios_issued"),
            writes_coalesced: r.counter("sched.writes_coalesced"),
            flushes: r.counter("sched.flushes"),
            writes_lost_pending: r.counter("sched.writes_lost_pending"),
            writes_lost_issued: r.counter("sched.writes_lost_issued"),
            waw_dependencies: r.counter("sched.waw_dependencies"),
            writes_retried: r.counter("sched.writes_retried"),
            retries: r.counter("sched.retries"),
            retry_exhausted: r.counter("sched.retry_exhausted"),
            writes_failed: r.counter("sched.writes_failed"),
            batches_issued: r.counter("sched.batches_issued"),
            extents_fenced: r.counter("sched.extents_fenced"),
            queue_depth: r.gauge("sched.queue_depth"),
        }
    }
}

/// Default in-call retry budget for transient write failures.
pub const DEFAULT_RETRY_BUDGET: u32 = 3;

/// How writeback is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritebackMode {
    /// Writes reach the disk only when the caller pumps. The default, and
    /// what every checker uses: schedules stay deterministic.
    Deterministic,
    /// A background pump issues and flushes ready writes on its own,
    /// batching submissions within the configured window. Outside checked
    /// executions this is a real thread signalled over a crossbeam
    /// channel; inside one it is a checker-controlled task (the batch
    /// window does not apply — the checker owns the schedule).
    Background(WritebackConfig),
}

/// Tuning for [`WritebackMode::Background`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritebackConfig {
    /// After a submission wakes the pump, how long it waits for more
    /// submissions to batch into one group commit.
    pub batch_window: Duration,
    /// Pump without further waiting once this many submissions have
    /// accumulated in the current window.
    pub max_batch: usize,
}

impl Default for WritebackConfig {
    fn default() -> Self {
        Self { batch_window: Duration::from_micros(100), max_batch: 64 }
    }
}

/// Wake-up messages for the std-thread pump.
enum PumpSignal {
    Work,
    Shutdown,
}

/// Rendezvous state for the checker-controlled pump task.
struct ControlledPump {
    state: Mutex<ControlledPumpState>,
    cv: Condvar,
}

struct ControlledPumpState {
    signals: u64,
    shutdown: bool,
}

enum PumpWorker {
    Std { tx: crossbeam::channel::Sender<PumpSignal>, handle: std::thread::JoinHandle<()> },
    Controlled { shared: Arc<ControlledPump>, handle: shardstore_conc::thread::JoinHandle<()> },
}

struct PumpCtl {
    mode: WritebackMode,
    worker: Option<PumpWorker>,
}

/// The IO scheduler: the single gateway through which all ShardStore
/// components write to disk.
///
/// Cloning is cheap and shares the underlying scheduler.
#[derive(Clone)]
pub struct IoScheduler {
    core: Arc<SchedCore>,
}

struct SchedCore {
    disk: Arc<Disk>,
    /// The shared observability handle (also held inside `inner` for
    /// lock-held emission, and attached to the disk).
    obs: Obs,
    inner: Mutex<Inner>,
    pump_ctl: Mutex<PumpCtl>,
}

impl SchedCore {
    /// Nudges the background pump, if one is running.
    fn signal_pump(&self) {
        let ctl = self.pump_ctl.lock();
        match &ctl.worker {
            None => {}
            Some(PumpWorker::Std { tx, .. }) => {
                let _ = tx.send(PumpSignal::Work);
            }
            Some(PumpWorker::Controlled { shared, .. }) => {
                let mut st = shared.state.lock();
                st.signals += 1;
                shared.cv.notify_one();
            }
        }
    }
}

impl fmt::Debug for IoScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.core.inner.lock();
        f.debug_struct("IoScheduler")
            .field("nodes", &inner.nodes.len())
            .field("pending", &inner.pending.len())
            .field("ready", &inner.ready.len())
            .field("issued", &inner.issued_total)
            .finish()
    }
}

/// A handle to a dependency-graph node (or the trivially persistent empty
/// dependency). Cheap to clone; combine with [`Dependency::and`]; poll with
/// [`Dependency::is_persistent`].
#[derive(Clone)]
pub struct Dependency {
    core: Arc<SchedCore>,
    node: Option<NodeId>,
}

impl fmt::Debug for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "Dependency({n})"),
            None => write!(f, "Dependency(none)"),
        }
    }
}

/// An unsealed join node: dependencies can be added until [`Promise::seal`]
/// is called; it reports non-persistent until sealed.
#[derive(Debug, Clone)]
pub struct Promise {
    dep: Dependency,
}

impl IoScheduler {
    /// Creates a scheduler over a disk. The scheduler is the root of the
    /// observability topology: it creates the shared [`Obs`] handle and
    /// attaches it to the disk, and every layer above reaches it through
    /// [`IoScheduler::obs`] — no constructor anywhere else changes.
    pub fn new(disk: Arc<Disk>) -> Self {
        let obs = Obs::default();
        disk.attach_obs(obs.clone());
        let counters = SchedCounters::new(&obs);
        Self {
            core: Arc::new(SchedCore {
                disk,
                obs: obs.clone(),
                inner: Mutex::new(Inner {
                    nodes: Vec::new(),
                    pending: VecDeque::new(),
                    ready: VecDeque::new(),
                    issued: BTreeMap::new(),
                    issued_total: 0,
                    barrier_mode: false,
                    retry_budget: DEFAULT_RETRY_BUDGET,
                    obs,
                    counters,
                }),
                pump_ctl: Mutex::new(PumpCtl { mode: WritebackMode::Deterministic, worker: None }),
            }),
        }
    }

    /// The shared observability handle (created by this scheduler and
    /// attached to its disk).
    pub fn obs(&self) -> Obs {
        self.core.obs.clone()
    }

    /// Enables the write-ahead-log-like ablation mode: every write is
    /// issued and flushed individually, defeating coalescing. Used by the
    /// benches to quantify what soft updates buy (§2.2 motivation).
    pub fn set_barrier_mode(&self, on: bool) {
        self.core.inner.lock().barrier_mode = on;
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.core.disk
    }

    /// The always-persistent empty dependency.
    pub fn none(&self) -> Dependency {
        Dependency { core: Arc::clone(&self.core), node: None }
    }

    /// Submits a write of `data` at `(extent, offset)` that will not be
    /// issued to disk until `dep` has persisted. Returns the write's own
    /// dependency.
    pub fn submit_write(
        &self,
        extent: ExtentId,
        offset: usize,
        data: Vec<u8>,
        dep: &Dependency,
    ) -> Dependency {
        debug_assert!(Arc::ptr_eq(&self.core, &dep.core), "dependency from another scheduler");
        let id;
        {
            let mut guard = self.core.inner.lock();
            let inner = &mut *guard;
            id = inner.nodes.len();
            let mut deps: Vec<NodeId> = dep.node.into_iter().collect();
            // Write-after-write ordering: a write overlapping a still-pending
            // earlier write to the same bytes must not be issued before it —
            // otherwise dependency readiness can reorder them and the *older*
            // data lands last. This arises when an extent reset reuses space
            // while writes from before the reset are still queued.
            let overlapping: Vec<NodeId> = inner
                .pending
                .iter()
                .copied()
                .filter(|p| {
                    matches!(
                        &inner.nodes[*p].kind,
                        NodeKind::Write { extent: e, offset: o, len: l, state, .. }
                            if *state == WriteState::Pending
                                && *e == extent
                                && *o < offset + data.len()
                                && offset < *o + *l
                    )
                })
                .collect();
            inner.counters.waw_dependencies.add(overlapping.len() as u64);
            deps.extend(overlapping);
            inner.nodes.push(Node {
                kind: NodeKind::Write {
                    extent,
                    offset,
                    len: data.len(),
                    data: Some(data),
                    state: WriteState::Pending,
                },
                deps,
                waiters: Vec::new(),
                unresolved: 0,
                persistent_memo: false,
            });
            inner.pending.push_back(id);
            Self::register_deps(inner, id);
            if inner.nodes[id].unresolved == 0 {
                inner.ready.push_back(id);
            }
            inner.counters.writes_submitted.inc();
        }
        self.core.signal_pump();
        Dependency { core: Arc::clone(&self.core), node: Some(id) }
    }

    /// Joins several dependencies: the result persists when all of them
    /// have persisted.
    pub fn join(&self, deps: &[Dependency]) -> Dependency {
        let mut guard = self.core.inner.lock();
        let inner = &mut *guard;
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            kind: NodeKind::Join { sealed: true },
            deps: deps.iter().filter_map(|d| d.node).collect(),
            waiters: Vec::new(),
            unresolved: 0,
            persistent_memo: false,
        });
        Self::register_deps(inner, id);
        if inner.nodes[id].unresolved == 0 {
            Self::resolve(inner, id);
        }
        Dependency { core: Arc::clone(&self.core), node: Some(id) }
    }

    /// Creates an unsealed promise node (see [`Promise`]).
    pub fn promise(&self) -> Promise {
        let mut inner = self.core.inner.lock();
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            kind: NodeKind::Join { sealed: false },
            deps: Vec::new(),
            waiters: Vec::new(),
            unresolved: 0,
            persistent_memo: false,
        });
        Promise { dep: Dependency { core: Arc::clone(&self.core), node: Some(id) } }
    }

    /// Amends a still-pending write in place: replaces its payload and adds
    /// extra dependencies. Returns false (without modifying anything) if
    /// the write has already been issued, in which case the caller must
    /// submit a fresh write. This is how per-append superblock updates
    /// coalesce into a single superblock IO (Fig. 2).
    pub fn amend_pending_write(
        &self,
        dep: &Dependency,
        new_data: Vec<u8>,
        extra_deps: &[Dependency],
    ) -> bool {
        let Some(id) = dep.node else { return false };
        let mut guard = self.core.inner.lock();
        let inner = &mut *guard;
        let extra: Vec<NodeId> = extra_deps.iter().filter_map(|d| d.node).collect();
        match &mut inner.nodes[id].kind {
            NodeKind::Write { len, data, state: WriteState::Pending, .. } => {
                *len = new_data.len();
                *data = Some(new_data);
            }
            _ => return false,
        }
        // New dependencies can put an already-ready write back to waiting;
        // any stale ready-queue entry is skipped on pop and the resolution
        // cascade re-queues the write when the new deps land.
        for d in extra {
            inner.nodes[id].deps.push(d);
            if !inner.nodes[d].persistent_memo {
                inner.nodes[d].waiters.push(id);
                inner.nodes[id].unresolved += 1;
            }
        }
        true
    }

    /// Wires `id`'s dependency edges: counts unresolved deps and registers
    /// `id` as a waiter on each, so completion events — not polling —
    /// drive readiness.
    fn register_deps(inner: &mut Inner, id: NodeId) {
        let deps = inner.nodes[id].deps.clone();
        let mut unresolved = 0usize;
        for d in deps {
            if !inner.nodes[d].persistent_memo {
                inner.nodes[d].waiters.push(id);
                unresolved += 1;
            }
        }
        inner.nodes[id].unresolved = unresolved;
    }

    /// Marks `node` resolved (persistent) and cascades the event: each
    /// waiter's unresolved count drops; pending writes whose count hits
    /// zero enter the ready queue, and sealed joins whose count hits zero
    /// resolve in turn.
    fn resolve(inner: &mut Inner, node: NodeId) {
        let obs = inner.obs.clone();
        let mut worklist = vec![node];
        while let Some(n) = worklist.pop() {
            if inner.nodes[n].persistent_memo {
                continue;
            }
            inner.nodes[n].persistent_memo = true;
            // Every node that turns persistent — writes *and* joins — is
            // announced, so the acked-durability oracle can check that a
            // dependency handle's entire cone persisted before its ack.
            obs.trace().event(TraceEvent::WritePersisted { node: n as u64 });
            let waiters = std::mem::take(&mut inner.nodes[n].waiters);
            for w in waiters {
                let node_w = &mut inner.nodes[w];
                node_w.unresolved -= 1;
                if node_w.unresolved > 0 {
                    continue;
                }
                match &node_w.kind {
                    NodeKind::Write { state: WriteState::Pending, .. } => {
                        inner.ready.push_back(w);
                    }
                    NodeKind::Write { .. } => {}
                    NodeKind::Join { sealed: true } => worklist.push(w),
                    // Unsealed promises resolve at seal time.
                    NodeKind::Join { sealed: false } => {}
                }
            }
        }
    }

    /// True if `id` is a pending write whose dependencies have all
    /// resolved (ready-queue entries can be stale; this is the re-check).
    fn is_ready_write(inner: &Inner, id: NodeId) -> bool {
        inner.nodes[id].unresolved == 0
            && matches!(
                &inner.nodes[id].kind,
                NodeKind::Write { state: WriteState::Pending, data: Some(_), .. }
            )
    }

    fn write_range(inner: &Inner, id: NodeId) -> (usize, usize) {
        match &inner.nodes[id].kind {
            NodeKind::Write { offset, len, .. } => (*offset, *len),
            NodeKind::Join { .. } => unreachable!("ready queue holds only writes"),
        }
    }

    fn write_extent(inner: &Inner, id: NodeId) -> ExtentId {
        match &inner.nodes[id].kind {
            NodeKind::Write { extent, .. } => *extent,
            NodeKind::Join { .. } => unreachable!("ready queue holds only writes"),
        }
    }

    /// Drops writes that left the `Pending` state from the submission-order
    /// queue (they no longer participate in the read overlay).
    fn drop_issued_from_pending(inner: &mut Inner) {
        let Inner { nodes, pending, .. } = inner;
        pending.retain(|&id| {
            matches!(&nodes[id].kind, NodeKind::Write { state: WriteState::Pending, .. })
        });
    }

    /// Issues up to `max` ready pending writes (writes whose dependencies
    /// have all persisted) into the disk's volatile cache as one group
    /// commit batch: the batch is grouped per extent and contiguous
    /// same-extent writes merge into single IOs. Returns how many write
    /// nodes were issued.
    ///
    /// On an injected IO failure the failing and not-yet-written parts of
    /// the batch are requeued for retry and the error is returned;
    /// already-written parts of the batch remain issued.
    pub fn issue_ready(&self, max: usize) -> Result<usize, IoError> {
        let mut guard = self.core.inner.lock();
        let inner = &mut *guard;
        if inner.barrier_mode {
            return Self::issue_barrier(inner, &self.core.disk, max);
        }
        let mut batch: Vec<NodeId> = Vec::new();
        while batch.len() < max {
            let Some(id) = inner.ready.pop_front() else { break };
            if Self::is_ready_write(inner, id) {
                batch.push(id);
            }
        }
        if batch.is_empty() {
            return Ok(0);
        }
        inner.counters.batches_issued.inc();
        // Group per extent. WAW edges guarantee no two ready writes
        // overlap, so offset order within an extent is safe and maximizes
        // contiguity.
        let mut by_extent: BTreeMap<ExtentId, Vec<NodeId>> = BTreeMap::new();
        for &id in &batch {
            by_extent.entry(Self::write_extent(inner, id)).or_default().push(id);
        }
        let mut runs: Vec<(ExtentId, Vec<NodeId>)> = Vec::new();
        for (extent, mut ids) in by_extent {
            ids.sort_by_key(|&id| Self::write_range(inner, id).0);
            let mut run: Vec<NodeId> = Vec::new();
            for id in ids {
                if let Some(&prev) = run.last() {
                    let (po, pl) = Self::write_range(inner, prev);
                    if po + pl != Self::write_range(inner, id).0 {
                        runs.push((extent, std::mem::take(&mut run)));
                    }
                }
                run.push(id);
            }
            if !run.is_empty() {
                runs.push((extent, run));
            }
        }
        let mut issued = 0usize;
        for (extent, run) in &runs {
            let offset = Self::write_range(inner, run[0]).0;
            let mut buf = Vec::new();
            for &id in run {
                if let NodeKind::Write { data, .. } = &mut inner.nodes[id].kind {
                    buf.extend_from_slice(&data.take().expect("pending write has data"));
                }
            }
            if std::env::var_os("IO_TRACE").is_some() {
                eprintln!(
                    "IO: write ext {} off {} len {} (nodes {:?})",
                    extent.0,
                    offset,
                    buf.len(),
                    run
                );
            }
            let result =
                Self::write_with_retry(inner, &self.core.disk, *extent, offset, &buf);
            match result {
                Ok(()) => {
                    for &id in run {
                        if let NodeKind::Write { state, .. } = &mut inner.nodes[id].kind {
                            *state = WriteState::Issued;
                        }
                        let (o, l) = Self::write_range(inner, id);
                        inner.obs.trace().event(TraceEvent::WriteIssued {
                            node: id as u64,
                            extent: extent.0,
                            offset: o as u32,
                            len: l as u32,
                        });
                    }
                    inner.issued.entry(*extent).or_default().extend(run.iter().copied());
                    inner.issued_total += run.len();
                    inner.counters.ios_issued.inc();
                    inner.counters.writes_coalesced.add((run.len() - 1) as u64);
                    issued += run.len();
                }
                Err(e) => {
                    // Transient IO failure: restore the payload to the
                    // failing run's nodes and requeue every batch member
                    // that is still pending, preserving batch order (a
                    // permanently failing extent keeps erroring and keeps
                    // its writes queued). Without the retry, one transient
                    // failure would poison every write that transitively
                    // depends on the failed one.
                    let mut pos = 0usize;
                    for &id in run {
                        if let NodeKind::Write { len, data, .. } = &mut inner.nodes[id].kind {
                            *data = Some(buf[pos..pos + *len].to_vec());
                            pos += *len;
                        }
                    }
                    inner.counters.writes_retried.inc();
                    let back: Vec<NodeId> =
                        batch.iter().copied().filter(|&id| Self::is_ready_write(inner, id)).collect();
                    for id in back.into_iter().rev() {
                        inner.ready.push_front(id);
                    }
                    Self::drop_issued_from_pending(inner);
                    return Err(e);
                }
            }
        }
        Self::drop_issued_from_pending(inner);
        Ok(issued)
    }

    /// Drives one disk write with the bounded in-call retry of transient
    /// (`Injected`) failures. The retried IO is byte-identical — the
    /// batch grouping and every dependency edge are untouched; a retry is
    /// simply the same coalesced IO driven again. Permanent (`Failed`)
    /// and out-of-range errors are never retried: they return on the
    /// first attempt without burning budget (a permanently failed extent
    /// keeps erroring until it is quarantined or the fault cleared). The
    /// success path costs one branch — no bookkeeping.
    fn write_with_retry(
        inner: &mut Inner,
        disk: &Disk,
        extent: ExtentId,
        offset: usize,
        buf: &[u8],
    ) -> Result<(), IoError> {
        let mut result = disk.write(extent, offset, buf);
        if result.is_ok() {
            return result;
        }
        let total = inner.retry_budget;
        let mut budget = total;
        while budget > 0 && matches!(result, Err(IoError::Injected { .. })) {
            budget -= 1;
            inner.counters.retries.inc();
            inner
                .obs
                .trace()
                .event(TraceEvent::Retry { extent: extent.0, attempt: total - budget });
            result = disk.write(extent, offset, buf);
        }
        if matches!(result, Err(IoError::Injected { .. })) {
            inner.counters.retry_exhausted.inc();
        }
        result
    }

    /// The barrier-mode (WAL ablation) issue path: one IO and one fence
    /// per write, no coalescing.
    fn issue_barrier(inner: &mut Inner, disk: &Disk, max: usize) -> Result<usize, IoError> {
        let mut issued = 0usize;
        while issued < max {
            let id = loop {
                match inner.ready.pop_front() {
                    None => break None,
                    Some(id) if Self::is_ready_write(inner, id) => break Some(id),
                    Some(_) => {}
                }
            };
            let Some(id) = id else { break };
            let (extent, offset, data) = match &mut inner.nodes[id].kind {
                NodeKind::Write { extent, offset, data, .. } => {
                    (*extent, *offset, data.take().expect("pending write has data"))
                }
                NodeKind::Join { .. } => unreachable!("ready queue holds only writes"),
            };
            if let Err(e) = Self::write_with_retry(inner, disk, extent, offset, &data) {
                if let NodeKind::Write { data: d, .. } = &mut inner.nodes[id].kind {
                    *d = Some(data);
                }
                inner.ready.push_front(id);
                inner.counters.writes_retried.inc();
                Self::drop_issued_from_pending(inner);
                return Err(e);
            }
            if let NodeKind::Write { state, .. } = &mut inner.nodes[id].kind {
                *state = WriteState::Issued;
            }
            {
                let (o, l) = Self::write_range(inner, id);
                inner.obs.trace().event(TraceEvent::WriteIssued {
                    node: id as u64,
                    extent: extent.0,
                    offset: o as u32,
                    len: l as u32,
                });
            }
            inner.issued.entry(extent).or_default().push(id);
            inner.issued_total += 1;
            inner.counters.ios_issued.inc();
            inner.counters.batches_issued.inc();
            issued += 1;
            if let Err(e) = disk.flush_extent(extent) {
                Self::drop_issued_from_pending(inner);
                return Err(e);
            }
            inner.counters.flushes.inc();
            inner.counters.extents_fenced.inc();
            let ids = inner.issued.remove(&extent).unwrap_or_default();
            inner.issued_total -= ids.len();
            for wid in ids {
                if let NodeKind::Write { state, .. } = &mut inner.nodes[wid].kind {
                    *state = WriteState::Persisted;
                }
                Self::resolve(inner, wid);
            }
        }
        Self::drop_issued_from_pending(inner);
        Ok(issued)
    }

    /// Reads through the scheduler: disk content overlaid with the data
    /// of pending (not yet issued) writes, in submission order. This is
    /// the read-your-writes view a real system gets from its page cache /
    /// write buffer — without it, data would be unreadable between
    /// submission and writeback.
    pub fn read(&self, extent: ExtentId, offset: usize, len: usize) -> Result<Vec<u8>, IoError> {
        let inner = self.core.inner.lock();
        let mut out = self.core.disk.read(extent, offset, len)?;
        for &id in inner.pending.iter() {
            if let NodeKind::Write { extent: e, offset: o, data: Some(d), .. } =
                &inner.nodes[id].kind
            {
                if *e != extent {
                    continue;
                }
                // Overlap of [o, o+d.len()) with [offset, offset+len).
                let start = (*o).max(offset);
                let end = (o + d.len()).min(offset + len);
                if start < end {
                    out[start - offset..end - offset].copy_from_slice(&d[start - o..end - o]);
                }
            }
        }
        Ok(out)
    }

    /// Fences every dirty extent (extents holding issued-but-unflushed
    /// writes) and marks their issued writes persisted. Untouched extents
    /// see no flush at all.
    pub fn flush_issued(&self) -> Result<(), IoError> {
        let mut guard = self.core.inner.lock();
        let inner = &mut *guard;
        while let Some((&extent, _)) = inner.issued.iter().next() {
            // On failure the extent's writes stay issued (and the extent
            // dirty), so a later flush retries; extents already fenced in
            // this call keep their persistence.
            self.core.disk.flush_extent(extent)?;
            inner.counters.flushes.inc();
            inner.counters.extents_fenced.inc();
            let ids = inner.issued.remove(&extent).expect("dirty extent present");
            inner.issued_total -= ids.len();
            for id in ids {
                if let NodeKind::Write { state, .. } = &mut inner.nodes[id].kind {
                    *state = WriteState::Persisted;
                }
                Self::resolve(inner, id);
            }
        }
        Ok(())
    }

    /// Repeatedly issues ready writes and flushes until quiescent: no
    /// pending write is ready (all remaining ones wait on unsealed
    /// promises or lost nodes).
    pub fn pump(&self) -> Result<(), IoError> {
        loop {
            let n = self.issue_ready(usize::MAX)?;
            // Flushing can make further pending writes ready (their
            // dependencies just persisted), so only stop once a round
            // neither issued nor flushed anything.
            let had_issued = self.issued_count() > 0;
            self.flush_issued()?;
            if n == 0 && !had_issued {
                return Ok(());
            }
        }
    }

    /// Switches how writeback is driven. Entering
    /// [`WritebackMode::Background`] starts the pump (a std thread outside
    /// checked executions, a checker-controlled task inside one); leaving
    /// it stops and joins the pump. Queued work is never lost — anything
    /// the background pump did not get to is picked up by the next
    /// explicit pump.
    pub fn set_writeback_mode(&self, mode: WritebackMode) {
        self.stop_worker();
        let worker = match mode {
            WritebackMode::Deterministic => None,
            WritebackMode::Background(cfg) => Some(self.spawn_worker(cfg)),
        };
        {
            let mut ctl = self.core.pump_ctl.lock();
            ctl.mode = mode;
            ctl.worker = worker;
        }
        if matches!(mode, WritebackMode::Background(_)) {
            // Cover work submitted before the pump existed.
            self.core.signal_pump();
        }
    }

    /// The current writeback mode.
    pub fn writeback_mode(&self) -> WritebackMode {
        self.core.pump_ctl.lock().mode
    }

    /// Stops the background pump (reverting to
    /// [`WritebackMode::Deterministic`]) and pumps until quiescent.
    /// Checkers running in `Background` mode must call this before
    /// asserting — and before the checked execution ends, so no pump task
    /// outlives it.
    pub fn quiesce(&self) -> Result<(), IoError> {
        self.stop_worker();
        self.core.pump_ctl.lock().mode = WritebackMode::Deterministic;
        self.pump()
    }

    fn spawn_worker(&self, cfg: WritebackConfig) -> PumpWorker {
        let weak = Arc::downgrade(&self.core);
        if shardstore_conc::is_controlled() {
            let shared = Arc::new(ControlledPump {
                state: Mutex::new(ControlledPumpState { signals: 0, shutdown: false }),
                cv: Condvar::new(),
            });
            let worker_shared = Arc::clone(&shared);
            let handle =
                shardstore_conc::thread::spawn(move || controlled_pump_loop(weak, worker_shared));
            PumpWorker::Controlled { shared, handle }
        } else {
            let (tx, rx) = crossbeam::channel::unbounded();
            let handle = std::thread::spawn(move || std_pump_loop(weak, rx, cfg));
            PumpWorker::Std { tx, handle }
        }
    }

    fn stop_worker(&self) {
        let worker = self.core.pump_ctl.lock().worker.take();
        match worker {
            None => {}
            Some(PumpWorker::Std { tx, handle }) => {
                let _ = tx.send(PumpSignal::Shutdown);
                let _ = handle.join();
            }
            Some(PumpWorker::Controlled { shared, handle }) => {
                {
                    let mut st = shared.state.lock();
                    st.shutdown = true;
                    shared.cv.notify_all();
                }
                let _ = handle.join();
            }
        }
    }

    /// Sets how many immediate in-call retries a transient (`Injected`)
    /// write failure gets before `issue_ready` gives up, requeues the
    /// batch, and surfaces the error. Zero disables in-call retry (the
    /// failed batch is still requeued for the next pump, the pre-retry
    /// behavior).
    pub fn set_retry_budget(&self, budget: u32) {
        self.core.inner.lock().retry_budget = budget;
    }

    /// Permanently fails every not-yet-persisted write targeting
    /// `extent`: pending and issued writes are marked `Lost` (they can
    /// never become persistent) and leave the queues. Extent quarantine
    /// calls this once an extent is known bad — its queued writes will
    /// never succeed, and leaving them `Pending` would wedge everything
    /// ordered after them (most damagingly the shared superblock write).
    /// Returns how many writes were failed.
    pub fn fail_extent_writes(&self, extent: ExtentId) -> usize {
        let mut guard = self.core.inner.lock();
        let inner = &mut *guard;
        let mut failed = 0usize;
        let mut lost_nodes: Vec<NodeId> = Vec::new();
        let pending_ids: Vec<NodeId> = inner.pending.iter().copied().collect();
        for id in pending_ids {
            if let NodeKind::Write { extent: e, state, data, .. } = &mut inner.nodes[id].kind {
                if *e == extent && *state == WriteState::Pending {
                    *state = WriteState::Lost;
                    *data = None;
                    failed += 1;
                    lost_nodes.push(id);
                }
            }
        }
        // Issued-but-unflushed writes on the extent can never be fenced
        // (the flush would keep failing), so they are lost too.
        if let Some(ids) = inner.issued.remove(&extent) {
            inner.issued_total -= ids.len();
            for id in ids {
                if let NodeKind::Write { state, .. } = &mut inner.nodes[id].kind {
                    *state = WriteState::Lost;
                }
                failed += 1;
                lost_nodes.push(id);
            }
        }
        for id in lost_nodes {
            inner.obs.trace().event(TraceEvent::WriteLost { node: id as u64 });
        }
        // Lost nodes drop out of the submission-order queue (and the
        // ready queue skips them via the staleness re-check).
        Self::drop_issued_from_pending(inner);
        inner.counters.writes_failed.add(failed as u64);
        failed
    }

    /// Detaches *ordering* edges onto `Lost` writes from a still-pending
    /// write, recursing through unshared sealed joins (a join some other
    /// node still waits on, or an unsealed promise, is left alone). This
    /// is how the pending superblock write survives extent quarantine:
    /// its edges onto appends that went down with the extent are pruned
    /// in place — keeping its slot, generation, and amended table —
    /// instead of abandoning it, which would burn the slot and let a
    /// torn replacement write destroy the newest durable superblock
    /// generation. Client durability handles are untouched: the lost
    /// writes themselves stay `Lost` forever, so a put whose data was
    /// lost still never acknowledges. Returns how many edges were
    /// detached.
    pub fn prune_doomed_deps(&self, dep: &Dependency) -> usize {
        let Some(root) = dep.node else { return 0 };
        let mut guard = self.core.inner.lock();
        let inner = &mut *guard;
        if !matches!(
            &inner.nodes[root].kind,
            NodeKind::Write { state: WriteState::Pending, .. }
        ) {
            return 0;
        }
        // Collect the prunable subgraph: the root write plus sealed joins
        // reachable through it that nothing else waits on (their single
        // waiter is the node we came from, so resolving them early is
        // invisible outside this chain).
        let mut order: Vec<NodeId> = Vec::new();
        let mut visit = vec![root];
        while let Some(n) = visit.pop() {
            if order.contains(&n) {
                continue;
            }
            order.push(n);
            for &d in &inner.nodes[n].deps {
                if matches!(&inner.nodes[d].kind, NodeKind::Join { sealed: true })
                    && !inner.nodes[d].persistent_memo
                    && inner.nodes[d].waiters.len() <= 1
                {
                    visit.push(d);
                }
            }
        }
        let mut pruned = 0usize;
        // Deepest joins first, so a join freed of its last blocker
        // resolves before its parent is examined and the readiness
        // cascade runs through the normal event machinery.
        for &n in order.iter().rev() {
            let deps = inner.nodes[n].deps.clone();
            for d in deps {
                if !matches!(
                    &inner.nodes[d].kind,
                    NodeKind::Write { state: WriteState::Lost, .. }
                ) {
                    continue;
                }
                inner.nodes[n].deps.retain(|&x| x != d);
                if let Some(pos) = inner.nodes[d].waiters.iter().position(|&w| w == n) {
                    inner.nodes[d].waiters.remove(pos);
                    inner.nodes[n].unresolved -= 1;
                }
                pruned += 1;
            }
            if inner.nodes[n].unresolved == 0 {
                match &inner.nodes[n].kind {
                    NodeKind::Join { sealed: true } => Self::resolve(inner, n),
                    NodeKind::Write { state: WriteState::Pending, .. }
                        if !inner.ready.contains(&n) =>
                    {
                        inner.ready.push_back(n);
                    }
                    _ => {}
                }
            }
        }
        drop(guard);
        if pruned > 0 {
            self.core.signal_pump();
        }
        pruned
    }

    /// True if the subgraph below `start` contains a lost write that no
    /// memoized-persistent node shadows — i.e. the node can never resolve.
    fn subtree_doomed(inner: &Inner, start: NodeId) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) || inner.nodes[n].persistent_memo {
                continue;
            }
            if matches!(&inner.nodes[n].kind, NodeKind::Write { state: WriteState::Lost, .. }) {
                return true;
            }
            stack.extend(inner.nodes[n].deps.iter().copied());
        }
        false
    }

    /// Cuts, for **every** pending write, direct dependency edges whose
    /// subgraph can never resolve (it contains a lost write). Called after
    /// an extent quarantine: without this, a write wedged on a doomed
    /// dependency wedges everything ordered after it — in particular the
    /// coalesced superblock write, and with it the entire node.
    ///
    /// Only the *edge* is removed. A shared dependency node (e.g. a
    /// client durability join containing the lost write) is never
    /// resolved by this: its other waiters — acknowledgement checks —
    /// still see it unresolved forever, which is exactly the no-lost-ack
    /// guarantee. The unwedged write may persist state that references
    /// data which never landed; readers of such references get a
    /// `NotFound`/`Degraded` error, never wrong bytes.
    pub fn prune_doomed_pending(&self) -> usize {
        let mut guard = self.core.inner.lock();
        let inner = &mut *guard;
        let writes: Vec<NodeId> = inner.pending.iter().copied().collect();
        let mut pruned = 0usize;
        for w in writes {
            if !matches!(
                &inner.nodes[w].kind,
                NodeKind::Write { state: WriteState::Pending, .. }
            ) {
                continue;
            }
            let deps = inner.nodes[w].deps.clone();
            for d in deps {
                if inner.nodes[d].persistent_memo || !Self::subtree_doomed(inner, d) {
                    continue;
                }
                inner.nodes[w].deps.retain(|&x| x != d);
                if let Some(pos) = inner.nodes[d].waiters.iter().position(|&x| x == w) {
                    inner.nodes[d].waiters.remove(pos);
                    inner.nodes[w].unresolved -= 1;
                }
                pruned += 1;
            }
            if inner.nodes[w].unresolved == 0 && !inner.ready.contains(&w) {
                inner.ready.push_back(w);
            }
        }
        drop(guard);
        if pruned > 0 {
            self.core.signal_pump();
        }
        pruned
    }

    /// Simulates a fail-stop crash: pending writes are dropped, issued
    /// writes survive at page granularity per `plan` (via
    /// [`Disk::crash`]), and neither can ever become persistent.
    pub fn crash(&self, plan: &CrashPlan) {
        let mut guard = self.core.inner.lock();
        let inner = &mut *guard;
        let pending = std::mem::take(&mut inner.pending);
        for n in pending {
            if let NodeKind::Write { state, data, .. } = &mut inner.nodes[n].kind {
                *state = WriteState::Lost;
                *data = None;
            }
            inner.counters.writes_lost_pending.inc();
            inner.obs.trace().event(TraceEvent::WriteLost { node: n as u64 });
        }
        inner.ready.clear();
        let issued = std::mem::take(&mut inner.issued);
        inner.issued_total = 0;
        for ids in issued.into_values() {
            for n in ids {
                if let NodeKind::Write { state, .. } = &mut inner.nodes[n].kind {
                    *state = WriteState::Lost;
                }
                inner.counters.writes_lost_issued.inc();
                inner.obs.trace().event(TraceEvent::WriteLost { node: n as u64 });
            }
        }
        self.core.disk.crash(plan);
    }

    /// Number of pending (unissued) writes.
    pub fn pending_count(&self) -> usize {
        self.core.inner.lock().pending.len()
    }

    /// Number of issued-but-unflushed writes.
    pub fn issued_count(&self) -> usize {
        self.core.inner.lock().issued_total
    }

    /// Reads one `sched.*` counter from the observability registry (the
    /// source of truth for scheduler statistics).
    pub fn counter(&self, name: &str) -> u64 {
        self.core.obs.registry().counter(name).get()
    }

    /// Point-in-time count of writes issueable right now. Also refreshes
    /// the `sched.queue_depth` gauge so metrics snapshots stay current.
    pub fn queue_depth(&self) -> u64 {
        let inner = self.core.inner.lock();
        let depth =
            inner.ready.iter().filter(|&&id| Self::is_ready_write(&inner, id)).count() as u64;
        inner.counters.queue_depth.set(depth as i64);
        depth
    }

    /// Debug rendering of every pending write and the state of its
    /// dependency subgraph (for diagnosing stuck writebacks).
    pub fn debug_pending(&self) -> Vec<String> {
        let inner = self.core.inner.lock();
        inner
            .pending
            .iter()
            .map(|&id| {
                let (extent, offset, len) = match &inner.nodes[id].kind {
                    NodeKind::Write { extent, offset, len, .. } => (extent.0, *offset, *len),
                    NodeKind::Join { .. } => (u32::MAX, 0, 0),
                };
                let blocked: Vec<String> = inner.nodes[id]
                    .deps
                    .iter()
                    .filter(|d| !inner.nodes[**d].persistent_memo)
                    .map(|d| Self::describe_node(&inner, *d))
                    .collect();
                format!("write #{id} ext {extent} off {offset} len {len}: blocked on {blocked:?}")
            })
            .collect()
    }

    fn describe_node(inner: &Inner, id: NodeId) -> String {
        match &inner.nodes[id].kind {
            NodeKind::Write { extent, offset, state, .. } => {
                format!("#{id} write ext {} off {offset} [{state:?}]", extent.0)
            }
            NodeKind::Join { sealed } => {
                let deps = &inner.nodes[id].deps;
                format!("#{id} join(sealed={sealed}, deps={deps:?})")
            }
        }
    }
}

/// The std-thread background pump: waits for a submission signal, absorbs
/// further signals within the batch window, then pumps the scheduler.
/// Exits on shutdown, channel disconnect, or the scheduler being dropped.
fn std_pump_loop(
    core: Weak<SchedCore>,
    rx: crossbeam::channel::Receiver<PumpSignal>,
    cfg: WritebackConfig,
) {
    use crossbeam::channel::RecvTimeoutError;
    loop {
        match rx.recv() {
            Ok(PumpSignal::Work) => {}
            Ok(PumpSignal::Shutdown) | Err(_) => return,
        }
        let mut batched = 1usize;
        while batched < cfg.max_batch {
            match rx.recv_timeout(cfg.batch_window) {
                Ok(PumpSignal::Work) => batched += 1,
                Ok(PumpSignal::Shutdown) => return,
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
        let Some(core) = core.upgrade() else { return };
        // Transient injected failures are retried on the next signal; the
        // failed writes stay queued either way.
        let _ = IoScheduler { core }.pump();
    }
}

/// The checker-controlled background pump: same contract as
/// [`std_pump_loop`], but signalled through controlled sync primitives so
/// the model checker owns every interleaving. No batch window — wall-clock
/// time does not exist inside a checked execution.
fn controlled_pump_loop(core: Weak<SchedCore>, shared: Arc<ControlledPump>) {
    loop {
        {
            let mut st =
                shared.cv.wait_while(shared.state.lock(), |s| s.signals == 0 && !s.shutdown);
            if st.shutdown {
                return;
            }
            st.signals = 0;
        }
        let Some(core) = core.upgrade() else { return };
        let _ = IoScheduler { core }.pump();
    }
}

impl Dependency {
    /// Returns true once the operation this dependency represents — and
    /// everything it transitively depends on — has been persisted to disk.
    /// O(1): persistence is resolved eagerly by completion events.
    pub fn is_persistent(&self) -> bool {
        match self.node {
            None => true,
            Some(n) => self.core.inner.lock().nodes[n].persistent_memo,
        }
    }

    /// True if this dependency can never become persistent: it is, or
    /// transitively depends on, a write lost to a crash or failed by
    /// extent quarantine. Unsealed promises are not doomed — they may
    /// still be sealed onto live dependencies. The complement of
    /// [`Dependency::is_persistent`] is three-valued (pending work is
    /// neither persistent nor doomed); this resolves the "never" third.
    pub fn is_doomed(&self) -> bool {
        let Some(root) = self.node else { return false };
        let inner = self.core.inner.lock();
        if inner.nodes[root].persistent_memo {
            return false;
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) || inner.nodes[n].persistent_memo {
                continue;
            }
            if matches!(&inner.nodes[n].kind, NodeKind::Write { state: WriteState::Lost, .. }) {
                return true;
            }
            stack.extend(inner.nodes[n].deps.iter().copied());
        }
        false
    }

    /// The scheduler node id this handle points at, for trace-event
    /// correlation (`None` for the empty dependency). Harnesses emit
    /// [`shardstore_obs::TraceEvent::Acked`] with this id so the
    /// acked-durability oracle can tie acknowledgements back to the
    /// `WritePersisted` events of the node's cone.
    pub fn trace_node(&self) -> Option<u64> {
        self.node.map(|n| n as u64)
    }

    /// True if both handles point at the same graph node (or both are the
    /// empty dependency).
    pub fn same_node(&self, other: &Dependency) -> bool {
        Arc::ptr_eq(&self.core, &other.core) && self.node == other.node
    }

    /// Combines two dependencies: the result persists when both have.
    pub fn and(&self, other: &Dependency) -> Dependency {
        debug_assert!(Arc::ptr_eq(&self.core, &other.core), "dependency from another scheduler");
        match (self.node, other.node) {
            (None, _) => other.clone(),
            (_, None) => self.clone(),
            (Some(a), Some(b)) => {
                let mut guard = self.core.inner.lock();
                let inner = &mut *guard;
                let id = inner.nodes.len();
                inner.nodes.push(Node {
                    kind: NodeKind::Join { sealed: true },
                    deps: vec![a, b],
                    waiters: Vec::new(),
                    unresolved: 0,
                    persistent_memo: false,
                });
                IoScheduler::register_deps(inner, id);
                if inner.nodes[id].unresolved == 0 {
                    IoScheduler::resolve(inner, id);
                }
                Dependency { core: Arc::clone(&self.core), node: Some(id) }
            }
        }
    }
}

impl Promise {
    /// Adds a dependency to the promise.
    ///
    /// # Panics
    ///
    /// Panics if the promise has already been sealed.
    pub fn add_dep(&self, dep: &Dependency) {
        let id = self.dep.node.expect("promise has a node");
        let mut guard = self.dep.core.inner.lock();
        let inner = &mut *guard;
        match &inner.nodes[id].kind {
            NodeKind::Join { sealed: false } => {}
            _ => panic!("add_dep on a sealed promise"),
        }
        if let Some(d) = dep.node {
            inner.nodes[id].deps.push(d);
            if !inner.nodes[d].persistent_memo {
                inner.nodes[d].waiters.push(id);
                inner.nodes[id].unresolved += 1;
            }
        }
    }

    /// Seals the promise: no further dependencies may be added, and it can
    /// now become persistent once its dependencies do. Sealing can unblock
    /// writes waiting on the promise, so it also nudges the background
    /// pump when one is running.
    pub fn seal(&self) {
        let id = self.dep.node.expect("promise has a node");
        {
            let mut guard = self.dep.core.inner.lock();
            let inner = &mut *guard;
            let newly_sealed = match &mut inner.nodes[id].kind {
                NodeKind::Join { sealed } if !*sealed => {
                    *sealed = true;
                    true
                }
                _ => false,
            };
            if newly_sealed && inner.nodes[id].unresolved == 0 {
                IoScheduler::resolve(inner, id);
            }
        }
        self.dep.core.signal_pump();
    }

    /// The promise's dependency handle (pollable by clients immediately).
    pub fn dependency(&self) -> Dependency {
        self.dep.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shardstore_vdisk::Geometry;

    fn setup() -> (Arc<Disk>, IoScheduler) {
        let disk = Disk::new(Geometry::small());
        let sched = IoScheduler::new(Arc::clone(&disk));
        (disk, sched)
    }

    #[test]
    fn none_dependency_is_always_persistent() {
        let (_d, s) = setup();
        assert!(s.none().is_persistent());
    }

    #[test]
    fn write_is_not_persistent_until_pumped() {
        let (disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"abc".to_vec(), &none);
        assert!(!dep.is_persistent());
        s.pump().unwrap();
        assert!(dep.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 3).unwrap(), b"abc");
    }

    #[test]
    fn dependent_write_waits_for_its_dependency() {
        let (disk, s) = setup();
        let none = s.none();
        let first = s.submit_write(ExtentId(1), 0, b"11".to_vec(), &none);
        let second = s.submit_write(ExtentId(2), 0, b"22".to_vec(), &first);
        // Issue one round without flushing: only `first` can be issued;
        // `second` must wait for `first` to PERSIST, not merely issue.
        let n = s.issue_ready(usize::MAX).unwrap();
        assert_eq!(n, 1);
        assert_eq!(s.pending_count(), 1);
        // The dependent write is not on disk at all yet.
        assert_eq!(disk.read(ExtentId(2), 0, 2).unwrap(), vec![0, 0]);
        s.flush_issued().unwrap();
        assert!(first.is_persistent());
        assert!(!second.is_persistent());
        s.pump().unwrap();
        assert!(second.is_persistent());
        assert_eq!(disk.read(ExtentId(2), 0, 2).unwrap(), b"22");
    }

    #[test]
    fn crash_respects_dependency_order() {
        let (disk, s) = setup();
        let none = s.none();
        let first = s.submit_write(ExtentId(1), 0, b"11".to_vec(), &none);
        let second = s.submit_write(ExtentId(2), 0, b"22".to_vec(), &first);
        // Crash before anything is pumped: both lost, disk empty.
        s.crash(&CrashPlan::KeepAll);
        assert!(!first.is_persistent());
        assert!(!second.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 2).unwrap(), vec![0, 0]);
        assert_eq!(disk.read(ExtentId(2), 0, 2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn crash_after_issue_can_keep_pages_without_persistence() {
        let (disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"xy".to_vec(), &none);
        s.issue_ready(usize::MAX).unwrap();
        // Crash keeping the cached page: data readable, dependency not
        // persistent (the one-directional persistence contract).
        s.crash(&CrashPlan::KeepAll);
        assert!(!dep.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 2).unwrap(), b"xy");
    }

    #[test]
    fn lost_write_never_becomes_persistent() {
        let (_disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"z".to_vec(), &none);
        s.crash(&CrashPlan::LoseAll);
        s.pump().unwrap();
        assert!(!dep.is_persistent());
    }

    #[test]
    fn join_requires_all_parts() {
        let (_disk, s) = setup();
        let none = s.none();
        let a = s.submit_write(ExtentId(1), 0, b"a".to_vec(), &none);
        s.pump().unwrap();
        let b = s.submit_write(ExtentId(2), 0, b"b".to_vec(), &none);
        let joined = a.and(&b);
        assert!(!joined.is_persistent());
        s.pump().unwrap();
        assert!(joined.is_persistent());
    }

    #[test]
    fn and_with_none_is_identity() {
        let (_disk, s) = setup();
        let none = s.none();
        let a = s.submit_write(ExtentId(1), 0, b"a".to_vec(), &none);
        let j = a.and(&s.none());
        let j2 = s.none().and(&a);
        assert!(!j.is_persistent());
        assert!(!j2.is_persistent());
        s.pump().unwrap();
        assert!(j.is_persistent() && j2.is_persistent());
    }

    #[test]
    fn promise_persists_only_after_seal() {
        let (_disk, s) = setup();
        let none = s.none();
        let p = s.promise();
        let w = s.submit_write(ExtentId(1), 0, b"w".to_vec(), &none);
        p.add_dep(&w);
        s.pump().unwrap();
        assert!(!p.dependency().is_persistent(), "unsealed promise must not be persistent");
        p.seal();
        assert!(p.dependency().is_persistent());
    }

    #[test]
    fn empty_sealed_promise_is_persistent() {
        let (_disk, s) = setup();
        let p = s.promise();
        p.seal();
        assert!(p.dependency().is_persistent());
    }

    #[test]
    fn writes_blocked_on_unsealed_promise_do_not_issue() {
        let (disk, s) = setup();
        let p = s.promise();
        let w = s.submit_write(ExtentId(1), 0, b"q".to_vec(), &p.dependency());
        s.pump().unwrap();
        assert!(!w.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 1).unwrap(), vec![0]);
        p.seal();
        s.pump().unwrap();
        assert!(w.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 1).unwrap(), b"q");
    }

    #[test]
    fn contiguous_writes_coalesce_into_one_io() {
        let (disk, s) = setup();
        let none = s.none();
        s.submit_write(ExtentId(1), 0, b"aa".to_vec(), &none);
        s.submit_write(ExtentId(1), 2, b"bb".to_vec(), &none);
        s.submit_write(ExtentId(1), 4, b"cc".to_vec(), &none);
        s.pump().unwrap();
        assert_eq!(s.counter("sched.writes_submitted"), 3);
        assert_eq!(s.counter("sched.ios_issued"), 1, "three contiguous writes should be one IO");
        assert_eq!(s.counter("sched.writes_coalesced"), 2);
        assert_eq!(disk.read(ExtentId(1), 0, 6).unwrap(), b"aabbcc");
    }

    #[test]
    fn barrier_mode_defeats_coalescing() {
        let (_disk, s) = setup();
        s.set_barrier_mode(true);
        let none = s.none();
        s.submit_write(ExtentId(1), 0, b"aa".to_vec(), &none);
        s.submit_write(ExtentId(1), 2, b"bb".to_vec(), &none);
        s.pump().unwrap();
        assert_eq!(s.counter("sched.ios_issued"), 2);
        assert_eq!(s.counter("sched.writes_coalesced"), 0);
    }

    #[test]
    fn non_contiguous_writes_do_not_coalesce() {
        let (_disk, s) = setup();
        let none = s.none();
        s.submit_write(ExtentId(1), 0, b"aa".to_vec(), &none);
        s.submit_write(ExtentId(1), 10, b"bb".to_vec(), &none);
        s.pump().unwrap();
        assert_eq!(s.counter("sched.ios_issued"), 2);
    }

    #[test]
    fn amend_pending_write_replaces_payload() {
        let (disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"old".to_vec(), &none);
        assert!(s.amend_pending_write(&dep, b"new".to_vec(), &[]));
        s.pump().unwrap();
        assert_eq!(disk.read(ExtentId(1), 0, 3).unwrap(), b"new");
    }

    #[test]
    fn amend_fails_after_issue() {
        let (_disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"old".to_vec(), &none);
        s.issue_ready(usize::MAX).unwrap();
        assert!(!s.amend_pending_write(&dep, b"new".to_vec(), &[]));
    }

    #[test]
    fn amend_extra_deps_are_respected() {
        let (_disk, s) = setup();
        let none = s.none();
        let gate = s.promise();
        let dep = s.submit_write(ExtentId(1), 0, b"v1".to_vec(), &none);
        assert!(s.amend_pending_write(&dep, b"v2".to_vec(), &[gate.dependency()]));
        s.pump().unwrap();
        assert!(!dep.is_persistent(), "amended write must now wait on the gate");
        gate.seal();
        s.pump().unwrap();
        assert!(dep.is_persistent());
    }

    #[test]
    fn transient_write_failure_is_retried_in_call() {
        let (disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"x".to_vec(), &none);
        disk.inject_fail_once(ExtentId(1));
        // The bounded in-call retry absorbs the transient failure: the
        // batch issues without surfacing an error.
        assert_eq!(s.issue_ready(usize::MAX).unwrap(), 1);
        s.flush_issued().unwrap();
        assert!(dep.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 1).unwrap(), b"x");
        assert_eq!(s.counter("sched.retries"), 1);
        assert_eq!(s.counter("sched.retry_exhausted"), 0);
        assert_eq!(s.counter("sched.writes_retried"), 0, "nothing was requeued");
    }

    #[test]
    fn transient_failure_with_zero_budget_requeues() {
        let (disk, s) = setup();
        s.set_retry_budget(0);
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"x".to_vec(), &none);
        disk.inject_fail_once(ExtentId(1));
        assert!(s.issue_ready(usize::MAX).is_err());
        assert!(!dep.is_persistent());
        assert_eq!(s.pending_count(), 1, "the failed write stays queued");
        // The next pump retries and succeeds.
        s.pump().unwrap();
        assert!(dep.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 1).unwrap(), b"x");
        assert_eq!(s.counter("sched.writes_retried"), 1);
        assert_eq!(s.counter("sched.retries"), 0);
    }

    #[test]
    fn transient_burst_exhausts_retry_budget_then_recovers() {
        let (disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"x".to_vec(), &none);
        // One more transient failure than the first attempt plus the
        // default budget covers: the in-call retry is exhausted, the
        // write is requeued, and the *next* pump succeeds (the burst is
        // spent).
        disk.inject_fail_times(ExtentId(1), DEFAULT_RETRY_BUDGET + 1);
        assert!(matches!(s.issue_ready(usize::MAX), Err(IoError::Injected { .. })));
        assert!(!dep.is_persistent());
        assert_eq!(s.counter("sched.retries"), u64::from(DEFAULT_RETRY_BUDGET));
        assert_eq!(s.counter("sched.retry_exhausted"), 1);
        s.pump().unwrap();
        assert!(dep.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 1).unwrap(), b"x");
    }

    #[test]
    fn retry_keeps_dependency_edges_and_batching() {
        let (disk, s) = setup();
        let none = s.none();
        let gate = s.promise();
        let a = s.submit_write(ExtentId(1), 0, b"aa".to_vec(), &none);
        let b = s.submit_write(ExtentId(1), 2, b"bb".to_vec(), &none);
        let blocked = s.submit_write(ExtentId(2), 0, b"zz".to_vec(), &gate.dependency());
        disk.inject_fail_once(ExtentId(1));
        s.pump().unwrap();
        // The coalesced two-write IO was retried as one IO: the retry
        // preserves group-commit batching.
        assert!(a.is_persistent() && b.is_persistent());
        assert_eq!(s.counter("sched.ios_issued"), 1);
        assert_eq!(s.counter("sched.writes_coalesced"), 1);
        assert_eq!(s.counter("sched.retries"), 1);
        // The gated write still respects its dependency edge.
        assert!(!blocked.is_persistent());
        gate.seal();
        s.pump().unwrap();
        assert!(blocked.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 4).unwrap(), b"aabb");
    }

    #[test]
    fn permanent_failure_burns_no_retries() {
        let (disk, s) = setup();
        let none = s.none();
        let _dep = s.submit_write(ExtentId(1), 0, b"x".to_vec(), &none);
        disk.inject_fail_always(ExtentId(1));
        assert!(matches!(s.issue_ready(usize::MAX), Err(IoError::Failed { .. })));
        assert_eq!(s.counter("sched.retries"), 0, "permanent faults are not retried");
        assert_eq!(s.counter("sched.retry_exhausted"), 0);
    }

    #[test]
    fn fail_extent_writes_loses_pending_and_issued() {
        let (disk, s) = setup();
        let none = s.none();
        let issued = s.submit_write(ExtentId(1), 0, b"aa".to_vec(), &none);
        s.issue_ready(usize::MAX).unwrap();
        let gate = s.promise();
        let pending = s.submit_write(ExtentId(1), 2, b"bb".to_vec(), &gate.dependency());
        let other = s.submit_write(ExtentId(2), 0, b"cc".to_vec(), &gate.dependency());
        assert_eq!(s.fail_extent_writes(ExtentId(1)), 2);
        assert_eq!(s.counter("sched.writes_failed"), 2);
        // The other extent's write is untouched and still completes.
        gate.seal();
        s.pump().unwrap();
        assert!(!issued.is_persistent());
        assert!(!pending.is_persistent());
        assert!(other.is_persistent());
        assert_eq!(disk.read(ExtentId(2), 0, 2).unwrap(), b"cc");
        assert_eq!(s.issued_count(), 0);
    }

    #[test]
    fn prune_doomed_deps_unwedges_a_pending_write() {
        let (disk, s) = setup();
        let none = s.none();
        let doomed = s.submit_write(ExtentId(1), 0, b"dd".to_vec(), &none);
        let live = s.submit_write(ExtentId(2), 0, b"ll".to_vec(), &none);
        // A write gated on join(doomed, live) — the record_update shape.
        let gate = s.join(&[doomed.clone(), live.clone()]);
        let gated = s.submit_write(ExtentId(3), 0, b"gg".to_vec(), &gate);
        s.fail_extent_writes(ExtentId(1));
        s.pump().unwrap();
        assert!(live.is_persistent());
        assert!(!gated.is_persistent(), "wedged on the lost write");
        assert!(s.prune_doomed_deps(&gated) > 0);
        s.pump().unwrap();
        assert!(gated.is_persistent());
        assert_eq!(disk.read(ExtentId(3), 0, 2).unwrap(), b"gg");
        // The lost write itself still never acknowledges.
        assert!(!doomed.is_persistent());
    }

    #[test]
    fn prune_leaves_shared_joins_alone() {
        let (_disk, s) = setup();
        let none = s.none();
        let doomed = s.submit_write(ExtentId(1), 0, b"d".to_vec(), &none);
        s.fail_extent_writes(ExtentId(1));
        let shared = s.join(std::slice::from_ref(&doomed));
        // Two writes wait on the same join: it is shared, so pruning one
        // waiter must not resolve it out from under the other.
        let w1 = s.submit_write(ExtentId(2), 0, b"1".to_vec(), &shared);
        let w2 = s.submit_write(ExtentId(3), 0, b"2".to_vec(), &shared);
        assert_eq!(s.prune_doomed_deps(&w1), 0);
        s.pump().unwrap();
        assert!(!w1.is_persistent());
        assert!(!w2.is_persistent());
    }

    #[test]
    fn permanent_write_failure_keeps_erroring() {
        let (disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"x".to_vec(), &none);
        disk.inject_fail_always(ExtentId(1));
        for _ in 0..3 {
            assert!(s.pump().is_err());
            assert!(!dep.is_persistent());
        }
        disk.clear_failures();
        s.pump().unwrap();
        assert!(dep.is_persistent());
    }

    #[test]
    fn long_dependency_chains_do_not_overflow() {
        let (_disk, s) = setup();
        let mut dep = s.none();
        for i in 0..5_000 {
            dep = s.submit_write(ExtentId(1), (i % 100) as usize, vec![1], &dep);
        }
        s.pump().unwrap();
        assert!(dep.is_persistent());
    }

    #[test]
    fn pending_and_issued_counts() {
        let (_disk, s) = setup();
        let none = s.none();
        s.submit_write(ExtentId(1), 0, b"a".to_vec(), &none);
        let gate = s.promise();
        s.submit_write(ExtentId(2), 0, b"b".to_vec(), &gate.dependency());
        assert_eq!(s.pending_count(), 2);
        s.issue_ready(usize::MAX).unwrap();
        assert_eq!(s.pending_count(), 1);
        assert_eq!(s.issued_count(), 1);
        s.flush_issued().unwrap();
        assert_eq!(s.issued_count(), 0);
    }

    // --- group commit -----------------------------------------------------

    #[test]
    fn flush_fences_only_dirty_extents() {
        let (disk, s) = setup();
        // A permanently failing extent the workload never touches: the old
        // whole-disk barrier tripped over it; per-extent fencing must not.
        disk.inject_fail_always(ExtentId(3));
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"aa".to_vec(), &none);
        s.pump().unwrap();
        assert!(dep.is_persistent());
        assert_eq!(s.counter("sched.extents_fenced"), 1);
    }

    #[test]
    fn flush_counts_one_fence_per_dirty_extent() {
        let (disk, s) = setup();
        let none = s.none();
        s.submit_write(ExtentId(1), 0, b"a".to_vec(), &none);
        s.submit_write(ExtentId(2), 0, b"b".to_vec(), &none);
        s.submit_write(ExtentId(2), 1, b"c".to_vec(), &none);
        s.pump().unwrap();
        assert_eq!(s.counter("sched.extents_fenced"), 2);
        assert_eq!(s.counter("sched.batches_issued"), 1, "all three ready writes form one batch");
        assert_eq!(disk.stats().flushes, 2, "the untouched extents see no flush");
    }

    #[test]
    fn same_extent_batch_coalesces_across_submitters() {
        let (disk, s) = setup();
        let none = s.none();
        // Interleaved submission order across extents; the batch is still
        // grouped per extent and each contiguous range is one IO.
        s.submit_write(ExtentId(1), 0, b"aa".to_vec(), &none);
        s.submit_write(ExtentId(2), 0, b"xx".to_vec(), &none);
        s.submit_write(ExtentId(1), 2, b"bb".to_vec(), &none);
        s.submit_write(ExtentId(2), 2, b"yy".to_vec(), &none);
        s.pump().unwrap();
        assert_eq!(s.counter("sched.ios_issued"), 2, "one IO per extent");
        assert_eq!(s.counter("sched.writes_coalesced"), 2);
        assert_eq!(disk.read(ExtentId(1), 0, 4).unwrap(), b"aabb");
        assert_eq!(disk.read(ExtentId(2), 0, 4).unwrap(), b"xxyy");
    }

    #[test]
    fn readiness_is_event_driven_not_polled() {
        let (_d, s) = setup();
        let gate = s.promise();
        let none = s.none();
        s.submit_write(ExtentId(1), 0, b"a".to_vec(), &none);
        s.submit_write(ExtentId(2), 0, b"b".to_vec(), &gate.dependency());
        assert_eq!(s.queue_depth(), 1, "only the unblocked write is ready");
        gate.seal();
        assert_eq!(s.queue_depth(), 2, "sealing cascades readiness without a pump");
        s.pump().unwrap();
        assert_eq!(s.queue_depth(), 0);
    }

    #[test]
    fn background_writeback_persists_without_explicit_pump() {
        let (disk, s) = setup();
        s.set_writeback_mode(WritebackMode::Background(WritebackConfig {
            batch_window: Duration::from_micros(50),
            max_batch: 8,
        }));
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"bg".to_vec(), &none);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !dep.is_persistent() {
            assert!(std::time::Instant::now() < deadline, "background pump never ran");
            std::thread::yield_now();
        }
        assert_eq!(disk.read(ExtentId(1), 0, 2).unwrap(), b"bg");
        s.quiesce().unwrap();
        assert_eq!(s.writeback_mode(), WritebackMode::Deterministic);
    }

    #[test]
    fn background_pump_wakes_on_seal() {
        let (_d, s) = setup();
        s.set_writeback_mode(WritebackMode::Background(WritebackConfig::default()));
        let gate = s.promise();
        let dep = s.submit_write(ExtentId(1), 0, b"z".to_vec(), &gate.dependency());
        std::thread::sleep(Duration::from_millis(2));
        assert!(!dep.is_persistent());
        gate.seal();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !dep.is_persistent() {
            assert!(std::time::Instant::now() < deadline, "seal did not wake the pump");
            std::thread::yield_now();
        }
        s.quiesce().unwrap();
    }

    #[test]
    fn quiesce_stops_the_pump_and_drains() {
        let (_d, s) = setup();
        s.set_writeback_mode(WritebackMode::Background(WritebackConfig::default()));
        let none = s.none();
        let deps: Vec<_> =
            (0..16).map(|i| s.submit_write(ExtentId(1), i, vec![i as u8], &none)).collect();
        s.quiesce().unwrap();
        assert!(deps.iter().all(|d| d.is_persistent()));
        // After quiesce, new writes stay queued until an explicit pump.
        let d = s.submit_write(ExtentId(2), 0, b"x".to_vec(), &none);
        std::thread::sleep(Duration::from_millis(5));
        assert!(!d.is_persistent());
        s.pump().unwrap();
        assert!(d.is_persistent());
    }
}
