//! Soft-updates crash consistency: run-time dependency graphs and the IO
//! scheduler that enforces them (§2.2 of the paper).
//!
//! ShardStore avoids a write-ahead log by orchestrating the *order* in
//! which writes reach the disk, so that every crash state of the disk is
//! consistent (soft updates). Rather than global reasoning about writeback
//! orderings, crash-consistent orderings are specified *declaratively*: the
//! only way to write to disk is to submit a write to the [`IoScheduler`]
//! together with an input [`Dependency`], and the scheduler guarantees the
//! write is not issued to the disk until the input dependency has been
//! *persisted*. Every submission returns a new `Dependency` that can be
//! combined with others ([`Dependency::and`]) to build richer graphs, and
//! polled with [`Dependency::is_persistent`] — the exact API shape of the
//! paper's `fn append(&self, ..., dep: Dependency) -> Dependency`.
//!
//! Three node kinds make up a dependency graph:
//!
//! - **Write** nodes carry data destined for an extent. They move through
//!   `Pending` (queued, invisible to the disk) → `Issued` (in the disk's
//!   volatile cache) → `Persisted` (flushed). A crash drops pending writes
//!   entirely and may keep any page subset of issued-but-unflushed writes.
//! - **Join** nodes ([`Dependency::and`], [`IoScheduler::join`]) persist
//!   when all their dependencies persist.
//! - **Promise** nodes ([`IoScheduler::promise`]) are joins whose
//!   dependencies are filled in later — e.g. a `put`'s index entry becomes
//!   persistent only once some future LSM flush and metadata write land,
//!   so `put` returns a promise that the flush seals afterwards.
//!
//! The scheduler also implements *write coalescing*: contiguous pending
//! writes to the same extent are merged into one disk IO when issued
//! (Fig. 2's two puts sharing one IO), and pending writes can be *amended*
//! in place ([`IoScheduler::amend_pending_write`]) which is how superblock
//! soft-write-pointer updates from many appends fold into one superblock
//! write.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use shardstore_conc::sync::Mutex;
use shardstore_vdisk::{CrashPlan, Disk, ExtentId, IoError};

/// Index of a node in the scheduler's arena.
type NodeId = usize;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteState {
    Pending,
    Issued,
    Persisted,
    /// Dropped by a crash before persisting, or failed by an injected IO
    /// error. A lost node can never become persistent.
    Lost,
}

#[derive(Debug)]
enum NodeKind {
    Write { extent: ExtentId, offset: usize, len: usize, data: Option<Vec<u8>>, state: WriteState },
    Join { sealed: bool },
}

#[derive(Debug)]
struct Node {
    kind: NodeKind,
    deps: Vec<NodeId>,
    /// Memoized "this node and everything below it has persisted".
    persistent_memo: bool,
}

/// Scheduler statistics, for benches and the coalescing ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Write nodes submitted.
    pub writes_submitted: u64,
    /// Disk IOs actually issued (after coalescing).
    pub ios_issued: u64,
    /// Writes that were merged into a preceding IO.
    pub writes_coalesced: u64,
    /// Flush barriers executed.
    pub flushes: u64,
    /// Writes lost to crashes before being issued.
    pub writes_lost_pending: u64,
    /// Writes lost to crashes after being issued but before flushing.
    pub writes_lost_issued: u64,
    /// Implicit write-after-write ordering edges added for overlapping
    /// pending writes.
    pub waw_dependencies: u64,
    /// Writes re-queued after a transient IO failure.
    pub writes_retried: u64,
}

#[derive(Debug)]
struct Inner {
    nodes: Vec<Node>,
    /// Write nodes not yet issued, in submission order.
    pending: VecDeque<NodeId>,
    /// Write nodes issued to the disk cache but not yet flushed.
    issued: Vec<NodeId>,
    /// When true, every write is flushed individually as it is issued
    /// (the "global barrier" ablation mode — no coalescing benefit).
    barrier_mode: bool,
    stats: SchedulerStats,
}

/// The IO scheduler: the single gateway through which all ShardStore
/// components write to disk.
///
/// Cloning is cheap and shares the underlying scheduler.
#[derive(Clone)]
pub struct IoScheduler {
    core: Arc<SchedCore>,
}

struct SchedCore {
    disk: Arc<Disk>,
    inner: Mutex<Inner>,
}

impl fmt::Debug for IoScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.core.inner.lock();
        f.debug_struct("IoScheduler")
            .field("nodes", &inner.nodes.len())
            .field("pending", &inner.pending.len())
            .field("issued", &inner.issued.len())
            .finish()
    }
}

/// A handle to a dependency-graph node (or the trivially persistent empty
/// dependency). Cheap to clone; combine with [`Dependency::and`]; poll with
/// [`Dependency::is_persistent`].
#[derive(Clone)]
pub struct Dependency {
    core: Arc<SchedCore>,
    node: Option<NodeId>,
}

impl fmt::Debug for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "Dependency({n})"),
            None => write!(f, "Dependency(none)"),
        }
    }
}

/// An unsealed join node: dependencies can be added until [`Promise::seal`]
/// is called; it reports non-persistent until sealed.
#[derive(Debug, Clone)]
pub struct Promise {
    dep: Dependency,
}

impl IoScheduler {
    /// Creates a scheduler over a disk.
    pub fn new(disk: Arc<Disk>) -> Self {
        Self {
            core: Arc::new(SchedCore {
                disk,
                inner: Mutex::new(Inner {
                    nodes: Vec::new(),
                    pending: VecDeque::new(),
                    issued: Vec::new(),
                    barrier_mode: false,
                    stats: SchedulerStats::default(),
                }),
            }),
        }
    }

    /// Enables the write-ahead-log-like ablation mode: every write is
    /// issued and flushed individually, defeating coalescing. Used by the
    /// benches to quantify what soft updates buy (§2.2 motivation).
    pub fn set_barrier_mode(&self, on: bool) {
        self.core.inner.lock().barrier_mode = on;
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.core.disk
    }

    /// The always-persistent empty dependency.
    pub fn none(&self) -> Dependency {
        Dependency { core: Arc::clone(&self.core), node: None }
    }

    /// Submits a write of `data` at `(extent, offset)` that will not be
    /// issued to disk until `dep` has persisted. Returns the write's own
    /// dependency.
    pub fn submit_write(
        &self,
        extent: ExtentId,
        offset: usize,
        data: Vec<u8>,
        dep: &Dependency,
    ) -> Dependency {
        debug_assert!(Arc::ptr_eq(&self.core, &dep.core), "dependency from another scheduler");
        let mut inner = self.core.inner.lock();
        let id = inner.nodes.len();
        let mut deps: Vec<NodeId> = dep.node.into_iter().collect();
        // Write-after-write ordering: a write overlapping a still-pending
        // earlier write to the same bytes must not be issued before it —
        // otherwise dependency readiness can reorder them and the *older*
        // data lands last. This arises when an extent reset reuses space
        // while writes from before the reset are still queued.
        let overlapping: Vec<NodeId> = inner
            .pending
            .iter()
            .copied()
            .filter(|p| {
                matches!(
                    &inner.nodes[*p].kind,
                    NodeKind::Write { extent: e, offset: o, len: l, state, .. }
                        if *state == WriteState::Pending
                            && *e == extent
                            && *o < offset + data.len()
                            && offset < *o + *l
                )
            })
            .collect();
        inner.stats.waw_dependencies += overlapping.len() as u64;
        deps.extend(overlapping);
        inner.nodes.push(Node {
            kind: NodeKind::Write {
                extent,
                offset,
                len: data.len(),
                data: Some(data),
                state: WriteState::Pending,
            },
            deps,
            persistent_memo: false,
        });
        inner.pending.push_back(id);
        inner.stats.writes_submitted += 1;
        Dependency { core: Arc::clone(&self.core), node: Some(id) }
    }

    /// Joins several dependencies: the result persists when all of them
    /// have persisted.
    pub fn join(&self, deps: &[Dependency]) -> Dependency {
        let mut inner = self.core.inner.lock();
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            kind: NodeKind::Join { sealed: true },
            deps: deps.iter().filter_map(|d| d.node).collect(),
            persistent_memo: false,
        });
        Dependency { core: Arc::clone(&self.core), node: Some(id) }
    }

    /// Creates an unsealed promise node (see [`Promise`]).
    pub fn promise(&self) -> Promise {
        let mut inner = self.core.inner.lock();
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            kind: NodeKind::Join { sealed: false },
            deps: Vec::new(),
            persistent_memo: false,
        });
        Promise { dep: Dependency { core: Arc::clone(&self.core), node: Some(id) } }
    }

    /// Amends a still-pending write in place: replaces its payload and adds
    /// extra dependencies. Returns false (without modifying anything) if
    /// the write has already been issued, in which case the caller must
    /// submit a fresh write. This is how per-append superblock updates
    /// coalesce into a single superblock IO (Fig. 2).
    pub fn amend_pending_write(
        &self,
        dep: &Dependency,
        new_data: Vec<u8>,
        extra_deps: &[Dependency],
    ) -> bool {
        let Some(id) = dep.node else { return false };
        let mut inner = self.core.inner.lock();
        let extra: Vec<NodeId> = extra_deps.iter().filter_map(|d| d.node).collect();
        match &mut inner.nodes[id].kind {
            NodeKind::Write { len, data, state: WriteState::Pending, .. } => {
                *len = new_data.len();
                *data = Some(new_data);
            }
            _ => return false,
        }
        inner.nodes[id].deps.extend(extra);
        true
    }

    /// Returns true if `node`'s subgraph is fully persisted, memoizing.
    fn compute_persistent(inner: &mut Inner, node: NodeId) -> bool {
        // Iterative post-order DFS with memoization; dependency graphs can
        // form long chains (one per append), so no recursion.
        if inner.nodes[node].persistent_memo {
            return true;
        }
        let mut stack = vec![(node, false)];
        while let Some((n, expanded)) = stack.pop() {
            if inner.nodes[n].persistent_memo {
                continue;
            }
            let self_ok = match &inner.nodes[n].kind {
                NodeKind::Write { state, .. } => *state == WriteState::Persisted,
                NodeKind::Join { sealed } => *sealed,
            };
            if !self_ok {
                // Not persistent itself; no need to expand below it.
                continue;
            }
            if expanded {
                // All children processed; node is persistent iff all its
                // deps are memoized persistent.
                let all = inner.nodes[n].deps.iter().all(|d| inner.nodes[*d].persistent_memo);
                if all {
                    inner.nodes[n].persistent_memo = true;
                }
            } else {
                stack.push((n, true));
                let deps = inner.nodes[n].deps.clone();
                for d in deps {
                    if !inner.nodes[d].persistent_memo {
                        stack.push((d, false));
                    }
                }
            }
        }
        inner.nodes[node].persistent_memo
    }

    /// Issues up to `max` ready pending writes (writes whose dependencies
    /// have all persisted) into the disk's volatile cache, coalescing
    /// contiguous same-extent writes into single IOs. Returns how many
    /// write nodes were issued.
    ///
    /// On an injected IO failure the failing write is marked lost and the
    /// error is returned; already-issued writes from this call remain
    /// issued.
    pub fn issue_ready(&self, max: usize) -> Result<usize, IoError> {
        let mut inner = self.core.inner.lock();
        let inner = &mut *inner;
        let mut issued = 0usize;
        let mut scanned = 0usize;
        while issued < max && scanned < inner.pending.len() {
            // Find the next ready write, preserving FIFO order among the
            // not-ready ones.
            let idx = (scanned..inner.pending.len()).find(|i| {
                let id = inner.pending[*i];
                let deps = inner.nodes[id].deps.clone();
                deps.iter().all(|d| Self::compute_persistent(inner, *d))
            });
            let Some(idx) = idx else { break };
            scanned = idx;
            let id = inner.pending.remove(idx).expect("index valid");
            let (extent, offset, data) = match &mut inner.nodes[id].kind {
                NodeKind::Write { extent, offset, data, .. } => {
                    (*extent, *offset, data.take().expect("pending write has data"))
                }
                NodeKind::Join { .. } => unreachable!("pending queue holds only writes"),
            };
            // Coalesce: greedily absorb immediately-following ready writes
            // that continue contiguously on the same extent.
            let mut batch = data;
            let mut batch_nodes = vec![id];
            if !inner.barrier_mode {
                while issued + batch_nodes.len() < max && scanned < inner.pending.len() {
                    let next_id = inner.pending[scanned];
                    let contiguous = matches!(
                        &inner.nodes[next_id].kind,
                        NodeKind::Write { extent: e, offset: o, .. }
                            if *e == extent && *o == offset + batch.len()
                    );
                    let ready = contiguous && {
                        let deps = inner.nodes[next_id].deps.clone();
                        deps.iter().all(|d| Self::compute_persistent(inner, *d))
                    };
                    if !ready {
                        break;
                    }
                    inner.pending.remove(scanned).expect("index valid");
                    if let NodeKind::Write { data, .. } = &mut inner.nodes[next_id].kind {
                        batch.extend_from_slice(&data.take().expect("pending write has data"));
                    }
                    batch_nodes.push(next_id);
                    inner.stats.writes_coalesced += 1;
                }
            }
            if std::env::var_os("IO_TRACE").is_some() {
                eprintln!("IO: write ext {} off {} len {} (nodes {:?})", extent.0, offset, batch.len(), batch_nodes);
            }
            match self.core.disk.write(extent, offset, &batch) {
                Ok(()) => {
                    for n in &batch_nodes {
                        if let NodeKind::Write { state, .. } = &mut inner.nodes[*n].kind {
                            *state = WriteState::Issued;
                        }
                        inner.issued.push(*n);
                    }
                    inner.stats.ios_issued += 1;
                    issued += batch_nodes.len();
                    if inner.barrier_mode {
                        self.core.disk.flush_extent(extent)?;
                        inner.stats.flushes += 1;
                        for n in &batch_nodes {
                            if let NodeKind::Write { state, .. } = &mut inner.nodes[*n].kind {
                                *state = WriteState::Persisted;
                            }
                        }
                        inner.issued.clear();
                    }
                }
                Err(e) => {
                    // Transient IO failure: the write stays pending and is
                    // retried on the next pump (a permanently failing
                    // extent keeps erroring and keeps the write queued).
                    // Without the retry, one transient failure would
                    // poison every write that transitively depends on the
                    // failed one.
                    for n in batch_nodes.iter().rev() {
                        if let NodeKind::Write { data, .. } = &mut inner.nodes[*n].kind {
                            debug_assert!(data.is_none());
                        }
                        inner.pending.push_front(*n);
                    }
                    // Restore the batch payload to the individual nodes.
                    let mut pos = 0usize;
                    for n in &batch_nodes {
                        if let NodeKind::Write { len, data, .. } = &mut inner.nodes[*n].kind {
                            *data = Some(batch[pos..pos + *len].to_vec());
                            pos += *len;
                        }
                    }
                    inner.stats.writes_retried += 1;
                    return Err(e);
                }
            }
        }
        Ok(issued)
    }

    /// Reads through the scheduler: disk content overlaid with the data
    /// of pending (not yet issued) writes, in submission order. This is
    /// the read-your-writes view a real system gets from its page cache /
    /// write buffer — without it, data would be unreadable between
    /// submission and writeback.
    pub fn read(&self, extent: ExtentId, offset: usize, len: usize) -> Result<Vec<u8>, IoError> {
        let inner = self.core.inner.lock();
        let mut out = self.core.disk.read(extent, offset, len)?;
        for &id in inner.pending.iter() {
            if let NodeKind::Write { extent: e, offset: o, data: Some(d), .. } =
                &inner.nodes[id].kind
            {
                if *e != extent {
                    continue;
                }
                // Overlap of [o, o+d.len()) with [offset, offset+len).
                let start = (*o).max(offset);
                let end = (o + d.len()).min(offset + len);
                if start < end {
                    out[start - offset..end - offset]
                        .copy_from_slice(&d[start - o..end - o]);
                }
            }
        }
        Ok(out)
    }

    /// Flushes the disk and marks all issued writes persisted.
    pub fn flush_issued(&self) -> Result<(), IoError> {
        let mut inner = self.core.inner.lock();
        if inner.issued.is_empty() {
            return Ok(());
        }
        self.core.disk.flush_all()?;
        inner.stats.flushes += 1;
        let issued = std::mem::take(&mut inner.issued);
        for n in issued {
            if let NodeKind::Write { state, .. } = &mut inner.nodes[n].kind {
                *state = WriteState::Persisted;
            }
        }
        Ok(())
    }

    /// Repeatedly issues ready writes and flushes until quiescent: no
    /// pending write is ready (all remaining ones wait on unsealed
    /// promises or lost nodes).
    pub fn pump(&self) -> Result<(), IoError> {
        loop {
            let n = self.issue_ready(usize::MAX)?;
            // Flushing can make further pending writes ready (their
            // dependencies just persisted), so only stop once a round
            // neither issued nor flushed anything.
            let had_issued = self.issued_count() > 0;
            self.flush_issued()?;
            if n == 0 && !had_issued {
                return Ok(());
            }
        }
    }

    /// Simulates a fail-stop crash: pending writes are dropped, issued
    /// writes survive at page granularity per `plan` (via
    /// [`Disk::crash`]), and neither can ever become persistent.
    pub fn crash(&self, plan: &CrashPlan) {
        let mut inner = self.core.inner.lock();
        let pending = std::mem::take(&mut inner.pending);
        for n in pending {
            if let NodeKind::Write { state, data, .. } = &mut inner.nodes[n].kind {
                *state = WriteState::Lost;
                *data = None;
            }
            inner.stats.writes_lost_pending += 1;
        }
        let issued = std::mem::take(&mut inner.issued);
        for n in issued {
            if let NodeKind::Write { state, .. } = &mut inner.nodes[n].kind {
                *state = WriteState::Lost;
            }
            inner.stats.writes_lost_issued += 1;
        }
        self.core.disk.crash(plan);
    }

    /// Number of pending (unissued) writes.
    pub fn pending_count(&self) -> usize {
        self.core.inner.lock().pending.len()
    }

    /// Number of issued-but-unflushed writes.
    pub fn issued_count(&self) -> usize {
        self.core.inner.lock().issued.len()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SchedulerStats {
        self.core.inner.lock().stats
    }

    /// Debug rendering of every pending write and the state of its
    /// dependency subgraph (for diagnosing stuck writebacks).
    pub fn debug_pending(&self) -> Vec<String> {
        let mut inner = self.core.inner.lock();
        let pending: Vec<NodeId> = inner.pending.iter().copied().collect();
        pending
            .iter()
            .map(|&id| {
                let (extent, offset, len) = match &inner.nodes[id].kind {
                    NodeKind::Write { extent, offset, len, .. } => (extent.0, *offset, *len),
                    NodeKind::Join { .. } => (u32::MAX, 0, 0),
                };
                let deps = inner.nodes[id].deps.clone();
                let unresolved: Vec<NodeId> = deps
                    .iter()
                    .filter(|d| !IoScheduler::compute_persistent(&mut inner, **d))
                    .copied()
                    .collect();
                let blocked: Vec<String> = unresolved
                    .iter()
                    .map(|d| IoScheduler::describe_node(&inner, *d))
                    .collect();
                format!(
                    "write #{id} ext {extent} off {offset} len {len}: blocked on {blocked:?}"
                )
            })
            .collect()
    }

    fn describe_node(inner: &Inner, id: NodeId) -> String {
        match &inner.nodes[id].kind {
            NodeKind::Write { extent, offset, state, .. } => {
                format!("#{id} write ext {} off {offset} [{state:?}]", extent.0)
            }
            NodeKind::Join { sealed } => {
                let deps = &inner.nodes[id].deps;
                format!("#{id} join(sealed={sealed}, deps={deps:?})")
            }
        }
    }
}

impl Dependency {
    /// Returns true once the operation this dependency represents — and
    /// everything it transitively depends on — has been persisted to disk.
    pub fn is_persistent(&self) -> bool {
        match self.node {
            None => true,
            Some(n) => {
                let mut inner = self.core.inner.lock();
                IoScheduler::compute_persistent(&mut inner, n)
            }
        }
    }

    /// True if both handles point at the same graph node (or both are the
    /// empty dependency).
    pub fn same_node(&self, other: &Dependency) -> bool {
        Arc::ptr_eq(&self.core, &other.core) && self.node == other.node
    }

    /// Combines two dependencies: the result persists when both have.
    pub fn and(&self, other: &Dependency) -> Dependency {
        debug_assert!(Arc::ptr_eq(&self.core, &other.core), "dependency from another scheduler");
        match (self.node, other.node) {
            (None, _) => other.clone(),
            (_, None) => self.clone(),
            (Some(a), Some(b)) => {
                let mut inner = self.core.inner.lock();
                let id = inner.nodes.len();
                inner.nodes.push(Node {
                    kind: NodeKind::Join { sealed: true },
                    deps: vec![a, b],
                    persistent_memo: false,
                });
                Dependency { core: Arc::clone(&self.core), node: Some(id) }
            }
        }
    }
}

impl Promise {
    /// Adds a dependency to the promise.
    ///
    /// # Panics
    ///
    /// Panics if the promise has already been sealed.
    pub fn add_dep(&self, dep: &Dependency) {
        let id = self.dep.node.expect("promise has a node");
        let mut inner = self.dep.core.inner.lock();
        match &inner.nodes[id].kind {
            NodeKind::Join { sealed: false } => {}
            _ => panic!("add_dep on a sealed promise"),
        }
        if let Some(d) = dep.node {
            inner.nodes[id].deps.push(d);
        }
    }

    /// Seals the promise: no further dependencies may be added, and it can
    /// now become persistent once its dependencies do.
    pub fn seal(&self) {
        let id = self.dep.node.expect("promise has a node");
        let mut inner = self.dep.core.inner.lock();
        if let NodeKind::Join { sealed } = &mut inner.nodes[id].kind {
            *sealed = true;
        }
    }

    /// The promise's dependency handle (pollable by clients immediately).
    pub fn dependency(&self) -> Dependency {
        self.dep.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shardstore_vdisk::Geometry;

    fn setup() -> (Arc<Disk>, IoScheduler) {
        let disk = Disk::new(Geometry::small());
        let sched = IoScheduler::new(Arc::clone(&disk));
        (disk, sched)
    }

    #[test]
    fn none_dependency_is_always_persistent() {
        let (_d, s) = setup();
        assert!(s.none().is_persistent());
    }

    #[test]
    fn write_is_not_persistent_until_pumped() {
        let (disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"abc".to_vec(), &none);
        assert!(!dep.is_persistent());
        s.pump().unwrap();
        assert!(dep.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 3).unwrap(), b"abc");
    }

    #[test]
    fn dependent_write_waits_for_its_dependency() {
        let (disk, s) = setup();
        let none = s.none();
        let first = s.submit_write(ExtentId(1), 0, b"11".to_vec(), &none);
        let second = s.submit_write(ExtentId(2), 0, b"22".to_vec(), &first);
        // Issue one round without flushing: only `first` can be issued;
        // `second` must wait for `first` to PERSIST, not merely issue.
        let n = s.issue_ready(usize::MAX).unwrap();
        assert_eq!(n, 1);
        assert_eq!(s.pending_count(), 1);
        // The dependent write is not on disk at all yet.
        assert_eq!(disk.read(ExtentId(2), 0, 2).unwrap(), vec![0, 0]);
        s.flush_issued().unwrap();
        assert!(first.is_persistent());
        assert!(!second.is_persistent());
        s.pump().unwrap();
        assert!(second.is_persistent());
        assert_eq!(disk.read(ExtentId(2), 0, 2).unwrap(), b"22");
    }

    #[test]
    fn crash_respects_dependency_order() {
        let (disk, s) = setup();
        let none = s.none();
        let first = s.submit_write(ExtentId(1), 0, b"11".to_vec(), &none);
        let second = s.submit_write(ExtentId(2), 0, b"22".to_vec(), &first);
        // Crash before anything is pumped: both lost, disk empty.
        s.crash(&CrashPlan::KeepAll);
        assert!(!first.is_persistent());
        assert!(!second.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 2).unwrap(), vec![0, 0]);
        assert_eq!(disk.read(ExtentId(2), 0, 2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn crash_after_issue_can_keep_pages_without_persistence() {
        let (disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"xy".to_vec(), &none);
        s.issue_ready(usize::MAX).unwrap();
        // Crash keeping the cached page: data readable, dependency not
        // persistent (the one-directional persistence contract).
        s.crash(&CrashPlan::KeepAll);
        assert!(!dep.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 2).unwrap(), b"xy");
    }

    #[test]
    fn lost_write_never_becomes_persistent() {
        let (_disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"z".to_vec(), &none);
        s.crash(&CrashPlan::LoseAll);
        s.pump().unwrap();
        assert!(!dep.is_persistent());
    }

    #[test]
    fn join_requires_all_parts() {
        let (_disk, s) = setup();
        let none = s.none();
        let a = s.submit_write(ExtentId(1), 0, b"a".to_vec(), &none);
        s.pump().unwrap();
        let b = s.submit_write(ExtentId(2), 0, b"b".to_vec(), &none);
        let joined = a.and(&b);
        assert!(!joined.is_persistent());
        s.pump().unwrap();
        assert!(joined.is_persistent());
    }

    #[test]
    fn and_with_none_is_identity() {
        let (_disk, s) = setup();
        let none = s.none();
        let a = s.submit_write(ExtentId(1), 0, b"a".to_vec(), &none);
        let j = a.and(&s.none());
        let j2 = s.none().and(&a);
        assert!(!j.is_persistent());
        assert!(!j2.is_persistent());
        s.pump().unwrap();
        assert!(j.is_persistent() && j2.is_persistent());
    }

    #[test]
    fn promise_persists_only_after_seal() {
        let (_disk, s) = setup();
        let none = s.none();
        let p = s.promise();
        let w = s.submit_write(ExtentId(1), 0, b"w".to_vec(), &none);
        p.add_dep(&w);
        s.pump().unwrap();
        assert!(!p.dependency().is_persistent(), "unsealed promise must not be persistent");
        p.seal();
        assert!(p.dependency().is_persistent());
    }

    #[test]
    fn empty_sealed_promise_is_persistent() {
        let (_disk, s) = setup();
        let p = s.promise();
        p.seal();
        assert!(p.dependency().is_persistent());
    }

    #[test]
    fn writes_blocked_on_unsealed_promise_do_not_issue() {
        let (disk, s) = setup();
        let p = s.promise();
        let w = s.submit_write(ExtentId(1), 0, b"q".to_vec(), &p.dependency());
        s.pump().unwrap();
        assert!(!w.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 1).unwrap(), vec![0]);
        p.seal();
        s.pump().unwrap();
        assert!(w.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 1).unwrap(), b"q");
    }

    #[test]
    fn contiguous_writes_coalesce_into_one_io() {
        let (disk, s) = setup();
        let none = s.none();
        s.submit_write(ExtentId(1), 0, b"aa".to_vec(), &none);
        s.submit_write(ExtentId(1), 2, b"bb".to_vec(), &none);
        s.submit_write(ExtentId(1), 4, b"cc".to_vec(), &none);
        s.pump().unwrap();
        let stats = s.stats();
        assert_eq!(stats.writes_submitted, 3);
        assert_eq!(stats.ios_issued, 1, "three contiguous writes should be one IO");
        assert_eq!(stats.writes_coalesced, 2);
        assert_eq!(disk.read(ExtentId(1), 0, 6).unwrap(), b"aabbcc");
    }

    #[test]
    fn barrier_mode_defeats_coalescing() {
        let (_disk, s) = setup();
        s.set_barrier_mode(true);
        let none = s.none();
        s.submit_write(ExtentId(1), 0, b"aa".to_vec(), &none);
        s.submit_write(ExtentId(1), 2, b"bb".to_vec(), &none);
        s.pump().unwrap();
        let stats = s.stats();
        assert_eq!(stats.ios_issued, 2);
        assert_eq!(stats.writes_coalesced, 0);
    }

    #[test]
    fn non_contiguous_writes_do_not_coalesce() {
        let (_disk, s) = setup();
        let none = s.none();
        s.submit_write(ExtentId(1), 0, b"aa".to_vec(), &none);
        s.submit_write(ExtentId(1), 10, b"bb".to_vec(), &none);
        s.pump().unwrap();
        assert_eq!(s.stats().ios_issued, 2);
    }

    #[test]
    fn amend_pending_write_replaces_payload() {
        let (disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"old".to_vec(), &none);
        assert!(s.amend_pending_write(&dep, b"new".to_vec(), &[]));
        s.pump().unwrap();
        assert_eq!(disk.read(ExtentId(1), 0, 3).unwrap(), b"new");
    }

    #[test]
    fn amend_fails_after_issue() {
        let (_disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"old".to_vec(), &none);
        s.issue_ready(usize::MAX).unwrap();
        assert!(!s.amend_pending_write(&dep, b"new".to_vec(), &[]));
    }

    #[test]
    fn amend_extra_deps_are_respected() {
        let (_disk, s) = setup();
        let none = s.none();
        let gate = s.promise();
        let dep = s.submit_write(ExtentId(1), 0, b"v1".to_vec(), &none);
        assert!(s.amend_pending_write(&dep, b"v2".to_vec(), &[gate.dependency()]));
        s.pump().unwrap();
        assert!(!dep.is_persistent(), "amended write must now wait on the gate");
        gate.seal();
        s.pump().unwrap();
        assert!(dep.is_persistent());
    }

    #[test]
    fn transient_write_failure_is_retried() {
        let (disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"x".to_vec(), &none);
        disk.inject_fail_once(ExtentId(1));
        assert!(s.issue_ready(usize::MAX).is_err());
        assert!(!dep.is_persistent());
        assert_eq!(s.pending_count(), 1, "the failed write stays queued");
        // The next pump retries and succeeds.
        s.pump().unwrap();
        assert!(dep.is_persistent());
        assert_eq!(disk.read(ExtentId(1), 0, 1).unwrap(), b"x");
        assert_eq!(s.stats().writes_retried, 1);
    }

    #[test]
    fn permanent_write_failure_keeps_erroring() {
        let (disk, s) = setup();
        let none = s.none();
        let dep = s.submit_write(ExtentId(1), 0, b"x".to_vec(), &none);
        disk.inject_fail_always(ExtentId(1));
        for _ in 0..3 {
            assert!(s.pump().is_err());
            assert!(!dep.is_persistent());
        }
        disk.clear_failures();
        s.pump().unwrap();
        assert!(dep.is_persistent());
    }

    #[test]
    fn long_dependency_chains_do_not_overflow() {
        let (_disk, s) = setup();
        let mut dep = s.none();
        for i in 0..5_000 {
            dep = s.submit_write(ExtentId(1), (i % 100) as usize, vec![1], &dep);
        }
        s.pump().unwrap();
        assert!(dep.is_persistent());
    }

    #[test]
    fn pending_and_issued_counts() {
        let (_disk, s) = setup();
        let none = s.none();
        s.submit_write(ExtentId(1), 0, b"a".to_vec(), &none);
        let gate = s.promise();
        s.submit_write(ExtentId(2), 0, b"b".to_vec(), &gate.dependency());
        assert_eq!(s.pending_count(), 2);
        s.issue_ready(usize::MAX).unwrap();
        assert_eq!(s.pending_count(), 1);
        assert_eq!(s.issued_count(), 1);
        s.flush_issued().unwrap();
        assert_eq!(s.issued_count(), 0);
    }
}
