//! Write-after-write ordering and scheduler-introspection tests.

use std::sync::Arc;

use shardstore_dependency::IoScheduler;
use shardstore_vdisk::{CrashPlan, Disk, ExtentId, Geometry};

fn setup() -> (Arc<Disk>, IoScheduler) {
    let disk = Disk::new(Geometry::small());
    let sched = IoScheduler::new(Arc::clone(&disk));
    (disk, sched)
}

#[test]
fn overlapping_writes_apply_in_submission_order() {
    let (disk, s) = setup();
    // The first write is gated on a promise, the second is free. Without
    // WAW ordering the second would be issued first and then be
    // overwritten by the stale first write.
    let gate = s.promise();
    let first = s.submit_write(ExtentId(1), 0, b"old".to_vec(), &gate.dependency());
    let second = s.submit_write(ExtentId(1), 0, b"new".to_vec(), &s.none());
    s.pump().unwrap();
    // Neither is persistent yet: the gate holds first, and second waits
    // on first via the implicit WAW edge.
    assert!(!first.is_persistent());
    assert!(!second.is_persistent());
    gate.seal();
    s.pump().unwrap();
    assert!(first.is_persistent());
    assert!(second.is_persistent());
    assert_eq!(disk.read(ExtentId(1), 0, 3).unwrap(), b"new");
    assert!(s.counter("sched.waw_dependencies") >= 1);
}

#[test]
fn partial_overlap_is_ordered_too() {
    let (disk, s) = setup();
    let gate = s.promise();
    s.submit_write(ExtentId(1), 0, b"AAAA".to_vec(), &gate.dependency());
    s.submit_write(ExtentId(1), 2, b"BBBB".to_vec(), &s.none());
    gate.seal();
    s.pump().unwrap();
    assert_eq!(disk.read(ExtentId(1), 0, 6).unwrap(), b"AABBBB");
}

#[test]
fn disjoint_writes_are_not_ordered() {
    let (disk, s) = setup();
    let gate = s.promise();
    s.submit_write(ExtentId(1), 0, b"AA".to_vec(), &gate.dependency());
    let free = s.submit_write(ExtentId(1), 10, b"BB".to_vec(), &s.none());
    s.pump().unwrap();
    // The disjoint write proceeds without waiting for the gated one.
    assert!(free.is_persistent());
    assert_eq!(disk.read(ExtentId(1), 10, 2).unwrap(), b"BB");
    assert_eq!(s.counter("sched.waw_dependencies"), 0);
}

#[test]
fn waw_chain_of_three() {
    let (disk, s) = setup();
    let gate = s.promise();
    s.submit_write(ExtentId(2), 0, b"111".to_vec(), &gate.dependency());
    s.submit_write(ExtentId(2), 0, b"222".to_vec(), &s.none());
    let last = s.submit_write(ExtentId(2), 0, b"333".to_vec(), &s.none());
    gate.seal();
    s.pump().unwrap();
    assert!(last.is_persistent());
    assert_eq!(disk.read(ExtentId(2), 0, 3).unwrap(), b"333");
}

#[test]
fn debug_pending_describes_blockers() {
    let (_disk, s) = setup();
    let gate = s.promise();
    s.submit_write(ExtentId(3), 5, b"stuck".to_vec(), &gate.dependency());
    let report = s.debug_pending();
    assert_eq!(report.len(), 1);
    assert!(report[0].contains("ext 3"), "report: {report:?}");
    assert!(report[0].contains("join(sealed=false"), "report: {report:?}");
    gate.seal();
    s.pump().unwrap();
    assert!(s.debug_pending().is_empty());
}

#[test]
fn crash_between_waw_writes_preserves_prefix_semantics() {
    let (disk, s) = setup();
    let first = s.submit_write(ExtentId(1), 0, b"first".to_vec(), &s.none());
    let second = s.submit_write(ExtentId(1), 0, b"secnd".to_vec(), &s.none());
    // Issue and flush only the first write (the second waits for the
    // first to persist via WAW).
    s.issue_ready(1).unwrap();
    s.flush_issued().unwrap();
    assert!(first.is_persistent());
    assert!(!second.is_persistent());
    s.crash(&CrashPlan::LoseAll);
    // The disk holds the first value — a legal prefix, never a mix.
    assert_eq!(disk.read(ExtentId(1), 0, 5).unwrap(), b"first");
    assert!(!second.is_persistent());
}

#[test]
fn retry_preserves_waw_order() {
    let (disk, s) = setup();
    let first = s.submit_write(ExtentId(1), 0, b"one".to_vec(), &s.none());
    let second = s.submit_write(ExtentId(1), 0, b"two".to_vec(), &s.none());
    // Fail the first issue attempt; the in-call retry absorbs it and
    // both must still land in order.
    disk.inject_fail_once(ExtentId(1));
    s.pump().unwrap();
    assert!(first.is_persistent());
    assert!(second.is_persistent());
    assert_eq!(disk.read(ExtentId(1), 0, 3).unwrap(), b"two");
}

#[test]
fn requeue_preserves_waw_order_without_retry_budget() {
    let (disk, s) = setup();
    s.set_retry_budget(0);
    let first = s.submit_write(ExtentId(1), 0, b"one".to_vec(), &s.none());
    let second = s.submit_write(ExtentId(1), 0, b"two".to_vec(), &s.none());
    // With in-call retry disabled the transient failure surfaces, the
    // write is requeued, and the next pump lands both in order.
    disk.inject_fail_once(ExtentId(1));
    assert!(s.pump().is_err());
    s.pump().unwrap();
    assert!(first.is_persistent());
    assert!(second.is_persistent());
    assert_eq!(disk.read(ExtentId(1), 0, 3).unwrap(), b"two");
}
