//! Per-table read-path metadata: key fences and a hand-rolled bloom
//! filter.
//!
//! Every SSTable is immutable once written, so its key range and key set
//! are fixed at flush/compaction/recovery time. [`TableMeta`] captures
//! both: a `[min_key, max_key]` fence for cheap range exclusion and a
//! [`KeyFilter`] (a classic bloom filter over the entry keys, tombstones
//! included) for point exclusion inside the fence. `lookup_in_tables`
//! consults them to skip tables that cannot contain the probed key,
//! avoiding the chunk read *and* the SSTable decode for most tables on a
//! point lookup.
//!
//! Both structures are conservative by construction: a table is only
//! skipped when the key provably cannot be in it (fences are exact;
//! blooms have no false negatives), so skipping never changes lookup
//! results — which is why the reference model needs no corresponding
//! change.

const BITS_PER_KEY: usize = 10;
const NUM_HASHES: u64 = 6;

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Two independent 64-bit hashes of a key, for double hashing. The second
/// is forced odd so every stride is coprime with the power-of-two bit
/// count and the probe sequence covers distinct bits.
fn hash_pair(key: u128) -> (u64, u64) {
    let h1 = splitmix64(key as u64);
    let h2 = splitmix64((key >> 64) as u64 ^ h1) | 1;
    (h1, h2)
}

/// A bloom filter over shard keys: no false negatives, ~1% false
/// positives at the configured 10 bits per key.
#[derive(Debug, Clone)]
pub struct KeyFilter {
    bits: Box<[u64]>,
    /// `bit_count - 1`; the count is a power of two so this is a mask.
    mask: u64,
}

impl KeyFilter {
    /// Builds a filter containing exactly `keys`.
    pub fn build(keys: &[u128]) -> Self {
        let bit_count = (keys.len() * BITS_PER_KEY).next_power_of_two().max(64);
        let mut bits = vec![0u64; bit_count / 64].into_boxed_slice();
        let mask = bit_count as u64 - 1;
        for &key in keys {
            let (h1, h2) = hash_pair(key);
            for i in 0..NUM_HASHES {
                let bit = h1.wrapping_add(h2.wrapping_mul(i)) & mask;
                bits[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        Self { bits, mask }
    }

    /// True if `key` *may* be in the filter; false means definitely not.
    pub fn may_contain(&self, key: u128) -> bool {
        let (h1, h2) = hash_pair(key);
        (0..NUM_HASHES).all(|i| {
            let bit = h1.wrapping_add(h2.wrapping_mul(i)) & self.mask;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// Immutable per-table lookup metadata: key fence plus bloom filter,
/// built over every entry key — tombstones included, since skipping a
/// table that holds a tombstone for the probed key would resurrect the
/// shadowed older value.
#[derive(Debug, Clone)]
pub struct TableMeta {
    min_key: u128,
    max_key: u128,
    filter: KeyFilter,
}

impl TableMeta {
    /// Builds metadata from a table's sorted entry keys. An empty table
    /// gets an inverted fence that excludes every key.
    pub fn build(keys: &[u128]) -> Self {
        Self {
            min_key: keys.first().copied().unwrap_or(u128::MAX),
            max_key: keys.last().copied().unwrap_or(0),
            filter: KeyFilter::build(keys),
        }
    }

    /// True if `key` falls inside the table's `[min, max]` key fence.
    pub fn in_fence(&self, key: u128) -> bool {
        self.min_key <= key && key <= self.max_key
    }

    /// True if the bloom filter admits `key` (no false negatives).
    pub fn bloom_may_contain(&self, key: u128) -> bool {
        self.filter.may_contain(key)
    }

    /// True if the table's key fence overlaps the inclusive range
    /// `[start, end]`. An empty table's inverted fence overlaps nothing.
    pub fn overlaps(&self, start: u128, end: u128) -> bool {
        // The inverted fence (min > max) marks an empty table; the range
        // test alone would wrongly match it when the probe range spans
        // the key-space extremes.
        self.min_key <= self.max_key && self.min_key <= end && start <= self.max_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_has_no_false_negatives() {
        let keys: Vec<u128> = (0..500u128).map(|i| i * 977 + (i << 80)).collect();
        let f = KeyFilter::build(&keys);
        for &k in &keys {
            assert!(f.may_contain(k), "inserted key {k} reported absent");
        }
    }

    #[test]
    fn filter_false_positive_rate_is_low() {
        let keys: Vec<u128> = (0..1000u128).map(|i| i * 2 + 1).collect();
        let f = KeyFilter::build(&keys);
        // Probe disjoint keys; at 10 bits/key the expected FP rate is ~1%.
        let fps = (0..10_000u128).map(|i| (i + 1) * 2).filter(|&k| f.may_contain(k)).count();
        assert!(fps < 500, "false positive rate too high: {fps}/10000");
    }

    #[test]
    fn empty_filter_rejects_everything_via_fence() {
        let meta = TableMeta::build(&[]);
        for k in [0u128, 1, u128::MAX] {
            assert!(!meta.in_fence(k));
        }
    }

    #[test]
    fn fence_is_inclusive_and_exact() {
        let meta = TableMeta::build(&[10, 20, 30]);
        assert!(meta.in_fence(10));
        assert!(meta.in_fence(25));
        assert!(meta.in_fence(30));
        assert!(!meta.in_fence(9));
        assert!(!meta.in_fence(31));
    }

    #[test]
    fn range_overlap_is_inclusive_and_exact() {
        let meta = TableMeta::build(&[10, 20, 30]);
        assert!(meta.overlaps(0, u128::MAX));
        assert!(meta.overlaps(30, 40), "start touching max_key overlaps");
        assert!(meta.overlaps(0, 10), "end touching min_key overlaps");
        assert!(meta.overlaps(15, 15), "point range inside the fence overlaps");
        assert!(!meta.overlaps(0, 9));
        assert!(!meta.overlaps(31, u128::MAX));
    }

    #[test]
    fn empty_table_overlaps_no_range() {
        let meta = TableMeta::build(&[]);
        assert!(!meta.overlaps(0, u128::MAX));
        assert!(!meta.overlaps(0, 0));
        assert!(!meta.overlaps(u128::MAX, u128::MAX));
    }

    #[test]
    fn single_key_table() {
        let meta = TableMeta::build(&[42]);
        assert!(meta.in_fence(42));
        assert!(meta.bloom_may_contain(42));
        assert!(!meta.in_fence(41));
    }

    #[test]
    fn filter_size_scales_with_keys() {
        let small = KeyFilter::build(&[1, 2, 3]);
        let large = KeyFilter::build(&(0..10_000u128).collect::<Vec<_>>());
        assert!(small.size_bytes() >= 8);
        assert!(large.size_bytes() > small.size_bytes());
    }
}
