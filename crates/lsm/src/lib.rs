//! The LSM-tree index: maps shard identifiers to chunk locators, itself
//! stored as chunks on disk (§2.1 of the paper).
//!
//! Following the WiscKey-style design the paper describes, shard *data*
//! lives outside the tree (in data-stream chunks); the tree maps each
//! shard id to its chunk list. The tree consists of:
//!
//! - an in-memory **memtable**, split into key-hashed shards so point ops
//!   on different keys do not serialize on one lock (scans and flush
//!   build an ordered merge view across the shards); every mutation
//!   creates a [`Promise`] dependency that is sealed at the next flush,
//!   so `put` can return a pollable dependency immediately (Fig. 2's
//!   "index entry" node);
//! - on-disk **SSTables**, each one chunk in the LSM stream;
//! - **metadata records** (chunks in the metadata stream) listing the live
//!   tables; the highest-sequence valid record wins at recovery. Metadata
//!   writes depend on the table chunks they reference, completing the
//!   three-level dependency graph of Fig. 2 (data → index entry → LSM
//!   metadata).
//!
//! Background maintenance: **flush** (memtable → new SSTable + metadata
//! record) and **size-tiered compaction** (each round picks a bounded run
//! of adjacent, similar-size tables and merges just those, dropping
//! shadowed entries — and tombstones only when no older table remains
//! below the run). Both write their new chunk while holding a [`PutGuard`]
//! pin until the in-memory metadata references it — releasing the pin
//! early is exactly the issue #14 race (reclamation drops the not yet
//! referenced chunk), seeded by [`BugId::B14CompactionReclaimRace`].
//!
//! The index provides the [`Referencer`] reverse-lookup implementations
//! reclamation needs (§2.1): [`DataReferencer`] for shard-data extents and
//! [`LsmReferencer`] for LSM/metadata extents, including the *quiescence*
//! barrier that prevents an extent reset from persisting before an index
//! state that no longer references the dropped chunks.

pub mod codec;
pub mod filter;

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use shardstore_cache::CachedChunkStore;
use shardstore_chunk::{ChunkError, Locator, PutGuard, Referencer, Stream};
use shardstore_conc::sync::Mutex;
use shardstore_dependency::{Dependency, Promise};
use shardstore_faults::{coverage, BugId, FaultConfig};
use shardstore_obs::{Counter, Obs, TraceEvent};
use shardstore_vdisk::codec::CodecError;
use shardstore_vdisk::ExtentId;

pub use codec::{IndexValue, MetadataRecord, TableDescriptor};
pub use filter::{KeyFilter, TableMeta};

/// Read-path tuning knobs for the index.
#[derive(Debug, Clone, Copy)]
pub struct LsmConfig {
    /// Build per-table fences and bloom filters (at flush, compaction,
    /// and recovery) so point lookups skip tables that cannot contain the
    /// key. Disabling reverts to reading every table newest-first.
    pub filters: bool,
    /// Maximum number of decoded tables kept in the decoded-entry cache;
    /// `0` disables the cache (every lookup re-reads and re-decodes table
    /// bytes). Keyed by table id — ids are monotonic and never reused, and
    /// table content is immutable (relocation moves bytes verbatim), so a
    /// cached decode can never go stale.
    pub decoded_cache_tables: usize,
    /// Number of key-hashed memtable shards (clamped to at least 1).
    /// Point ops lock only the key's shard; scans, flush, and the merged
    /// view lock the shards in index order (then the table-list state
    /// lock — the global lock order) to build a consistent cut. `1`
    /// reproduces the old single-lock memtable for ablation.
    pub memtable_shards: usize,
    /// Table count at which background maintenance should run a
    /// compaction round (consulted by the store's maintenance hook;
    /// explicit [`LsmIndex::compact`] calls ignore it). Clamped to at
    /// least 2.
    pub compaction_trigger_tables: usize,
    /// Maximum entries per SSTable block in the v2 format (clamped to at
    /// least 1). Point gets decode exactly one block; smaller blocks
    /// mean less decoded per get but a larger fence index.
    pub block_size: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self {
            filters: true,
            decoded_cache_tables: 8,
            memtable_shards: 8,
            compaction_trigger_tables: 8,
            block_size: 16,
        }
    }
}

/// LSM index errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsmError {
    /// Chunk storage failed.
    Chunk(ChunkError),
    /// An on-disk structure failed to decode.
    Codec(CodecError),
    /// No valid metadata record was found during recovery although
    /// metadata extents contain data.
    CorruptMetadata,
    /// Recovery found a metadata extent quarantined: the newest metadata
    /// record may be unreadable, so the recovered index cannot be
    /// certified (adopting an older record would silently roll back
    /// acknowledged writes). The node must be treated as failed and
    /// re-replicated rather than served degraded.
    UncertifiableRecovery(ExtentId),
}

impl fmt::Display for LsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsmError::Chunk(e) => write!(f, "chunk error: {e}"),
            LsmError::Codec(e) => write!(f, "codec error: {e}"),
            LsmError::CorruptMetadata => write!(f, "no valid LSM metadata record"),
            LsmError::UncertifiableRecovery(e) => {
                write!(f, "metadata extent {e} quarantined: recovered index uncertifiable")
            }
        }
    }
}

impl LsmError {
    /// True if the underlying failure is a quarantined-extent degradation
    /// (see [`ChunkError::is_degraded`]).
    pub fn is_degraded(&self) -> bool {
        matches!(self, LsmError::Chunk(e) if e.is_degraded())
    }
}

impl std::error::Error for LsmError {}

impl From<ChunkError> for LsmError {
    fn from(e: ChunkError) -> Self {
        LsmError::Chunk(e)
    }
}

impl From<CodecError> for LsmError {
    fn from(e: CodecError) -> Self {
        LsmError::Codec(e)
    }
}

/// LSM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// Mutations applied (puts + deletes).
    pub mutations: u64,
    /// Lookups served.
    pub gets: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
}

#[derive(Debug)]
struct MemEntry {
    value: IndexValue,
    promise: Promise,
    /// Durability dependency of the data the entry points at: the SSTable
    /// that flushes this entry must not persist before it (Fig. 2's
    /// index-entry → shard-data edge). Data-level, so it can feed write
    /// input dependencies without cycling through pending superblock
    /// writes.
    data_dep: Dependency,
    /// Mutation sequence number; used to detect overwrites that raced
    /// with an in-progress flush.
    seq: u64,
}

#[derive(Debug)]
struct Table {
    id: u64,
    /// Chunks holding the serialized table, in order (large tables span
    /// several chunks). Shared so readers snapshot the list with one
    /// refcount bump instead of deep-cloning it under the state lock.
    locators: Arc<[Locator]>,
    /// Fence + bloom metadata for lookup skipping; `None` when filters
    /// are disabled by config.
    meta: Option<Arc<TableMeta>>,
    /// Persists once the table's bytes *and* every data chunk its entries
    /// reference are durable (transitively, because the table write's
    /// input dependency joins its entries' data dependencies).
    data_dep: Dependency,
}

impl Table {
    fn snapshot(&self) -> TableSnapshot {
        TableSnapshot {
            id: self.id,
            locators: Arc::clone(&self.locators),
            meta: self.meta.clone(),
        }
    }
}

/// Most tables one compaction round may merge. Bounds each round's write
/// amplification: a round rewrites at most this many tables' bytes, never
/// the whole tree.
const MAX_COMPACTION_PICK: usize = 4;

/// A contiguous run of tables qualifies as a tier when its largest member
/// is at most this factor bigger than its smallest — merging similar-size
/// tables keeps total write amplification logarithmic.
const TIER_RATIO: u64 = 4;

/// Size-tiered compaction picker. `sizes` are the live tables'
/// serialized sizes, newest first; returns the index range of the run to
/// merge, or `None` when fewer than two tables exist.
///
/// Policy: among contiguous windows of 2..=[`MAX_COMPACTION_PICK`]
/// tables whose sizes are within [`TIER_RATIO`] of each other, prefer
/// the longest, then the fewest total bytes, then the oldest. When no
/// window qualifies (sizes form a steep geometric staircase), fall back
/// to the adjacent pair with the fewest total bytes so repeated rounds
/// still converge toward one table.
fn pick_compaction(sizes: &[u64]) -> Option<std::ops::Range<usize>> {
    if sizes.len() < 2 {
        return None;
    }
    let mut best: Option<(usize, u64, usize)> = None; // (len, total, start)
    for len in 2..=MAX_COMPACTION_PICK.min(sizes.len()) {
        for start in 0..=sizes.len() - len {
            let window = &sizes[start..start + len];
            let min = *window.iter().min().unwrap_or(&0);
            let max = *window.iter().max().unwrap_or(&0);
            if max > min.saturating_mul(TIER_RATIO) {
                continue;
            }
            let total: u64 = window.iter().sum();
            let better = match best {
                None => true,
                Some((blen, btotal, bstart)) => {
                    (len, std::cmp::Reverse(total), start)
                        > (blen, std::cmp::Reverse(btotal), bstart)
                }
            };
            if better {
                best = Some((len, total, start));
            }
        }
    }
    if let Some((len, _, start)) = best {
        return Some(start..start + len);
    }
    // No tier qualifies: merge the cheapest adjacent pair.
    let start = (0..sizes.len() - 1)
        .min_by_key(|&i| sizes[i] + sizes[i + 1])
        .unwrap_or(0);
    Some(start..start + 2)
}

/// A cheap point-in-time view of one table, valid for reading outside the
/// state lock (the optimistic-read scheme).
#[derive(Debug, Clone)]
struct TableSnapshot {
    id: u64,
    locators: Arc<[Locator]>,
    meta: Option<Arc<TableMeta>>,
}

#[derive(Debug)]
struct DecodedEntry {
    entries: Arc<Vec<codec::SsEntry>>,
    last_use: u64,
}

/// Cache key: `(table id, block index)`, with [`WHOLE_TABLE`] standing
/// for a fully decoded table (flush and compaction seed their output
/// whole; block-granular entries come from cold point lookups).
const WHOLE_TABLE: u32 = u32::MAX;

/// LRU cache of decoded tables and blocks, keyed by `(table id, block)`.
/// Safe against staleness by construction: ids are never reused and
/// table content is immutable (relocation moves bytes verbatim), so a
/// cached decode can never go stale. The fence indexes ride along
/// (`None` marks a v1 table with no index): one small entry per live
/// table, pruned with the tables.
#[derive(Debug, Default)]
struct DecodedCache {
    blocks: BTreeMap<(u64, u32), DecodedEntry>,
    indexes: BTreeMap<u64, Option<Arc<codec::TableIndex>>>,
    tick: u64,
}

/// One key-hashed shard of the memtable.
type MemShard = BTreeMap<u128, MemEntry>;

struct LsmState {
    /// Live tables, newest first.
    tables: Vec<Table>,
    /// Bumped whenever the table list changes (flush, compaction,
    /// relocation). Readers snapshot locators, read outside the lock, and
    /// retry on failure if the version moved — the optimistic scheme that
    /// makes reads safe against concurrent reclamation.
    tables_version: u64,
    next_table_id: u64,
    next_seq: u64,
    meta_seq: u64,
    meta_locator: Option<Locator>,
    /// Dependency of the most recent metadata record write.
    meta_dep: Option<Dependency>,
    /// Reverse map for data-extent reclamation: data-chunk locator → the
    /// shard key whose *current* value references it.
    refs: BTreeMap<Locator, u128>,
    /// Forward index over `refs`: key → locators recorded for it. Kept in
    /// *exact* sync with `refs`: when another key claims a locator (extent
    /// offsets are reused after resets), the previous owner's entry is
    /// stripped eagerly instead of lingering until the next write to that
    /// key. [`LsmIndex::refs_maps_in_sync`] checks the bidirectional
    /// invariant. Replaces the O(refs) linear scan `apply` used to need to
    /// retire a key's stale references.
    refs_by_key: BTreeMap<u128, Vec<Locator>>,
    /// Set when an extent reset happened since the last flush (drives the
    /// seeded bug B3).
    reset_since_flush: bool,
}

/// Registry-backed metric handles for the index. The shared registry
/// (reached through the chunk store's scheduler) is the source of truth;
/// [`LsmIndex::stats`] is a thin compat view over these.
#[derive(Debug, Clone)]
struct LsmCounters {
    obs: Obs,
    mutations: Counter,
    gets: Counter,
    flushes: Counter,
    compactions: Counter,
    table_decodes: Counter,
    fence_skips: Counter,
    bloom_skips: Counter,
    bloom_false_positives: Counter,
    scans: Counter,
    scan_tables_pruned: Counter,
    tables_consulted: Counter,
    block_decodes: Counter,
    block_fence_skips: Counter,
    bytes_decoded: Counter,
    compaction_picked: Counter,
    compaction_bytes_in: Counter,
    compaction_bytes_out: Counter,
}

impl LsmCounters {
    fn new(obs: Obs) -> Self {
        let r = obs.registry();
        Self {
            mutations: r.counter("lsm.mutations"),
            gets: r.counter("lsm.gets"),
            flushes: r.counter("lsm.flushes"),
            compactions: r.counter("lsm.compactions"),
            table_decodes: r.counter("lsm.table_decodes"),
            fence_skips: r.counter("lsm.fence_skips"),
            bloom_skips: r.counter("lsm.bloom_skips"),
            bloom_false_positives: r.counter("lsm.bloom_false_positives"),
            scans: r.counter("lsm.scans"),
            scan_tables_pruned: r.counter("lsm.scan.tables_pruned"),
            tables_consulted: r.counter("lsm.get.tables_consulted"),
            block_decodes: r.counter("lsm.block_decodes"),
            block_fence_skips: r.counter("lsm.block.fence_skips"),
            bytes_decoded: r.counter("lsm.bytes_decoded"),
            compaction_picked: r.counter("lsm.compaction.picked"),
            compaction_bytes_in: r.counter("lsm.compaction.bytes_in"),
            compaction_bytes_out: r.counter("lsm.compaction.bytes_out"),
            obs,
        }
    }
}

/// The persistent LSM-tree index. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct LsmIndex {
    core: Arc<LsmCore>,
}

struct LsmCore {
    cache: CachedChunkStore,
    faults: FaultConfig,
    config: LsmConfig,
    /// Key-hashed memtable shards. Lock order is shard (index order when
    /// taking several) before `state`; never the reverse.
    memtable: Box<[Mutex<MemShard>]>,
    state: Mutex<LsmState>,
    /// Decoded-table cache; a separate lock so table decodes never hold
    /// up mutations on the state lock.
    decoded: Mutex<DecodedCache>,
    /// Serializes flush and compaction against each other (they both
    /// rewrite the table list).
    maintenance: Mutex<()>,
    counters: LsmCounters,
}

impl fmt::Debug for LsmIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mem: usize = self.core.memtable.iter().map(|s| s.lock().len()).sum();
        let tables = self.core.state.lock().tables.len();
        f.debug_struct("LsmIndex").field("memtable", &mem).field("tables", &tables).finish()
    }
}

impl LsmIndex {
    /// Creates an empty index over a cached chunk store with the default
    /// read-path configuration.
    pub fn new(cache: CachedChunkStore, faults: FaultConfig) -> Self {
        Self::with_config(cache, faults, LsmConfig::default())
    }

    /// Creates an empty index with explicit read-path tuning.
    pub fn with_config(cache: CachedChunkStore, faults: FaultConfig, config: LsmConfig) -> Self {
        let counters = LsmCounters::new(cache.chunk_store().extent_manager().scheduler().obs());
        let shards = config.memtable_shards.max(1);
        Self {
            core: Arc::new(LsmCore {
                cache,
                faults,
                config,
                memtable: (0..shards).map(|_| Mutex::new(MemShard::new())).collect(),
                state: Mutex::new(LsmState {
                    tables: Vec::new(),
                    tables_version: 0,
                    next_table_id: 1,
                    next_seq: 1,
                    meta_seq: 0,
                    meta_locator: None,
                    meta_dep: None,
                    refs: BTreeMap::new(),
                    refs_by_key: BTreeMap::new(),
                    reset_since_flush: false,
                }),
                decoded: Mutex::new(DecodedCache::default()),
                maintenance: Mutex::new(()),
                counters,
            }),
        }
    }

    /// Recovers the index after a reboot with the default read-path
    /// configuration.
    pub fn recover(cache: CachedChunkStore, faults: FaultConfig) -> Result<Self, LsmError> {
        Self::recover_with_config(cache, faults, LsmConfig::default())
    }

    /// Recovers the index after a reboot: find the highest-sequence valid
    /// metadata record among registered metadata chunks, load its table
    /// list (rebuilding each table's fence/bloom metadata), and rebuild
    /// the reverse reference map from the merged view.
    pub fn recover_with_config(
        cache: CachedChunkStore,
        faults: FaultConfig,
        config: LsmConfig,
    ) -> Result<Self, LsmError> {
        let index = Self::with_config(cache, faults, config);
        let mut best: Option<(MetadataRecord, Locator)> = None;
        let mut meta_chunks = 0usize;
        for locator in index.core.cache.chunk_store().registered_locators() {
            if index.core.cache.chunk_store().extent_manager().owner(locator.extent)
                != shardstore_superblock::Owner::Metadata
            {
                continue;
            }
            meta_chunks += 1;
            let bytes = match index.core.cache.get(&locator) {
                Ok(b) => b,
                Err(_) => continue,
            };
            match codec::decode_metadata(&bytes) {
                Ok(record) => {
                    coverage::hit("lsm.recover.valid_metadata");
                    if best.as_ref().map(|(b, _)| record.seq > b.seq).unwrap_or(true) {
                        best = Some((record, locator));
                    }
                }
                Err(_) => coverage::hit("lsm.recover.invalid_metadata"),
            }
        }
        // Fence the sequence counter above every metadata record that is
        // *physically decodable* anywhere on a metadata extent — including
        // quarantined regions beyond the trusted pointer (torn residue of
        // unacknowledged flushes). Such a record is not adopted now, but
        // future appends can advance the pointer past its location, making
        // it visible to a later recovery; if new records reused its
        // sequence number, that later recovery could adopt the dead
        // record instead of the live one.
        let mut seq_fence = 0u64;
        {
            let em = index.core.cache.chunk_store().extent_manager();
            let disk = em.scheduler().disk().clone();
            let extent_size = em.extent_size();
            let page_size = disk.geometry().page_size;
            for extent in em.extents_owned_by(shardstore_superblock::Owner::Metadata) {
                let raw = {
                    let mut attempts = 0u32;
                    loop {
                        match disk.read(extent, 0, extent_size) {
                            Err(shardstore_vdisk::IoError::Injected { .. }) if attempts < 3 => {
                                attempts += 1;
                            }
                            other => break other,
                        }
                    }
                };
                let raw = match raw {
                    Ok(r) => r,
                    Err(shardstore_vdisk::IoError::Failed { .. }) => {
                        // A permanently dead metadata extent cannot be
                        // fenced against, but it cannot serve stale
                        // records either: quarantine bars it from reads
                        // and from pointer advancement forever.
                        em.quarantine(extent);
                        coverage::hit("lsm.recover.fence_quarantined");
                        continue;
                    }
                    Err(e) => {
                        return Err(LsmError::Chunk(ChunkError::Extent(
                            shardstore_superblock::ExtentError::Io(e),
                        )))
                    }
                };
                for frame in shardstore_chunk::scan_extent(
                    &raw,
                    extent_size,
                    page_size,
                    &index.core.faults,
                ) {
                    if let Ok(record) = codec::decode_metadata(frame.payload(&raw)) {
                        seq_fence = seq_fence.max(record.seq);
                    }
                }
            }
        }
        // A quarantined metadata extent may hold the *newest* metadata
        // record, invisible to the registry scan above. Adopting an older
        // record would silently roll back acknowledged index updates, so
        // the recovered index cannot be certified: fail recovery loudly
        // (node death → re-replication) instead of serving stale state.
        {
            let em = index.core.cache.chunk_store().extent_manager();
            for extent in em.extents_owned_by(shardstore_superblock::Owner::Metadata) {
                if em.is_quarantined(extent) {
                    coverage::hit("lsm.recover.uncertifiable");
                    return Err(LsmError::UncertifiableRecovery(extent));
                }
            }
        }
        let Some((record, locator)) = best else {
            if meta_chunks > 0 {
                return Err(LsmError::CorruptMetadata);
            }
            coverage::hit("lsm.recover.empty");
            index.core.state.lock().meta_seq = seq_fence;
            return Ok(index);
        };
        // Load each table once: the decode rebuilds the fence/bloom
        // metadata and warms the decoded-entry cache, so recovery pays the
        // table reads it needs anyway instead of deferring them to the
        // first lookups.
        let none = index.scheduler().none();
        let mut tables = Vec::with_capacity(record.tables.len());
        for t in &record.tables {
            // A table chunk that reads back `NotFound` or degraded names
            // data this node can never serve again: either the chunk
            // write was lost to an extent quarantine before persisting
            // (`prune_doomed_pending` deliberately lets the metadata
            // record proceed with the dangling reference, and every
            // entry promise sealed over the lost write stays
            // unacknowledged forever), or the extent died under the
            // data afterwards. Either way §4.4 scopes the damage to
            // that extent: drop the table and keep the node alive,
            // rather than turning one dead extent into node death.
            // Other errors (transient IO, detected corruption) still
            // fail recovery loudly — a retry can succeed, and silently
            // dropping a *readable* table would discard acknowledged
            // data.
            let entries = match index.read_table(&t.locators) {
                Ok(e) => Arc::new(e),
                Err(LsmError::Chunk(e))
                    if e.is_degraded() || matches!(e, ChunkError::NotFound(_)) =>
                {
                    coverage::hit("lsm.recover.dropped_unreadable_table");
                    continue;
                }
                Err(e) => return Err(e),
            };
            let meta = index.table_meta_of(&entries);
            index.decoded_insert(t.id, Arc::clone(&entries));
            tables.push(Table {
                id: t.id,
                locators: t.locators.clone().into(),
                meta,
                data_dep: none.clone(),
            });
        }
        {
            let mut st = index.core.state.lock();
            st.meta_seq = record.seq.max(seq_fence);
            st.meta_locator = Some(locator);
            st.next_table_id = record.tables.iter().map(|t| t.id).max().unwrap_or(0) + 1;
            st.tables = tables;
        }
        // Rebuild the reverse map from the merged (newest-wins) view.
        let merged = index.merged_entries()?;
        {
            let mut st = index.core.state.lock();
            for (key, value) in merged {
                if let IndexValue::Present(locators) = value {
                    for l in &locators {
                        st.refs.insert(*l, key);
                    }
                    st.refs_by_key.insert(key, locators);
                }
            }
        }
        Ok(index)
    }

    /// Builds table metadata from decoded entries, honoring the config
    /// toggle. Keys cover tombstones too: skipping a table holding a
    /// tombstone would resurrect the shadowed older value.
    fn table_meta_of(&self, entries: &[codec::SsEntry]) -> Option<Arc<TableMeta>> {
        if !self.core.config.filters {
            return None;
        }
        let keys: Vec<u128> = entries.iter().map(|(k, _)| *k).collect();
        Some(Arc::new(TableMeta::build(&keys)))
    }

    /// Looks up a cached decode by `(table id, block)`, refreshing its
    /// LRU position.
    fn decoded_lookup_at(&self, id: u64, block: u32) -> Option<Arc<Vec<codec::SsEntry>>> {
        if self.core.config.decoded_cache_tables == 0 {
            return None;
        }
        let mut cache = self.core.decoded.lock();
        cache.tick += 1;
        let tick = cache.tick;
        cache.blocks.get_mut(&(id, block)).map(|e| {
            e.last_use = tick;
            Arc::clone(&e.entries)
        })
    }

    /// Looks up a fully decoded table by id.
    fn decoded_lookup(&self, id: u64) -> Option<Arc<Vec<codec::SsEntry>>> {
        self.decoded_lookup_at(id, WHOLE_TABLE)
    }

    /// Caches a decode, evicting least-recently-used entries over
    /// capacity. The capacity counts cache slots — whole tables and
    /// single blocks alike — so block-granular entries from cold point
    /// lookups cannot balloon memory past the configured bound.
    fn decoded_insert_at(&self, id: u64, block: u32, entries: Arc<Vec<codec::SsEntry>>) {
        let capacity = self.core.config.decoded_cache_tables;
        if capacity == 0 {
            return;
        }
        let mut cache = self.core.decoded.lock();
        cache.tick += 1;
        let tick = cache.tick;
        cache.blocks.insert((id, block), DecodedEntry { entries, last_use: tick });
        while cache.blocks.len() > capacity {
            let victim = cache
                .blocks
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k)
                .expect("over capacity implies non-empty");
            cache.blocks.remove(&victim);
            coverage::hit("lsm.decoded.evict");
        }
    }

    /// Caches a fully decoded table.
    fn decoded_insert(&self, id: u64, entries: Arc<Vec<codec::SsEntry>>) {
        self.decoded_insert_at(id, WHOLE_TABLE, entries);
    }

    /// Looks up a cached fence index (`Some(None)` = known v1 table).
    fn index_lookup(&self, id: u64) -> Option<Option<Arc<codec::TableIndex>>> {
        if self.core.config.decoded_cache_tables == 0 {
            return None;
        }
        self.core.decoded.lock().indexes.get(&id).cloned()
    }

    fn index_insert(&self, id: u64, index: Option<Arc<codec::TableIndex>>) {
        if self.core.config.decoded_cache_tables == 0 {
            return;
        }
        self.core.decoded.lock().indexes.insert(id, index);
    }

    /// Drops decoded entries and indexes whose table ids are no longer
    /// live (after compaction retired them). A concurrent reader holding
    /// an old snapshot may transiently re-insert a dead id; that costs
    /// memory bounded by the LRU capacity, never correctness (ids are
    /// unique and content immutable).
    fn decoded_prune(&self, live: &std::collections::BTreeSet<u64>) {
        if self.core.config.decoded_cache_tables == 0 {
            return;
        }
        let mut cache = self.core.decoded.lock();
        cache.blocks.retain(|(id, _), _| live.contains(id));
        cache.indexes.retain(|id, _| live.contains(id));
    }

    /// Drops the decoded-table cache (entries and fence indexes). It is
    /// volatile state, so harnesses model cache loss (reboot, explicit
    /// cache drop) by calling this alongside [`CachedChunkStore::clear`].
    pub fn drop_decoded_cache(&self) {
        let mut cache = self.core.decoded.lock();
        cache.blocks.clear();
        cache.indexes.clear();
    }

    /// Reads a whole table through the decoded-entry cache.
    fn table_entries(&self, table: &TableSnapshot) -> Result<Arc<Vec<codec::SsEntry>>, LsmError> {
        if let Some(entries) = self.decoded_lookup(table.id) {
            coverage::hit("lsm.decoded.hit");
            return Ok(entries);
        }
        coverage::hit("lsm.decoded.miss");
        self.core.counters.table_decodes.inc();
        self.core.counters.obs.trace().event(TraceEvent::TableLoad { table: table.id });
        let entries = Arc::new(self.read_table(&table.locators)?);
        self.decoded_insert(table.id, Arc::clone(&entries));
        Ok(entries)
    }

    /// Fetches (and caches) a table's fence index; `None` for v1 tables,
    /// which have no index and fall back to full decodes. Reads only the
    /// header and tail bytes of the table, not its blocks.
    fn table_index(&self, table: &TableSnapshot) -> Result<Option<Arc<codec::TableIndex>>, LsmError> {
        if let Some(cached) = self.index_lookup(table.id) {
            return Ok(cached);
        }
        let total: usize = table.locators.iter().map(|l| l.len as usize).sum();
        let header = self.read_table_slice(&table.locators, 0, total.min(codec::V2_HEADER_LEN))?;
        let index = if codec::sstable_version(&header)? == codec::FORMAT_VERSION_V1 {
            None
        } else {
            let trailer = self.read_table_slice(
                &table.locators,
                total.saturating_sub(codec::V2_TRAILER_LEN),
                codec::V2_TRAILER_LEN.min(total),
            )?;
            let footer_off = codec::footer_offset(&trailer, total).map_err(LsmError::Codec)? as usize;
            let footer = self.read_table_slice(
                &table.locators,
                footer_off,
                total - codec::V2_TRAILER_LEN - footer_off,
            )?;
            Some(Arc::new(
                codec::decode_index(&header, &footer, &trailer, total).map_err(LsmError::Codec)?,
            ))
        };
        self.index_insert(table.id, index.clone());
        Ok(index)
    }

    /// Reads one block of a v2 table through the decoded cache, decoding
    /// only that block's bytes on a miss.
    fn block_entries(
        &self,
        table: &TableSnapshot,
        block: usize,
        fence: &codec::BlockFence,
    ) -> Result<Arc<Vec<codec::SsEntry>>, LsmError> {
        if let Some(entries) = self.decoded_lookup_at(table.id, block as u32) {
            coverage::hit("lsm.decoded.hit");
            return Ok(entries);
        }
        coverage::hit("lsm.decoded.miss");
        self.core.counters.block_decodes.inc();
        self.core.counters.bytes_decoded.add(fence.len as u64);
        self.core.counters.obs.trace().event(TraceEvent::TableLoad { table: table.id });
        let bytes =
            self.read_table_slice(&table.locators, fence.offset as usize, fence.len as usize)?;
        let entries =
            Arc::new(codec::decode_block(&bytes, fence).map_err(LsmError::Codec)?);
        self.decoded_insert_at(table.id, block as u32, Arc::clone(&entries));
        Ok(entries)
    }

    /// The cached chunk store backing the index.
    pub fn cache(&self) -> &CachedChunkStore {
        &self.core.cache
    }

    /// The memtable shard owning `key`. Hashed (not range-partitioned) so
    /// adjacent keys spread across shards and skewed workloads still
    /// scale.
    fn mem_shard(&self, key: u128) -> &Mutex<MemShard> {
        let h = filter::splitmix64(key as u64 ^ (key >> 64) as u64);
        &self.core.memtable[h as usize % self.core.memtable.len()]
    }

    /// Locks every memtable shard in index order (the global lock order
    /// admits taking the state lock afterwards while these are held),
    /// yielding a consistent cut of the whole memtable.
    fn lock_all_shards(&self) -> Vec<shardstore_conc::sync::MutexGuard<'_, MemShard>> {
        self.core.memtable.iter().map(|s| s.lock()).collect()
    }

    fn scheduler(&self) -> shardstore_dependency::IoScheduler {
        self.core.cache.chunk_store().extent_manager().scheduler().clone()
    }

    /// Largest payload that fits one chunk frame on this disk.
    fn max_chunk_payload(&self) -> usize {
        self.core.cache.chunk_store().extent_manager().extent_size()
            - shardstore_chunk::FRAME_OVERHEAD
    }

    /// Writes serialized table bytes as one or more LSM-stream chunks
    /// (the tree itself is stored as chunks, §2.1). Returns the locators,
    /// the joined data dependency, the joined full dependency, and the
    /// pins.
    fn write_table_chunks(
        &self,
        bytes: &[u8],
        dep_in: &Dependency,
    ) -> Result<(Vec<Locator>, Dependency, Dependency, Vec<PutGuard>), LsmError> {
        let max = self.max_chunk_payload().max(1);
        let mut locators = Vec::new();
        let mut data_deps = Vec::new();
        let mut full_deps = Vec::new();
        let mut guards = Vec::new();
        let pieces: Vec<&[u8]> =
            if bytes.is_empty() { vec![&[][..]] } else { bytes.chunks(max).collect() };
        if pieces.len() > 1 {
            coverage::hit("lsm.table.multi_chunk");
        }
        // Group commit: the pieces go down as one batch, sharing a single
        // superblock pointer update and (when contiguous) one disk IO,
        // instead of one append round trip per piece.
        for out in self.core.cache.put_batch(Stream::Lsm, &pieces, dep_in)? {
            locators.push(out.locator);
            data_deps.push(out.data_dep);
            full_deps.push(out.dep);
            guards.push(out.guard);
        }
        let sched = self.scheduler();
        Ok((locators, sched.join(&data_deps), sched.join(&full_deps), guards))
    }

    /// Reads and reassembles a whole table from its chunks, decoding
    /// every entry (recovery, merges, and v1 tables; point gets on v2
    /// tables use [`LsmIndex::block_entries`] instead).
    fn read_table(&self, locators: &[Locator]) -> Result<Vec<codec::SsEntry>, LsmError> {
        let mut bytes = Vec::new();
        for locator in locators {
            bytes.extend_from_slice(&self.core.cache.get(locator)?);
        }
        self.core.counters.bytes_decoded.add(bytes.len() as u64);
        Ok(codec::decode_sstable(&bytes)?)
    }

    /// Reads the byte subrange `[off, off + len)` of a serialized table,
    /// touching only the chunks that overlap it. Locator lengths are
    /// payload lengths, so prefix sums give each chunk's position in the
    /// reassembled table.
    fn read_table_slice(
        &self,
        locators: &[Locator],
        off: usize,
        len: usize,
    ) -> Result<Vec<u8>, LsmError> {
        let end = off + len;
        let mut out = Vec::with_capacity(len);
        let mut pos = 0usize;
        for locator in locators {
            let chunk_end = pos + locator.len as usize;
            if chunk_end > off && pos < end {
                let bytes = self.core.cache.get(locator)?;
                let from = off.saturating_sub(pos);
                let to = (end - pos).min(bytes.len());
                if from > bytes.len() || from > to {
                    return Err(LsmError::Codec(CodecError::BadLength));
                }
                out.extend_from_slice(&bytes[from..to]);
            }
            pos = chunk_end;
            if pos >= end {
                break;
            }
        }
        if out.len() != len {
            return Err(LsmError::Codec(CodecError::BadLength));
        }
        Ok(out)
    }

    fn apply(&self, key: u128, value: IndexValue, data_dep: Dependency) -> Dependency {
        let promise = self.scheduler().promise();
        let dep = promise.dependency();
        let new_promise_dep = dep.clone();
        // Lock the key's memtable shard first (same-key mutations fully
        // serialize on it; other shards proceed), then the state lock for
        // the sequence counter and the reference maps — the global lock
        // order.
        let mut shard = self.mem_shard(key).lock();
        let seq = {
            let mut st = self.core.state.lock();
            let seq = st.next_seq;
            st.next_seq += 1;
            // Maintain the reverse map: the previous value's chunks are no
            // longer referenced by the current view; the new value's are.
            // Retire every reverse-map entry recorded for this key — the
            // old memtable value's locators and any table-resident ones,
            // which the new value shadows either way. This is O(entry
            // locators), not O(refs).
            if let Some(old_locs) = st.refs_by_key.remove(&key) {
                for l in old_locs {
                    if st.refs.get(&l) == Some(&key) {
                        st.refs.remove(&l);
                    }
                }
            }
            if let IndexValue::Present(locators) = &value {
                for l in locators {
                    if let Some(prev) = st.refs.insert(*l, key) {
                        if prev != key {
                            // The locator changed owners (extent offsets
                            // are reused after resets): strip it from the
                            // previous owner's forward entry eagerly so
                            // the two maps stay in exact sync.
                            coverage::hit("lsm.refs.reowned");
                            if let Some(v) = st.refs_by_key.get_mut(&prev) {
                                v.retain(|x| x != l);
                                if v.is_empty() {
                                    st.refs_by_key.remove(&prev);
                                }
                            }
                        }
                    }
                }
                st.refs_by_key.insert(key, locators.clone());
            }
            seq
        };
        let old = shard.insert(key, MemEntry { value, promise, data_dep, seq });
        if let Some(old_entry) = &old {
            // The old mutation is superseded: its dependency becomes
            // persistent exactly when the superseding mutation's does
            // ("unless superseded by a later persisted operation", §5) —
            // which also keeps the forward-progress property: no promise
            // is ever leaked unsealed.
            old_entry.promise.add_dep(&new_promise_dep);
            old_entry.promise.seal();
        }
        self.core.counters.mutations.inc();
        dep
    }

    /// Inserts or overwrites a key. Returns a dependency that persists
    /// once the entry is durable — sealed at the next flush: SSTable
    /// chunk, metadata record, and their write-pointer coverage.
    /// `data_dep` is the (data-level) dependency of the chunks the
    /// locators point at; the flushed index will not persist before them.
    pub fn put(&self, key: u128, locators: Vec<Locator>, data_dep: Dependency) -> Dependency {
        self.apply(key, IndexValue::Present(locators), data_dep)
    }

    /// Deletes a key by writing a tombstone. Returns the tombstone's
    /// durability dependency.
    pub fn delete(&self, key: u128) -> Dependency {
        let none = self.scheduler().none();
        self.apply(key, IndexValue::Tombstone, none)
    }

    /// The current table-list version (bumped by flush, compaction, and
    /// relocation).
    pub fn tables_version(&self) -> u64 {
        self.core.state.lock().tables_version
    }

    /// Looks up a key: memtable first, then tables newest-first.
    ///
    /// Reads are optimistic against concurrent reclamation: the table
    /// locators are snapshotted, read outside the lock, and the lookup is
    /// retried if a read fails while the table list has moved (the chunk
    /// was relocated under us). A failure with an *unchanged* table list
    /// is genuine corruption and is reported.
    pub fn get(&self, key: u128) -> Result<Option<Vec<Locator>>, LsmError> {
        self.get_inner(key, None)
    }

    /// Test-only variant of [`LsmIndex::get`] that invokes `hook` once,
    /// after the first table snapshot is taken and before any table is
    /// read — a deterministic window for exercising the relocation-retry
    /// path without a scheduler.
    #[doc(hidden)]
    pub fn get_with_race_hook(
        &self,
        key: u128,
        hook: &mut dyn FnMut(),
    ) -> Result<Option<Vec<Locator>>, LsmError> {
        self.get_inner(key, Some(hook))
    }

    fn get_inner(
        &self,
        key: u128,
        mut hook: Option<&mut dyn FnMut()>,
    ) -> Result<Option<Vec<Locator>>, LsmError> {
        loop {
            self.core.counters.gets.inc();
            // HOT-PATH-BEGIN(lsm-get): lock only the key's memtable shard;
            // a hit never touches the table-list state lock.
            {
                let shard = self.mem_shard(key).lock();
                if let Some(entry) = shard.get(&key) {
                    coverage::hit("lsm.get.memtable");
                    return Ok(match &entry.value {
                        IndexValue::Present(l) => Some(l.clone()), // hot-path: metadata clone
                        IndexValue::Tombstone => None,
                    });
                }
            }
            // HOT-PATH-END(lsm-get)
            // A miss snapshots the table list *after* the shard probe:
            // flush installs the new table (and bumps the version) before
            // removing memtable entries, so an entry that left the shard
            // is already visible in this snapshot.
            let (tables, version): (Vec<TableSnapshot>, u64) = {
                let st = self.core.state.lock();
                (st.tables.iter().map(Table::snapshot).collect(), st.tables_version)
            };
            if let Some(h) = hook.take() {
                h();
            }
            match self.lookup_in_tables(key, &tables) {
                Ok(found) => return Ok(found),
                Err(e) => {
                    if self.core.state.lock().tables_version != version {
                        coverage::hit("lsm.get.retry_relocated");
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    fn lookup_in_tables(
        &self,
        key: u128,
        tables: &[TableSnapshot],
    ) -> Result<Option<Vec<Locator>>, LsmError> {
        for table in tables {
            // Fence then bloom: skip tables that provably cannot contain
            // the key, avoiding the chunk read and the decode entirely.
            if let Some(meta) = &table.meta {
                if !meta.in_fence(key) {
                    coverage::hit("lsm.get.fence_skip");
                    self.core.counters.fence_skips.inc();
                    continue;
                }
                if !meta.bloom_may_contain(key) {
                    coverage::hit("lsm.get.bloom_skip");
                    self.core.counters.bloom_skips.inc();
                    continue;
                }
            }
            self.core.counters.tables_consulted.inc();
            let entries = if let Some(entries) = self.decoded_lookup(table.id) {
                // A fully decoded table (fresh flush/compaction output)
                // answers without consulting the fence index.
                coverage::hit("lsm.decoded.hit");
                Some(entries)
            } else if let Some(index) = self.table_index(table)? {
                // HOT-PATH-BEGIN(lsm-block-decode): the certified point
                // lookup on a block-indexed table routes through the
                // fence index to the one block that can hold the key and
                // decodes only it — never the whole table.
                match index.locate(key) {
                    None => {
                        coverage::hit("lsm.get.block_fence_skip");
                        self.core.counters.block_fence_skips.inc();
                        None
                    }
                    Some(b) => Some(self.block_entries(table, b, &index.fences[b])?),
                }
                // HOT-PATH-END(lsm-block-decode)
            } else {
                // v1 table: no index, decode it whole.
                Some(self.table_entries(table)?)
            };
            let Some(entries) = entries else { continue };
            match entries.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(idx) => {
                    coverage::hit("lsm.get.sstable");
                    return Ok(match &entries[idx].1 {
                        IndexValue::Present(l) => Some(l.clone()),
                        IndexValue::Tombstone => None,
                    });
                }
                // The filters said "maybe present" but the table does not
                // contain the key: a bloom false positive.
                Err(_) if table.meta.is_some() => {
                    self.core.counters.bloom_false_positives.inc();
                }
                Err(_) => {}
            }
        }
        coverage::hit("lsm.get.miss");
        Ok(None)
    }

    /// The merged newest-wins view of all entries (tombstones included),
    /// with the same optimistic retry against concurrent relocation as
    /// [`LsmIndex::get`].
    fn merged_entries(&self) -> Result<BTreeMap<u128, IndexValue>, LsmError> {
        loop {
            // Consistent cut: every memtable shard plus the table list,
            // locked together (shards in index order, then state), so the
            // memtable view and the table list belong to one instant.
            let (mem, tables, version): (Vec<(u128, IndexValue)>, Vec<TableSnapshot>, u64) = {
                let shards = self.lock_all_shards();
                let st = self.core.state.lock();
                (
                    shards
                        .iter()
                        .flat_map(|s| s.iter().map(|(k, e)| (*k, e.value.clone())))
                        .collect(),
                    st.tables.iter().map(Table::snapshot).collect(),
                    st.tables_version,
                )
            };
            let mut merged: BTreeMap<u128, IndexValue> = BTreeMap::new();
            // Oldest table first, memtable last, so newer writers
            // overwrite.
            let mut failed = None;
            for table in tables.iter().rev() {
                match self.table_entries(table) {
                    Ok(entries) => {
                        for (k, v) in entries.iter() {
                            merged.insert(*k, v.clone());
                        }
                    }
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failed {
                if self.core.state.lock().tables_version != version {
                    continue;
                }
                return Err(e);
            }
            for (k, v) in mem {
                merged.insert(k, v);
            }
            return Ok(merged);
        }
    }

    /// Ordered range scan: every present key in the inclusive range
    /// `[start, end]` with its locator list, newest-wins and
    /// tombstone-suppressed, in ascending key order.
    ///
    /// The scan is snapshot-consistent: the memtable cut and the table
    /// list are pinned together at scan start (shards in index order,
    /// then the state lock), so a concurrent flush or compaction can
    /// neither hide an entry nor resurrect an overwritten one. Tables
    /// whose `[min, max]` fence misses the range are pruned without being
    /// read (counted by `lsm.scan.tables_pruned`); the rest merge
    /// oldest-first so newer tables overwrite, with the memtable cut
    /// applied last. Table reads run outside the locks with the same
    /// optimistic retry against concurrent relocation as
    /// [`LsmIndex::get`].
    pub fn scan(&self, start: u128, end: u128) -> Result<Vec<(u128, Vec<Locator>)>, LsmError> {
        self.core.counters.scans.inc();
        if start > end {
            return Ok(Vec::new());
        }
        loop {
            let (mem, tables, version): (Vec<(u128, IndexValue)>, Vec<TableSnapshot>, u64) = {
                let shards = self.lock_all_shards();
                let st = self.core.state.lock();
                (
                    shards
                        .iter()
                        .flat_map(|s| s.range(start..=end).map(|(k, e)| (*k, e.value.clone())))
                        .collect(),
                    st.tables.iter().map(Table::snapshot).collect(),
                    st.tables_version,
                )
            };
            // Fence pruning: a table whose key range provably misses
            // [start, end] is skipped without a chunk read or a decode.
            let mut pruned = 0u64;
            let overlapping: Vec<&TableSnapshot> = tables
                .iter()
                .filter(|t| match &t.meta {
                    Some(m) if !m.overlaps(start, end) => {
                        pruned += 1;
                        false
                    }
                    _ => true,
                })
                .collect();
            if pruned > 0 {
                coverage::hit("lsm.scan.fence_prune");
                self.core.counters.scan_tables_pruned.add(pruned);
            }
            let mut merged: BTreeMap<u128, IndexValue> = BTreeMap::new();
            // Oldest table first so newer tables overwrite, memtable last.
            let mut failed = None;
            for table in overlapping.iter().rev() {
                if let Err(e) = self.scan_table_range(table, start, end, &mut merged) {
                    failed = Some(e);
                    break;
                }
            }
            if let Some(e) = failed {
                if self.core.state.lock().tables_version != version {
                    coverage::hit("lsm.scan.retry_relocated");
                    continue;
                }
                return Err(e);
            }
            for (k, v) in mem {
                merged.insert(k, v);
            }
            return Ok(merged
                .into_iter()
                .filter_map(|(k, v)| match v {
                    IndexValue::Present(l) => Some((k, l)),
                    IndexValue::Tombstone => None,
                })
                .collect());
        }
    }

    /// Merges one table's entries within `[start, end]` into `merged`.
    /// On a block-indexed table the fence index seeks straight to the
    /// overlapping blocks (a warm whole-table decode is used when
    /// available); v1 tables decode whole.
    fn scan_table_range(
        &self,
        table: &TableSnapshot,
        start: u128,
        end: u128,
        merged: &mut BTreeMap<u128, IndexValue>,
    ) -> Result<(), LsmError> {
        if let Some(entries) = self.decoded_lookup(table.id) {
            coverage::hit("lsm.decoded.hit");
            let from = entries.partition_point(|(k, _)| *k < start);
            for (k, v) in entries[from..].iter().take_while(|(k, _)| *k <= end) {
                merged.insert(*k, v.clone());
            }
            return Ok(());
        }
        if let Some(index) = self.table_index(table)? {
            for b in index.overlapping(start, end) {
                coverage::hit("lsm.scan.block_seek");
                let entries = self.block_entries(table, b, &index.fences[b])?;
                let from = entries.partition_point(|(k, _)| *k < start);
                for (k, v) in entries[from..].iter().take_while(|(k, _)| *k <= end) {
                    merged.insert(*k, v.clone());
                }
            }
            return Ok(());
        }
        let entries = self.table_entries(table)?;
        let from = entries.partition_point(|(k, _)| *k < start);
        for (k, v) in entries[from..].iter().take_while(|(k, _)| *k <= end) {
            merged.insert(*k, v.clone());
        }
        Ok(())
    }

    /// All present keys in the merged view (invariant checks and control
    /// plane listing).
    pub fn keys(&self) -> Result<Vec<u128>, LsmError> {
        Ok(self
            .merged_entries()?
            .into_iter()
            .filter(|(_, v)| matches!(v, IndexValue::Present(_)))
            .map(|(k, _)| k)
            .collect())
    }

    /// Writes a metadata record reflecting the current table list. Caller
    /// must hold the state lock... and therefore must NOT: this takes the
    /// lock internally. `table_deps` are the data dependencies of any
    /// just-written table chunks the record references.
    fn write_metadata(&self, table_deps: &[Dependency]) -> Result<Dependency, LsmError> {
        let record = {
            let st = self.core.state.lock();
            MetadataRecord {
                seq: st.meta_seq + 1,
                tables: st
                    .tables
                    .iter()
                    .map(|t| TableDescriptor { id: t.id, locators: t.locators.to_vec() })
                    .collect(),
            }
        };
        let bytes = codec::encode_metadata(&record);
        // The metadata record must not persist before the table chunks it
        // references (Fig. 2's metadata → index-data edge).
        let dep_in = self.scheduler().join(table_deps);
        let out = self.core.cache.put(Stream::Meta, &bytes, &dep_in)?;
        let mut st = self.core.state.lock();
        if let Some(old) = st.meta_locator.replace(out.locator) {
            self.core.cache.chunk_store().mark_dead(&old);
        }
        st.meta_seq = record.seq;
        st.meta_dep = Some(out.dep.clone());
        coverage::hit("lsm.metadata.written");
        // The metadata chunk's pin can drop once `meta_locator` references
        // it (the LsmReferencer consults `meta_locator`).
        drop(out.guard);
        Ok(out.dep)
    }

    /// Flushes the memtable into a new SSTable and writes a metadata
    /// record referencing it, sealing every flushed entry's promise.
    /// Returns the metadata record's dependency (or the previous one if
    /// the memtable was empty).
    pub fn flush(&self) -> Result<Dependency, LsmError> {
        let _m = self.core.maintenance.lock();
        // Phase 1: snapshot the memtable (values, sequence numbers, and
        // the data dependencies the flushed table must wait for).
        let (snapshot, data_deps): (Vec<(u128, IndexValue, u64)>, Vec<Dependency>) = {
            self.core.state.lock().reset_since_flush = false;
            // Skip entries whose data write was lost to a permanent
            // extent fault: their dependency can never resolve, and
            // joining it into `table_dep_in` would wedge this and every
            // future flush. The doomed entries stay in the memtable
            // unacknowledged (their puts never become durable); a later
            // overwrite of the same key supersedes them normally.
            //
            // The shard-by-shard walk need not be one atomic cut: an
            // entry written after its shard was visited simply waits for
            // the next flush, and an overwrite racing the flush is caught
            // by the per-entry sequence check at removal below.
            let mut live: Vec<(u128, IndexValue, u64, Dependency)> = Vec::new();
            let mut total = 0usize;
            for shard in self.core.memtable.iter() {
                let s = shard.lock();
                total += s.len();
                live.extend(
                    s.iter()
                        .filter(|(_, e)| !e.data_dep.is_doomed())
                        .map(|(k, e)| (*k, e.value.clone(), e.seq, e.data_dep.clone())),
                );
            }
            if live.len() < total {
                coverage::hit("lsm.flush.skipped_doomed");
            }
            // Shards are hash-partitioned; the SSTable codec and its
            // binary-search readers need key order.
            live.sort_unstable_by_key(|(k, _, _, _)| *k);
            (
                live.iter().map(|(k, v, s, _)| (*k, v.clone(), *s)).collect(),
                live.into_iter().map(|(_, _, _, d)| d).collect(),
            )
        };
        if snapshot.is_empty() {
            let st = self.core.state.lock();
            coverage::hit("lsm.flush.empty");
            return Ok(st
                .meta_dep
                .clone()
                .unwrap_or_else(|| self.scheduler().none()));
        }
        // Phase 2: write the SSTable chunk (outside the state lock — this
        // is IO). The PutGuard pins the chunk's extent until the metadata
        // references it.
        let entries: Vec<codec::SsEntry> =
            snapshot.iter().map(|(k, v, _)| (*k, v.clone())).collect();
        let bytes = codec::encode_sstable(&entries, self.core.config.block_size);
        // The SSTable must not persist before the data its entries point
        // at (Fig. 2: index entry depends on shard data) — otherwise a
        // crash could recover an index referencing chunks that are not
        // readable.
        let table_dep_in = self.scheduler().join(&data_deps);
        let (locators, table_data_dep, table_full_dep, guards) =
            self.write_table_chunks(&bytes, &table_dep_in)?;
        let guards: Vec<PutGuard> = if self.core.faults.is(BugId::B14CompactionReclaimRace) {
            // BUG B14 (seeded): the pins are released before the metadata
            // references the new chunks. A concurrently scheduled
            // reclamation of their extents finds them unreferenced and
            // drops them (the §6 worked example).
            drop(guards);
            Vec::new()
        } else {
            guards
        };
        // Scheduling point: under the stateless model checker this is
        // where reclamation can interleave.
        shardstore_conc::yield_now();
        // Phase 3: install the table (with its fence/bloom metadata),
        // write metadata, seal promises. The freshly built entries also
        // seed the decoded cache — the table is hot by definition.
        let entries = Arc::new(entries);
        let table_meta = self.table_meta_of(&entries);
        let table_id = {
            let mut st = self.core.state.lock();
            let id = st.next_table_id;
            st.next_table_id += 1;
            st.tables.insert(0, Table {
                id,
                locators: locators.clone().into(),
                meta: table_meta,
                data_dep: table_data_dep.clone(),
            });
            st.tables_version += 1;
            id
        };
        self.decoded_insert(table_id, entries);
        let meta_dep = self.write_metadata(std::slice::from_ref(&table_data_dep))?;
        // One shared group dependency — table chunks ∧ metadata record —
        // sealed into every flushed promise: a single join node carries
        // the whole flush group instead of two edges per entry.
        let group_dep = table_full_dep.and(&meta_dep);
        for (key, _, seq) in &snapshot {
            // Remove the flushed entry unless it was overwritten while
            // we were flushing (per-entry sequence check); seal its
            // promise either way (the flushed value is durable). The new
            // table was installed above, so a reader that misses the
            // entry here already sees it in its table snapshot.
            let mut shard = self.mem_shard(*key).lock();
            let remove = matches!(shard.get(key), Some(e) if e.seq == *seq);
            if remove {
                let entry = shard.remove(key).expect("checked above");
                entry.promise.add_dep(&group_dep);
                entry.promise.seal();
            } else {
                coverage::hit("lsm.flush.overwritten_during_flush");
            }
        }
        self.core.counters.flushes.inc();
        self.core.counters.obs.trace().event(TraceEvent::LsmFlush {
            entries: snapshot.len() as u32,
            table: table_id,
        });
        drop(guards);
        coverage::hit("lsm.flush.done");
        Ok(meta_dep)
    }

    /// Records that an extent reset happened (reclamation ran). Drives
    /// the seeded bug B3's trigger condition.
    pub fn note_extent_reset(&self) {
        self.core.state.lock().reset_since_flush = true;
    }

    /// Runs one bounded round of size-tiered compaction: pick a
    /// contiguous run of adjacent, similar-size tables (at most
    /// [`MAX_COMPACTION_PICK`]), merge them newest-wins into one table,
    /// and swap the run atomically under the table-list version. Old
    /// table chunks are marked dead for reclamation. Tombstones are
    /// dropped only when the run includes the oldest table — otherwise an
    /// older table below the run could resurrect the deleted key.
    ///
    /// Each round's write amplification is bounded by the run (at most
    /// `MAX_COMPACTION_PICK` tables), never O(total data); repeated
    /// rounds converge the tree toward one table. With fewer than two
    /// tables (or none pickable) the call is a no-op.
    pub fn compact(&self) -> Result<(), LsmError> {
        let _m = self.core.maintenance.lock();
        let (run, source_deps, includes_oldest) = {
            let st = self.core.state.lock();
            let sizes: Vec<u64> = st
                .tables
                .iter()
                .map(|t| t.locators.iter().map(|l| l.len as u64).sum())
                .collect();
            match pick_compaction(&sizes) {
                None => {
                    drop(st);
                    coverage::hit("lsm.compact.trivial");
                    return Ok(());
                }
                Some(range) => {
                    let run: Vec<(u64, Arc<[Locator]>)> = st.tables[range.clone()]
                        .iter()
                        .map(|t| (t.id, Arc::clone(&t.locators)))
                        .collect();
                    let source_deps: Vec<Dependency> =
                        st.tables[range.clone()].iter().map(|t| t.data_dep.clone()).collect();
                    (run, source_deps, range.end == st.tables.len())
                }
            }
        };
        let bytes_in: u64 =
            run.iter().map(|(_, ls)| ls.iter().map(|l| l.len as u64).sum::<u64>()).sum();
        self.core.counters.compaction_picked.add(run.len() as u64);
        self.core.counters.compaction_bytes_in.add(bytes_in);
        self.core.counters.obs.trace().event(TraceEvent::CompactionStart {
            picked: run.len() as u64,
            bytes_in,
        });
        let result = self.compact_run(run, source_deps, includes_oldest);
        self.core.counters.obs.trace().event(TraceEvent::CompactionEnd {
            bytes_out: *result.as_ref().unwrap_or(&0),
            tables_after: self.table_count() as u64,
        });
        result.map(|_| ())
    }

    /// The body of one compaction round, split out so the caller can
    /// emit a matching `CompactionEnd` event on success and error alike.
    /// Returns the merged table's serialized size.
    fn compact_run(
        &self,
        run: Vec<(u64, Arc<[Locator]>)>,
        source_deps: Vec<Dependency>,
        includes_oldest: bool,
    ) -> Result<u64, LsmError> {
        // Merge newest-wins (oldest first so newer overwrite). Tombstones
        // are dropped only when no table older than the run remains: a
        // tombstone merged away above a live older entry would resurrect
        // it.
        let mut merged: BTreeMap<u128, IndexValue> = BTreeMap::new();
        for (_, locators) in run.iter().rev() {
            for (k, v) in self.read_table(locators)? {
                merged.insert(k, v);
            }
        }
        if includes_oldest {
            coverage::hit("lsm.compact.tombstones_dropped");
            merged.retain(|_, v| matches!(v, IndexValue::Present(_)));
        } else {
            coverage::hit("lsm.compact.tombstones_kept");
        }
        let entries: Vec<codec::SsEntry> = merged.into_iter().collect();
        let bytes = codec::encode_sstable(&entries, self.core.config.block_size);
        let bytes_out = bytes.len() as u64;
        // The merged table inherits the sources' obligations: it must not
        // persist before the data its entries (transitively) reference.
        let table_dep_in = self.scheduler().join(&source_deps);
        let (locators, table_data_dep, _table_full_dep, guards) =
            self.write_table_chunks(&bytes, &table_dep_in)?;
        let guards: Vec<PutGuard> = if self.core.faults.is(BugId::B14CompactionReclaimRace) {
            // BUG B14 (seeded): the pins are released before the metadata
            // references the new chunks — a concurrently scheduled
            // reclamation finds them unreferenced and drops them.
            drop(guards);
            Vec::new()
        } else {
            guards
        };
        // The issue #14 window: the new chunk is on disk but the metadata
        // does not reference it yet.
        shardstore_conc::yield_now();
        let entries = Arc::new(entries);
        let table_meta = self.table_meta_of(&entries);
        let run_ids: std::collections::BTreeSet<u64> = run.iter().map(|(id, _)| *id).collect();
        let (new_id, live_ids) = {
            let mut st = self.core.state.lock();
            // Replace exactly the run, at its position: the merged table
            // holds only the run's entries, so it must stay between the
            // tables that were newer and older than the run (a concurrent
            // flush may have prepended newer ones). Membership checks go
            // through a set, not a per-table list scan.
            let insert_at = st
                .tables
                .iter()
                .position(|t| run_ids.contains(&t.id))
                .unwrap_or(st.tables.len());
            let id = st.next_table_id;
            st.next_table_id += 1;
            st.tables.retain(|t| !run_ids.contains(&t.id));
            st.tables.insert(insert_at, Table {
                id,
                locators: locators.clone().into(),
                meta: table_meta,
                data_dep: table_data_dep.clone(),
            });
            st.tables_version += 1;
            self.core.counters.compactions.inc();
            (id, st.tables.iter().map(|t| t.id).collect::<std::collections::BTreeSet<u64>>())
        };
        self.decoded_insert(new_id, entries);
        self.decoded_prune(&live_ids);
        self.core.counters.compaction_bytes_out.add(bytes_out);
        self.write_metadata(std::slice::from_ref(&table_data_dep))?;
        for (_, locators) in &run {
            for locator in locators.iter() {
                self.core.cache.chunk_store().mark_dead(locator);
            }
        }
        drop(guards);
        coverage::hit("lsm.compact.done");
        Ok(bytes_out)
    }

    /// Clean shutdown: flush the memtable and pump all IO to completion,
    /// so that every outstanding dependency becomes persistent (the §5
    /// forward-progress property).
    pub fn shutdown(&self) -> Result<(), LsmError> {
        if self.core.faults.is(BugId::B3MetadataShutdownFlush) {
            let reset_pending = self.core.state.lock().reset_since_flush;
            if reset_pending {
                // BUG B3 (seeded): the shutdown path mishandled the
                // "extent was reset" case and skipped the flush entirely,
                // so recent index entries never became durable.
                coverage::hit("lsm.shutdown.b3_skipped_flush");
                self.core
                    .cache
                    .chunk_store()
                    .extent_manager()
                    .pump()
                    .map_err(ChunkError::Extent)?;
                return Ok(());
            }
        }
        self.flush()?;
        self.core.cache.chunk_store().extent_manager().pump().map_err(ChunkError::Extent)?;
        Ok(())
    }

    /// Number of entries currently in the memtable (summed over shards).
    pub fn memtable_len(&self) -> usize {
        self.core.memtable.iter().map(|s| s.lock().len()).sum()
    }

    /// Keys with unflushed memtable state, tombstones included — exactly
    /// the keys whose latest mutation is lost if the process stops before
    /// the next successful flush (e.g. a shutdown flush with no space
    /// left to write the table).
    pub fn memtable_keys(&self) -> Vec<u128> {
        let mut keys: Vec<u128> = self
            .core
            .memtable
            .iter()
            .flat_map(|s| s.lock().keys().copied().collect::<Vec<_>>())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Number of memtable shards in use.
    pub fn memtable_shard_count(&self) -> usize {
        self.core.memtable.len()
    }

    /// Invariant check (test support): `refs` and `refs_by_key` describe
    /// exactly the same relation — every `refs` edge appears in its key's
    /// forward entry and every forward-entry locator maps back to that
    /// key.
    #[doc(hidden)]
    pub fn refs_maps_in_sync(&self) -> bool {
        let st = self.core.state.lock();
        let forward_ok = st
            .refs
            .iter()
            .all(|(l, k)| st.refs_by_key.get(k).map(|v| v.contains(l)).unwrap_or(false));
        let reverse_ok = st
            .refs_by_key
            .iter()
            .all(|(k, v)| v.iter().all(|l| st.refs.get(l) == Some(k)));
        forward_ok && reverse_ok
    }

    /// Number of live SSTables.
    pub fn table_count(&self) -> usize {
        self.core.state.lock().tables.len()
    }

    /// Statistics: a compatibility view assembled from the obs registry
    /// counters (the registry is the single source of truth).
    pub fn stats(&self) -> LsmStats {
        let c = &self.core.counters;
        LsmStats {
            mutations: c.mutations.get(),
            gets: c.gets.get(),
            flushes: c.flushes.get(),
            compactions: c.compactions.get(),
        }
    }

    /// Reverse-lookup callback for shard-data extents.
    pub fn data_referencer(&self) -> DataReferencer {
        DataReferencer { index: self.clone() }
    }

    /// Reverse-lookup callback for LSM-tree extents (SSTable chunks) and
    /// metadata extents (metadata records).
    pub fn lsm_referencer(&self) -> LsmReferencer {
        LsmReferencer { index: self.clone(), meta_stale: std::cell::Cell::new(false) }
    }
}

/// Maps a barrier-write failure to the chunk-level error reclamation
/// reports. Flush and metadata writes can only fail at the chunk layer
/// (encoding is infallible); the fallback arm is defensive.
fn barrier_err(e: LsmError) -> ChunkError {
    match e {
        LsmError::Chunk(c) => c,
        _ => ChunkError::NoSpace { requested: 0 },
    }
}

/// [`Referencer`] over shard-data chunks: liveness is membership in the
/// index's current reverse map; relocation rewrites the owning shard's
/// entry (becoming durable at the next flush).
#[derive(Debug, Clone)]
pub struct DataReferencer {
    index: LsmIndex,
}

impl Referencer for DataReferencer {
    fn is_live(&self, locator: &Locator) -> bool {
        self.index.core.state.lock().refs.contains_key(locator)
    }

    fn relocated(&self, old: &Locator, new: &Locator, _copy_dep: &Dependency) -> Dependency {
        let key = {
            let st = self.index.core.state.lock();
            st.refs.get(old).copied()
        };
        let Some(key) = key else {
            // Raced with a delete; nothing references the chunk anymore.
            return self.index.scheduler().none();
        };
        // Rewrite the shard's locator list through the normal mutation
        // path, so durability flows through the next flush.
        let current = {
            let shard = self.index.mem_shard(key).lock();
            match shard.get(&key).map(|e| e.value.clone()) {
                Some(IndexValue::Present(l)) => Some(l),
                Some(IndexValue::Tombstone) => None,
                None => None,
            }
        };
        let locators = match current {
            Some(l) => l,
            None => match self.index.get(key) {
                Ok(Some(l)) => l,
                _ => return self.index.scheduler().none(),
            },
        };
        let rewritten: Vec<Locator> =
            locators.into_iter().map(|l| if l == *old { *new } else { l }).collect();
        coverage::hit("lsm.referencer.relocate_data");
        self.index.put(key, rewritten, _copy_dep.clone())
    }

    fn quiesce(&self) -> Result<Option<Dependency>, ChunkError> {
        // The reset must wait for an index state that no longer
        // references the dropped chunks: flush now and return the
        // resulting metadata dependency. A failed flush (say, no space
        // for the table or record) must abort the reclamation — silently
        // degrading the barrier would let a crash recover to an index
        // whose entries dangle into the reset extent.
        self.index.flush().map(Some).map_err(barrier_err)
    }
}

/// [`Referencer`] over LSM-owned chunks (SSTables) and metadata records.
#[derive(Debug, Clone)]
pub struct LsmReferencer {
    index: LsmIndex,
    /// Set when a relocation's metadata write failed: the persisted
    /// record still references the old locations, so the quiescence
    /// barrier must re-write it (or abort the reclamation) before any
    /// reset may proceed.
    meta_stale: std::cell::Cell<bool>,
}

impl Referencer for LsmReferencer {
    fn is_live(&self, locator: &Locator) -> bool {
        let st = self.index.core.state.lock();
        st.tables.iter().any(|t| t.locators.contains(locator))
            || st.meta_locator == Some(*locator)
    }

    fn relocated(&self, old: &Locator, new: &Locator, copy_dep: &Dependency) -> Dependency {
        let mut st = self.index.core.state.lock();
        if st.meta_locator == Some(*old) {
            // The current metadata record itself is being evacuated. The
            // copy is byte-identical (same seq), so pointing at it is
            // sound; recovery finds it by scanning.
            st.meta_locator = Some(*new);
            st.meta_dep = Some(copy_dep.clone());
            coverage::hit("lsm.referencer.relocate_meta");
            return copy_dep.clone();
        }
        for t in st.tables.iter_mut() {
            if t.locators.contains(old) {
                // Clone-on-write: concurrent readers keep their snapshot
                // Arc; only the installed list is replaced. The fence and
                // bloom are untouched — the copy is byte-identical, so
                // the table's key set is unchanged.
                let rewritten: Vec<Locator> = t
                    .locators
                    .iter()
                    .map(|l| if *l == *old { *new } else { *l })
                    .collect();
                t.locators = rewritten.into();
                t.data_dep = t.data_dep.and(copy_dep);
            }
        }
        st.tables_version += 1;
        drop(st);
        coverage::hit("lsm.referencer.relocate_table");
        // The table list changed: persist a metadata record referencing
        // the new location, ordered after the copy.
        match self.index.write_metadata(std::slice::from_ref(copy_dep)) {
            Ok(dep) => dep,
            Err(_) => {
                // No space for the record right now. Remember that the
                // persisted metadata is stale — quiesce() below retries
                // the write and aborts the reclamation if it still
                // cannot land, so the reset never outruns the record.
                coverage::hit("lsm.referencer.meta_barrier_failed");
                self.meta_stale.set(true);
                copy_dep.clone()
            }
        }
    }

    fn quiesce(&self) -> Result<Option<Dependency>, ChunkError> {
        if self.meta_stale.get() {
            // A relocation's metadata write failed, so every persisted
            // record still points at the old locations. Retry once (the
            // pass itself may have freed meta space); on failure abort
            // the reclamation rather than reset under a stale record.
            // Ordering is safe without explicit deps: the reset barrier
            // separately joins every copy dependency, so a record that
            // persists before its copies merely becomes an invalid
            // record recovery skips.
            let dep = self.index.write_metadata(&[]).map_err(barrier_err)?;
            self.meta_stale.set(false);
            return Ok(Some(dep));
        }
        Ok(self.index.core.state.lock().meta_dep.clone())
    }
}
