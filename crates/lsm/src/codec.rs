//! On-disk codecs for SSTables and LSM metadata records.
//!
//! Both formats carry CRCs and decode panic-free from arbitrary bytes
//! (§7 of the paper). The metadata record is the LSM tree's root pointer
//! structure: it lists the chunk locators currently backing the tree, and
//! the record with the highest sequence number among valid records wins at
//! recovery.
//!
//! SSTables come in two versions:
//!
//! - **v1**: a flat entry list with one trailing CRC over the whole body.
//!   Still decoded (tables written before the format change remain
//!   readable) but no longer written.
//! - **v2**: entries grouped into fixed-size blocks, each with its own
//!   CRC, followed by a footer holding a per-block fence index
//!   (min/max key + byte range) and a trailer `[footer_offset, crc]`
//!   where the CRC covers header + footer + offset. A reader can verify
//!   and parse the index from the header and tail alone, then decode
//!   exactly the one block a point lookup needs — the full table is
//!   never materialized on the hot path.

use shardstore_chunk::Locator;
use shardstore_vdisk::codec::{crc32, CodecError, Reader, Writer};
use shardstore_vdisk::ExtentId;

const SSTABLE_MAGIC: &[u8; 4] = b"SSTB";
const META_MAGIC: &[u8; 4] = b"SSMD";
/// The flat, single-CRC table format (read-only compatibility).
pub const FORMAT_VERSION_V1: u16 = 1;
/// The block-indexed table format (what the tree writes today).
pub const FORMAT_VERSION_V2: u16 = 2;

/// v2 header: magic (4) + version (2) + entry count (4).
pub const V2_HEADER_LEN: usize = 10;
/// v2 trailer: footer offset (4) + CRC (4).
pub const V2_TRAILER_LEN: usize = 8;
/// One fence in the v2 footer: min key (16) + max key (16) + offset (4)
/// + len (4).
const V2_FENCE_LEN: usize = 40;
/// Smallest possible v2 block: count (4) + one tombstone entry (17) +
/// CRC (4).
const V2_MIN_BLOCK_LEN: usize = 25;

/// An index value: a shard's chunk list, or a tombstone marking deletion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexValue {
    /// The shard exists and its data lives in these chunks, in order.
    Present(Vec<Locator>),
    /// The shard was deleted.
    Tombstone,
}

/// One SSTable entry.
pub type SsEntry = (u128, IndexValue);

fn write_locator(w: &mut Writer, l: &Locator) {
    w.u32(l.extent.0);
    w.u32(l.offset);
    w.u32(l.len);
    w.bytes(&l.uuid.to_le_bytes());
}

fn read_locator(r: &mut Reader<'_>) -> Result<Locator, CodecError> {
    let extent = ExtentId(r.u32()?);
    let offset = r.u32()?;
    let len = r.u32()?;
    let mut uuid = [0u8; 16];
    uuid.copy_from_slice(r.bytes(16)?);
    Ok(Locator { extent, offset, len, uuid: u128::from_le_bytes(uuid) })
}

fn write_entry(w: &mut Writer, entry: &SsEntry) {
    let (key, value) = entry;
    w.bytes(&key.to_le_bytes());
    match value {
        IndexValue::Tombstone => {
            w.u8(0);
        }
        IndexValue::Present(locators) => {
            w.u8(1);
            w.u16(locators.len() as u16);
            for l in locators {
                write_locator(w, l);
            }
        }
    }
}

fn read_entry(r: &mut Reader<'_>) -> Result<SsEntry, CodecError> {
    let mut key = [0u8; 16];
    key.copy_from_slice(r.bytes(16)?);
    let key = u128::from_le_bytes(key);
    let value = match r.u8()? {
        0 => IndexValue::Tombstone,
        1 => {
            let n = r.u16()? as usize;
            if n.checked_mul(28).map(|b| b > r.remaining()).unwrap_or(true) {
                return Err(CodecError::BadLength);
            }
            let mut locators = Vec::with_capacity(n);
            for _ in 0..n {
                locators.push(read_locator(r)?);
            }
            IndexValue::Present(locators)
        }
        _ => return Err(CodecError::BadValue),
    };
    Ok((key, value))
}

/// Serializes a sorted entry list in the legacy flat v1 format. Kept so
/// compatibility tests (and recovery of pre-v2 trees) stay honest; the
/// tree itself writes [`encode_sstable`].
pub fn encode_sstable_v1(entries: &[SsEntry]) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(SSTABLE_MAGIC).u16(FORMAT_VERSION_V1).u32(entries.len() as u32);
    for entry in entries {
        write_entry(&mut w, entry);
    }
    let crc = crc32(w.as_bytes());
    w.u32(crc);
    w.into_bytes()
}

/// One block's fence in a v2 table footer: the key range the block
/// covers and the byte range (within the serialized table) holding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockFence {
    /// Smallest key in the block.
    pub min_key: u128,
    /// Largest key in the block.
    pub max_key: u128,
    /// Byte offset of the block from the start of the table.
    pub offset: u32,
    /// Byte length of the block, including its CRC.
    pub len: u32,
}

/// The parsed v2 fence index: enough to route a point lookup to exactly
/// one block, or a range scan to the overlapping blocks, without
/// decoding anything else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableIndex {
    /// Total entries across all blocks (from the header).
    pub entry_count: u32,
    /// Per-block fences, ascending and non-overlapping by key.
    pub fences: Vec<BlockFence>,
}

impl TableIndex {
    /// Index of the block that may contain `key`, if any. Blocks are
    /// disjoint, so at most one qualifies.
    pub fn locate(&self, key: u128) -> Option<usize> {
        let i = self.fences.partition_point(|f| f.max_key < key);
        (i < self.fences.len() && self.fences[i].min_key <= key).then_some(i)
    }

    /// Range of block indices whose fences overlap `[start, end]`.
    pub fn overlapping(&self, start: u128, end: u128) -> std::ops::Range<usize> {
        let lo = self.fences.partition_point(|f| f.max_key < start);
        let hi = self.fences.partition_point(|f| f.min_key <= end);
        lo..hi.max(lo)
    }
}

/// Serializes a sorted entry list in the block-indexed v2 format, with
/// at most `block_size` entries per block (clamped to at least 1).
pub fn encode_sstable(entries: &[SsEntry], block_size: usize) -> Vec<u8> {
    let block_size = block_size.max(1);
    let mut w = Writer::new();
    w.bytes(SSTABLE_MAGIC).u16(FORMAT_VERSION_V2).u32(entries.len() as u32);
    let mut fences: Vec<BlockFence> = Vec::new();
    for chunk in entries.chunks(block_size) {
        let mut bw = Writer::new();
        bw.u32(chunk.len() as u32);
        for entry in chunk {
            write_entry(&mut bw, entry);
        }
        let crc = crc32(bw.as_bytes());
        bw.u32(crc);
        let block = bw.into_bytes();
        fences.push(BlockFence {
            min_key: chunk[0].0,
            max_key: chunk[chunk.len() - 1].0,
            offset: w.as_bytes().len() as u32,
            len: block.len() as u32,
        });
        w.bytes(&block);
    }
    let footer_off = w.as_bytes().len() as u32;
    w.u32(fences.len() as u32);
    for f in &fences {
        w.bytes(&f.min_key.to_le_bytes());
        w.bytes(&f.max_key.to_le_bytes());
        w.u32(f.offset);
        w.u32(f.len);
    }
    w.u32(footer_off);
    // The trailer CRC covers header + footer + footer offset; each block
    // carries its own CRC, so a partial reader never trusts unverified
    // bytes.
    let all = w.as_bytes();
    let mut covered = Vec::with_capacity(V2_HEADER_LEN + (all.len() - footer_off as usize));
    covered.extend_from_slice(&all[..V2_HEADER_LEN]);
    covered.extend_from_slice(&all[footer_off as usize..]);
    let crc = crc32(&covered);
    w.u32(crc);
    w.into_bytes()
}

/// Peeks the format version from the first bytes of a serialized table.
/// `header` needs only the magic + version prefix, not the whole table.
pub fn sstable_version(header: &[u8]) -> Result<u16, CodecError> {
    if header.len() < 6 {
        return Err(CodecError::Truncated { needed: 6, remaining: header.len() });
    }
    if &header[..4] != SSTABLE_MAGIC {
        return Err(CodecError::BadValue);
    }
    Ok(u16::from_le_bytes([header[4], header[5]]))
}

/// Parses and bounds-checks the footer offset from a v2 table's 8-byte
/// trailer. `total_len` is the full serialized table length.
pub fn footer_offset(trailer: &[u8], total_len: usize) -> Result<u32, CodecError> {
    if trailer.len() != V2_TRAILER_LEN {
        return Err(CodecError::BadLength);
    }
    let off = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let footer_end = total_len.checked_sub(V2_TRAILER_LEN).ok_or(CodecError::BadLength)?;
    // The footer holds at least its block count.
    if (off as usize) < V2_HEADER_LEN || (off as usize) + 4 > footer_end {
        return Err(CodecError::BadLength);
    }
    Ok(off)
}

/// Parses the v2 fence index from the three pieces a partial reader
/// fetches separately: the 10-byte header, the footer (the bytes between
/// `footer_offset` and the trailer), and the 8-byte trailer. Verifies
/// the trailer CRC over exactly those pieces; block bytes are verified
/// later, per block, by [`decode_block`].
pub fn decode_index(
    header: &[u8],
    footer: &[u8],
    trailer: &[u8],
    total_len: usize,
) -> Result<TableIndex, CodecError> {
    if header.len() != V2_HEADER_LEN || trailer.len() != V2_TRAILER_LEN {
        return Err(CodecError::BadLength);
    }
    if sstable_version(header)? != FORMAT_VERSION_V2 {
        return Err(CodecError::BadValue);
    }
    let footer_off = footer_offset(trailer, total_len)? as usize;
    if footer_off + footer.len() + V2_TRAILER_LEN != total_len {
        return Err(CodecError::BadLength);
    }
    let mut covered = Vec::with_capacity(V2_HEADER_LEN + footer.len() + 4);
    covered.extend_from_slice(header);
    covered.extend_from_slice(footer);
    covered.extend_from_slice(&trailer[..4]);
    let mut crc_r = Reader::new(&trailer[4..]);
    if crc32(&covered) != crc_r.u32()? {
        return Err(CodecError::BadChecksum);
    }
    let entry_count = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    let mut r = Reader::new(footer);
    let block_count = r.u32()? as usize;
    // The footer must be exactly the fence array — this also rejects
    // absurd counts before allocating.
    if block_count.checked_mul(V2_FENCE_LEN).map(|n| n != r.remaining()).unwrap_or(true) {
        return Err(CodecError::BadLength);
    }
    let mut fences = Vec::with_capacity(block_count);
    let mut expected_off = V2_HEADER_LEN as u32;
    let mut prev_max: Option<u128> = None;
    for _ in 0..block_count {
        let mut k = [0u8; 16];
        k.copy_from_slice(r.bytes(16)?);
        let min_key = u128::from_le_bytes(k);
        k.copy_from_slice(r.bytes(16)?);
        let max_key = u128::from_le_bytes(k);
        let offset = r.u32()?;
        let len = r.u32()?;
        if min_key > max_key || prev_max.is_some_and(|p| min_key <= p) {
            return Err(CodecError::BadValue);
        }
        // Blocks tile the region between header and footer exactly.
        if offset != expected_off || (len as usize) < V2_MIN_BLOCK_LEN {
            return Err(CodecError::BadLength);
        }
        expected_off = offset.checked_add(len).ok_or(CodecError::BadLength)?;
        prev_max = Some(max_key);
        fences.push(BlockFence { min_key, max_key, offset, len });
    }
    if expected_off as usize != footer_off {
        return Err(CodecError::BadLength);
    }
    Ok(TableIndex { entry_count, fences })
}

/// Parses the v2 fence index from a fully materialized table. Returns
/// `None` for v1 tables (which have no index — callers fall back to a
/// full decode).
pub fn decode_table_index(bytes: &[u8]) -> Result<Option<TableIndex>, CodecError> {
    if sstable_version(bytes)? == FORMAT_VERSION_V1 {
        return Ok(None);
    }
    let len = bytes.len();
    if len < V2_HEADER_LEN + 4 + V2_TRAILER_LEN {
        return Err(CodecError::Truncated { needed: V2_HEADER_LEN + 4 + V2_TRAILER_LEN, remaining: len });
    }
    let trailer = &bytes[len - V2_TRAILER_LEN..];
    let footer_off = footer_offset(trailer, len)? as usize;
    decode_index(&bytes[..V2_HEADER_LEN], &bytes[footer_off..len - V2_TRAILER_LEN], trailer, len)
        .map(Some)
}

/// Decodes one v2 block given exactly its bytes and the fence the index
/// advertised for it. Verifies the block CRC and that the decoded keys
/// are sorted and match the fence — a corrupt index cannot smuggle
/// out-of-range entries past a partial reader.
pub fn decode_block(block: &[u8], fence: &BlockFence) -> Result<Vec<SsEntry>, CodecError> {
    if block.len() != fence.len as usize || block.len() < V2_MIN_BLOCK_LEN {
        return Err(CodecError::BadLength);
    }
    let body = &block[..block.len() - 4];
    let mut crc_r = Reader::new(&block[block.len() - 4..]);
    if crc32(body) != crc_r.u32()? {
        return Err(CodecError::BadChecksum);
    }
    let mut r = Reader::new(body);
    let count = r.u32()? as usize;
    if count == 0 || count.checked_mul(17).map(|n| n > r.remaining()).unwrap_or(true) {
        return Err(CodecError::BadLength);
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let entry = read_entry(&mut r)?;
        if let Some((prev, _)) = entries.last() {
            if entry.0 <= *prev {
                return Err(CodecError::BadValue);
            }
        }
        entries.push(entry);
    }
    if r.remaining() != 0 {
        return Err(CodecError::BadLength);
    }
    if entries[0].0 != fence.min_key || entries[entries.len() - 1].0 != fence.max_key {
        return Err(CodecError::BadValue);
    }
    Ok(entries)
}

fn decode_sstable_v1(bytes: &[u8]) -> Result<Vec<SsEntry>, CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated { needed: 4, remaining: bytes.len() });
    }
    let body = &bytes[..bytes.len() - 4];
    let mut crc_r = Reader::new(&bytes[bytes.len() - 4..]);
    if crc32(body) != crc_r.u32()? {
        return Err(CodecError::BadChecksum);
    }
    let mut r = Reader::new(body);
    r.expect(SSTABLE_MAGIC)?;
    if r.u16()? != FORMAT_VERSION_V1 {
        return Err(CodecError::BadValue);
    }
    let count = r.u32()? as usize;
    // Minimum entry size is 17 bytes (key + tag); reject absurd counts
    // before allocating.
    if count.checked_mul(17).map(|n| n > r.remaining()).unwrap_or(true) {
        return Err(CodecError::BadLength);
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(read_entry(&mut r)?);
    }
    if r.remaining() != 0 {
        return Err(CodecError::BadLength);
    }
    Ok(entries)
}

fn decode_sstable_v2(bytes: &[u8]) -> Result<Vec<SsEntry>, CodecError> {
    let index = decode_table_index(bytes)?.ok_or(CodecError::BadValue)?;
    // Bound the claimed entry count by the bytes actually present
    // (minimum 17 bytes per entry) before allocating.
    let block_bytes: usize = index.fences.iter().map(|f| f.len as usize).sum();
    if (index.entry_count as usize).checked_mul(17).map(|n| n > block_bytes).unwrap_or(true)
        && index.entry_count != 0
    {
        return Err(CodecError::BadLength);
    }
    let mut entries = Vec::with_capacity(index.entry_count as usize);
    for fence in &index.fences {
        let start = fence.offset as usize;
        let end = start + fence.len as usize;
        // Tiling was validated against total_len during index decode.
        entries.extend(decode_block(&bytes[start..end], fence)?);
    }
    if entries.len() != index.entry_count as usize {
        return Err(CodecError::BadValue);
    }
    Ok(entries)
}

/// Decodes SSTable bytes of either format version. Never panics on
/// corrupt input; a full decode verifies every byte of the table.
pub fn decode_sstable(bytes: &[u8]) -> Result<Vec<SsEntry>, CodecError> {
    match sstable_version(bytes)? {
        FORMAT_VERSION_V1 => decode_sstable_v1(bytes),
        FORMAT_VERSION_V2 => decode_sstable_v2(bytes),
        _ => Err(CodecError::BadValue),
    }
}

/// A descriptor of one live SSTable in the metadata record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDescriptor {
    /// Monotonic table id (newer tables have higher ids).
    pub id: u64,
    /// Chunks holding the serialized table, in order (a large table spans
    /// several chunks, exactly as shard data does).
    pub locators: Vec<Locator>,
}

/// The LSM metadata record: the authoritative list of live tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetadataRecord {
    /// Monotonic sequence; highest valid record wins at recovery.
    pub seq: u64,
    /// Live tables, newest first.
    pub tables: Vec<TableDescriptor>,
}

/// Serializes a metadata record.
pub fn encode_metadata(record: &MetadataRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(META_MAGIC).u16(FORMAT_VERSION_V1).u64(record.seq).u32(record.tables.len() as u32);
    for t in &record.tables {
        w.u64(t.id);
        w.u16(t.locators.len() as u16);
        for l in &t.locators {
            write_locator(&mut w, l);
        }
    }
    let crc = crc32(w.as_bytes());
    w.u32(crc);
    w.into_bytes()
}

/// Decodes a metadata record. Never panics on corrupt input.
pub fn decode_metadata(bytes: &[u8]) -> Result<MetadataRecord, CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated { needed: 4, remaining: bytes.len() });
    }
    let body = &bytes[..bytes.len() - 4];
    let mut crc_r = Reader::new(&bytes[bytes.len() - 4..]);
    if crc32(body) != crc_r.u32()? {
        return Err(CodecError::BadChecksum);
    }
    let mut r = Reader::new(body);
    r.expect(META_MAGIC)?;
    if r.u16()? != FORMAT_VERSION_V1 {
        return Err(CodecError::BadValue);
    }
    let seq = r.u64()?;
    let count = r.u32()? as usize;
    // Each table needs at least 10 bytes (id + locator count).
    if count.checked_mul(10).map(|n| n > r.remaining()).unwrap_or(true) {
        return Err(CodecError::BadLength);
    }
    let mut tables = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u64()?;
        let n = r.u16()? as usize;
        if n.checked_mul(28).map(|b| b > r.remaining()).unwrap_or(true) {
            return Err(CodecError::BadLength);
        }
        let mut locators = Vec::with_capacity(n);
        for _ in 0..n {
            locators.push(read_locator(&mut r)?);
        }
        tables.push(TableDescriptor { id, locators });
    }
    if r.remaining() != 0 {
        return Err(CodecError::BadLength);
    }
    Ok(MetadataRecord { seq, tables })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(e: u32, off: u32) -> Locator {
        Locator { extent: ExtentId(e), offset: off, len: 10, uuid: (e as u128) << 64 | off as u128 }
    }

    fn sample_entries(n: u128) -> Vec<SsEntry> {
        (0..n)
            .map(|k| {
                if k % 3 == 2 {
                    (k * 5, IndexValue::Tombstone)
                } else {
                    (k * 5, IndexValue::Present(vec![loc(k as u32, (k * 7) as u32)]))
                }
            })
            .collect()
    }

    #[test]
    fn sstable_roundtrip() {
        let entries = vec![
            (1u128, IndexValue::Present(vec![loc(1, 0), loc(2, 50)])),
            (2u128, IndexValue::Tombstone),
            (u128::MAX, IndexValue::Present(vec![])),
        ];
        let bytes = encode_sstable(&entries, 2);
        assert_eq!(decode_sstable(&bytes).unwrap(), entries);
    }

    #[test]
    fn sstable_roundtrips_at_every_block_size() {
        let entries = sample_entries(13);
        for block_size in [1usize, 2, 3, 5, 13, 64] {
            let bytes = encode_sstable(&entries, block_size);
            assert_eq!(decode_sstable(&bytes).unwrap(), entries, "block_size {block_size}");
        }
    }

    #[test]
    fn v1_tables_still_decode() {
        let entries = sample_entries(9);
        let bytes = encode_sstable_v1(&entries);
        assert_eq!(sstable_version(&bytes).unwrap(), FORMAT_VERSION_V1);
        assert_eq!(decode_sstable(&bytes).unwrap(), entries);
        // And they have no index: readers fall back to a full decode.
        assert_eq!(decode_table_index(&bytes).unwrap(), None);
    }

    #[test]
    fn sstable_detects_bit_flips() {
        let entries = vec![(7u128, IndexValue::Present(vec![loc(3, 9)]))];
        for bytes in [encode_sstable_v1(&entries), encode_sstable(&entries, 4)] {
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x40;
                assert!(decode_sstable(&bad).is_err(), "flip at {i} undetected");
            }
        }
    }

    #[test]
    fn v2_detects_bit_flips_across_blocks() {
        let entries = sample_entries(11);
        let bytes = encode_sstable(&entries, 3);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_sstable(&bad).is_err(), "flip at {i} undetected");
        }
    }

    #[test]
    fn sstable_rejects_trailing_garbage() {
        let entries = vec![(7u128, IndexValue::Tombstone)];
        for encoded in [encode_sstable_v1(&entries), encode_sstable(&entries, 4)] {
            let mut bytes = encoded;
            bytes.extend_from_slice(b"junk");
            assert!(decode_sstable(&bytes).is_err());
        }
    }

    #[test]
    fn index_routes_point_lookups_to_one_block() {
        let entries = sample_entries(20);
        let bytes = encode_sstable(&entries, 4);
        let index = decode_table_index(&bytes).unwrap().unwrap();
        assert_eq!(index.fences.len(), 5);
        assert_eq!(index.entry_count, 20);
        for (key, value) in &entries {
            let b = index.locate(*key).expect("present key must land in a block");
            let fence = &index.fences[b];
            let block = decode_block(
                &bytes[fence.offset as usize..(fence.offset + fence.len) as usize],
                fence,
            )
            .unwrap();
            let i = block.binary_search_by_key(key, |e| e.0).expect("key in routed block");
            assert_eq!(&block[i].1, value);
        }
        // A key inside a block's fence range routes there even if absent
        // (the block decode then reports the miss)…
        assert_eq!(index.locate(3), Some(0));
        // …but keys in the gap between fences (17 ∈ (15, 20)) and outside
        // the table route nowhere: the fence skip.
        assert_eq!(index.locate(17), None);
        assert_eq!(index.locate(u128::MAX), None);
    }

    #[test]
    fn index_overlapping_selects_exactly_covering_blocks() {
        // Keys 0, 5, ..., 95; blocks of 4 cover 20-key spans.
        let entries = sample_entries(20);
        let bytes = encode_sstable(&entries, 4);
        let index = decode_table_index(&bytes).unwrap().unwrap();
        assert_eq!(index.overlapping(0, u128::MAX), 0..5);
        assert_eq!(index.overlapping(0, 15), 0..1);
        assert_eq!(index.overlapping(16, 22), 1..2);
        assert_eq!(index.overlapping(96, 200), 5..5);
        assert_eq!(index.overlapping(21, 44), 1..3);
    }

    #[test]
    fn corrupt_block_fails_decode_but_index_still_parses() {
        let entries = sample_entries(8);
        let mut bytes = encode_sstable(&entries, 4);
        let index = decode_table_index(&bytes).unwrap().unwrap();
        let fence = index.fences[0];
        // Flip a byte inside the first block's body.
        bytes[fence.offset as usize + 6] ^= 0xFF;
        // The index (header + footer + trailer CRC) is untouched...
        assert_eq!(decode_table_index(&bytes).unwrap().unwrap(), index);
        // ...but the block's own CRC catches the damage, for partial and
        // full readers alike.
        let block = &bytes[fence.offset as usize..(fence.offset + fence.len) as usize];
        assert!(matches!(decode_block(block, &fence), Err(CodecError::BadChecksum)));
        assert!(decode_sstable(&bytes).is_err());
    }

    #[test]
    fn block_decode_rejects_wrong_fence() {
        let entries = sample_entries(8);
        let bytes = encode_sstable(&entries, 4);
        let index = decode_table_index(&bytes).unwrap().unwrap();
        let fence = index.fences[0];
        let block = &bytes[fence.offset as usize..(fence.offset + fence.len) as usize];
        // A fence advertising a different key range than the block holds
        // is rejected: a corrupt index cannot reroute lookups.
        let lying = BlockFence { min_key: fence.min_key + 1, ..fence };
        assert!(decode_block(block, &lying).is_err());
    }

    #[test]
    fn metadata_roundtrip() {
        let record = MetadataRecord {
            seq: 42,
            tables: vec![
                TableDescriptor { id: 9, locators: vec![loc(4, 100), loc(4, 200)] },
                TableDescriptor { id: 3, locators: vec![loc(5, 0)] },
            ],
        };
        let bytes = encode_metadata(&record);
        assert_eq!(decode_metadata(&bytes).unwrap(), record);
    }

    #[test]
    fn metadata_detects_corruption() {
        let record = MetadataRecord { seq: 1, tables: vec![] };
        let mut bytes = encode_metadata(&record);
        bytes[8] ^= 0xFF;
        assert!(decode_metadata(&bytes).is_err());
    }

    #[test]
    fn empty_sstable_roundtrips() {
        for bytes in [encode_sstable_v1(&[]), encode_sstable(&[], 4)] {
            assert_eq!(decode_sstable(&bytes).unwrap(), vec![]);
        }
        let index = decode_table_index(&encode_sstable(&[], 4)).unwrap().unwrap();
        assert_eq!(index.fences.len(), 0);
        assert_eq!(index.locate(0), None);
    }

    #[test]
    fn decoders_reject_absurd_counts_without_allocating() {
        // v1: a header claiming u32::MAX entries.
        let mut w = Writer::new();
        w.bytes(SSTABLE_MAGIC).u16(FORMAT_VERSION_V1).u32(u32::MAX);
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(decode_sstable(&bytes).is_err());

        // v2: a footer claiming u32::MAX blocks (with a valid trailer CRC,
        // so the count guard itself is what rejects it).
        let mut w = Writer::new();
        w.bytes(SSTABLE_MAGIC).u16(FORMAT_VERSION_V2).u32(0);
        w.u32(u32::MAX); // footer: absurd block count
        w.u32(V2_HEADER_LEN as u32); // trailer: footer offset
        let mut covered = w.as_bytes().to_vec();
        let crc = crc32(&covered);
        covered.clear();
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_sstable(&bytes), Err(CodecError::BadLength)));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut w = Writer::new();
        w.bytes(SSTABLE_MAGIC).u16(99).u32(0);
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_sstable(&bytes), Err(CodecError::BadValue)));
    }
}
