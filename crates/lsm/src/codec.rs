//! On-disk codecs for SSTables and LSM metadata records.
//!
//! Both formats carry a CRC and decode panic-free from arbitrary bytes
//! (§7 of the paper). The metadata record is the LSM tree's root pointer
//! structure: it lists the chunk locators currently backing the tree, and
//! the record with the highest sequence number among valid records wins at
//! recovery.

use shardstore_chunk::Locator;
use shardstore_vdisk::codec::{crc32, CodecError, Reader, Writer};
use shardstore_vdisk::ExtentId;

const SSTABLE_MAGIC: &[u8; 4] = b"SSTB";
const META_MAGIC: &[u8; 4] = b"SSMD";
const FORMAT_VERSION: u16 = 1;

/// An index value: a shard's chunk list, or a tombstone marking deletion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexValue {
    /// The shard exists and its data lives in these chunks, in order.
    Present(Vec<Locator>),
    /// The shard was deleted.
    Tombstone,
}

/// One SSTable entry.
pub type SsEntry = (u128, IndexValue);

fn write_locator(w: &mut Writer, l: &Locator) {
    w.u32(l.extent.0);
    w.u32(l.offset);
    w.u32(l.len);
    w.bytes(&l.uuid.to_le_bytes());
}

fn read_locator(r: &mut Reader<'_>) -> Result<Locator, CodecError> {
    let extent = ExtentId(r.u32()?);
    let offset = r.u32()?;
    let len = r.u32()?;
    let mut uuid = [0u8; 16];
    uuid.copy_from_slice(r.bytes(16)?);
    Ok(Locator { extent, offset, len, uuid: u128::from_le_bytes(uuid) })
}

/// Serializes a sorted list of entries into SSTable bytes.
pub fn encode_sstable(entries: &[SsEntry]) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(SSTABLE_MAGIC).u16(FORMAT_VERSION).u32(entries.len() as u32);
    for (key, value) in entries {
        w.bytes(&key.to_le_bytes());
        match value {
            IndexValue::Tombstone => {
                w.u8(0);
            }
            IndexValue::Present(locators) => {
                w.u8(1);
                w.u16(locators.len() as u16);
                for l in locators {
                    write_locator(&mut w, l);
                }
            }
        }
    }
    let crc = crc32(w.as_bytes());
    w.u32(crc);
    w.into_bytes()
}

/// Decodes SSTable bytes. Never panics on corrupt input.
pub fn decode_sstable(bytes: &[u8]) -> Result<Vec<SsEntry>, CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated { needed: 4, remaining: bytes.len() });
    }
    let body = &bytes[..bytes.len() - 4];
    let mut crc_r = Reader::new(&bytes[bytes.len() - 4..]);
    if crc32(body) != crc_r.u32()? {
        return Err(CodecError::BadChecksum);
    }
    let mut r = Reader::new(body);
    r.expect(SSTABLE_MAGIC)?;
    if r.u16()? != FORMAT_VERSION {
        return Err(CodecError::BadValue);
    }
    let count = r.u32()? as usize;
    // Minimum entry size is 17 bytes (key + tag); reject absurd counts
    // before allocating.
    if count.checked_mul(17).map(|n| n > r.remaining()).unwrap_or(true) {
        return Err(CodecError::BadLength);
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let mut key = [0u8; 16];
        key.copy_from_slice(r.bytes(16)?);
        let key = u128::from_le_bytes(key);
        let value = match r.u8()? {
            0 => IndexValue::Tombstone,
            1 => {
                let n = r.u16()? as usize;
                if n.checked_mul(28).map(|b| b > r.remaining()).unwrap_or(true) {
                    return Err(CodecError::BadLength);
                }
                let mut locators = Vec::with_capacity(n);
                for _ in 0..n {
                    locators.push(read_locator(&mut r)?);
                }
                IndexValue::Present(locators)
            }
            _ => return Err(CodecError::BadValue),
        };
        entries.push((key, value));
    }
    if r.remaining() != 0 {
        return Err(CodecError::BadLength);
    }
    Ok(entries)
}

/// A descriptor of one live SSTable in the metadata record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDescriptor {
    /// Monotonic table id (newer tables have higher ids).
    pub id: u64,
    /// Chunks holding the serialized table, in order (a large table spans
    /// several chunks, exactly as shard data does).
    pub locators: Vec<Locator>,
}

/// The LSM metadata record: the authoritative list of live tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetadataRecord {
    /// Monotonic sequence; highest valid record wins at recovery.
    pub seq: u64,
    /// Live tables, newest first.
    pub tables: Vec<TableDescriptor>,
}

/// Serializes a metadata record.
pub fn encode_metadata(record: &MetadataRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(META_MAGIC).u16(FORMAT_VERSION).u64(record.seq).u32(record.tables.len() as u32);
    for t in &record.tables {
        w.u64(t.id);
        w.u16(t.locators.len() as u16);
        for l in &t.locators {
            write_locator(&mut w, l);
        }
    }
    let crc = crc32(w.as_bytes());
    w.u32(crc);
    w.into_bytes()
}

/// Decodes a metadata record. Never panics on corrupt input.
pub fn decode_metadata(bytes: &[u8]) -> Result<MetadataRecord, CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated { needed: 4, remaining: bytes.len() });
    }
    let body = &bytes[..bytes.len() - 4];
    let mut crc_r = Reader::new(&bytes[bytes.len() - 4..]);
    if crc32(body) != crc_r.u32()? {
        return Err(CodecError::BadChecksum);
    }
    let mut r = Reader::new(body);
    r.expect(META_MAGIC)?;
    if r.u16()? != FORMAT_VERSION {
        return Err(CodecError::BadValue);
    }
    let seq = r.u64()?;
    let count = r.u32()? as usize;
    // Each table needs at least 10 bytes (id + locator count).
    if count.checked_mul(10).map(|n| n > r.remaining()).unwrap_or(true) {
        return Err(CodecError::BadLength);
    }
    let mut tables = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u64()?;
        let n = r.u16()? as usize;
        if n.checked_mul(28).map(|b| b > r.remaining()).unwrap_or(true) {
            return Err(CodecError::BadLength);
        }
        let mut locators = Vec::with_capacity(n);
        for _ in 0..n {
            locators.push(read_locator(&mut r)?);
        }
        tables.push(TableDescriptor { id, locators });
    }
    if r.remaining() != 0 {
        return Err(CodecError::BadLength);
    }
    Ok(MetadataRecord { seq, tables })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(e: u32, off: u32) -> Locator {
        Locator { extent: ExtentId(e), offset: off, len: 10, uuid: (e as u128) << 64 | off as u128 }
    }

    #[test]
    fn sstable_roundtrip() {
        let entries = vec![
            (1u128, IndexValue::Present(vec![loc(1, 0), loc(2, 50)])),
            (2u128, IndexValue::Tombstone),
            (u128::MAX, IndexValue::Present(vec![])),
        ];
        let bytes = encode_sstable(&entries);
        assert_eq!(decode_sstable(&bytes).unwrap(), entries);
    }

    #[test]
    fn sstable_detects_bit_flips() {
        let entries = vec![(7u128, IndexValue::Present(vec![loc(3, 9)]))];
        let bytes = encode_sstable(&entries);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_sstable(&bad).is_err(), "flip at {i} undetected");
        }
    }

    #[test]
    fn sstable_rejects_trailing_garbage() {
        let entries = vec![(7u128, IndexValue::Tombstone)];
        let mut bytes = encode_sstable(&entries);
        bytes.extend_from_slice(b"junk");
        assert!(decode_sstable(&bytes).is_err());
    }

    #[test]
    fn metadata_roundtrip() {
        let record = MetadataRecord {
            seq: 42,
            tables: vec![
                TableDescriptor { id: 9, locators: vec![loc(4, 100), loc(4, 200)] },
                TableDescriptor { id: 3, locators: vec![loc(5, 0)] },
            ],
        };
        let bytes = encode_metadata(&record);
        assert_eq!(decode_metadata(&bytes).unwrap(), record);
    }

    #[test]
    fn metadata_detects_corruption() {
        let record = MetadataRecord { seq: 1, tables: vec![] };
        let mut bytes = encode_metadata(&record);
        bytes[8] ^= 0xFF;
        assert!(decode_metadata(&bytes).is_err());
    }

    #[test]
    fn empty_sstable_roundtrips() {
        let bytes = encode_sstable(&[]);
        assert_eq!(decode_sstable(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn decoders_reject_absurd_counts_without_allocating() {
        // Craft a header claiming u32::MAX entries.
        let mut w = Writer::new();
        w.bytes(SSTABLE_MAGIC).u16(FORMAT_VERSION).u32(u32::MAX);
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(decode_sstable(&bytes).is_err());
    }
}
