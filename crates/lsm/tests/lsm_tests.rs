//! Integration tests of the LSM index over the full substrate stack
//! (chunk store, cache, extent manager, IO scheduler, virtual disk).

use shardstore_cache::CachedChunkStore;
use shardstore_chunk::{ChunkStore, Locator, Referencer, Stream};
use shardstore_dependency::IoScheduler;
use shardstore_faults::{BugId, FaultConfig};
use shardstore_lsm::LsmIndex;
use shardstore_superblock::ExtentManager;
use shardstore_vdisk::{CrashPlan, Disk, ExtentId, Geometry};

fn setup_with(geometry: Geometry, faults: FaultConfig) -> LsmIndex {
    let disk = Disk::new(geometry);
    let sched = IoScheduler::new(disk);
    let em = ExtentManager::format(sched, faults.clone());
    let cs = ChunkStore::new(em, faults.clone(), 99);
    let cache = CachedChunkStore::new(cs, faults.clone(), 4096);
    LsmIndex::new(cache, faults)
}

fn setup() -> LsmIndex {
    setup_with(Geometry::small(), FaultConfig::none())
}

fn loc(e: u32, off: u32, uuid: u128) -> Locator {
    Locator { extent: ExtentId(e), offset: off, len: 8, uuid }
}

fn pump(index: &LsmIndex) {
    index.cache().chunk_store().extent_manager().pump().unwrap();
}

/// Test helper: put with no data dependency (synthetic locators).
trait PutNoData {
    fn put2(&self, key: u128, locators: Vec<Locator>) -> shardstore_dependency::Dependency;
}

impl PutNoData for LsmIndex {
    fn put2(&self, key: u128, locators: Vec<Locator>) -> shardstore_dependency::Dependency {
        let none = self.cache().chunk_store().extent_manager().scheduler().none();
        self.put(key, locators, none)
    }
}

fn recover(index: &LsmIndex, faults: FaultConfig) -> LsmIndex {
    let sched = index.cache().chunk_store().extent_manager().scheduler().clone();
    let em = ExtentManager::recover(sched, faults.clone()).unwrap();
    let cs = ChunkStore::recover(em, faults.clone(), 100).unwrap();
    let cache = CachedChunkStore::new(cs, faults.clone(), 4096);
    LsmIndex::recover(cache, faults).unwrap()
}

#[test]
fn put_get_from_memtable() {
    let index = setup();
    index.put2(5, vec![loc(3, 0, 11)]);
    assert_eq!(index.get(5).unwrap(), Some(vec![loc(3, 0, 11)]));
    assert_eq!(index.get(6).unwrap(), None);
}

#[test]
fn delete_shadows_earlier_put() {
    let index = setup();
    index.put2(5, vec![loc(3, 0, 11)]);
    index.delete(5);
    assert_eq!(index.get(5).unwrap(), None);
}

#[test]
fn get_reads_from_sstable_after_flush() {
    let index = setup();
    index.put2(5, vec![loc(3, 0, 11)]);
    index.flush().unwrap();
    assert_eq!(index.memtable_len(), 0);
    assert_eq!(index.table_count(), 1);
    assert_eq!(index.get(5).unwrap(), Some(vec![loc(3, 0, 11)]));
}

#[test]
fn newer_table_shadows_older() {
    let index = setup();
    index.put2(5, vec![loc(3, 0, 1)]);
    index.flush().unwrap();
    index.put2(5, vec![loc(4, 0, 2)]);
    index.flush().unwrap();
    assert_eq!(index.get(5).unwrap(), Some(vec![loc(4, 0, 2)]));
}

#[test]
fn tombstone_in_newer_table_hides_older_entry() {
    let index = setup();
    index.put2(5, vec![loc(3, 0, 1)]);
    index.flush().unwrap();
    index.delete(5);
    index.flush().unwrap();
    assert_eq!(index.get(5).unwrap(), None);
}

#[test]
fn put_dependency_persists_after_flush_and_pump() {
    let index = setup();
    let dep = index.put2(5, vec![loc(3, 0, 1)]);
    assert!(!dep.is_persistent());
    index.flush().unwrap();
    assert!(!dep.is_persistent(), "flush alone does not persist (IO not pumped)");
    pump(&index);
    assert!(dep.is_persistent());
}

#[test]
fn shutdown_seals_every_dependency() {
    let index = setup();
    let deps: Vec<_> = (0..10u128).map(|k| index.put2(k, vec![loc(3, k as u32, k)])).collect();
    index.shutdown().unwrap();
    for (i, d) in deps.iter().enumerate() {
        assert!(d.is_persistent(), "dependency {i} not persistent after clean shutdown");
    }
}

#[test]
fn recovery_restores_flushed_entries() {
    let index = setup();
    index.put2(1, vec![loc(3, 0, 1)]);
    index.put2(2, vec![loc(3, 50, 2)]);
    index.shutdown().unwrap();
    index.cache().chunk_store().extent_manager().scheduler().crash(&CrashPlan::LoseAll);
    let index2 = recover(&index, FaultConfig::none());
    assert_eq!(index2.get(1).unwrap(), Some(vec![loc(3, 0, 1)]));
    assert_eq!(index2.get(2).unwrap(), Some(vec![loc(3, 50, 2)]));
}

#[test]
fn unflushed_entries_lost_after_crash_and_deps_report_it() {
    let index = setup();
    index.put2(1, vec![loc(3, 0, 1)]);
    index.shutdown().unwrap();
    let dep2 = index.put2(2, vec![loc(3, 50, 2)]);
    // Crash without flushing the second put.
    index.cache().chunk_store().extent_manager().scheduler().crash(&CrashPlan::LoseAll);
    assert!(!dep2.is_persistent());
    let index2 = recover(&index, FaultConfig::none());
    assert_eq!(index2.get(1).unwrap(), Some(vec![loc(3, 0, 1)]));
    assert_eq!(index2.get(2).unwrap(), None);
}

#[test]
fn compaction_preserves_merged_view() {
    let index = setup();
    for k in 0..6u128 {
        index.put2(k, vec![loc(3, k as u32 * 10, k)]);
        index.flush().unwrap();
    }
    index.delete(0);
    index.put2(1, vec![loc(4, 0, 100)]);
    index.flush().unwrap();
    assert!(index.table_count() >= 3);
    // Tiered compaction is incremental: each round merges a bounded run
    // and strictly reduces the table count, so repeated rounds converge.
    while index.table_count() > 1 {
        let before = index.table_count();
        index.compact().unwrap();
        assert!(index.table_count() < before, "compaction round made no progress");
    }
    assert_eq!(index.get(0).unwrap(), None);
    assert_eq!(index.get(1).unwrap(), Some(vec![loc(4, 0, 100)]));
    for k in 2..6u128 {
        assert_eq!(index.get(k).unwrap(), Some(vec![loc(3, k as u32 * 10, k)]));
    }
}

#[test]
fn compaction_result_survives_recovery() {
    let index = setup();
    for k in 0..4u128 {
        index.put2(k, vec![loc(3, k as u32 * 10, k)]);
        index.flush().unwrap();
    }
    while index.table_count() > 1 {
        index.compact().unwrap();
    }
    index.shutdown().unwrap();
    index.cache().chunk_store().extent_manager().scheduler().crash(&CrashPlan::LoseAll);
    let index2 = recover(&index, FaultConfig::none());
    for k in 0..4u128 {
        assert_eq!(index2.get(k).unwrap(), Some(vec![loc(3, k as u32 * 10, k)]));
    }
    assert_eq!(index2.table_count(), 1);
}

#[test]
fn keys_lists_merged_present_view() {
    let index = setup();
    index.put2(3, vec![loc(3, 0, 1)]);
    index.put2(1, vec![loc(3, 10, 2)]);
    index.flush().unwrap();
    index.delete(3);
    index.put2(2, vec![loc(3, 20, 3)]);
    assert_eq!(index.keys().unwrap(), vec![1, 2]);
}

#[test]
fn overwrite_during_flush_window_is_not_lost() {
    // Sequential variant: overwrite between mutation and flush must win.
    let index = setup();
    index.put2(7, vec![loc(3, 0, 1)]);
    index.put2(7, vec![loc(3, 10, 2)]);
    index.flush().unwrap();
    assert_eq!(index.get(7).unwrap(), Some(vec![loc(3, 10, 2)]));
}

#[test]
fn data_referencer_tracks_liveness() {
    let index = setup();
    let referencer = index.data_referencer();
    let l1 = loc(3, 0, 1);
    let l2 = loc(3, 10, 2);
    index.put2(7, vec![l1, l2]);
    assert!(referencer.is_live(&l1));
    assert!(referencer.is_live(&l2));
    // Overwrite: old locators no longer referenced.
    let l3 = loc(4, 0, 3);
    index.put2(7, vec![l3]);
    assert!(!referencer.is_live(&l1));
    assert!(referencer.is_live(&l3));
    index.delete(7);
    assert!(!referencer.is_live(&l3));
}

#[test]
fn data_referencer_liveness_survives_flush_and_recovery() {
    let index = setup();
    let l1 = loc(3, 0, 1);
    index.put2(7, vec![l1]);
    index.shutdown().unwrap();
    index.cache().chunk_store().extent_manager().scheduler().crash(&CrashPlan::LoseAll);
    let index2 = recover(&index, FaultConfig::none());
    assert!(index2.data_referencer().is_live(&l1));
}

#[test]
fn data_referencer_relocation_rewrites_entry() {
    let index = setup();
    let referencer = index.data_referencer();
    let old = loc(3, 0, 1);
    let keep = loc(3, 10, 2);
    index.put2(7, vec![old, keep]);
    let new = loc(5, 0, 9);
    let none = index.cache().chunk_store().extent_manager().scheduler().none();
    let dep = referencer.relocated(&old, &new, &none);
    assert_eq!(index.get(7).unwrap(), Some(vec![new, keep]));
    // The rewrite becomes durable via the normal flush path.
    assert!(!dep.is_persistent());
    index.flush().unwrap();
    pump(&index);
    assert!(dep.is_persistent());
}

#[test]
fn lsm_referencer_covers_tables_and_metadata() {
    let index = setup();
    index.put2(1, vec![loc(3, 0, 1)]);
    index.flush().unwrap();
    pump(&index);
    let referencer = index.lsm_referencer();
    // Every registered chunk on Lsm/Meta extents must be live right after
    // a flush (one table + one metadata record; older metadata records
    // are dead).
    let em = index.cache().chunk_store().extent_manager().clone();
    let mut live = 0;
    let mut dead = 0;
    for l in index.cache().chunk_store().registered_locators() {
        match em.owner(l.extent) {
            shardstore_superblock::Owner::LsmData | shardstore_superblock::Owner::Metadata => {
                if referencer.is_live(&l) {
                    live += 1;
                } else {
                    dead += 1;
                }
            }
            _ => {}
        }
    }
    assert_eq!(live, 2, "one live table chunk + one live metadata record");
    assert_eq!(dead, 0);
    // After another flush, the old metadata record is dead.
    index.put2(2, vec![loc(3, 10, 2)]);
    index.flush().unwrap();
    let dead_now = index
        .cache()
        .chunk_store()
        .registered_locators()
        .iter()
        .filter(|l| {
            matches!(
                em.owner(l.extent),
                shardstore_superblock::Owner::LsmData | shardstore_superblock::Owner::Metadata
            ) && !referencer.is_live(l)
        })
        .count();
    assert!(dead_now >= 1, "old metadata records become garbage");
}

#[test]
fn reclaiming_lsm_extent_relocates_live_tables() {
    let index = setup_with(Geometry::small(), FaultConfig::none());
    // Create several tables so the LSM extent has content, then compact
    // so most are garbage.
    for k in 0..5u128 {
        index.put2(k, vec![loc(3, k as u32, k)]);
        index.flush().unwrap();
    }
    index.compact().unwrap();
    pump(&index);
    let referencer = index.lsm_referencer();
    // Reclaim every Lsm extent; live chunks must survive.
    let em = index.cache().chunk_store().extent_manager().clone();
    for ext in em.extents_owned_by(shardstore_superblock::Owner::LsmData) {
        index.cache().reclaim(ext, Stream::Lsm, &referencer).unwrap();
    }
    pump(&index);
    for k in 0..5u128 {
        assert_eq!(index.get(k).unwrap(), Some(vec![loc(3, k as u32, k)]));
    }
    // And the result survives a crash + recovery.
    index.shutdown().unwrap();
    index.cache().chunk_store().extent_manager().scheduler().crash(&CrashPlan::LoseAll);
    let index2 = recover(&index, FaultConfig::none());
    for k in 0..5u128 {
        assert_eq!(index2.get(k).unwrap(), Some(vec![loc(3, k as u32, k)]));
    }
}

#[test]
fn b3_seeded_shutdown_skips_flush_after_reset() {
    let faults = FaultConfig::seed(BugId::B3MetadataShutdownFlush);
    let index = setup_with(Geometry::small(), faults.clone());
    index.put2(1, vec![loc(3, 0, 1)]);
    index.note_extent_reset();
    let dep = index.put2(2, vec![loc(3, 10, 2)]);
    index.shutdown().unwrap();
    // Forward-progress violation: a clean shutdown left a dependency
    // non-persistent.
    assert!(!dep.is_persistent(), "buggy shutdown must skip the flush");
    // Fixed behaviour for contrast.
    let index = setup();
    index.put2(1, vec![loc(3, 0, 1)]);
    index.note_extent_reset();
    let dep = index.put2(2, vec![loc(3, 10, 2)]);
    index.shutdown().unwrap();
    assert!(dep.is_persistent());
}

#[test]
fn metadata_write_depends_on_table_chunk() {
    // Issue exactly one IO at a time and verify the metadata chunk is
    // never on disk before the table chunk it references.
    let index = setup();
    index.put2(1, vec![loc(3, 0, 1)]);
    index.flush().unwrap();
    let sched = index.cache().chunk_store().extent_manager().scheduler().clone();
    // At this point the SSTable + metadata writes are queued. Issue one.
    sched.issue_ready(1).unwrap();
    sched.crash(&CrashPlan::KeepAll);
    // Whatever survived, recovery must not see a metadata record that
    // references a missing table.
    let index2 = recover(&index, FaultConfig::none());
    // get() must not fail with corruption: either the entry is there
    // (both persisted) or cleanly absent.
    match index2.get(1) {
        Ok(_) => {}
        Err(e) => panic!("recovery produced a dangling metadata reference: {e}"),
    }
}

#[test]
fn many_entries_across_flushes_remain_consistent() {
    let index = setup_with(
        Geometry { extent_count: 32, pages_per_extent: 8, page_size: 128 },
        FaultConfig::none(),
    );
    let mut expected = std::collections::BTreeMap::new();
    for round in 0..8u128 {
        for k in 0..12u128 {
            if (k + round) % 4 == 0 {
                index.delete(k);
                expected.remove(&k);
            } else {
                let l = loc(3, (round * 16 + k) as u32, round * 100 + k);
                index.put2(k, vec![l]);
                expected.insert(k, vec![l]);
            }
        }
        index.flush().unwrap();
        if round % 3 == 2 {
            index.compact().unwrap();
        }
    }
    for k in 0..12u128 {
        assert_eq!(index.get(k).unwrap(), expected.get(&k).cloned(), "key {k}");
    }
    assert_eq!(
        index.keys().unwrap(),
        expected.keys().copied().collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------------------
// Read path: fences, blooms, decoded-table cache, relocation retry.
//
// Coverage probes are process-global, so tests that assert on counts
// serialize on a local mutex (same pattern as the coverage module's own
// tests).
// ---------------------------------------------------------------------------

use shardstore_faults::coverage;
use shardstore_lsm::LsmConfig;
use std::sync::Mutex;

static COVERAGE_LOCK: Mutex<()> = Mutex::new(());

fn cov_guard() -> std::sync::MutexGuard<'static, ()> {
    COVERAGE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn setup_config(config: LsmConfig) -> LsmIndex {
    let disk = Disk::new(Geometry::small());
    let sched = IoScheduler::new(disk);
    let em = ExtentManager::format(sched, FaultConfig::none());
    let cs = ChunkStore::new(em, FaultConfig::none(), 99);
    let cache = CachedChunkStore::new(cs, FaultConfig::none(), 4096);
    LsmIndex::with_config(cache, FaultConfig::none(), config)
}

#[test]
fn fences_skip_tables_outside_key_range() {
    let _g = cov_guard();
    let index = setup();
    for k in 0..8u128 {
        index.put2(k, vec![loc(3, k as u32, k)]);
    }
    index.flush().unwrap();
    for k in 100..108u128 {
        index.put2(k, vec![loc(3, k as u32, k)]);
    }
    index.flush().unwrap();
    index.drop_decoded_cache();
    let _rec = coverage::Recording::start();
    // Key 3 lives in the older table; the newer table's fence is
    // [100, 107], so the lookup must skip it without reading a chunk.
    assert_eq!(index.get(3).unwrap(), Some(vec![loc(3, 3, 3)]));
    assert!(coverage::count("lsm.get.fence_skip") >= 1, "newest table not fence-skipped");
    assert_eq!(coverage::count("lsm.decoded.miss"), 1, "exactly one table decoded");
}

#[test]
fn blooms_skip_overlapping_tables_without_the_key() {
    let _g = cov_guard();
    let index = setup();
    // Even keys in one table, odd keys in another: the fences overlap,
    // so only the bloom can skip the wrong table.
    for k in (0..16u128).step_by(2) {
        index.put2(k, vec![loc(3, k as u32, k)]);
    }
    index.flush().unwrap();
    for k in (1..16u128).step_by(2) {
        index.put2(k, vec![loc(3, k as u32, k)]);
    }
    index.flush().unwrap();
    let _rec = coverage::Recording::start();
    for k in (2..16u128).step_by(2) {
        assert_eq!(index.get(k).unwrap(), Some(vec![loc(3, k as u32, k)]));
    }
    // Each even-key lookup is inside the odd table's fence; with a ~1%
    // false-positive rate at 10 bits/key the bloom must reject at least
    // one of the seven (the filter is deterministic, so this is stable).
    assert!(coverage::count("lsm.get.bloom_skip") >= 1, "bloom never skipped a table");
}

#[test]
fn decoded_cache_avoids_repeat_decodes() {
    let _g = cov_guard();
    let index = setup();
    index.put2(5, vec![loc(3, 0, 11)]);
    index.flush().unwrap();
    index.drop_decoded_cache();
    let _rec = coverage::Recording::start();
    assert_eq!(index.get(5).unwrap(), Some(vec![loc(3, 0, 11)]));
    assert_eq!(coverage::count("lsm.decoded.miss"), 1);
    assert_eq!(coverage::count("lsm.decoded.hit"), 0);
    assert_eq!(index.get(5).unwrap(), Some(vec![loc(3, 0, 11)]));
    assert_eq!(coverage::count("lsm.decoded.miss"), 1, "second read must not re-decode");
    assert_eq!(coverage::count("lsm.decoded.hit"), 1);
}

#[test]
fn decoded_cache_capacity_zero_disables_caching() {
    let _g = cov_guard();
    let index = setup_config(LsmConfig {
        filters: true,
        decoded_cache_tables: 0,
        memtable_shards: 4,
        ..LsmConfig::default()
    });
    index.put2(5, vec![loc(3, 0, 11)]);
    index.flush().unwrap();
    let _rec = coverage::Recording::start();
    assert_eq!(index.get(5).unwrap(), Some(vec![loc(3, 0, 11)]));
    assert_eq!(index.get(5).unwrap(), Some(vec![loc(3, 0, 11)]));
    assert_eq!(coverage::count("lsm.decoded.hit"), 0);
    assert_eq!(coverage::count("lsm.decoded.miss"), 2);
}

#[test]
fn decoded_cache_evicts_least_recently_used_table() {
    let _g = cov_guard();
    let index = setup_config(LsmConfig {
        filters: false,
        decoded_cache_tables: 2,
        memtable_shards: 4,
        ..LsmConfig::default()
    });
    // Three tables, capacity two: reading all three in order must evict.
    for k in 0..3u128 {
        index.put2(k, vec![loc(3, k as u32, k)]);
        index.flush().unwrap();
    }
    index.drop_decoded_cache();
    let _rec = coverage::Recording::start();
    // Filters are off, so each get touches every newer table too; the
    // oldest key walks all three tables and fills + overflows the cache.
    for k in (0..3u128).rev() {
        assert_eq!(index.get(k).unwrap(), Some(vec![loc(3, k as u32, k)]));
    }
    assert!(coverage::count("lsm.decoded.evict") >= 1, "capacity-2 cache never evicted");
}

#[test]
fn filters_disabled_reads_stay_correct() {
    let _g = cov_guard();
    let index = setup_config(LsmConfig {
        filters: false,
        decoded_cache_tables: 8,
        memtable_shards: 4,
        ..LsmConfig::default()
    });
    for k in 0..8u128 {
        index.put2(k, vec![loc(3, k as u32, k)]);
    }
    index.flush().unwrap();
    for k in 100..104u128 {
        index.put2(k, vec![loc(3, k as u32, k)]);
    }
    index.flush().unwrap();
    let _rec = coverage::Recording::start();
    for k in 0..8u128 {
        assert_eq!(index.get(k).unwrap(), Some(vec![loc(3, k as u32, k)]));
    }
    assert_eq!(index.get(50).unwrap(), None);
    assert_eq!(coverage::count("lsm.get.fence_skip"), 0);
    assert_eq!(coverage::count("lsm.get.bloom_skip"), 0);
}

#[test]
fn relocation_between_snapshot_and_read_retries_with_new_locators() {
    let _g = cov_guard();
    let index = setup();
    for k in 0..5u128 {
        index.put2(k, vec![loc(3, k as u32, k)]);
        index.flush().unwrap();
    }
    index.compact().unwrap();
    pump(&index);
    let _rec = coverage::Recording::start();
    let em = index.cache().chunk_store().extent_manager().clone();
    let mut fired = false;
    let mut hook = || {
        // The reader has snapshotted the (old) table locators. Relocate
        // every live LSM chunk out from under it, then drop the decoded
        // cache so the lookup must follow the stale locators to disk.
        let referencer = index.lsm_referencer();
        for ext in em.extents_owned_by(shardstore_superblock::Owner::LsmData) {
            index.cache().reclaim(ext, Stream::Lsm, &referencer).unwrap();
        }
        pump(&index);
        index.drop_decoded_cache();
        fired = true;
    };
    assert_eq!(
        index.get_with_race_hook(3, &mut hook).unwrap(),
        Some(vec![loc(3, 3, 3)]),
        "retried read must return the value via the relocated table"
    );
    assert!(fired);
    assert!(
        coverage::count("lsm.get.retry_relocated") >= 1,
        "the stale-snapshot read must have retried"
    );
}

// ---------------------------------------------------------------------------
// Reverse-map (key -> locators) bookkeeping in the data referencer.
// ---------------------------------------------------------------------------

#[test]
fn shared_locator_claim_survives_first_owner_overwrite() {
    // Two keys claiming the same locator: the newer claim owns it, and
    // the older key's overwrite must not revoke the newer key's claim.
    let index = setup();
    let referencer = index.data_referencer();
    let l = loc(3, 0, 1);
    index.put2(1, vec![l]);
    index.put2(2, vec![l]);
    index.put2(1, vec![loc(4, 0, 2)]);
    assert!(referencer.is_live(&l), "key 2 still references the locator");
    index.put2(2, vec![loc(4, 10, 3)]);
    assert!(!referencer.is_live(&l), "no key references the locator anymore");
}

#[test]
fn data_referencer_matches_brute_force_model_under_churn() {
    use std::collections::{BTreeMap, BTreeSet};
    let index = setup_with(
        Geometry { extent_count: 64, pages_per_extent: 16, page_size: 128 },
        FaultConfig::none(),
    );
    let referencer = index.data_referencer();
    let mut expected: BTreeMap<u128, Vec<Locator>> = BTreeMap::new();
    let mut all: BTreeSet<Locator> = BTreeSet::new();
    let mut rng: u64 = 0xD00D_F00D;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for step in 0..400u32 {
        let key = (next() % 12) as u128;
        match next() % 6 {
            0..=3 => {
                let n = 1 + (next() % 3) as usize;
                let locators: Vec<Locator> = (0..n)
                    .map(|i| loc(3 + (next() % 4) as u32, step * 8 + i as u32, step as u128))
                    .collect();
                all.extend(locators.iter().copied());
                index.put2(key, locators.clone());
                expected.insert(key, locators);
            }
            4 => {
                index.delete(key);
                expected.remove(&key);
            }
            _ => {
                if index.memtable_len() > 0 && step % 3 == 0 {
                    index.flush().unwrap();
                }
            }
        }
    }
    // Every locator ever handed out is live iff some key still maps to it.
    for l in &all {
        let model_live = expected.values().any(|ls| ls.contains(l));
        assert_eq!(referencer.is_live(l), model_live, "locator {l:?} liveness diverged");
    }
}

/// §4 invariant, property-tested: under arbitrary interleavings of puts,
/// deletes, flushes, and compactions, the reverse map (`refs`) and the
/// forward map (`refs_by_key`) describe exactly the same relation — the
/// eager cleanup on delete/overwrite must never leave a dangling edge in
/// either direction.
mod refs_sync_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn refs_maps_stay_in_exact_sync(
            ops in proptest::collection::vec((0u8..6, 0u8..12, 1u8..4), 1..40),
        ) {
            let index = setup_with(
                Geometry { extent_count: 64, pages_per_extent: 16, page_size: 128 },
                FaultConfig::none(),
            );
            let mut step = 0u32;
            for (op, key, n) in ops {
                let key = key as u128;
                match op {
                    0..=2 => {
                        step += 1;
                        let locators: Vec<Locator> = (0..n as u32)
                            .map(|i| loc(3 + (step % 4), step * 8 + i, step as u128))
                            .collect();
                        index.put2(key, locators);
                    }
                    3 => {
                        index.delete(key);
                    }
                    4 => {
                        let _ = index.flush();
                    }
                    _ => {
                        let _ = index.compact();
                    }
                }
                prop_assert!(
                    index.refs_maps_in_sync(),
                    "refs/refs_by_key diverged after step {}",
                    step
                );
            }
        }
    }
}
