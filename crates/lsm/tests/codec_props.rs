//! Property-based tests of the SSTable and metadata codecs: §7
//! panic-freedom on arbitrary bytes, round trips, and corruption
//! detection.

use proptest::prelude::*;
use shardstore_chunk::Locator;
use shardstore_lsm::codec::{
    decode_metadata, decode_sstable, encode_metadata, encode_sstable, IndexValue, MetadataRecord,
    TableDescriptor,
};
use shardstore_vdisk::ExtentId;

fn locator_strategy() -> impl Strategy<Value = Locator> {
    (any::<u32>(), any::<u32>(), any::<u32>(), any::<u128>())
        .prop_map(|(e, o, l, u)| Locator { extent: ExtentId(e), offset: o, len: l, uuid: u })
}

fn value_strategy() -> impl Strategy<Value = IndexValue> {
    prop_oneof![
        1 => Just(IndexValue::Tombstone),
        3 => proptest::collection::vec(locator_strategy(), 0..4).prop_map(IndexValue::Present),
    ]
}

/// Entry lists as the LSM produces them: sorted by key, keys unique
/// (flush and compaction iterate a `BTreeMap`). The codec's contract —
/// and what the block fence index validates on decode.
fn entries_strategy(
    min: usize,
    max: usize,
) -> impl Strategy<Value = Vec<(u128, IndexValue)>> {
    proptest::collection::vec((any::<u128>(), value_strategy()), min..max).prop_map(|v| {
        let m: std::collections::BTreeMap<u128, IndexValue> = v.into_iter().collect();
        m.into_iter().collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic either decoder (§7).
    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode_sstable(&bytes);
        let _ = decode_metadata(&bytes);
    }

    /// SSTables round-trip arbitrary entry lists at arbitrary block sizes.
    #[test]
    fn sstable_roundtrip(entries in entries_strategy(0, 30), block_size in 1usize..20) {
        let bytes = encode_sstable(&entries, block_size);
        prop_assert_eq!(decode_sstable(&bytes).unwrap(), entries);
    }

    /// Metadata records round-trip arbitrary table lists.
    #[test]
    fn metadata_roundtrip(seq in any::<u64>(),
                          tables in proptest::collection::vec(
                              (any::<u64>(), proptest::collection::vec(locator_strategy(), 0..4)),
                              0..20,
                          )) {
        let record = MetadataRecord {
            seq,
            tables: tables
                .into_iter()
                .map(|(id, locators)| TableDescriptor { id, locators })
                .collect(),
        };
        let bytes = encode_metadata(&record);
        prop_assert_eq!(decode_metadata(&bytes).unwrap(), record);
    }

    /// Any single-byte corruption of an SSTable is detected.
    #[test]
    fn sstable_corruption_detected(
        entries in entries_strategy(1, 10),
        block_size in 1usize..8,
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let bytes = encode_sstable(&entries, block_size);
        let pos = pos_seed % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= xor;
        prop_assert!(decode_sstable(&corrupt).is_err(), "corruption at {pos} undetected");
    }

    /// Truncating an SSTable at any point is detected.
    #[test]
    fn sstable_truncation_detected(
        entries in entries_strategy(1, 10),
        block_size in 1usize..8,
        cut_seed in any::<usize>(),
    ) {
        let bytes = encode_sstable(&entries, block_size);
        let cut = cut_seed % bytes.len();
        prop_assert!(decode_sstable(&bytes[..cut]).is_err());
    }
}
