//! Substrate-level determinism and ordering tests: a toy world records
//! the exact dispatch order so the event-loop guarantees are pinned
//! without any storage stack in the loop.

use shardstore_sim::{
    CrashPoint, FaultPoint, PerturbProfile, SimCtx, SimFaultKind, SimSchedule, Simulator, World,
    OP_SPACING,
};

/// Records every dispatch as a rendered string; `apply` doubles as a
/// "send" that schedules delivery per a fixed delay table.
#[derive(Default)]
struct TraceWorld {
    log: Vec<String>,
    /// `(message, delay)` pairs applied at send time.
    delays: Vec<(usize, u64)>,
    /// Messages never delivered.
    drops: Vec<usize>,
}

impl World for TraceWorld {
    type Error = std::convert::Infallible;

    fn apply(&mut self, ctx: &mut SimCtx<'_>, i: usize) -> Result<(), Self::Error> {
        self.log.push(format!("send({i})@{}", ctx.now));
        if self.drops.contains(&i) {
            return Ok(());
        }
        let delay = self
            .delays
            .iter()
            .find(|(m, _)| *m == i)
            .map(|(_, d)| *d)
            .unwrap_or(1);
        ctx.schedule_delivery(ctx.now + delay, i);
        Ok(())
    }

    fn tick(&mut self, ctx: &mut SimCtx<'_>) -> Result<(), Self::Error> {
        self.log.push(format!("tick@{}", ctx.now));
        Ok(())
    }

    fn arm_fault(&mut self, f: &FaultPoint) -> Result<(), Self::Error> {
        self.log.push(format!("fault(op={},ext={})", f.at_op, f.extent));
        Ok(())
    }

    fn crash_restart(&mut self, c: &CrashPoint) -> Result<(), Self::Error> {
        self.log.push(format!("crash(op={})", c.at_op));
        Ok(())
    }

    fn deliver(&mut self, ctx: &mut SimCtx<'_>, m: usize) -> Result<(), Self::Error> {
        self.log.push(format!("deliver({m})@{}", ctx.now));
        Ok(())
    }

    fn settle(&mut self) -> Result<(), Self::Error> {
        self.log.push("settle".into());
        Ok(())
    }
}

#[test]
fn clean_schedule_runs_ops_in_order() {
    let mut w = TraceWorld::default();
    let report = Simulator::run(&mut w, 4, &SimSchedule::clean()).unwrap();
    assert_eq!(report.ops, 4);
    assert_eq!(report.deliveries, 4);
    assert_eq!(report.crashes, 0);
    // Each send is followed by its delivery before the next send (delay
    // 1 < OP_SPACING).
    let sends: Vec<usize> = w
        .log
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("send"))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(sends.len(), 4);
    for pair in sends.windows(2) {
        let between = &w.log[pair[0] + 1..pair[1]];
        assert!(between.iter().any(|l| l.starts_with("deliver")));
    }
    assert_eq!(w.log.last().unwrap(), "settle");
}

#[test]
fn fault_arms_immediately_before_its_op_and_crash_after() {
    let schedule = SimSchedule {
        faults: vec![FaultPoint { at_op: 2, extent: 7, kind: SimFaultKind::Permanent }],
        crashes: vec![CrashPoint { at_op: 1, keep_mask: 0 }],
        ..SimSchedule::clean()
    };
    let mut w = TraceWorld::default();
    Simulator::run(&mut w, 4, &schedule).unwrap();
    let pos = |needle: &str| w.log.iter().position(|l| l.starts_with(needle)).unwrap();
    assert!(pos("fault") < pos("send(2)"), "fault arms before op 2: {:?}", w.log);
    assert!(pos("fault") > pos("send(1)"), "fault arms after op 1: {:?}", w.log);
    assert!(pos("crash") > pos("send(1)"), "crash fires after op 1: {:?}", w.log);
    assert!(pos("crash") < pos("send(2)"), "crash fires before op 2: {:?}", w.log);
}

#[test]
fn delayed_delivery_reorders_past_later_sends() {
    let mut w = TraceWorld {
        delays: vec![(0, 2 * OP_SPACING)],
        ..Default::default()
    };
    Simulator::run(&mut w, 3, &SimSchedule::clean()).unwrap();
    let pos = |needle: &str| w.log.iter().position(|l| l.starts_with(needle)).unwrap();
    // Message 0 is delivered after message 1's delivery (reordering).
    assert!(pos("deliver(0)") > pos("deliver(1)"), "log: {:?}", w.log);
}

#[test]
fn dropped_messages_are_never_delivered() {
    let mut w = TraceWorld { drops: vec![1], ..Default::default() };
    let report = Simulator::run(&mut w, 3, &SimSchedule::clean()).unwrap();
    assert_eq!(report.ops, 3);
    assert_eq!(report.deliveries, 2);
    assert!(!w.log.iter().any(|l| l.starts_with("deliver(1)")));
}

#[test]
fn ticks_fire_every_tick_every_ops() {
    let schedule = SimSchedule { tick_every: 2, ..SimSchedule::clean() };
    let mut w = TraceWorld::default();
    let report = Simulator::run(&mut w, 6, &schedule).unwrap();
    assert_eq!(report.ticks, 3);
    let pos = |needle: &str| w.log.iter().position(|l| l.starts_with(needle)).unwrap();
    assert!(pos("tick") > pos("send(1)"));
    assert!(pos("tick") < pos("send(2)"));
}

#[test]
fn identical_inputs_give_identical_dispatch_order() {
    let profile = PerturbProfile::default();
    let schedule = SimSchedule::perturbed(0x5EED, 20, &profile);
    let run = |schedule: &SimSchedule| {
        let mut w = TraceWorld { delays: vec![(3, 40)], drops: vec![7], ..Default::default() };
        let report = Simulator::run(&mut w, 20, schedule).unwrap();
        (w.log, report)
    };
    let (log_a, rep_a) = run(&schedule);
    let (log_b, rep_b) = run(&schedule);
    assert_eq!(log_a, log_b);
    assert_eq!(rep_a, rep_b);
}

#[test]
fn world_errors_abort_the_run() {
    struct FailingWorld;
    impl World for FailingWorld {
        type Error = String;
        fn apply(&mut self, _ctx: &mut SimCtx<'_>, i: usize) -> Result<(), String> {
            if i == 2 {
                Err("boom".into())
            } else {
                Ok(())
            }
        }
    }
    let err = Simulator::run(&mut FailingWorld, 5, &SimSchedule::clean()).unwrap_err();
    assert_eq!(err, "boom");
}
