//! Deterministic whole-system simulation substrate (ROADMAP item 2).
//!
//! The paper's §4–§6 methodology — generate an operation sequence, inject
//! failures, check conformance against a reference model — previously
//! lived in four separate harness loops, each owning its own seed
//! handling and fault vocabulary. This crate is the single seeded
//! event-loop simulator those loops now run on (the TigerBeetle "VOPR"
//! shape): one logical clock, one ordered event queue, one schedule
//! vocabulary covering timer ticks, RPC delivery perturbation
//! (delay/drop/reorder), disk fault arming, and whole-node
//! crash-restart.
//!
//! The crate is deliberately substrate-only: it knows nothing about
//! stores, nodes, or models. A [`World`] (defined by the harness)
//! interprets each event against the system under test and its reference
//! model; the [`Simulator`] owns *when* events happen and guarantees that
//! the order is a pure function of the seed and the schedule.
//!
//! Layering:
//!
//! - [`clock`] — logical time (no wall clock on any checked path);
//! - [`rng`] — a tiny splitmix64 PRNG so schedules are seed-stable
//!   across platforms and toolchains;
//! - [`event`] — the `(time, seq)`-ordered event queue;
//! - [`schedule`] — the fault/delivery schedule vocabulary shared by all
//!   worlds, with `clean()` (frontend-compatible, no perturbation) and
//!   `perturbed()` (swarm) constructors plus the index-remapping helpers
//!   the auto-minimizer needs;
//! - [`sim`] — the event loop itself plus the [`World`] trait;
//! - [`swarm`] — aggregate statistics for compressed-time seed batches.

pub mod clock;
pub mod event;
pub mod rng;
pub mod schedule;
pub mod sim;
pub mod swarm;

pub use clock::LogicalClock;
pub use event::EventQueue;
pub use rng::SimRng;
pub use schedule::{CrashPoint, FaultPoint, PerturbProfile, SimFaultKind, SimSchedule};
pub use sim::{SimCtx, SimEvent, SimReport, Simulator, World, OP_SPACING};
pub use swarm::SwarmStats;
