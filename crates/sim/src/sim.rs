//! The seeded deterministic event loop.
//!
//! One [`Simulator::run`] call is one simulated execution: the schedule
//! is laid out on the logical timeline, and events pop in `(time, seq)`
//! order against a [`World`] supplied by the harness. Determinism is
//! structural — the order of dispatch is a pure function of `(n_ops,
//! schedule)` plus whatever deliveries the world schedules, which are
//! themselves derived from the schedule.
//!
//! Timeline layout (one operation occupies [`OP_SPACING`] ticks):
//!
//! - `Apply(i)` at `(i+1) * OP_SPACING`;
//! - a fault point for op `i` arms at `(i+1) * OP_SPACING - 2`
//!   ("immediately before the op", the fault-sweep convention);
//! - a timer tick after op `i` lands at `(i+1) * OP_SPACING + 1`;
//! - a crash-restart after op `i` lands at `(i+1) * OP_SPACING + 2`;
//! - message deliveries land wherever the world schedules them (send
//!   time plus the schedule's delay), which is how a delayed message
//!   overtakes — or is overtaken by — later traffic.

use shardstore_faults::coverage;

use crate::clock::LogicalClock;
use crate::event::EventQueue;
use crate::schedule::{CrashPoint, FaultPoint, SimFaultKind, SimSchedule};

/// Logical ticks between consecutive operations.
pub const OP_SPACING: u64 = 16;

/// An event on the unified queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Apply (or, in delivery worlds, *send*) operation `i`.
    Apply(usize),
    /// A timer tick (worlds typically pump background IO).
    Tick,
    /// Arm disk fault `schedule.faults[i]`.
    ArmFault(usize),
    /// Whole-node crash-restart `schedule.crashes[i]`.
    CrashRestart(usize),
    /// Deliver in-flight message `m` (scheduled by the world's `apply`).
    Deliver(usize),
}

/// The world's handle into the running simulation: the current logical
/// time, plus the ability to schedule future message deliveries.
pub struct SimCtx<'a> {
    /// Current logical time.
    pub now: u64,
    queue: &'a mut EventQueue<SimEvent>,
}

impl SimCtx<'_> {
    /// Schedules delivery of message `m` at absolute time `at` (clamped
    /// to now — deliveries never travel backwards in time).
    pub fn schedule_delivery(&mut self, at: u64, m: usize) {
        self.queue.push(at.max(self.now), SimEvent::Deliver(m));
    }
}

/// A system under test plus its reference model, interpreted one event
/// at a time. The simulator owns *when*; the world owns *what*.
pub trait World {
    /// The world's failure type (typically the harness divergence).
    type Error;

    /// Applies operation `i` — or, in delivery worlds, *sends* message
    /// `i` (scheduling its delivery through the context).
    fn apply(&mut self, ctx: &mut SimCtx<'_>, i: usize) -> Result<(), Self::Error>;

    /// A timer tick. Default: no-op.
    fn tick(&mut self, ctx: &mut SimCtx<'_>) -> Result<(), Self::Error> {
        let _ = ctx;
        Ok(())
    }

    /// Arms a disk fault.
    fn arm_fault(&mut self, f: &FaultPoint) -> Result<(), Self::Error> {
        let _ = f;
        Ok(())
    }

    /// Crash-restarts the whole node. Default: no-op (worlds without
    /// crash-aware checking ignore crash points).
    fn crash_restart(&mut self, c: &CrashPoint) -> Result<(), Self::Error> {
        let _ = c;
        Ok(())
    }

    /// Delivers in-flight message `m`. Default: no-op.
    fn deliver(&mut self, ctx: &mut SimCtx<'_>, m: usize) -> Result<(), Self::Error> {
        let _ = (ctx, m);
        Ok(())
    }

    /// Runs once after the queue drains (quiesce + end-of-run oracles).
    fn settle(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }
}

/// Statistics from one simulated execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Total events dispatched (including the implicit settle).
    pub events: u64,
    /// `Apply` events dispatched.
    pub ops: u64,
    /// Timer ticks dispatched.
    pub ticks: u64,
    /// Fault points armed.
    pub faults_armed: u64,
    /// Crash-restarts dispatched.
    pub crashes: u64,
    /// Message deliveries dispatched.
    pub deliveries: u64,
    /// Logical time when the queue drained.
    pub end_time: u64,
}

/// The deterministic event-loop simulator.
pub struct Simulator;

impl Simulator {
    /// Runs one `n_ops`-operation execution of `world` under `schedule`.
    /// Returns the world's error as soon as any event handler reports
    /// one; otherwise drains the queue, settles, and reports.
    pub fn run<W: World>(
        world: &mut W,
        n_ops: usize,
        schedule: &SimSchedule,
    ) -> Result<SimReport, W::Error> {
        let mut queue: EventQueue<SimEvent> = EventQueue::new();
        for i in 0..n_ops {
            queue.push((i as u64 + 1) * OP_SPACING, SimEvent::Apply(i));
        }
        for (fi, f) in schedule.faults.iter().enumerate() {
            queue.push((f.at_op as u64 + 1) * OP_SPACING - 2, SimEvent::ArmFault(fi));
        }
        for (ci, c) in schedule.crashes.iter().enumerate() {
            queue.push((c.at_op as u64 + 1) * OP_SPACING + 2, SimEvent::CrashRestart(ci));
        }
        if schedule.tick_every > 0 {
            let mut k = schedule.tick_every;
            while k <= n_ops {
                queue.push(k as u64 * OP_SPACING + 1, SimEvent::Tick);
                k += schedule.tick_every;
            }
        }
        let mut clock = LogicalClock::new();
        let mut report = SimReport::default();
        while let Some((t, ev)) = queue.pop() {
            clock.advance_to(t);
            report.events += 1;
            let mut ctx = SimCtx { now: clock.now(), queue: &mut queue };
            match ev {
                SimEvent::Apply(i) => {
                    world.apply(&mut ctx, i)?;
                    report.ops += 1;
                }
                SimEvent::Tick => {
                    coverage::hit("sim.perturb.tick");
                    world.tick(&mut ctx)?;
                    report.ticks += 1;
                }
                SimEvent::ArmFault(fi) => {
                    let f = schedule.faults[fi];
                    match f.kind {
                        SimFaultKind::Transient(_) => coverage::hit("sim.fault.transient"),
                        SimFaultKind::Permanent => coverage::hit("sim.fault.permanent"),
                    }
                    world.arm_fault(&f)?;
                    report.faults_armed += 1;
                }
                SimEvent::CrashRestart(ci) => {
                    coverage::hit("sim.perturb.crash_restart");
                    world.crash_restart(&schedule.crashes[ci])?;
                    report.crashes += 1;
                }
                SimEvent::Deliver(m) => {
                    world.deliver(&mut ctx, m)?;
                    report.deliveries += 1;
                }
            }
        }
        world.settle()?;
        report.events += 1;
        report.end_time = clock.now();
        Ok(report)
    }
}
