//! A tiny seed-stable PRNG (splitmix64).
//!
//! Schedules must be a pure function of the seed across platforms,
//! toolchains, and unrelated code motion — so the simulator carries its
//! own generator rather than depending on a general-purpose RNG whose
//! stream could shift under a version bump. Splitmix64 is the standard
//! choice for this job: stateless beyond one word, full-period, and
//! trivially auditable.

/// A splitmix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n == 0` returns 0).
    pub fn gen_range(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `per_mille`/1000.
    pub fn gen_bool_per_mille(&mut self, per_mille: u32) -> bool {
        self.gen_range(1000) < per_mille as u64
    }

    /// Derives an independent child generator. Forks with different
    /// labels (or from different parent states) are decorrelated, so a
    /// schedule can draw its fault points and its delivery plan from
    /// separate streams without one perturbation knob shifting another.
    pub fn fork(&mut self, label: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ label.wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_yield_equal_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            assert!(rng.gen_range(10) < 10);
        }
        assert_eq!(rng.gen_range(0), 0);
    }

    #[test]
    fn forks_are_decorrelated_but_deterministic() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        for _ in 0..32 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
        let mut c = SimRng::new(9);
        let mut fc = c.fork(2);
        let mut fa2 = SimRng::new(9).fork(1);
        let same = (0..16).filter(|_| fc.next_u64() == fa2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
