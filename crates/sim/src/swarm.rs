//! Aggregate statistics for swarm runs (batches of compressed-time
//! seeds).
//!
//! The substrate stays wall-clock-free: the harness measures elapsed
//! real time around its batch and asks [`SwarmStats::events_per_sec`]
//! for the throughput figure. Everything here is plain accumulation.

use crate::sim::SimReport;

/// Accumulated statistics across many simulated executions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SwarmStats {
    /// Executions completed.
    pub runs: u64,
    /// Total events dispatched.
    pub events: u64,
    /// Total operations applied.
    pub ops: u64,
    /// Total fault points armed.
    pub faults_armed: u64,
    /// Total crash-restarts dispatched.
    pub crashes: u64,
    /// Total message deliveries dispatched.
    pub deliveries: u64,
    /// Total ticks dispatched.
    pub ticks: u64,
}

impl SwarmStats {
    /// Folds one execution's report into the batch totals.
    pub fn absorb(&mut self, r: &SimReport) {
        self.runs += 1;
        self.events += r.events;
        self.ops += r.ops;
        self.faults_armed += r.faults_armed;
        self.crashes += r.crashes;
        self.deliveries += r.deliveries;
        self.ticks += r.ticks;
    }

    /// Simulated events per wall-clock second over `elapsed_secs`.
    pub fn events_per_sec(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / elapsed_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut s = SwarmStats::default();
        let r = SimReport { events: 10, ops: 5, ticks: 1, ..Default::default() };
        s.absorb(&r);
        s.absorb(&r);
        assert_eq!(s.runs, 2);
        assert_eq!(s.events, 20);
        assert_eq!(s.ops, 10);
        assert_eq!(s.ticks, 2);
    }

    #[test]
    fn throughput_handles_zero_elapsed() {
        let mut s = SwarmStats::default();
        s.events = 1000;
        assert_eq!(s.events_per_sec(0.0), 0.0);
        assert!((s.events_per_sec(2.0) - 500.0).abs() < f64::EPSILON);
    }
}
