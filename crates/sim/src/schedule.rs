//! The fault/delivery schedule vocabulary.
//!
//! A [`SimSchedule`] is everything about an execution that is *not* the
//! operation sequence: which disk faults arm and when, where the node
//! crash-restarts, which messages are dropped or delayed, and how often
//! the timer ticks. A failing seed is fully described by the pair
//! `(ops, schedule)` — which is exactly the pair the auto-minimizer
//! shrinks — and a `clean()` schedule reproduces the old straight-line
//! harness loops event for event.

use crate::rng::SimRng;

/// The kind of disk fault a schedule point arms (the fault-sweep
/// vocabulary, shared by every world).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimFaultKind {
    /// The next `n` IOs to the extent fail transiently.
    Transient(u32),
    /// Every IO to the extent fails until cleared (quarantine expected).
    Permanent,
}

/// A disk fault armed immediately before an operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// The fault arms immediately before this operation index.
    pub at_op: usize,
    /// Raw target extent (worlds wrap it into the live geometry).
    pub extent: u32,
    /// What kind of fault fires.
    pub kind: SimFaultKind,
}

/// A whole-node crash-restart injected after an operation completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// The crash fires after this operation index completes (and before
    /// the next one starts).
    pub at_op: usize,
    /// Survival mask over the disk's volatile pages at crash time (bit
    /// `i % 64` decides whether the i-th cached page survives).
    pub keep_mask: u64,
}

/// Perturbation intensity knobs for [`SimSchedule::perturbed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerturbProfile {
    /// Insert a timer tick after every `tick_every` operations (0 = no
    /// ticks).
    pub tick_every: usize,
    /// Number of disk-fault points to draw.
    pub faults: usize,
    /// Number of crash-restart points to draw.
    pub crashes: usize,
    /// Per-message drop probability in per-mille (delivery worlds only).
    pub drop_per_mille: u32,
    /// Per-message delay probability in per-mille (delivery worlds only).
    pub delay_per_mille: u32,
    /// Maximum delivery delay in logical ticks; delayed messages draw
    /// uniformly from `1..=max_delay`, which reorders them past later
    /// sends (one op is [`crate::sim::OP_SPACING`] ticks).
    pub max_delay: u64,
}

impl Default for PerturbProfile {
    fn default() -> Self {
        Self {
            tick_every: 5,
            faults: 1,
            crashes: 1,
            drop_per_mille: 50,
            delay_per_mille: 100,
            max_delay: 64,
        }
    }
}

/// A complete fault/delivery schedule for one simulated execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimSchedule {
    /// Disk faults to arm, by operation index.
    pub faults: Vec<FaultPoint>,
    /// Whole-node crash-restarts, by operation index.
    pub crashes: Vec<CrashPoint>,
    /// Timer ticks after every `tick_every` operations (0 = none).
    pub tick_every: usize,
    /// Message indices (equal to op indices in delivery worlds) whose
    /// delivery is dropped entirely.
    pub drops: Vec<usize>,
    /// `(message index, delay in ticks)` pairs: the message is delivered
    /// late, possibly after later sends (reordering).
    pub delays: Vec<(usize, u64)>,
}

impl SimSchedule {
    /// The empty schedule: no faults, no crashes, no ticks, perfect
    /// delivery. Frontends use this to reproduce the pre-simulator
    /// harness loops exactly.
    pub fn clean() -> Self {
        Self::default()
    }

    /// True when the schedule perturbs nothing.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
            && self.crashes.is_empty()
            && self.tick_every == 0
            && self.drops.is_empty()
            && self.delays.is_empty()
    }

    /// Draws a perturbed schedule for an `n_ops`-operation sequence.
    /// Deterministic: equal `(seed, n_ops, profile)` yield equal
    /// schedules. Each perturbation class draws from a forked stream so
    /// tuning one knob does not shift the others.
    pub fn perturbed(seed: u64, n_ops: usize, profile: &PerturbProfile) -> Self {
        let mut root = SimRng::new(seed);
        let mut faults = Vec::new();
        let mut fault_rng = root.fork(1);
        for _ in 0..profile.faults {
            let at_op = fault_rng.gen_range(n_ops.max(1) as u64) as usize;
            let extent = fault_rng.gen_range(64) as u32;
            let kind = match fault_rng.gen_range(3) {
                0 => SimFaultKind::Transient(1),
                1 => SimFaultKind::Transient(4),
                _ => SimFaultKind::Permanent,
            };
            faults.push(FaultPoint { at_op, extent, kind });
        }
        let mut crashes = Vec::new();
        let mut crash_rng = root.fork(2);
        for _ in 0..profile.crashes {
            let at_op = crash_rng.gen_range(n_ops.max(1) as u64) as usize;
            let keep_mask = crash_rng.next_u64();
            crashes.push(CrashPoint { at_op, keep_mask });
        }
        let mut drops = Vec::new();
        let mut delays = Vec::new();
        let mut net_rng = root.fork(3);
        for m in 0..n_ops {
            if net_rng.gen_bool_per_mille(profile.drop_per_mille) {
                drops.push(m);
            } else if net_rng.gen_bool_per_mille(profile.delay_per_mille) {
                delays.push((m, 1 + net_rng.gen_range(profile.max_delay.max(1))));
            }
        }
        Self { faults, crashes, tick_every: profile.tick_every, drops, delays }
    }

    /// Remaps every op-indexed schedule point after the operations in
    /// `start..end` were removed from the sequence: points inside the
    /// removed range clamp to `start`, later points shift down. This is
    /// what lets the auto-minimizer shrink the op sequence without
    /// detaching the schedule from the operations it perturbs.
    pub fn remap_removed_ops(&mut self, start: usize, end: usize) {
        debug_assert!(start <= end);
        let removed = end - start;
        let remap = |at: usize| {
            if at < start {
                at
            } else if at < end {
                start
            } else {
                at - removed
            }
        };
        for f in &mut self.faults {
            f.at_op = remap(f.at_op);
        }
        for c in &mut self.crashes {
            c.at_op = remap(c.at_op);
        }
        // Dropped/delayed *messages* inside the removed range no longer
        // exist (the message is the op); they are deleted, not clamped.
        self.drops.retain(|m| !(start..end).contains(m));
        for m in &mut self.drops {
            *m = remap(*m);
        }
        self.delays.retain(|(m, _)| !(start..end).contains(m));
        for (m, _) in &mut self.delays {
            *m = remap(*m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_schedule_is_clean() {
        assert!(SimSchedule::clean().is_clean());
        let p = SimSchedule::perturbed(1, 20, &PerturbProfile::default());
        assert!(!p.is_clean());
    }

    #[test]
    fn perturbed_is_deterministic_per_seed() {
        let profile = PerturbProfile::default();
        let a = SimSchedule::perturbed(77, 40, &profile);
        let b = SimSchedule::perturbed(77, 40, &profile);
        assert_eq!(a, b);
        let c = SimSchedule::perturbed(78, 40, &profile);
        assert_ne!(a, c);
    }

    #[test]
    fn remap_shifts_clamps_and_deletes() {
        let mut s = SimSchedule {
            faults: vec![
                FaultPoint { at_op: 2, extent: 1, kind: SimFaultKind::Permanent },
                FaultPoint { at_op: 5, extent: 1, kind: SimFaultKind::Permanent },
                FaultPoint { at_op: 9, extent: 1, kind: SimFaultKind::Permanent },
            ],
            crashes: vec![CrashPoint { at_op: 6, keep_mask: 0 }],
            tick_every: 0,
            drops: vec![2, 5, 9],
            delays: vec![(4, 10), (8, 10)],
        };
        // Remove ops 4..7 (three ops).
        s.remap_removed_ops(4, 7);
        assert_eq!(
            s.faults.iter().map(|f| f.at_op).collect::<Vec<_>>(),
            vec![2, 4, 6]
        );
        assert_eq!(s.crashes[0].at_op, 4);
        assert_eq!(s.drops, vec![2, 6]);
        assert_eq!(s.delays, vec![(5, 10)]);
    }
}
