//! Logical time.
//!
//! The simulator never consults a wall clock: time is a monotone `u64`
//! advanced only by event dispatch. "Compressed time" falls out for
//! free — a schedule spanning millions of ticks executes as fast as the
//! events it actually contains.

/// A monotone logical clock owned by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogicalClock {
    now: u64,
}

impl LogicalClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances to `t`. Time never moves backwards: advancing to a past
    /// instant is a no-op (events popped at equal times keep the clock
    /// still).
    pub fn advance_to(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        c.advance_to(10);
        assert_eq!(c.now(), 10);
        c.advance_to(5);
        assert_eq!(c.now(), 10);
        c.advance_to(10);
        assert_eq!(c.now(), 10);
    }
}
