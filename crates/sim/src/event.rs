//! The unified event queue.
//!
//! Events are ordered by `(time, seq)`: logical time first, insertion
//! order as the tiebreak. The tiebreak is what makes the loop
//! deterministic — two events scheduled for the same instant always pop
//! in the order they were scheduled, independent of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` at logical time `time`.
    pub fn push(&mut self, time: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, event }));
    }

    /// Pops the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse(s)| (s.time, s.event))
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..8u32 {
            q.push(5, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, 1u32);
        q.push(5, 0);
        assert_eq!(q.pop(), Some((5, 0)));
        q.push(7, 2);
        assert_eq!(q.pop(), Some((7, 2)));
        assert_eq!(q.pop(), Some((10, 1)));
        assert!(q.is_empty());
    }
}
