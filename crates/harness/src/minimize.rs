//! Automated test-case minimization (§4.3 of the paper).
//!
//! Property-based testing tools shrink failing inputs with simple
//! reduction heuristics — remove an operation, shrink an argument toward
//! zero — repeatedly, keeping a reduction only if the test still fails.
//! The proptest runner does this automatically for the property tests;
//! this module provides the same algorithm as a standalone function so
//! the benchmark harness can *measure* minimization (the §4.3 anecdote:
//! 61 operations, 9 crashes, 226 KiB written → 6 operations, 1 crash,
//! 2 bytes).
//!
//! Determinism is what makes this work (§4.3): the runners in this crate
//! are deterministic given the operation sequence, so "still fails" is
//! well-defined.

use shardstore_sim::SimSchedule;

use crate::ops::{KvOp, ValueSpec};

/// Size metrics of an operation sequence, matching the units of the §4.3
/// anecdote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceSize {
    /// Total operations.
    pub ops: usize,
    /// Crash (dirty-reboot) operations.
    pub crashes: usize,
    /// Total bytes written by puts (for a reference page size).
    pub bytes_written: usize,
}

/// Measures a sequence.
pub fn measure(ops: &[KvOp], page_size: usize) -> SequenceSize {
    SequenceSize {
        ops: ops.len(),
        crashes: ops.iter().filter(|o| matches!(o, KvOp::DirtyReboot(_))).count(),
        bytes_written: ops
            .iter()
            .map(|o| match o {
                KvOp::Put(_, spec) => spec.len(page_size),
                _ => 0,
            })
            .sum(),
    }
}

/// Minimizes a failing sequence: `fails` must return true when the given
/// sequence still triggers the failure. Applies the paper's heuristics —
/// chunk removal (delta-debugging style), single-op removal, and argument
/// shrinking — to a fixpoint.
pub fn minimize(ops: &[KvOp], fails: impl Fn(&[KvOp]) -> bool) -> Vec<KvOp> {
    debug_assert!(fails(ops), "minimize called with a passing sequence");
    let mut current: Vec<KvOp> = ops.to_vec();
    let mut progress = true;
    while progress {
        progress = false;
        // Chunk removal: try dropping halves, quarters, ... (classic
        // delta debugging).
        let mut chunk = current.len() / 2;
        while chunk >= 1 {
            let mut start = 0;
            while start < current.len() {
                let end = (start + chunk).min(current.len());
                let candidate: Vec<KvOp> = current[..start]
                    .iter()
                    .chain(current[end..].iter())
                    .cloned()
                    .collect();
                if !candidate.is_empty() && fails(&candidate) {
                    current = candidate;
                    progress = true;
                    // Restart this chunk size from the beginning.
                    start = 0;
                } else {
                    start += chunk;
                }
            }
            chunk /= 2;
        }
        // Argument shrinking: values toward zero bytes.
        for i in 0..current.len() {
            let shrunk = match &current[i] {
                KvOp::Put(k, ValueSpec::NearPage(_)) => Some(KvOp::Put(*k, ValueSpec::Small(2))),
                KvOp::Put(k, ValueSpec::Small(n)) if *n > 2 => {
                    Some(KvOp::Put(*k, ValueSpec::Small(2)))
                }
                _ => None,
            };
            if let Some(shrunk) = shrunk {
                let mut candidate = current.clone();
                candidate[i] = shrunk;
                if fails(&candidate) {
                    current = candidate;
                    progress = true;
                }
            }
        }
    }
    current
}

/// A simulator repro: the failing `(ops, schedule)` pair that fully
/// describes one deterministic execution. This is the unit the
/// simulator-aware auto-minimizer shrinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRepro<Op> {
    /// The operation sequence.
    pub ops: Vec<Op>,
    /// The fault/delivery schedule perturbing it.
    pub schedule: SimSchedule,
}

/// Normalizes a failure message into a *failure class*: runs of digits
/// collapse to `#`, so the same detector firing at a shifted op index or
/// key (which shrinking causes constantly) still counts as the same
/// failure, while a different detector does not.
pub fn failure_class(message: &str) -> String {
    let mut out = String::with_capacity(message.len());
    let mut in_digits = false;
    for c in message.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

/// Minimizes a failing simulator repro. `fails` runs the repro and
/// returns the failure message when it still fails (`None` = passes).
///
/// Shrinking is **removal-only** — delta-debugging chunk removal over the
/// op sequence (with the schedule remapped through
/// [`SimSchedule::remap_removed_ops`] so its points stay attached to the
/// operations they perturb), removal of individual schedule points, and
/// tick silencing. No operation is ever rewritten, so the result's op
/// sequence is a strict subsequence of the original's, and a candidate
/// is accepted only if it fails in the *same class* as the original —
/// the minimizer never trades one bug for another, and never returns a
/// passing repro.
pub fn minimize_repro<Op: Clone>(
    repro: &SimRepro<Op>,
    fails: impl Fn(&SimRepro<Op>) -> Option<String>,
) -> SimRepro<Op> {
    let original = fails(repro).expect("minimize_repro called with a passing repro");
    let target = failure_class(&original);
    let still =
        |cand: &SimRepro<Op>| fails(cand).map(|m| failure_class(&m) == target).unwrap_or(false);

    let mut current = repro.clone();
    let mut progress = true;
    while progress {
        progress = false;
        // Op chunk removal (delta debugging), schedule kept attached.
        let mut chunk = (current.ops.len() / 2).max(1);
        while chunk >= 1 {
            let mut start = 0;
            while start < current.ops.len() {
                let end = (start + chunk).min(current.ops.len());
                let mut cand = current.clone();
                cand.ops.drain(start..end);
                cand.schedule.remap_removed_ops(start, end);
                if !cand.ops.is_empty() && still(&cand) {
                    current = cand;
                    progress = true;
                    start = 0;
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Schedule-point removal: each fault, crash, drop, and delay is
        // individually optional.
        let mut idx = 0;
        while idx < current.schedule.faults.len() {
            let mut cand = current.clone();
            cand.schedule.faults.remove(idx);
            if still(&cand) {
                current = cand;
                progress = true;
            } else {
                idx += 1;
            }
        }
        let mut idx = 0;
        while idx < current.schedule.crashes.len() {
            let mut cand = current.clone();
            cand.schedule.crashes.remove(idx);
            if still(&cand) {
                current = cand;
                progress = true;
            } else {
                idx += 1;
            }
        }
        let mut idx = 0;
        while idx < current.schedule.drops.len() {
            let mut cand = current.clone();
            cand.schedule.drops.remove(idx);
            if still(&cand) {
                current = cand;
                progress = true;
            } else {
                idx += 1;
            }
        }
        let mut idx = 0;
        while idx < current.schedule.delays.len() {
            let mut cand = current.clone();
            cand.schedule.delays.remove(idx);
            if still(&cand) {
                current = cand;
                progress = true;
            } else {
                idx += 1;
            }
        }
        // Tick silencing: a repro that fails without timer ticks is
        // simpler.
        if current.schedule.tick_every != 0 {
            let mut cand = current.clone();
            cand.schedule.tick_every = 0;
            if still(&cand) {
                current = cand;
                progress = true;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::KeyRef;

    #[test]
    fn measure_counts_ops_crashes_and_bytes() {
        let ops = vec![
            KvOp::Put(KeyRef::Literal(1), ValueSpec::Small(10)),
            KvOp::Get(KeyRef::Literal(1)),
            KvOp::DirtyReboot(crate::ops::RebootType {
                flush_index: false,
                issue_ios: 0,
                keep_mask: 0,
            }),
            KvOp::Put(KeyRef::Literal(2), ValueSpec::NearPage(0)),
        ];
        let size = measure(&ops, 128);
        assert_eq!(size.ops, 4);
        assert_eq!(size.crashes, 1);
        assert_eq!(size.bytes_written, 10 + 126);
    }

    #[test]
    fn minimize_strips_irrelevant_ops() {
        // Failure condition: the sequence contains a Delete of key 7.
        let ops = vec![
            KvOp::Put(KeyRef::Literal(1), ValueSpec::Small(30)),
            KvOp::Get(KeyRef::Literal(2)),
            KvOp::Delete(KeyRef::Literal(7)),
            KvOp::Put(KeyRef::Literal(3), ValueSpec::NearPage(2)),
            KvOp::Compact,
        ];
        let fails =
            |ops: &[KvOp]| ops.iter().any(|o| matches!(o, KvOp::Delete(KeyRef::Literal(7))));
        let minimized = minimize(&ops, fails);
        assert_eq!(minimized, vec![KvOp::Delete(KeyRef::Literal(7))]);
    }

    #[test]
    fn minimize_shrinks_arguments() {
        // Failure condition: a put of key 1 exists (any size).
        let ops = vec![KvOp::Put(KeyRef::Literal(1), ValueSpec::NearPage(3))];
        let fails = |ops: &[KvOp]| {
            ops.iter().any(|o| matches!(o, KvOp::Put(KeyRef::Literal(1), _)))
        };
        let minimized = minimize(&ops, fails);
        assert_eq!(minimized, vec![KvOp::Put(KeyRef::Literal(1), ValueSpec::Small(2))]);
        assert!(measure(&minimized, 128).bytes_written < measure(&ops, 128).bytes_written);
    }

    #[test]
    fn minimize_preserves_two_op_interactions() {
        // Failure needs both the put and the delete of key 5.
        let ops = vec![
            KvOp::Compact,
            KvOp::Put(KeyRef::Literal(5), ValueSpec::Small(40)),
            KvOp::Get(KeyRef::Literal(5)),
            KvOp::Delete(KeyRef::Literal(5)),
            KvOp::IndexFlush,
        ];
        let fails = |ops: &[KvOp]| {
            ops.iter().any(|o| matches!(o, KvOp::Put(KeyRef::Literal(5), _)))
                && ops.iter().any(|o| matches!(o, KvOp::Delete(KeyRef::Literal(5))))
        };
        let minimized = minimize(&ops, fails);
        assert_eq!(minimized.len(), 2);
        assert!(fails(&minimized));
    }
}
