//! Node-level linearizability harnesses for the parallel request plane
//! (§6 of the paper, lifted from single-store histories to RPC clients).
//!
//! These harnesses drive a multi-disk [`Node`] *through the engine*:
//! concurrent [`RpcClient`]s issue typed requests that traverse admission
//! queues, per-disk executors, and batched dispatch, and the recorded
//! histories must linearize against the sequential KV model
//! ([`crate::lin::KvSpec`]). The engine's workers run as controlled
//! tasks under the stateless model checker, so every queue hand-off and
//! executor interleaving is schedulable — the request plane itself is in
//! the checked concurrency, not just the store beneath it.
//!
//! The quiesce rule applies twice: [`Engine::shutdown`] joins the worker
//! tasks, and background-writeback variants additionally drain each
//! disk's pump before the closure ends.

use shardstore_conc::{check, thread, CheckError, CheckOptions, CheckReport};
use shardstore_core::{Engine, EngineConfig, Node, NodeConfig, RpcClient, StoreConfig};
use shardstore_dependency::IoScheduler;
use shardstore_faults::FaultConfig;
use shardstore_vdisk::Geometry;

use crate::lin::{check_linearizable, HistoryRecorder, KvLinOp, KvLinRet, KvSpec};

fn small_node(faults: &FaultConfig, disks: usize) -> (Node, EngineConfig) {
    let config = NodeConfig::builder()
        .disks(disks)
        .geometry(Geometry::small())
        .store(StoreConfig::small())
        .faults(faults.clone())
        .engine(
            EngineConfig::builder()
                .queue_depth(8)
                .batch_window(4)
                .build()
                .expect("valid engine config"),
        )
        .build()
        .expect("valid node config");
    (Node::from_config(&config), config.engine)
}

fn enable_background(sched: &IoScheduler) {
    use shardstore_dependency::{WritebackConfig, WritebackMode};
    sched.set_writeback_mode(WritebackMode::Background(WritebackConfig::default()));
}

type Recorder = HistoryRecorder<KvLinOp, KvLinRet>;

fn recorded_put(client: &RpcClient, rec: &Recorder, shard: u128, value: &[u8]) {
    let t = rec.invoke(KvLinOp::Put(shard, value.to_vec()));
    client.put(shard, value.to_vec()).expect("put must not error");
    rec.complete(t, KvLinRet::Done);
}

fn recorded_get(client: &RpcClient, rec: &Recorder, shard: u128) {
    let t = rec.invoke(KvLinOp::Get(shard));
    let got = client.get(shard).expect("get must not error");
    rec.complete(t, KvLinRet::Value(got));
}

fn recorded_delete(client: &RpcClient, rec: &Recorder, shard: u128) {
    let t = rec.invoke(KvLinOp::Delete(shard));
    client.delete(shard).expect("delete must not error");
    rec.complete(t, KvLinRet::Done);
}

fn node_rpc_lin_body(faults: &FaultConfig, background: bool) {
    let (node, engine_config) = small_node(faults, 2);
    if background {
        for d in 0..node.disk_count() {
            enable_background(&node.store(d).expect("disk in service").scheduler());
        }
    }
    let engine = Engine::start(node.clone(), engine_config);
    let recorder: Recorder = HistoryRecorder::new();

    // Shards 1 and 2 route to different disks, so the clients genuinely
    // exercise cross-executor concurrency, while the same-shard traffic
    // exercises same-queue FIFO.
    let mut handles = Vec::new();
    let c1 = engine.client();
    let r1 = recorder.clone();
    handles.push(thread::spawn(move || {
        recorded_put(&c1, &r1, 1, b"v1");
        recorded_get(&c1, &r1, 2);
    }));
    let c2 = engine.client();
    let r2 = recorder.clone();
    handles.push(thread::spawn(move || {
        recorded_put(&c2, &r2, 2, b"v2");
        recorded_delete(&c2, &r2, 1);
    }));
    let c3 = engine.client();
    let r3 = recorder.clone();
    handles.push(thread::spawn(move || {
        recorded_put(&c3, &r3, 1, b"v3");
        recorded_get(&c3, &r3, 1);
    }));
    for h in handles {
        h.join().unwrap();
    }
    engine.shutdown();
    if background {
        for d in 0..node.disk_count() {
            node.store(d).expect("disk in service").scheduler().quiesce().unwrap();
        }
    }
    let history = recorder.take();
    let result = check_linearizable(&KvSpec, &history);
    assert!(result.is_ok(), "node RPC history not linearizable: {history:?}");
    node.check_catalog_consistent().expect("catalog consistent after RPC storm");
}

/// Concurrent RPC clients against the engine, deterministic writeback:
/// the recorded node-level history must be linearizable and the per-disk
/// catalogs consistent afterwards.
pub fn node_rpc_linearizability_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || node_rpc_lin_body(&faults, false))
}

/// [`node_rpc_linearizability_harness`] with the background writeback
/// engine running on every disk — request-plane workers *and* writeback
/// pumps all scheduled by the checker.
pub fn node_rpc_linearizability_background_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || node_rpc_lin_body(&faults, true))
}

/// Fan-out harness: a cross-disk `BulkCreate` races a `BulkRemove` and a
/// fanned-out `List` through the engine. Whatever the interleaving, the
/// listing must be a sensible snapshot (no phantom shards) and the
/// per-disk catalogs must match the indexes afterwards.
pub fn node_rpc_fanout_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || {
        let (node, engine_config) = small_node(&faults, 2);
        // Shard 5 exists up front; the bulk ops fight over it.
        node.put(5, b"seed").unwrap();
        let engine = Engine::start(node.clone(), engine_config);

        let c1 = engine.client();
        let creator = thread::spawn(move || {
            c1.bulk_create(vec![(5, b"recreated".to_vec()), (6, b"six".to_vec())])
                .expect("bulk create must not error");
        });
        let c2 = engine.client();
        let remover = thread::spawn(move || {
            c2.bulk_remove(vec![5]).expect("bulk remove must not error");
        });
        let c3 = engine.client();
        let lister = thread::spawn(move || {
            let listed = c3.list().expect("list must not error");
            for shard in listed {
                assert!(shard == 5 || shard == 6, "phantom shard {shard} listed");
            }
        });
        creator.join().unwrap();
        remover.join().unwrap();
        lister.join().unwrap();
        engine.shutdown();
        node.check_catalog_consistent().expect("catalog consistent after fan-out race");
        // Shard 6 was only ever created; it must exist.
        assert_eq!(
            node.get(6).expect("get must not error").as_deref(),
            Some(&b"six"[..]),
            "bulk-created shard lost"
        );
    })
}
