//! The Fig. 5 driver: re-discover each of the sixteen historical issues.
//!
//! For every [`BugId`] this module knows which checker the paper credits
//! with the find — property-based conformance testing, crash-consistency
//! checking, failure injection, or stateless model checking — seeds the
//! bug, and searches for a counterexample. Property-based detections are
//! driven by the same generators as the test suites (deterministic per
//! seed, so "pay-as-you-go": a bigger budget explores more sequences);
//! concurrency detections run the hand-written harnesses of
//! [`crate::concurrent`] under the random-walk scheduler.
//!
//! When a property-based search finds a failing sequence it is also
//! minimized (§4.3), reporting original vs minimized sizes — the numbers
//! behind the paper's 61-ops-to-6-ops anecdote.

use proptest::strategy::Strategy;
use proptest::test_runner::{Config, RngAlgorithm, TestRng, TestRunner};
use shardstore_conc::CheckOptions;
use shardstore_faults::{BugId, FaultConfig};

use crate::conformance::{run_conformance, ConformanceConfig};
use crate::crash::run_crash_consistency;
use crate::gen::{kv_ops, node_ops, GenConfig};
use crate::minimize::{measure, minimize, SequenceSize};
use crate::node_conformance::run_node_conformance;
use crate::ops::{KvOp, NodeOp};

/// Search budget for one detection run.
#[derive(Debug, Clone, Copy)]
pub struct DetectBudget {
    /// Maximum random sequences for property-based detectors.
    pub max_sequences: u64,
    /// Iteration budget for the stateless model checker.
    pub conc_iterations: usize,
    /// Base RNG seed (detections are deterministic per seed).
    pub seed: u64,
}

impl Default for DetectBudget {
    fn default() -> Self {
        Self { max_sequences: 30_000, conc_iterations: 3_000, seed: 0x5EED }
    }
}

/// Outcome of one detection run.
#[derive(Debug, Clone)]
pub struct Detection {
    /// The bug searched for.
    pub bug: BugId,
    /// Whether a counterexample was found within budget.
    pub detected: bool,
    /// The checker used (Fig. 5's implicit "detected by" column).
    pub method: &'static str,
    /// Sequences or schedules explored until detection (or the budget).
    pub attempts: u64,
    /// Counterexample sizes before and after minimization, when the
    /// detector is sequence-based.
    pub minimized: Option<(SequenceSize, SequenceSize)>,
    /// Human-readable detail of the counterexample.
    pub detail: String,
}

fn test_rng(seed: u64) -> TestRng {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&seed.to_le_bytes());
    bytes[8..16].copy_from_slice(&seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes());
    TestRng::from_seed(RngAlgorithm::ChaCha, &bytes)
}

/// Seed override for CI fault matrices: `SHARDSTORE_SEED` (decimal or
/// `0x`-prefixed hex) replaces `default` when set, so the same test
/// binaries can be fanned out across a seed matrix without recompiling.
/// Unset or unparsable values fall back to `default`, keeping local runs
/// reproducible.
pub fn seed_override(default: u64) -> u64 {
    match std::env::var("SHARDSTORE_SEED") {
        Ok(v) => {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or(default)
        }
        Err(_) => default,
    }
}

/// Deterministically samples operation sequences from a strategy.
pub fn sample_sequences<T: std::fmt::Debug>(
    strategy: impl Strategy<Value = T>,
    seed: u64,
    count: u64,
) -> impl Iterator<Item = T> {
    let mut runner = TestRunner::new_with_rng(Config::default(), test_rng(seed));
    (0..count).map(move |_| {
        strategy.new_tree(&mut runner).expect("strategy never rejects").current()
    })
}

fn search_kv<F>(
    bug: BugId,
    gen_cfg: GenConfig,
    budget: DetectBudget,
    method: &'static str,
    background: bool,
    run: F,
) -> Detection
where
    F: Fn(&[KvOp], &ConformanceConfig) -> Option<String>,
{
    let mut cfg = ConformanceConfig::with_faults(FaultConfig::seed(bug));
    cfg.background_writeback = background;
    let mut attempts = 0u64;
    for ops in sample_sequences(kv_ops(gen_cfg), budget.seed ^ bug.number() as u64, budget.max_sequences)
    {
        attempts += 1;
        if let Some(detail) = run(&ops, &cfg) {
            // Minimize the counterexample (§4.3). Minimization needs
            // deterministic replay — "still fails" must be well-defined —
            // which the live background pump thread breaks. So background
            // detections quiesce before minimizing: candidates are
            // replayed with the pump disabled (the checked properties are
            // timing-independent, so any sequence that still fails
            // deterministically is the same bug). Counterexamples that
            // *only* fail under the racing pump are reported un-minimized.
            let replay_cfg = if background {
                let mut c = cfg.clone();
                c.background_writeback = false;
                c
            } else {
                cfg.clone()
            };
            let minimized = if background && run(&ops, &replay_cfg).is_none() {
                None
            } else {
                let original = measure(&ops, cfg.geometry.page_size);
                let minimized_ops =
                    minimize(&ops, |candidate| run(candidate, &replay_cfg).is_some());
                Some((original, measure(&minimized_ops, cfg.geometry.page_size)))
            };
            return Detection { bug, detected: true, method, attempts, minimized, detail };
        }
    }
    Detection {
        bug,
        detected: false,
        method,
        attempts,
        minimized: None,
        detail: "no counterexample within budget".into(),
    }
}

fn search_node(bug: BugId, budget: DetectBudget, background: bool) -> Detection {
    let mut cfg = ConformanceConfig::with_faults(FaultConfig::seed(bug));
    cfg.background_writeback = background;
    let mut attempts = 0u64;
    for ops in sample_sequences(
        node_ops(GenConfig::conformance()),
        budget.seed ^ bug.number() as u64,
        budget.max_sequences,
    ) {
        attempts += 1;
        if let Err(d) = run_node_conformance(&ops, &cfg, 2) {
            // Greedy op-removal shrink. Under the background pump the
            // quiesce-before-minimize rule applies (see search_kv):
            // candidates replay with the pump disabled, and purely
            // schedule-dependent counterexamples stay un-minimized.
            let replay_cfg = if background {
                let mut c = cfg.clone();
                c.background_writeback = false;
                c
            } else {
                cfg.clone()
            };
            let minimized = if background && run_node_conformance(&ops, &replay_cfg, 2).is_ok() {
                None
            } else {
                let fails = |candidate: &[NodeOp]| {
                    run_node_conformance(candidate, &replay_cfg, 2).is_err()
                };
                let mut current: Vec<NodeOp> = ops.clone();
                let mut changed = true;
                while changed {
                    changed = false;
                    for i in (0..current.len()).rev() {
                        let mut candidate = current.clone();
                        candidate.remove(i);
                        if !candidate.is_empty() && fails(&candidate) {
                            current = candidate;
                            changed = true;
                        }
                    }
                }
                Some((
                    SequenceSize { ops: ops.len(), crashes: 0, bytes_written: 0 },
                    SequenceSize { ops: current.len(), crashes: 0, bytes_written: 0 },
                ))
            };
            return Detection {
                bug,
                detected: true,
                method: "conformance PBT (control plane)",
                attempts,
                minimized,
                detail: d.to_string(),
            };
        }
    }
    Detection {
        bug,
        detected: false,
        method: "conformance PBT (control plane)",
        attempts,
        minimized: None,
        detail: "no counterexample within budget".into(),
    }
}

fn run_conc(
    bug: BugId,
    budget: DetectBudget,
    harness: impl Fn(FaultConfig, CheckOptions) -> Result<shardstore_conc::CheckReport, shardstore_conc::CheckError>,
) -> Detection {
    // PCT (Shuttle's algorithm) rather than a uniform random walk: the
    // issue #14 class needs one task parked inside a short window while
    // another runs hundreds of steps, which uniform walks essentially
    // never produce (§6's scalability argument).
    let options = CheckOptions::pct(budget.seed ^ bug.number() as u64, 3, budget.conc_iterations);
    match harness(FaultConfig::seed(bug), options) {
        Ok(report) => Detection {
            bug,
            detected: false,
            method: "stateless model checking",
            attempts: report.iterations as u64,
            minimized: None,
            detail: "no failing interleaving within budget".into(),
        },
        Err(e) => {
            let attempts = match &e {
                shardstore_conc::CheckError::Failure { iteration, .. }
                | shardstore_conc::CheckError::Deadlock { iteration, .. } => *iteration as u64 + 1,
                shardstore_conc::CheckError::StepLimit { iteration, .. } => *iteration as u64 + 1,
            };
            Detection {
                bug,
                detected: true,
                method: "stateless model checking",
                attempts,
                minimized: None,
                detail: e.to_string(),
            }
        }
    }
}

fn detect_b15(budget: DetectBudget) -> Detection {
    // Issue #15 is a bug in the chunk-store *model*: locators must be
    // unique across the model's lifetime, an assumption the rest of the
    // validation code relies on. A simple property over random put/delete
    // traces on the model exposes the reuse.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use shardstore_model::ChunkStoreModel;
    let mut rng = StdRng::seed_from_u64(budget.seed);
    for attempt in 1..=budget.max_sequences {
        let model = ChunkStoreModel::new(FaultConfig::seed(BugId::B15ModelLocatorReuse));
        let mut seen = std::collections::BTreeSet::new();
        let mut live = Vec::new();
        for _ in 0..20 {
            if !live.is_empty() && rng.gen_bool(0.4) {
                let idx = rng.gen_range(0..live.len());
                let l = live.swap_remove(idx);
                model.delete(&l);
            } else {
                let payload = vec![rng.gen::<u8>(); rng.gen_range(1..8)];
                let l = model.put(&payload);
                if !seen.insert((l.extent, l.offset, l.len)) {
                    return Detection {
                        bug: BugId::B15ModelLocatorReuse,
                        detected: true,
                        method: "model property (locator uniqueness)",
                        attempts: attempt,
                        minimized: None,
                        detail: format!("model reissued locator {l}"),
                    };
                }
                live.push(l);
            }
        }
    }
    Detection {
        bug: BugId::B15ModelLocatorReuse,
        detected: false,
        method: "model property (locator uniqueness)",
        attempts: budget.max_sequences,
        minimized: None,
        detail: "no reuse observed".into(),
    }
}

/// Runs the appropriate checker for one seeded bug.
pub fn detect(bug: BugId, budget: DetectBudget) -> Detection {
    detect_with(bug, budget, false)
}

/// Like [`detect`], but with the background writeback engine enabled
/// everywhere a store is driven: property-based detections run their
/// stores in `WritebackMode::Background` (a real pump thread racing the
/// generated sequences), and the concurrency detections use the
/// `*_background_harness` variants where the pump runs as an extra
/// scheduled task under the model checker. Issue #15 is a property of
/// the chunk-store *model* and never touches an IO scheduler, so it runs
/// unchanged. Group commit must not mask any historical bug — this is
/// the acceptance gate for the writeback engine.
pub fn detect_background(bug: BugId, budget: DetectBudget) -> Detection {
    detect_with(bug, budget, true)
}

fn detect_with(bug: BugId, budget: DetectBudget, background: bool) -> Detection {
    use BugId::*;
    match bug {
        B1ReclamationOffByOne | B2CacheNotDrained | B3MetadataShutdownFlush => search_kv(
            bug,
            GenConfig::conformance(),
            budget,
            "conformance PBT",
            background,
            |ops, cfg| run_conformance(ops, cfg).err().map(|d| d.to_string()),
        ),
        B4DiskRemovalLosesShards => search_node(bug, budget, background),
        B5ReclamationTransientError => search_kv(
            bug,
            GenConfig::failure(),
            budget,
            "failure-injection PBT",
            background,
            |ops, cfg| run_conformance(ops, cfg).err().map(|d| d.to_string()),
        ),
        B6OwnershipDependency | B7SoftHardPointerMismatch | B8MissingPointerDependency
        | B9ModelCrashReclamation | B10UuidCollision => search_kv(
            bug,
            GenConfig::crash(),
            budget,
            "crash-consistency PBT",
            background,
            |ops, cfg| run_crash_consistency(ops, cfg).err().map(|d| d.to_string()),
        ),
        B11LocatorRace if background => {
            run_conc(bug, budget, crate::concurrent::put_reclaim_background_harness)
        }
        B11LocatorRace => run_conc(bug, budget, crate::concurrent::put_reclaim_harness),
        B12SuperblockDeadlock if background => {
            run_conc(bug, budget, crate::concurrent::superblock_pool_background_harness)
        }
        B12SuperblockDeadlock => {
            run_conc(bug, budget, crate::concurrent::superblock_pool_harness)
        }
        B13ListRemoveRace if background => {
            run_conc(bug, budget, crate::concurrent::list_remove_background_harness)
        }
        B13ListRemoveRace => run_conc(bug, budget, crate::concurrent::list_remove_harness),
        B14CompactionReclaimRace if background => {
            run_conc(bug, budget, crate::concurrent::fig4_background_harness)
        }
        B14CompactionReclaimRace => run_conc(bug, budget, crate::concurrent::fig4_index_harness),
        B15ModelLocatorReuse => detect_b15(budget),
        B16BulkOpsRace if background => {
            run_conc(bug, budget, crate::concurrent::bulk_ops_background_harness)
        }
        B16BulkOpsRace => run_conc(bug, budget, crate::concurrent::bulk_ops_harness),
    }
}
