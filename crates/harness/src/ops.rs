//! Operation alphabets for property-based conformance checking (§4.1).
//!
//! An alphabet covers a component's API operations *and* its background
//! operations (reclamation, flushes, reboots): background operations are
//! no-ops in the reference model, so including them validates that their
//! implementations do not corrupt the mapping (Fig. 3).
//!
//! Two design rules from §4.3 are encoded here:
//!
//! - **Minimization-friendly ordering**: variants are arranged in
//!   increasing order of complexity, because the shrinker prefers earlier
//!   variants — a minimized counterexample uses the simplest operations
//!   that still fail.
//! - **Biased arguments**: keys are [`KeyRef`]s that can resolve to
//!   previously-put keys (so the successful-get path is actually
//!   exercised), and value sizes are biased toward page-size-adjacent
//!   corner cases — while keeping every case possible (§4.2).

use shardstore_chunk::Stream;
use shardstore_vdisk::ExtentId;

/// A reference to a key: either literal, or "the i-th key that was put
/// earlier" (resolved at execution time against the trace so far). The
/// indirection is what makes biasing shrink-friendly: a `Recent` reference
/// keeps pointing at *some* earlier key as the sequence shrinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyRef {
    /// A key from a small literal domain (collisions are likely by
    /// construction).
    Literal(u8),
    /// The `i % puts_so_far`-th previously put key; falls back to the
    /// literal domain when nothing was put yet.
    Recent(u8),
}

impl KeyRef {
    /// Resolves the reference against the keys put so far.
    pub fn resolve(&self, puts_so_far: &[u128]) -> u128 {
        match self {
            KeyRef::Literal(k) => *k as u128,
            KeyRef::Recent(i) => {
                if puts_so_far.is_empty() {
                    *i as u128
                } else {
                    puts_so_far[*i as usize % puts_so_far.len()]
                }
            }
        }
    }
}

/// Value size specification, biased toward page-size corner cases
/// (read/write sizes close to the disk page size are "frequent causes of
/// bugs" per §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSpec {
    /// A small arbitrary length.
    Small(u8),
    /// `page_size + delta - 2` bytes: straddles the page boundary for
    /// deltas 0..4.
    NearPage(u8),
    /// `page_size - FRAME_OVERHEAD + delta` bytes: the chunk *frame*
    /// (payload + 38 bytes of framing) lands exactly on or just past a
    /// page boundary. Delta 0 gives a page-aligned frame (the issue #1
    /// off-by-one trigger); delta 16 gives a frame whose trailer spills
    /// exactly one UUID onto the next page (the issue #10 §5 scenario).
    FrameSpill(u8),
}

impl ValueSpec {
    /// Concrete byte length for a given page size.
    pub fn len(&self, page_size: usize) -> usize {
        match self {
            ValueSpec::Small(n) => *n as usize,
            ValueSpec::NearPage(delta) => (page_size + *delta as usize).saturating_sub(2),
            ValueSpec::FrameSpill(delta) => {
                (page_size + *delta as usize)
                    .saturating_sub(shardstore_chunk::FRAME_OVERHEAD)
            }
        }
    }

    /// Deterministic payload of this length, derived from the key so that
    /// corruption (returning another shard's bytes) is detectable.
    pub fn materialize(&self, key: u128, page_size: usize) -> Vec<u8> {
        let len = self.len(page_size);
        (0..len).map(|i| (key as usize).wrapping_add(i).wrapping_mul(31) as u8).collect()
    }
}

/// How a dirty reboot treats volatile state (§5's `RebootType`): which
/// component states get flushed before the crash, and which disk-cache
/// pages survive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebootType {
    /// Flush the LSM memtable (queue its writes) before crashing.
    pub flush_index: bool,
    /// How many ready writes to issue into the disk cache before
    /// crashing (0 = none; issued writes may partially survive).
    pub issue_ios: u8,
    /// Survival mask over the disk's volatile pages at crash time: bit
    /// `i % 64` decides whether the i-th cached page survives.
    pub keep_mask: u64,
}

/// The API-level operation alphabet for sequential conformance and
/// crash-consistency checking, in increasing order of complexity (§4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Read a shard.
    Get(KeyRef),
    /// Store a shard.
    Put(KeyRef, ValueSpec),
    /// Store several shards as one group commit ([`Store::put_batch`]).
    /// Atomic per element: equivalent to the puts applied in order, so
    /// the model applies them one by one (key references all resolve
    /// against the state *before* the batch).
    ///
    /// [`Store::put_batch`]: shardstore_core::Store::put_batch
    PutBatch(Vec<(KeyRef, ValueSpec)>),
    /// Delete a shard.
    Delete(KeyRef),
    /// Range scan between two key references (the runner orders the
    /// resolved endpoints, so the pair always denotes a non-inverted
    /// inclusive range).
    Scan(KeyRef, KeyRef),
    /// Flush the LSM memtable (background; model no-op).
    IndexFlush,
    /// Compact the LSM tree (background; model no-op).
    Compact,
    /// Run chunk reclamation over the best victim (background; model
    /// no-op).
    Reclaim(Stream),
    /// Drop the buffer cache (volatile state only; model no-op).
    CacheDrop,
    /// Pump queued IO: issue up to `n` ready writes and flush the disk.
    Pump(u8),
    /// Clean reboot: flush everything, check forward progress, recover.
    Reboot,
    /// Dirty reboot: crash with the given volatile-state treatment, then
    /// recover (crash-consistency alphabet only).
    DirtyReboot(RebootType),
    /// Make the next IO to an extent fail (failure-injection alphabet
    /// only; §4.4's `FailDiskOnce`).
    FailDiskOnce(u8),
}

impl KvOp {
    /// True for operations only meaningful in the crash alphabet.
    pub fn is_crash_op(&self) -> bool {
        matches!(self, KvOp::DirtyReboot(_))
    }

    /// True for failure-injection operations.
    pub fn is_failure_op(&self) -> bool {
        matches!(self, KvOp::FailDiskOnce(_))
    }

    /// Resolves a `FailDiskOnce` target against a disk geometry.
    pub fn fail_target(extent_raw: u8, extent_count: u32) -> ExtentId {
        ExtentId(extent_raw as u32 % extent_count)
    }
}

/// The index-level operation alphabet (the literal Fig. 3 `IndexOp`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexOp {
    /// Look up a key.
    Get(KeyRef),
    /// Map a key to a locator list.
    Put(KeyRef, u8),
    /// Remove a key.
    Delete(KeyRef),
    /// Flush the memtable.
    Flush,
    /// Compact the tree.
    Compact,
    /// Reclaim an LSM-owned extent.
    Reclaim,
    /// Clean reboot (recover the index from disk).
    Reboot,
}

/// Node-level (control-plane) operations for the multi-disk alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeOp {
    /// Request-plane read.
    Get(KeyRef),
    /// Request-plane write.
    Put(KeyRef, ValueSpec),
    /// Request-plane delete.
    Delete(KeyRef),
    /// Control-plane listing.
    List,
    /// Remove a disk from service.
    RemoveDisk(u8),
    /// Return a removed disk to service.
    ReturnDisk(u8),
    /// Bulk-create a batch of shards.
    BulkCreate(Vec<(KeyRef, ValueSpec)>),
    /// Bulk-remove a batch of shards.
    BulkRemove(Vec<KeyRef>),
    /// Migrate a shard to another disk.
    Migrate(KeyRef, u8),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_keyref_resolves_to_itself() {
        assert_eq!(KeyRef::Literal(7).resolve(&[]), 7);
        assert_eq!(KeyRef::Literal(7).resolve(&[100, 200]), 7);
    }

    #[test]
    fn recent_keyref_resolves_to_previous_put() {
        let puts = vec![100u128, 200, 300];
        assert_eq!(KeyRef::Recent(0).resolve(&puts), 100);
        assert_eq!(KeyRef::Recent(4).resolve(&puts), 200);
        // Falls back to the literal domain when nothing was put.
        assert_eq!(KeyRef::Recent(9).resolve(&[]), 9);
    }

    #[test]
    fn near_page_sizes_straddle_the_boundary() {
        let page = 128;
        let lens: Vec<usize> = (0..4u8).map(|d| ValueSpec::NearPage(d).len(page)).collect();
        assert_eq!(lens, vec![126, 127, 128, 129]);
    }

    #[test]
    fn materialized_values_differ_by_key() {
        let a = ValueSpec::Small(16).materialize(1, 128);
        let b = ValueSpec::Small(16).materialize(2, 128);
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn fail_target_wraps_extent_count() {
        assert_eq!(KvOp::fail_target(20, 16), ExtentId(4));
    }
}
