//! Stateless-model-checking harnesses for ShardStore's concurrency
//! properties (§6 of the paper).
//!
//! Each function here is a hand-written harness in the style of Fig. 4:
//! it sets up component state, spawns a small number of concurrent tasks
//! (API calls racing background maintenance), and asserts a property that
//! must hold under *every* interleaving. The harnesses run under the
//! stateless model checker from `shardstore-conc`; small ones can be
//! explored exhaustively (Loom's role), larger ones are explored randomly
//! or with PCT (Shuttle's role).

use std::sync::Arc;

use shardstore_chunk::Stream;
use shardstore_conc::{check, thread, CheckError, CheckOptions, CheckReport};
use shardstore_core::{Node, Store, StoreConfig};
use shardstore_dependency::IoScheduler;
use shardstore_faults::FaultConfig;
use shardstore_superblock::{ExtentManager, Owner};
use shardstore_vdisk::{Disk, Geometry};

use crate::lin::{check_linearizable, HistoryRecorder, KvLinOp, KvLinRet, KvSpec};

fn small_store(faults: &FaultConfig) -> Store {
    Store::format(Geometry::small(), StoreConfig::small(), faults.clone())
}

/// Switches a scheduler to the background writeback engine (used by the
/// `*_background_harness` variants of the seeded-bug harnesses).
fn enable_background(sched: &IoScheduler) {
    use shardstore_dependency::{WritebackConfig, WritebackMode};
    sched.set_writeback_mode(WritebackMode::Background(WritebackConfig::default()));
}

/// The Fig. 4 harness, verbatim in structure: initialize the index with a
/// fixed set of keys, then run three concurrent tasks — chunk reclamation
/// over the LSM extents, LSM compaction, and a task that overwrites keys
/// and immediately reads them back, asserting read-after-write
/// consistency. With [`shardstore_faults::BugId::B14CompactionReclaimRace`]
/// seeded, some interleaving loses freshly compacted index entries.
pub fn fig4_index_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || {
        let store = small_store(&faults);
        // Set up some initial state in the index: several tables so
        // compaction has real work.
        for k in 0..4u128 {
            store.put(k, format!("value-{k}").as_bytes()).unwrap();
            store.flush_index().unwrap();
        }
        store.pump().unwrap();
        let lsm_extents = store
            .cache()
            .chunk_store()
            .extent_manager()
            .extents_owned_by(Owner::LsmData);

        // Spawn concurrent operations.
        let s1 = store.clone();
        let t1 = thread::spawn(move || {
            for ext in lsm_extents {
                let _ = s1.reclaim_extent(ext, Stream::Lsm);
            }
        });
        let s2 = store.clone();
        let t2 = thread::spawn(move || {
            let _ = s2.compact_index();
        });
        let s3 = store.clone();
        let t3 = thread::spawn(move || {
            // Overwrite keys and check the new value sticks.
            for k in 0..2u128 {
                let value = format!("new-{k}");
                s3.put(k, value.as_bytes()).unwrap();
                let read_back = s3.get(k).expect("get must not error");
                assert_eq!(read_back.as_deref(), Some(value.as_bytes()), "read-after-write");
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        t3.join().unwrap();
        // After everything quiesces, no index entry may have been lost.
        // Read cold: drop the volatile caches first so the check observes
        // on-disk state — a cache serving decoded tables from memory must
        // not hide chunks that reclamation dropped (the §8.3 lesson about
        // caches masking bugs, applied to the checker itself).
        store.drop_caches();
        for k in 0..4u128 {
            let got = store.get(k).expect("post-join get must not error");
            assert!(got.is_some(), "index entry for key {k} lost");
        }
    })
}

/// The Fig. 4 harness with the *background* writeback engine enabled: the
/// same three racing tasks, plus the group-commit pump running as a
/// fourth scheduled task signalled by every submit and seal. The checker
/// quiesce rule applies: the harness must stop the pump and drain
/// ([`IoScheduler::quiesce`]) before its assertions — and before the
/// controlled execution ends, since a parked worker task would otherwise
/// read as a deadlocked leftover. With
/// [`shardstore_faults::BugId::B14CompactionReclaimRace`] seeded the same
/// interleavings lose compacted index entries: the added asynchrony must
/// not mask the bug.
pub fn fig4_background_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    use shardstore_dependency::{WritebackConfig, WritebackMode};
    check(options, move || {
        let store = small_store(&faults);
        for k in 0..4u128 {
            store.put(k, format!("value-{k}").as_bytes()).unwrap();
            store.flush_index().unwrap();
        }
        store.pump().unwrap();
        let lsm_extents = store
            .cache()
            .chunk_store()
            .extent_manager()
            .extents_owned_by(Owner::LsmData);
        let sched = store.scheduler();
        sched.set_writeback_mode(WritebackMode::Background(WritebackConfig::default()));

        let s1 = store.clone();
        let t1 = thread::spawn(move || {
            for ext in lsm_extents {
                let _ = s1.reclaim_extent(ext, Stream::Lsm);
            }
        });
        let s2 = store.clone();
        let t2 = thread::spawn(move || {
            let _ = s2.compact_index();
        });
        let s3 = store.clone();
        let t3 = thread::spawn(move || {
            for k in 0..2u128 {
                let value = format!("new-{k}");
                s3.put(k, value.as_bytes()).unwrap();
                let read_back = s3.get(k).expect("get must not error");
                assert_eq!(read_back.as_deref(), Some(value.as_bytes()), "read-after-write");
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        t3.join().unwrap();
        // Quiesce before asserting: stop the worker, fall back to
        // deterministic writeback, drain everything.
        sched.quiesce().unwrap();
        store.drop_caches();
        for k in 0..4u128 {
            let got = store.get(k).expect("post-join get must not error");
            assert!(got.is_some(), "index entry for key {k} lost");
        }
    })
}

/// Group-commit race harness: a `put_batch` races an index flush, a
/// compaction, and data-extent reclamation. Whatever the interleaving,
/// every batched element must be readable right after the batch returns
/// (atomic per element — exactly the sequential-put guarantee), and the
/// batch must stay intact through the maintenance storm.
pub fn put_batch_maintenance_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || {
        let store = small_store(&faults);
        // Seed some state plus garbage so reclamation has real work.
        for k in 0..3u128 {
            store.put(k, format!("seed-{k}").as_bytes()).unwrap();
        }
        store.delete(0).unwrap();
        store.flush_index().unwrap();
        store.pump().unwrap();
        let data_extents =
            store.cache().chunk_store().extent_manager().extents_owned_by(Owner::Data);

        let s1 = store.clone();
        let batcher = thread::spawn(move || {
            let batch: Vec<(u128, Vec<u8>)> =
                (10..14u128).map(|k| (k, format!("batch-{k}").into_bytes())).collect();
            s1.put_batch(&batch).unwrap();
            for (k, v) in &batch {
                let got = s1.get(*k).expect("get must not error");
                assert_eq!(got.as_deref(), Some(v.as_slice()), "batched put lost (key {k})");
            }
        });
        let s2 = store.clone();
        let maintainer = thread::spawn(move || {
            let _ = s2.flush_index();
            let _ = s2.compact_index();
        });
        let s3 = store.clone();
        let reclaimer = thread::spawn(move || {
            for ext in data_extents {
                let _ = s3.reclaim_extent(ext, Stream::Data);
            }
        });
        batcher.join().unwrap();
        maintainer.join().unwrap();
        reclaimer.join().unwrap();
        store.pump().unwrap();
        store.drop_caches();
        for k in 10..14u128 {
            let got = store.get(k).expect("cold get must not error");
            assert_eq!(
                got,
                Some(format!("batch-{k}").into_bytes()),
                "batched key {k} lost after maintenance"
            );
        }
    })
}

/// Issue #12 harness: concurrent appenders race a background pump with a
/// one-permit superblock buffer pool. The fixed code waits for permits
/// without holding the extent-manager state lock; the seeded bug waits
/// while holding it, deadlocking against the permit-reclaiming pump.
pub fn superblock_pool_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || superblock_pool_body(&faults, false))
}

/// [`superblock_pool_harness`] with the background writeback engine
/// running as an extra scheduled task. The engine only flushes at the
/// scheduler level — permit reclamation stays with the extent manager —
/// so the seeded issue #12 deadlock must still be reached (the parked
/// worker counts as blocked, so deadlock detection is unaffected).
pub fn superblock_pool_background_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || superblock_pool_body(&faults, true))
}

fn superblock_pool_body(faults: &FaultConfig, background: bool) {
    let disk = Disk::new(Geometry::small());
    let sched = IoScheduler::new(disk);
    if background {
        enable_background(&sched);
    }
    let em = ExtentManager::format_with_pool(sched, faults.clone(), 1);
    let (ext, _) = em.allocate(Owner::Data).unwrap();
    em.pump().unwrap();
    // Writer/pumper rendezvous: the pumper blocks until the writer
    // queued new IO (a spin loop would starve under priority-based
    // schedulers), pumps, and exits once the writer is done.
    #[derive(Default)]
    struct Signal {
        done: bool,
        seq: u64,
    }
    let signal = Arc::new((
        shardstore_conc::sync::Mutex::new(Signal::default()),
        shardstore_conc::sync::Condvar::new(),
    ));
    let em1 = em.clone();
    let sig1 = Arc::clone(&signal);
    let writer = thread::spawn(move || {
        let none = em1.scheduler().none();
        for _ in 0..2 {
            em1.append(ext, b"block", &none).unwrap();
            // Issue the pending superblock write so the next append
            // needs a fresh one (and thus a fresh permit).
            let _ = em1.scheduler().issue_ready(usize::MAX);
            let (m, cv) = &*sig1;
            m.lock().seq += 1;
            cv.notify_all();
        }
        let (m, cv) = &*sig1;
        m.lock().done = true;
        cv.notify_all();
    });
    let em2 = em.clone();
    let sig2 = Arc::clone(&signal);
    let pumper = thread::spawn(move || {
        let (m, cv) = &*sig2;
        let mut seen = 0u64;
        loop {
            let mut st = m.lock();
            st = cv.wait_while(st, |s| !s.done && s.seq == seen);
            seen = st.seq;
            let done = st.done;
            drop(st);
            let _ = em2.pump();
            if done {
                break;
            }
        }
    });
    writer.join().unwrap();
    pumper.join().unwrap();
    em.pump().unwrap();
    if background {
        em.scheduler().quiesce().unwrap();
    }
}

/// Issue #11 harness: a put races chunk reclamation of its target extent.
/// The fixed put pins the extent until the index references the chunk;
/// the seeded bug drops the pin, letting reclamation invalidate the
/// freshly returned locator.
pub fn put_reclaim_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || put_reclaim_body(&faults, false))
}

/// [`put_reclaim_harness`] with the background writeback engine running
/// as an extra scheduled task (the engine must not mask issue #11).
pub fn put_reclaim_background_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || put_reclaim_body(&faults, true))
}

fn put_reclaim_body(faults: &FaultConfig, background: bool) {
    let store = small_store(faults);
    // Leave garbage on the open data extent so reclamation has a
    // reason to touch it.
    store.put(0, &[0u8; 40]).unwrap();
    store.delete(0).unwrap();
    store.flush_index().unwrap();
    store.pump().unwrap();
    let data_extents =
        store.cache().chunk_store().extent_manager().extents_owned_by(Owner::Data);
    if background {
        enable_background(&store.scheduler());
    }

    let s1 = store.clone();
    let putter = thread::spawn(move || {
        s1.put(1, b"fresh data").unwrap();
    });
    let s2 = store.clone();
    let reclaimer = thread::spawn(move || {
        for ext in data_extents {
            let _ = s2.reclaim_extent(ext, Stream::Data);
        }
    });
    putter.join().unwrap();
    reclaimer.join().unwrap();
    if background {
        store.scheduler().quiesce().unwrap();
    }
    let got = store.get(1).expect("locator must stay valid");
    assert_eq!(got.as_deref(), Some(&b"fresh data"[..]), "put lost to reclamation race");
}

/// Issue #13 harness: the control-plane listing races shard removal. The
/// fixed listing tolerates shards vanishing between the catalog snapshot
/// and the per-shard verification; the seeded bug asserts they still
/// exist and panics.
pub fn list_remove_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || list_remove_body(&faults, false))
}

/// [`list_remove_harness`] with the background writeback engine running
/// as an extra scheduled task (the engine must not mask issue #13).
pub fn list_remove_background_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || list_remove_body(&faults, true))
}

fn list_remove_body(faults: &FaultConfig, background: bool) {
    let node = Node::new(1, Geometry::small(), StoreConfig::small(), faults.clone());
    node.put(1, b"one").unwrap();
    node.put(2, b"two").unwrap();
    if background {
        enable_background(&node.store(0).expect("disk 0 in service").scheduler());
    }
    let n1 = node.clone();
    let lister = thread::spawn(move || {
        let listed = n1.list_verified().unwrap();
        // Whatever subset is returned must carry correct sizes.
        for (shard, size) in listed {
            assert!(size == 3, "shard {shard} listed with wrong size {size}");
        }
    });
    let n2 = node.clone();
    let remover = thread::spawn(move || {
        n2.delete(2).unwrap();
    });
    lister.join().unwrap();
    remover.join().unwrap();
    if background {
        node.store(0).expect("disk 0 in service").scheduler().quiesce().unwrap();
    }
}

/// Issue #16 harness: bulk create races bulk remove over the same shard.
/// Whatever the interleaving, the control-plane catalog and the per-disk
/// indexes must agree afterwards.
pub fn bulk_ops_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || bulk_ops_body(&faults, false))
}

/// [`bulk_ops_harness`] with the background writeback engine running as
/// an extra scheduled task (the engine must not mask issue #16).
pub fn bulk_ops_background_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || bulk_ops_body(&faults, true))
}

fn bulk_ops_body(faults: &FaultConfig, background: bool) {
    let node = Node::new(1, Geometry::small(), StoreConfig::small(), faults.clone());
    node.put(5, b"seed").unwrap();
    if background {
        enable_background(&node.store(0).expect("disk 0 in service").scheduler());
    }
    let n1 = node.clone();
    let creator = thread::spawn(move || {
        n1.bulk_create(&[(5, b"recreated".to_vec()), (6, b"six".to_vec())]).unwrap();
    });
    let n2 = node.clone();
    let remover = thread::spawn(move || {
        n2.bulk_remove(&[5]).unwrap();
    });
    creator.join().unwrap();
    remover.join().unwrap();
    if background {
        node.store(0).expect("disk 0 in service").scheduler().quiesce().unwrap();
    }
    node.check_catalog_consistent().expect("catalog and index diverged");
}

/// Generic §6 linearizability harness: concurrent request-plane workers
/// record their operations and responses; the recorded history must be
/// linearizable with respect to the sequential KV model.
pub fn kv_linearizability_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || {
        let store = small_store(&faults);
        store.put(1, b"init").unwrap();
        let recorder: HistoryRecorder<KvLinOp, KvLinRet> = HistoryRecorder::new();
        let rec0 = recorder.clone();
        // The setup put is part of the sequential prefix.
        {
            let t = rec0.invoke(KvLinOp::Put(1, b"init".to_vec()));
            rec0.complete(t, KvLinRet::Done);
        }
        let mut handles = Vec::new();
        let s1 = store.clone();
        let r1 = recorder.clone();
        handles.push(thread::spawn(move || {
            let t = r1.invoke(KvLinOp::Put(1, b"v1".to_vec()));
            s1.put(1, b"v1").unwrap();
            r1.complete(t, KvLinRet::Done);
            let t = r1.invoke(KvLinOp::Get(2));
            let got = s1.get(2).unwrap();
            r1.complete(t, KvLinRet::Value(got));
        }));
        let s2 = store.clone();
        let r2 = recorder.clone();
        handles.push(thread::spawn(move || {
            let t = r2.invoke(KvLinOp::Put(2, b"v2".to_vec()));
            s2.put(2, b"v2").unwrap();
            r2.complete(t, KvLinRet::Done);
            let t = r2.invoke(KvLinOp::Delete(1));
            s2.delete(1).unwrap();
            r2.complete(t, KvLinRet::Done);
        }));
        let s3 = store.clone();
        let r3 = recorder.clone();
        handles.push(thread::spawn(move || {
            let t = r3.invoke(KvLinOp::Get(1));
            let got = s3.get(1).unwrap();
            r3.complete(t, KvLinRet::Value(got));
        }));
        for h in handles {
            h.join().unwrap();
        }
        let history = recorder.take();
        let result = check_linearizable(&KvSpec, &history);
        assert!(result.is_ok(), "history not linearizable: {history:?}");
    })
}

/// Migration harness: request-plane reads and writes race a control-plane
/// shard migration. Linearizability demands a read never misses the shard
/// (it exists throughout) and a write racing the move is never silently
/// lost to the source-copy deletion.
pub fn migrate_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || {
        let node = Node::new(2, Geometry::small(), StoreConfig::small(), faults.clone());
        node.put(1, b"v0").unwrap();
        let n1 = node.clone();
        let migrator = thread::spawn(move || {
            n1.migrate(1, 0).unwrap();
        });
        let n2 = node.clone();
        let writer = thread::spawn(move || {
            n2.put(1, b"v1").unwrap();
        });
        let n3 = node.clone();
        let reader = thread::spawn(move || {
            let got = n3.get(1).expect("get must not error");
            let got = got.expect("the shard exists throughout");
            assert!(got == b"v0" || got == b"v1", "torn read: {got:?}");
        });
        migrator.join().unwrap();
        writer.join().unwrap();
        reader.join().unwrap();
        // The write must have won: it either landed before the copy (and
        // was copied), or waited out the migration.
        let final_value = node.get(1).unwrap().expect("shard exists");
        assert_eq!(final_value, b"v1", "racing write lost to migration");
        node.check_catalog_consistent().expect("catalog consistent");
    })
}

/// A deadlock-free sanity harness mixing flushes and compactions, used to
/// confirm the maintenance locking has no lock-order inversions.
pub fn maintenance_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || {
        let store = small_store(&faults);
        for k in 0..3u128 {
            store.put(k, b"x").unwrap();
            store.flush_index().unwrap();
        }
        let mut handles = Vec::new();
        for worker in 0..2 {
            let s = store.clone();
            handles.push(thread::spawn(move || {
                if worker == 0 {
                    let _ = s.flush_index();
                    let _ = s.compact_index();
                } else {
                    let _ = s.compact_index();
                    let _ = s.pump();
                }
            }));
        }
        let s = store.clone();
        handles.push(thread::spawn(move || {
            s.put(9, b"concurrent").unwrap();
            assert_eq!(s.get(9).unwrap().as_deref(), Some(&b"concurrent"[..]));
        }));
        for h in handles {
            h.join().unwrap();
        }
        Arc::new(store).pump().unwrap();
    })
}

/// Read-path cache-coherence harness: readers race an overwriting writer
/// plus compaction and LSM-extent reclamation, with every read-path
/// accelerator in play (table fences, bloom filters, the decoded-table
/// cache, the sharded chunk cache). Keys 1..3 never change, so a reader
/// observing anything but their stable value means a cache served a stale
/// or lost entry; the optimistic `tables_version` retry must absorb
/// relocations happening between a reader's snapshot and its table reads.
pub fn read_vs_relocation_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || {
        let store = small_store(&faults);
        for k in 0..4u128 {
            store.put(k, format!("stable-{k}").as_bytes()).unwrap();
            store.flush_index().unwrap();
        }
        store.pump().unwrap();
        let lsm_extents = store
            .cache()
            .chunk_store()
            .extent_manager()
            .extents_owned_by(Owner::LsmData);

        // Maintenance: compact, then evacuate the original table extents,
        // relocating whatever is still live.
        let s1 = store.clone();
        let t1 = thread::spawn(move || {
            let _ = s1.compact_index();
            for ext in lsm_extents {
                let _ = s1.reclaim_extent(ext, Stream::Lsm);
            }
        });
        // Writer: overwrite key 0 and flush, racing readers against the
        // memtable-to-table transition as well.
        let s2 = store.clone();
        let t2 = thread::spawn(move || {
            s2.put(0, b"replacement-0").unwrap();
            let _ = s2.flush_index();
        });
        // Readers: the stable keys must read back exactly, under every
        // interleaving.
        let mut readers = Vec::new();
        for r in 0..2 {
            let s = store.clone();
            readers.push(thread::spawn(move || {
                for k in 1..4u128 {
                    let got = s.get(k).expect("read must not error");
                    assert_eq!(
                        got,
                        Some(format!("stable-{k}").into_bytes()),
                        "reader {r} observed wrong state for stable key {k}"
                    );
                }
            }));
        }
        t1.join().unwrap();
        t2.join().unwrap();
        for h in readers {
            h.join().unwrap();
        }
        // Cold cross-check: what the caches say must match what disk says.
        let warm: Vec<_> = (0..4u128).map(|k| store.get(k).unwrap()).collect();
        store.drop_caches();
        for (k, warm_value) in warm.into_iter().enumerate() {
            let cold = store.get(k as u128).unwrap();
            assert_eq!(cold, warm_value, "cache diverged from disk for key {k}");
        }
        assert_eq!(
            store.get(0).unwrap().as_deref(),
            Some(&b"replacement-0"[..]),
            "overwrite lost"
        );
    })
}

/// Scan-vs-flush harness: scanners race the memtable-to-table transition
/// (an index flush plus a compaction) and an overwriting writer. The scan
/// takes a consistent cut — all memtable shard locks in index order, then
/// the table snapshot — so under every interleaving it must return the
/// stable keys exactly once, in strictly ascending order, with their exact
/// values; the racing key may show its old or new value but never a torn
/// or missing one.
pub fn scan_vs_flush_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || {
        let store = small_store(&faults);
        // Keys 1..3 flushed into tables; keys 0 and 4 left in the
        // memtable, so the scan's merge crosses the memtable/table
        // boundary while the flusher moves entries across it.
        for k in 1..4u128 {
            store.put(k, format!("stable-{k}").as_bytes()).unwrap();
            store.flush_index().unwrap();
        }
        store.put(0, b"stable-0").unwrap();
        store.put(4, b"racing-old").unwrap();
        store.pump().unwrap();

        let s1 = store.clone();
        let flusher = thread::spawn(move || {
            let _ = s1.flush_index();
            let _ = s1.compact_index();
        });
        let s2 = store.clone();
        let writer = thread::spawn(move || {
            s2.put(4, b"racing-new").unwrap();
            let _ = s2.flush_index();
        });
        let mut scanners = Vec::new();
        for r in 0..2 {
            let s = store.clone();
            scanners.push(thread::spawn(move || {
                let page = s.scan(0, 10).expect("scan must not error");
                let keys: Vec<u128> = page.iter().map(|(k, _)| *k).collect();
                assert_eq!(keys, vec![0, 1, 2, 3, 4], "scanner {r} saw wrong key set");
                for (k, v) in &page {
                    if *k == 4 {
                        assert!(
                            *v == b"racing-old"[..] || *v == b"racing-new"[..],
                            "scanner {r}: torn value for racing key: {v:?}"
                        );
                    } else {
                        assert!(
                            *v == *format!("stable-{k}").as_bytes(),
                            "scanner {r}: wrong value for stable key {k}: {v:?}"
                        );
                    }
                }
            }));
        }
        flusher.join().unwrap();
        writer.join().unwrap();
        for h in scanners {
            h.join().unwrap();
        }
        // Cold cross-check: a scan served from caches must agree with one
        // served from disk after everything quiesced.
        let warm = store.scan(0, 10).unwrap();
        store.drop_caches();
        let cold = store.scan(0, 10).unwrap();
        assert_eq!(warm, cold, "cached scan diverged from cold scan");
    })
}

/// Scan-vs-put_batch harness: a scanner races a batch put. `put_batch`
/// applies its elements in order, each completing its index insert before
/// the next starts, so a scan's consistent cut must observe a *prefix* of
/// the (ascending-key) batch — never a gap in the middle — while the
/// pre-existing stable keys stay exact throughout.
pub fn scan_vs_put_batch_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || {
        let store = small_store(&faults);
        for k in 0..3u128 {
            store.put(k, format!("stable-{k}").as_bytes()).unwrap();
        }
        store.flush_index().unwrap();
        store.pump().unwrap();

        let s1 = store.clone();
        let batcher = thread::spawn(move || {
            let batch: Vec<(u128, Vec<u8>)> =
                (10..14u128).map(|k| (k, format!("batch-{k}").into_bytes())).collect();
            s1.put_batch(&batch).unwrap();
        });
        let s2 = store.clone();
        let scanner = thread::spawn(move || {
            let page = s2.scan(0, 20).expect("scan must not error");
            assert!(
                page.windows(2).all(|w| w[0].0 < w[1].0),
                "scan not strictly ascending"
            );
            let stable: Vec<u128> = page.iter().map(|(k, _)| *k).filter(|k| *k < 10).collect();
            assert_eq!(stable, vec![0, 1, 2], "stable keys lost mid-batch");
            for (k, v) in &page {
                let expected = if *k < 10 {
                    format!("stable-{k}")
                } else {
                    format!("batch-{k}")
                };
                assert!(*v == *expected.as_bytes(), "wrong value for key {k}: {v:?}");
            }
            // Prefix-closedness: the visible batch keys must be exactly
            // 10..10+n for some n — a later element visible while an
            // earlier one is missing means the cut was not consistent.
            let batched: Vec<u128> = page.iter().map(|(k, _)| *k).filter(|k| *k >= 10).collect();
            let n = batched.len() as u128;
            assert_eq!(
                batched,
                (10..10 + n).collect::<Vec<_>>(),
                "scan observed a non-prefix subset of an in-flight batch"
            );
        });
        batcher.join().unwrap();
        scanner.join().unwrap();
        // After the batch returns, every element is visible to a scan.
        let keys: Vec<u128> = store.scan(0, 20).unwrap().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![0, 1, 2, 10, 11, 12, 13], "batch not fully scan-visible");
    })
}

/// Get-vs-compaction harness for the *tiered* compactor: point reads race
/// two overlapping incremental compaction picks. Each pick merges a
/// bounded run of adjacent tables and swaps it in atomically under the
/// table-list version, so a reader must observe either the pre-swap or
/// the post-swap table set — never a half-replaced list where a key's
/// newest version is in a retired table and its older shadow in a merged
/// one. Every key is overwritten once across the table stack, making any
/// old/new mixing visible as a stale value.
pub fn get_vs_compaction_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || get_vs_compaction_body(&faults, false))
}

/// [`get_vs_compaction_harness`] with the background writeback engine
/// running as an extra scheduled task (the added asynchrony between
/// submit and durability must not open a window where a reader sees a
/// partially swapped table list).
pub fn get_vs_compaction_background_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || get_vs_compaction_body(&faults, true))
}

fn get_vs_compaction_body(faults: &FaultConfig, background: bool) {
    // Disable the automatic flush-time compaction trigger so setup keeps
    // its full table stack — the racing explicit picks below are the
    // compactions under test.
    let config = StoreConfig::small().to_builder().compaction_trigger_tables(64).build().unwrap();
    let store = Store::format(Geometry::small(), config, faults.clone());
    // Two generations of every key, each flushed into its own table:
    // eight tables total, enough that the tiered picker has real
    // windows to choose from and runs twice with work left over.
    for round in 0..2u32 {
        for k in 0..4u128 {
            store.put(k, format!("gen{round}-{k}").as_bytes()).unwrap();
            store.flush_index().unwrap();
        }
    }
    store.pump().unwrap();
    if background {
        enable_background(&store.scheduler());
    }

    let s1 = store.clone();
    let compactor = thread::spawn(move || {
        let _ = s1.compact_index();
    });
    let s2 = store.clone();
    let compactor2 = thread::spawn(move || {
        let _ = s2.compact_index();
    });
    let mut readers = Vec::new();
    for r in 0..2 {
        let s = store.clone();
        readers.push(thread::spawn(move || {
            for k in 0..4u128 {
                let got = s.get(k).expect("get must not error during compaction");
                assert_eq!(
                    got,
                    Some(format!("gen1-{k}").into_bytes()),
                    "reader {r} saw a stale or lost value for key {k} mid-compaction"
                );
            }
        }));
    }
    compactor.join().unwrap();
    compactor2.join().unwrap();
    for h in readers {
        h.join().unwrap();
    }
    if background {
        store.scheduler().quiesce().unwrap();
    }
    // Cold cross-check: the merged tables on disk must agree with what
    // the warm path served.
    store.drop_caches();
    for k in 0..4u128 {
        assert_eq!(
            store.get(k).unwrap(),
            Some(format!("gen1-{k}").into_bytes()),
            "compaction lost the newest version of key {k}"
        );
    }
}

/// Scan-vs-compaction harness for the tiered compactor: scanners race
/// incremental compaction picks whose merges drop shadowed versions and
/// (when the run reaches the oldest table) tombstones. A scan's
/// consistent cut must return exactly the live key set with newest
/// values under every interleaving — a deleted key reappearing means a
/// tombstone was dropped while an older shadow survived in a table
/// outside the picked run.
pub fn scan_vs_compaction_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || scan_vs_compaction_body(&faults, false))
}

/// [`scan_vs_compaction_harness`] with the background writeback engine
/// running as an extra scheduled task.
pub fn scan_vs_compaction_background_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || scan_vs_compaction_body(&faults, true))
}

fn scan_vs_compaction_body(faults: &FaultConfig, background: bool) {
    // As in `get_vs_compaction_body`: keep the automatic trigger out of
    // the way so the explicit racing picks see the whole table stack.
    let config = StoreConfig::small().to_builder().compaction_trigger_tables(64).build().unwrap();
    let store = Store::format(Geometry::small(), config, faults.clone());
    // Stack of tables where key 2 is deleted *above* its insert: the
    // tombstone sits in a newer table than the value, so a compaction
    // pick that merges the value's table but not the tombstone's (or
    // vice versa) must keep the delete winning. Keys 0,1,3 are
    // overwritten so shadow-dropping is exercised too.
    for k in 0..4u128 {
        store.put(k, format!("old-{k}").as_bytes()).unwrap();
        store.flush_index().unwrap();
    }
    for k in [0u128, 1, 3] {
        store.put(k, format!("new-{k}").as_bytes()).unwrap();
        store.flush_index().unwrap();
    }
    store.delete(2).unwrap();
    store.flush_index().unwrap();
    store.pump().unwrap();
    if background {
        enable_background(&store.scheduler());
    }

    let s1 = store.clone();
    let compactor = thread::spawn(move || {
        // Two picks: with eight tables the first pick leaves work for
        // the second, so the scanners race distinct swap points.
        let _ = s1.compact_index();
        let _ = s1.compact_index();
    });
    let mut scanners = Vec::new();
    for r in 0..2 {
        let s = store.clone();
        scanners.push(thread::spawn(move || {
            let page = s.scan(0, 10).expect("scan must not error during compaction");
            let keys: Vec<u128> = page.iter().map(|(k, _)| *k).collect();
            assert_eq!(
                keys,
                vec![0, 1, 3],
                "scanner {r}: wrong live key set mid-compaction (deleted key \
                 resurrected or live key lost)"
            );
            for (k, v) in &page {
                assert!(
                    *v == *format!("new-{k}").as_bytes(),
                    "scanner {r}: stale value for key {k} mid-compaction: {v:?}"
                );
            }
        }));
    }
    compactor.join().unwrap();
    for h in scanners {
        h.join().unwrap();
    }
    if background {
        store.scheduler().quiesce().unwrap();
    }
    // Cold cross-check: the post-compaction on-disk state must agree.
    let warm = store.scan(0, 10).unwrap();
    store.drop_caches();
    let cold = store.scan(0, 10).unwrap();
    assert_eq!(warm, cold, "cached scan diverged from cold scan after tiered compaction");
    assert_eq!(store.get(2).unwrap(), None, "tombstone for key 2 lost to compaction");
}

/// Scan-vs-relocation harness: scanners race compaction plus LSM-extent
/// reclamation, the same relocation storm as
/// [`read_vs_relocation_harness`] but observed through the range-scan
/// path (fence pruning, the merged iterator, and the optimistic
/// `tables_version` retry in `Store::scan`). Stable keys must appear in
/// every scan with exact values no matter where relocation has moved
/// their chunks.
pub fn scan_vs_relocation_harness(
    faults: FaultConfig,
    options: CheckOptions,
) -> Result<CheckReport, CheckError> {
    check(options, move || {
        let store = small_store(&faults);
        for k in 0..4u128 {
            store.put(k, format!("stable-{k}").as_bytes()).unwrap();
            store.flush_index().unwrap();
        }
        store.pump().unwrap();
        let lsm_extents = store
            .cache()
            .chunk_store()
            .extent_manager()
            .extents_owned_by(Owner::LsmData);

        let s1 = store.clone();
        let relocator = thread::spawn(move || {
            let _ = s1.compact_index();
            for ext in lsm_extents {
                let _ = s1.reclaim_extent(ext, Stream::Lsm);
            }
        });
        let mut scanners = Vec::new();
        for r in 0..2 {
            let s = store.clone();
            scanners.push(thread::spawn(move || {
                let page = s.scan(0, 10).expect("scan must not error under relocation");
                let keys: Vec<u128> = page.iter().map(|(k, _)| *k).collect();
                assert_eq!(keys, vec![0, 1, 2, 3], "scanner {r} lost a key to relocation");
                for (k, v) in &page {
                    assert!(
                        *v == *format!("stable-{k}").as_bytes(),
                        "scanner {r}: relocation corrupted key {k}: {v:?}"
                    );
                }
            }));
        }
        relocator.join().unwrap();
        for h in scanners {
            h.join().unwrap();
        }
        // Cold cross-check against on-disk state.
        let warm = store.scan(0, 10).unwrap();
        store.drop_caches();
        let cold = store.scan(0, 10).unwrap();
        assert_eq!(warm, cold, "cached scan diverged from cold scan after relocation");
    })
}
