//! The Fig. 3 harness, verbatim in structure: property-based conformance
//! of the persistent LSM index against its hash-map reference model.
//!
//! §8.4 explains why the paper models *internal component APIs* rather
//! than only the public interface: corner cases (especially fault
//! scenarios) are much easier to exercise one component at a time, and
//! engineers debug failures in their own component without tracing
//! through the whole stack. This runner is that per-component check for
//! the index.

use proptest::prelude::*;

use shardstore_cache::CachedChunkStore;
use shardstore_chunk::{ChunkStore, Locator, Stream};
use shardstore_dependency::IoScheduler;
use shardstore_faults::FaultConfig;
use shardstore_lsm::LsmIndex;
use shardstore_model::IndexModel;
use shardstore_superblock::ExtentManager;
use shardstore_vdisk::{CrashPlan, Disk, Geometry};

use crate::conformance::Divergence;
use crate::gen::key_ref;
use crate::ops::IndexOp;

/// Strategy for index-op sequences (the Fig. 3 alphabet, ordered by
/// increasing complexity for the shrinker).
pub fn index_ops(bias: bool, max_len: usize) -> impl Strategy<Value = Vec<IndexOp>> {
    let op = prop_oneof![
        4 => key_ref(bias).prop_map(IndexOp::Get),
        4 => (key_ref(bias), any::<u8>()).prop_map(|(k, v)| IndexOp::Put(k, v)),
        2 => key_ref(bias).prop_map(IndexOp::Delete),
        1 => Just(IndexOp::Flush),
        1 => Just(IndexOp::Compact),
        1 => Just(IndexOp::Reclaim),
        1 => Just(IndexOp::Reboot),
    ];
    proptest::collection::vec(op, 1..max_len)
}

fn diverge(op_index: usize, op: &IndexOp, detail: impl Into<String>) -> Divergence {
    Divergence {
        op_index,
        op: format!("{op:?}"),
        detail: detail.into(),
        timeline: String::new(),
        dropped_events: 0,
    }
}

/// Synthesizes a locator list for a `Put(key, v)` op: locators are index
/// *values* here, so any well-formed list works; deriving them from the
/// arguments keeps runs deterministic.
fn synth_locators(key: u128, v: u8) -> Vec<Locator> {
    (0..(v % 3) as u32 + 1)
        .map(|i| Locator {
            extent: shardstore_vdisk::ExtentId(200 + (v as u32 % 7)),
            offset: (key as u32).wrapping_mul(31).wrapping_add(i * 100),
            len: v as u32,
            uuid: (key << 16) ^ (v as u128) ^ (i as u128) << 8,
        })
        .collect()
}

fn fresh_index(faults: &FaultConfig) -> LsmIndex {
    let disk = Disk::new(Geometry::small());
    let sched = IoScheduler::new(disk);
    let em = ExtentManager::format(sched, faults.clone());
    let cs = ChunkStore::new(em, faults.clone(), 2024);
    let cache = CachedChunkStore::new(cs, faults.clone(), 512);
    LsmIndex::new(cache, faults.clone())
}

/// The `proptest_index` loop of Fig. 3: apply each op to both the
/// implementation and the reference, compare results, check invariants.
pub fn run_index_conformance(ops: &[IndexOp], faults: &FaultConfig) -> Result<(), Divergence> {
    let mut implementation = fresh_index(faults);
    let mut reference = IndexModel::new();
    let mut puts_so_far: Vec<u128> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            IndexOp::Get(kr) => {
                let key = kr.resolve(&puts_so_far);
                let got = implementation
                    .get(key)
                    .map_err(|e| diverge(i, op, format!("get failed: {e}")))?;
                let expected = reference.get(key);
                if got != expected {
                    return Err(diverge(
                        i,
                        op,
                        format!("get({key}): impl {got:?} vs model {expected:?}"),
                    ));
                }
            }
            IndexOp::Put(kr, v) => {
                let key = kr.resolve(&puts_so_far);
                let locators = synth_locators(key, *v);
                let none =
                    implementation.cache().chunk_store().extent_manager().scheduler().none();
                implementation.put(key, locators.clone(), none);
                reference.put(key, locators);
                puts_so_far.push(key);
            }
            IndexOp::Delete(kr) => {
                let key = kr.resolve(&puts_so_far);
                implementation.delete(key);
                reference.delete(key);
            }
            IndexOp::Flush => {
                implementation
                    .flush()
                    .map_err(|e| diverge(i, op, format!("flush failed: {e}")))?;
                reference.flush();
            }
            IndexOp::Compact => {
                implementation
                    .compact()
                    .map_err(|e| diverge(i, op, format!("compact failed: {e}")))?;
                reference.compact();
            }
            IndexOp::Reclaim => {
                // Reclaim the best LSM-stream victim, if any; a no-op in
                // the model.
                let cs = implementation.cache().chunk_store().clone();
                if let Some(victim) = cs.select_victim(Stream::Lsm) {
                    let referencer = implementation.lsm_referencer();
                    implementation
                        .cache()
                        .reclaim(victim, Stream::Lsm, &referencer)
                        .map_err(|e| diverge(i, op, format!("reclaim failed: {e}")))?;
                    implementation.note_extent_reset();
                }
            }
            IndexOp::Reboot => {
                implementation
                    .shutdown()
                    .map_err(|e| diverge(i, op, format!("shutdown failed: {e}")))?;
                let sched =
                    implementation.cache().chunk_store().extent_manager().scheduler().clone();
                sched.crash(&CrashPlan::LoseAll);
                let em = ExtentManager::recover(sched, faults.clone())
                    .map_err(|e| diverge(i, op, format!("em recovery failed: {e}")))?;
                let cs = ChunkStore::recover(em, faults.clone(), 2025)
                    .map_err(|e| diverge(i, op, format!("cs recovery failed: {e}")))?;
                let cache = CachedChunkStore::new(cs, faults.clone(), 512);
                implementation = LsmIndex::recover(cache, faults.clone())
                    .map_err(|e| diverge(i, op, format!("index recovery failed: {e}")))?;
            }
        }
        // Fig. 3 line 24: check_invariants — both sides hold the same
        // key → locator mapping.
        let impl_keys = implementation
            .keys()
            .map_err(|e| diverge(i, op, format!("keys failed: {e}")))?;
        if impl_keys != reference.keys() {
            return Err(diverge(
                i,
                op,
                format!("key sets diverge: impl {impl_keys:?} vs model {:?}", reference.keys()),
            ));
        }
        for key in &impl_keys {
            let got = implementation
                .get(*key)
                .map_err(|e| diverge(i, op, format!("invariant get failed: {e}")))?;
            if got != reference.get(*key) {
                return Err(diverge(i, op, format!("value diverges for key {key}")));
            }
        }
    }
    Ok(())
}

/// Convenience: resolve a [`KeyRef`] trace (exposed for the benches).
pub fn resolve_keys(ops: &[IndexOp]) -> Vec<u128> {
    let mut puts = Vec::new();
    for op in ops {
        if let IndexOp::Put(kr, _) = op {
            let k = kr.resolve(&puts);
            puts.push(k);
        }
    }
    puts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::KeyRef;

    #[test]
    fn directed_sequence_passes() {
        let ops = vec![
            IndexOp::Put(KeyRef::Literal(1), 10),
            IndexOp::Get(KeyRef::Literal(1)),
            IndexOp::Flush,
            IndexOp::Get(KeyRef::Literal(1)),
            IndexOp::Put(KeyRef::Literal(2), 20),
            IndexOp::Compact,
            IndexOp::Reclaim,
            IndexOp::Delete(KeyRef::Literal(1)),
            IndexOp::Reboot,
            IndexOp::Get(KeyRef::Literal(1)),
            IndexOp::Get(KeyRef::Literal(2)),
        ];
        run_index_conformance(&ops, &FaultConfig::none()).unwrap();
    }

    #[test]
    fn synth_locators_are_deterministic() {
        assert_eq!(synth_locators(5, 9), synth_locators(5, 9));
        assert_ne!(synth_locators(5, 9), synth_locators(6, 9));
    }
}
