//! The lightweight formal methods validation stack (§3–§6 of the paper).
//!
//! This crate is the paper's contribution rendered as a library:
//!
//! - [`ops`] / [`gen`] — operation alphabets and biased proptest
//!   strategies (§4.1, §4.2);
//! - [`conformance`] — sequential crash-free refinement checking against
//!   the reference model, with the §4.4 failure-injection relaxation;
//! - [`crash`] — crash-consistency checking (persistence + forward
//!   progress, coarse and block-level crash states, §5);
//! - [`lin`] — a linearizability checker for concurrent histories against
//!   a sequential specification (§6);
//! - [`concurrent`] — stateless-model-checking harnesses for the
//!   concurrency issues of Fig. 5 (the Fig. 4 harness among them);
//! - [`minimize`] — standalone test-case minimization (§4.3);
//! - [`detect`] — the Fig. 5 driver: seed a historical bug, run the
//!   matching checker, report detection.

pub mod concurrent;
pub mod conformance;
pub mod crash;
pub mod detect;
pub mod fault_sweep;
pub mod gen;
pub mod index_conformance;
pub mod lin;
pub mod node_conformance;
pub mod node_rpc;
pub mod minimize;
pub mod ops;
pub mod simulate;
pub mod swarm;

use shardstore_core::StoreError;

pub use conformance::{run_conformance, ConformanceConfig, Divergence, RunReport};
pub use crash::run_crash_consistency;

/// True for errors caused by genuine disk-space exhaustion, which the
/// runners skip rather than flag (§4.4: no oracle for resource
/// exhaustion).
pub(crate) fn conformance_no_space(e: &StoreError) -> bool {
    matches!(
        e,
        StoreError::Chunk(shardstore_chunk::ChunkError::NoSpace { .. })
            | StoreError::Lsm(shardstore_lsm::LsmError::Chunk(
                shardstore_chunk::ChunkError::NoSpace { .. }
            ))
    )
}
