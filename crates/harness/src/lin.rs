//! Linearizability checking for concurrent histories (§6 of the paper).
//!
//! The goal stated in §6 is to check that concurrent executions of
//! ShardStore are linearizable with respect to the sequential reference
//! models. This module provides the machinery: a [`HistoryRecorder`] that
//! concurrent harness threads use to log invocation/response intervals,
//! and a Wing–Gong-style search ([`check_linearizable`]) that looks for a
//! sequential witness ordering consistent with real-time order whose
//! results the [`SeqSpec`] reproduces. The search memoizes visited
//! (linearized-set, state) pairs (Lowe's optimization), which keeps the
//! small histories produced by stateless-model-checking harnesses cheap.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use shardstore_conc::sync::Mutex;

/// A sequential specification: a deterministic state machine whose
/// behaviours define what concurrent histories are allowed.
pub trait SeqSpec {
    /// Operation type.
    type Op: Clone + std::fmt::Debug;
    /// Response type.
    type Ret: PartialEq + Clone + std::fmt::Debug;
    /// State type (hashable for memoization).
    type State: Clone + Eq + std::hash::Hash;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Applies an operation, returning the next state and the response.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);
}

/// One completed operation in a concurrent history.
#[derive(Debug, Clone)]
pub struct Completed<Op, Ret> {
    /// The operation.
    pub op: Op,
    /// The observed response.
    pub ret: Ret,
    /// Logical invocation timestamp.
    pub invoked: u64,
    /// Logical response timestamp.
    pub returned: u64,
}

/// Thread-safe recorder of a concurrent history.
///
/// Harness threads call [`HistoryRecorder::invoke`] before an operation
/// and complete the returned token afterwards; timestamps come from a
/// shared logical clock, so intervals reflect real-time order.
#[derive(Debug, Clone, Default)]
pub struct HistoryRecorder<Op, Ret> {
    inner: Arc<Mutex<RecorderInner<Op, Ret>>>,
}

#[derive(Debug)]
struct RecorderInner<Op, Ret> {
    clock: u64,
    completed: Vec<Completed<Op, Ret>>,
}

impl<Op, Ret> Default for RecorderInner<Op, Ret> {
    fn default() -> Self {
        Self { clock: 0, completed: Vec::new() }
    }
}

/// Token for an in-flight operation.
#[derive(Debug)]
pub struct InFlight<Op> {
    op: Op,
    invoked: u64,
}

impl<Op: Clone + Send, Ret: Clone + Send> HistoryRecorder<Op, Ret> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self { inner: Arc::new(Mutex::new(RecorderInner::default())) }
    }

    /// Marks an operation as invoked.
    pub fn invoke(&self, op: Op) -> InFlight<Op> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        InFlight { op, invoked: inner.clock }
    }

    /// Marks an operation as completed with its response.
    pub fn complete(&self, token: InFlight<Op>, ret: Ret) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let returned = inner.clock;
        inner.completed.push(Completed { op: token.op, ret, invoked: token.invoked, returned });
    }

    /// Extracts the completed history (call after joining all threads).
    pub fn take(&self) -> Vec<Completed<Op, Ret>> {
        std::mem::take(&mut self.inner.lock().completed)
    }
}

/// Result of a linearizability check.
#[derive(Debug, Clone)]
pub enum LinResult {
    /// A linearization exists; the witness order is returned (indexes
    /// into the history).
    Linearizable(Vec<usize>),
    /// No linearization exists.
    NotLinearizable {
        /// Human-readable explanation of the search failure.
        detail: String,
    },
}

impl LinResult {
    /// True if the history was linearizable.
    pub fn is_ok(&self) -> bool {
        matches!(self, LinResult::Linearizable(_))
    }
}

/// Checks a history of completed operations against a sequential spec.
///
/// The search considers, at each step, every un-linearized operation that
/// is *minimal* (no other un-linearized operation returned before it was
/// invoked), applies the spec, and backtracks on response mismatch.
pub fn check_linearizable<S: SeqSpec>(spec: &S, history: &[Completed<S::Op, S::Ret>]) -> LinResult {
    let n = history.len();
    assert!(n <= 63, "history too long for the bitmask search");
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut memo: HashSet<(u64, S::State)> = HashSet::new();
    let mut witness: Vec<usize> = Vec::new();

    fn search<S: SeqSpec>(
        spec: &S,
        history: &[Completed<S::Op, S::Ret>],
        done: u64,
        full: u64,
        state: &S::State,
        memo: &mut HashSet<(u64, S::State)>,
        witness: &mut Vec<usize>,
    ) -> bool {
        if done == full {
            return true;
        }
        if !memo.insert((done, state.clone())) {
            return false;
        }
        // Minimal-return among pending ops: an op whose invocation is
        // after another pending op's return cannot linearize first.
        let min_return = history
            .iter()
            .enumerate()
            .filter(|(i, _)| done & (1 << i) == 0)
            .map(|(_, c)| c.returned)
            .min()
            .expect("pending ops exist");
        for (i, c) in history.iter().enumerate() {
            if done & (1 << i) != 0 || c.invoked > min_return {
                continue;
            }
            let (next, ret) = spec.apply(state, &c.op);
            if ret != c.ret {
                continue;
            }
            witness.push(i);
            if search(spec, history, done | (1 << i), full, &next, memo, witness) {
                return true;
            }
            witness.pop();
        }
        false
    }

    let init = spec.init();
    if search(spec, history, 0, full, &init, &mut memo, &mut witness) {
        LinResult::Linearizable(witness)
    } else {
        LinResult::NotLinearizable {
            detail: format!("no linearization of {n} operations found"),
        }
    }
}

/// The KV sequential spec used by the concurrent harnesses: a map from
/// shard ids to byte values.
#[derive(Debug, Clone, Default)]
pub struct KvSpec;

/// KV operations for [`KvSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvLinOp {
    /// Read a shard.
    Get(u128),
    /// Write a shard.
    Put(u128, Vec<u8>),
    /// Delete a shard.
    Delete(u128),
}

/// KV responses for [`KvSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvLinRet {
    /// Response to a get.
    Value(Option<Vec<u8>>),
    /// Response to a put or delete.
    Done,
}

impl SeqSpec for KvSpec {
    type Op = KvLinOp;
    type Ret = KvLinRet;
    type State = BTreeMap<u128, Vec<u8>>;

    fn init(&self) -> Self::State {
        BTreeMap::new()
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        match op {
            KvLinOp::Get(k) => (state.clone(), KvLinRet::Value(state.get(k).cloned())),
            KvLinOp::Put(k, v) => {
                let mut next = state.clone();
                next.insert(*k, v.clone());
                (next, KvLinRet::Done)
            }
            KvLinOp::Delete(k) => {
                let mut next = state.clone();
                next.remove(k);
                (next, KvLinRet::Done)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(
        op: KvLinOp,
        ret: KvLinRet,
        invoked: u64,
        returned: u64,
    ) -> Completed<KvLinOp, KvLinRet> {
        Completed { op, ret, invoked, returned }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_linearizable(&KvSpec, &[]).is_ok());
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = vec![
            op(KvLinOp::Put(1, b"a".to_vec()), KvLinRet::Done, 1, 2),
            op(KvLinOp::Get(1), KvLinRet::Value(Some(b"a".to_vec())), 3, 4),
            op(KvLinOp::Delete(1), KvLinRet::Done, 5, 6),
            op(KvLinOp::Get(1), KvLinRet::Value(None), 7, 8),
        ];
        assert!(check_linearizable(&KvSpec, &h).is_ok());
    }

    #[test]
    fn stale_read_after_put_returned_is_not_linearizable() {
        // Put completes strictly before the get is invoked, yet the get
        // misses the value.
        let h = vec![
            op(KvLinOp::Put(1, b"a".to_vec()), KvLinRet::Done, 1, 2),
            op(KvLinOp::Get(1), KvLinRet::Value(None), 3, 4),
        ];
        assert!(!check_linearizable(&KvSpec, &h).is_ok());
    }

    #[test]
    fn concurrent_put_get_allows_both_outcomes() {
        // Get overlaps the put: both `None` and the value linearize.
        for observed in [None, Some(b"a".to_vec())] {
            let h = vec![
                op(KvLinOp::Put(1, b"a".to_vec()), KvLinRet::Done, 1, 4),
                op(KvLinOp::Get(1), KvLinRet::Value(observed), 2, 3),
            ];
            assert!(check_linearizable(&KvSpec, &h).is_ok());
        }
    }

    #[test]
    fn concurrent_get_cannot_see_a_value_never_written() {
        let h = vec![
            op(KvLinOp::Put(1, b"a".to_vec()), KvLinRet::Done, 1, 4),
            op(KvLinOp::Get(1), KvLinRet::Value(Some(b"junk".to_vec())), 2, 3),
        ];
        assert!(!check_linearizable(&KvSpec, &h).is_ok());
    }

    #[test]
    fn write_write_race_allows_either_final_value_but_reads_agree() {
        // Two concurrent puts, then two sequential reads: both reads must
        // agree on one winner.
        let agree = vec![
            op(KvLinOp::Put(1, b"x".to_vec()), KvLinRet::Done, 1, 4),
            op(KvLinOp::Put(1, b"y".to_vec()), KvLinRet::Done, 2, 3),
            op(KvLinOp::Get(1), KvLinRet::Value(Some(b"x".to_vec())), 5, 6),
            op(KvLinOp::Get(1), KvLinRet::Value(Some(b"x".to_vec())), 7, 8),
        ];
        assert!(check_linearizable(&KvSpec, &agree).is_ok());
        let flip_flop = vec![
            op(KvLinOp::Put(1, b"x".to_vec()), KvLinRet::Done, 1, 4),
            op(KvLinOp::Put(1, b"y".to_vec()), KvLinRet::Done, 2, 3),
            op(KvLinOp::Get(1), KvLinRet::Value(Some(b"x".to_vec())), 5, 6),
            op(KvLinOp::Get(1), KvLinRet::Value(Some(b"y".to_vec())), 7, 8),
        ];
        assert!(!check_linearizable(&KvSpec, &flip_flop).is_ok());
    }

    #[test]
    fn recorder_produces_ordered_intervals() {
        let rec: HistoryRecorder<KvLinOp, KvLinRet> = HistoryRecorder::new();
        let t = rec.invoke(KvLinOp::Put(1, b"v".to_vec()));
        rec.complete(t, KvLinRet::Done);
        let t = rec.invoke(KvLinOp::Get(1));
        rec.complete(t, KvLinRet::Value(Some(b"v".to_vec())));
        let h = rec.take();
        assert_eq!(h.len(), 2);
        assert!(h[0].invoked < h[0].returned);
        assert!(h[0].returned < h[1].invoked);
        assert!(check_linearizable(&KvSpec, &h).is_ok());
    }
}
