//! Swarm simulation: batches of compressed-time seeds (ISSUE 8).
//!
//! One swarm run is a batch of seeds; each seed deterministically derives
//! an operation sequence (via the §4.2 biased strategies) *and* a
//! perturbed fault/delivery schedule, and drives one simulated execution
//! through [`crate::simulate`]. Seeds alternate between the
//! crash-consistency world (a store under dirty restarts, armed disk
//! faults, and timer ticks) and the request-plane world (the node
//! alphabet through a manual-mode engine with message drops, delays, and
//! reorders). Logical time is compressed — a run's wall-clock cost is
//! only the work its events do — so throughput is reported in simulated
//! events per second.
//!
//! A clean, bug-free build must survive every seed: any failure here is
//! either a real bug or a checker bug, and the reproducing
//! `(seed, world)` pair plus the auto-minimized repro is the artifact to
//! keep.

use std::collections::BTreeMap;

use shardstore_faults::coverage;
use shardstore_obs::metrics::MetricsSnapshot;
use shardstore_sim::{PerturbProfile, SimSchedule, SwarmStats};

use crate::conformance::{ConformanceConfig, Divergence};
use crate::detect::sample_sequences;
use crate::gen::{kv_ops, node_ops, GenConfig};
use crate::minimize::{minimize_repro, SimRepro};
use crate::ops::{KvOp, NodeOp};
use crate::simulate::{run_crash_sim, run_rpc_sim, SimOptions, SimOutcome};

/// Swarm batch configuration.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// First seed of the batch; seed `k` of the batch is `base_seed + k`.
    pub base_seed: u64,
    /// Number of seeds to run.
    pub runs: usize,
    /// Perturbation intensity for every derived schedule.
    pub profile: PerturbProfile,
    /// Disks per node in request-plane runs.
    pub num_disks: usize,
    /// Auto-minimize failing repros before reporting them.
    pub minimize_failures: bool,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        Self {
            base_seed: 0x5EED,
            runs: 16,
            profile: PerturbProfile::default(),
            num_disks: 3,
            minimize_failures: true,
        }
    }
}

/// One failing seed, with its (optionally minimized) repro rendered.
#[derive(Debug, Clone)]
pub struct SwarmFailure {
    /// The failing seed.
    pub seed: u64,
    /// Which world failed (`"crash"` or `"rpc"`).
    pub world: &'static str,
    /// The failure message from the first (unminimized) run.
    pub message: String,
    /// Rendering of the minimized `(ops, schedule)` repro (the original
    /// repro when minimization is disabled).
    pub repro: String,
    /// Operations in the minimized repro.
    pub minimized_ops: usize,
    /// Trace events the failing run's ring dropped: non-zero means the
    /// attached timelines are incomplete.
    pub dropped_events: u64,
}

/// Per-seed observability report from one passing run: event volume,
/// the seed's end-of-run metrics (including logical-latency histograms),
/// and the coverage probes this seed hit (deltas against the global
/// coverage registry; empty when coverage is disabled).
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// Which world ran (`"crash"` or `"rpc"`).
    pub world: &'static str,
    /// Simulated events this seed processed.
    pub events: u64,
    /// Operations this seed applied.
    pub ops: u64,
    /// End-of-run metrics snapshot (merged across disks in rpc runs).
    pub metrics: MetricsSnapshot,
    /// Coverage probes hit by this seed, with per-seed hit counts.
    pub coverage: Vec<(String, u64)>,
}

/// The outcome of one swarm batch.
#[derive(Debug, Clone)]
pub struct SwarmOutcome {
    /// Aggregated event statistics across the batch.
    pub stats: SwarmStats,
    /// Wall-clock seconds the batch took.
    pub elapsed_secs: f64,
    /// Every failing seed (empty on a healthy build).
    pub failures: Vec<SwarmFailure>,
    /// One report per passing seed (failing seeds report via
    /// [`SwarmOutcome::failures`] instead).
    pub seed_reports: Vec<SeedReport>,
}

impl SwarmOutcome {
    /// Simulated events per wall-clock second across the batch.
    pub fn events_per_sec(&self) -> f64 {
        self.stats.events_per_sec(self.elapsed_secs)
    }
}

/// Runs one crash-world seed; returns the divergence if it fails.
fn run_crash_seed(
    ops: &[KvOp],
    schedule: &SimSchedule,
    stats: &mut SwarmStats,
) -> Result<SimOutcome, Divergence> {
    let cfg = ConformanceConfig::default();
    let outcome = run_crash_sim(ops, &cfg, schedule, &SimOptions::default())?;
    stats.absorb(&outcome.sim);
    Ok(outcome)
}

/// Runs one request-plane seed; returns the divergence if it fails.
fn run_rpc_seed(
    ops: &[NodeOp],
    schedule: &SimSchedule,
    num_disks: usize,
    stats: &mut SwarmStats,
) -> Result<SimOutcome, Divergence> {
    let cfg = ConformanceConfig::default();
    let outcome = run_rpc_sim(ops, &cfg, num_disks, schedule, &SimOptions::default())?;
    stats.absorb(&outcome.sim);
    Ok(outcome)
}

/// Coverage probes hit since `before`, with per-seed hit counts (empty
/// when the global coverage registry is disabled).
fn coverage_delta(before: &BTreeMap<&'static str, u64>) -> Vec<(String, u64)> {
    coverage::snapshot()
        .into_iter()
        .filter_map(|(name, hits)| {
            let delta = hits.saturating_sub(before.get(name).copied().unwrap_or(0));
            (delta > 0).then(|| (name.to_string(), delta))
        })
        .collect()
}

/// Runs a swarm batch: `runs` seeds, alternating worlds, perturbed
/// schedules, auto-minimization on failure.
pub fn run_swarm(config: &SwarmConfig) -> SwarmOutcome {
    let started = std::time::Instant::now();
    let mut stats = SwarmStats::default();
    let mut failures = Vec::new();
    let mut seed_reports = Vec::new();
    for k in 0..config.runs {
        let seed = config.base_seed.wrapping_add(k as u64);
        let cov_before: BTreeMap<&'static str, u64> = coverage::snapshot().into_iter().collect();
        if k % 2 == 0 {
            let ops: Vec<KvOp> = sample_sequences(kv_ops(GenConfig::crash()), seed, 1)
                .next()
                .expect("one sequence");
            let schedule = SimSchedule::perturbed(seed, ops.len(), &config.profile);
            match run_crash_seed(&ops, &schedule, &mut stats) {
                Ok(outcome) => seed_reports.push(SeedReport {
                    seed,
                    world: "crash",
                    events: outcome.sim.events,
                    ops: ops.len() as u64,
                    metrics: outcome.metrics,
                    coverage: coverage_delta(&cov_before),
                }),
                Err(d) => {
                    let dropped_events = d.dropped_events;
                    let message = d.to_string();
                    let repro = SimRepro { ops, schedule };
                    let minimized = if config.minimize_failures {
                        minimize_repro(&repro, |cand| {
                            let mut scratch = SwarmStats::default();
                            run_crash_seed(&cand.ops, &cand.schedule, &mut scratch)
                                .err()
                                .map(|d| d.to_string())
                        })
                    } else {
                        repro
                    };
                    failures.push(SwarmFailure {
                        seed,
                        world: "crash",
                        message,
                        repro: format!(
                            "ops: {:#?}\nschedule: {:#?}",
                            minimized.ops, minimized.schedule
                        ),
                        minimized_ops: minimized.ops.len(),
                        dropped_events,
                    });
                }
            }
        } else {
            let ops: Vec<NodeOp> = sample_sequences(node_ops(GenConfig::conformance()), seed, 1)
                .next()
                .expect("one sequence");
            let schedule = SimSchedule::perturbed(seed, ops.len(), &config.profile);
            let disks = config.num_disks;
            match run_rpc_seed(&ops, &schedule, disks, &mut stats) {
                Ok(outcome) => seed_reports.push(SeedReport {
                    seed,
                    world: "rpc",
                    events: outcome.sim.events,
                    ops: ops.len() as u64,
                    metrics: outcome.metrics,
                    coverage: coverage_delta(&cov_before),
                }),
                Err(d) => {
                    let dropped_events = d.dropped_events;
                    let message = d.to_string();
                    let repro = SimRepro { ops, schedule };
                    let minimized = if config.minimize_failures {
                        minimize_repro(&repro, |cand| {
                            let mut scratch = SwarmStats::default();
                            run_rpc_seed(&cand.ops, &cand.schedule, disks, &mut scratch)
                                .err()
                                .map(|d| d.to_string())
                        })
                    } else {
                        repro
                    };
                    failures.push(SwarmFailure {
                        seed,
                        world: "rpc",
                        message,
                        repro: format!(
                            "ops: {:#?}\nschedule: {:#?}",
                            minimized.ops, minimized.schedule
                        ),
                        minimized_ops: minimized.ops.len(),
                        dropped_events,
                    });
                }
            }
        }
    }
    SwarmOutcome { stats, elapsed_secs: started.elapsed().as_secs_f64(), failures, seed_reports }
}
