//! Sequential crash-free conformance checking (§4 of the paper), with the
//! §4.4 failure-injection relaxation.
//!
//! The runner applies each operation in a sequence to both the
//! implementation (a full [`Store`] over the in-memory disk) and the
//! reference model ([`KvModel`]), compares the results (the paper's
//! `compare_results!`), and after each operation checks the invariant that
//! both hold the same key-value mapping.
//!
//! Once an injected failure has fired, the strict equivalence is relaxed
//! by the "has failed" flag: an operation may fail or lose data relative
//! to the model, but may **never return wrong data** — any bytes returned
//! must be some value that was actually written to that key (§4.4).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use shardstore_core::{Store, StoreConfig, StoreError, ValueBuf};
use shardstore_faults::FaultConfig;
use shardstore_model::KvModel;
use shardstore_vdisk::{CrashPlan, Geometry};

use crate::ops::KvOp;

/// A divergence between implementation and model.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the operation that exposed the divergence.
    pub op_index: usize,
    /// Rendering of the operation.
    pub op: String,
    /// What went wrong.
    pub detail: String,
    /// Per-op trace timeline from the failing run (tail of the trace
    /// log); empty when the runner had no store to read it from.
    pub timeline: String,
    /// Events the failing run's trace ring dropped (zero when the whole
    /// history fit): a non-zero count means the timelines are incomplete.
    pub dropped_events: u64,
}

impl Divergence {
    /// Attaches the tail of the store's trace log, rendered per-op, plus
    /// the causal timeline of the most recent request, so a minimized
    /// counterexample carries the events that led up to it.
    pub(crate) fn with_timeline(mut self, store: &Store) -> Self {
        let obs = store.obs();
        let trace = obs.trace();
        let records = trace.snapshot();
        self.dropped_events = trace.dropped();
        self.timeline = shardstore_obs::oracle::render_timeline_tail(&records, 60);
        let causal = shardstore_obs::oracle::render_last_req_timeline(&records, self.dropped_events);
        if !causal.is_empty() {
            self.timeline.push_str("--- causal timeline (last request) ---\n");
            self.timeline.push_str(&causal);
        }
        self
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "divergence at op {} ({}): {}", self.op_index, self.op, self.detail)?;
        if self.dropped_events > 0 {
            write!(f, "\n({} trace events dropped by the ring)", self.dropped_events)?;
        }
        if !self.timeline.is_empty() {
            write!(f, "\n--- trace timeline (tail) ---\n{}", self.timeline)?;
        }
        Ok(())
    }
}

impl std::error::Error for Divergence {}

/// Conformance runner configuration.
#[derive(Debug, Clone)]
pub struct ConformanceConfig {
    /// Disk geometry for the store under test.
    pub geometry: Geometry,
    /// Store configuration.
    pub store: StoreConfig,
    /// Seeded faults (the system under test).
    pub faults: FaultConfig,
    /// Run every store under test with the background writeback engine
    /// enabled (a real pump thread racing the generated sequences). The
    /// checked properties are unchanged — persistence facts are frozen by
    /// crashes and the conformance model is timing-independent — so this
    /// flag only widens the explored behaviours.
    pub background_writeback: bool,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        Self {
            geometry: Geometry::small(),
            store: StoreConfig::small(),
            faults: FaultConfig::none(),
            background_writeback: false,
        }
    }
}

impl ConformanceConfig {
    /// Default configuration with a seeded bug.
    pub fn with_faults(faults: FaultConfig) -> Self {
        Self { faults, ..Self::default() }
    }

    /// Enables the background writeback engine for the run.
    pub fn background(mut self) -> Self {
        self.background_writeback = true;
        self
    }
}

/// Statistics from a successful run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunReport {
    /// Operations executed.
    pub ops: usize,
    /// Puts that were skipped because the disk genuinely filled up
    /// (resource exhaustion is out of scope per §4.4).
    pub skipped_no_space: usize,
    /// Whether any injected failure fired (the relaxation was active).
    pub has_failed: bool,
}

/// Shared per-run state used by both the conformance and crash runners.
pub(crate) struct RunCtx {
    pub store: Store,
    pub puts_so_far: Vec<u128>,
    pub history: BTreeMap<u128, Vec<Arc<Vec<u8>>>>,
    pub has_failed: bool,
    /// Keys whose state is ambiguous because an operation *on them*
    /// failed, or because a failed background operation left the whole
    /// store in an ambiguous state. Only uncertain keys are exempt from
    /// the strict presence checks — this precision is what lets the
    /// checker catch bugs like issue #5, where a reclamation silently
    /// swallowed an IO error and lost data for keys no failed operation
    /// ever touched.
    pub uncertain: std::collections::BTreeSet<u128>,
    pub skipped_no_space: usize,
}

impl RunCtx {
    pub fn new(cfg: &ConformanceConfig) -> Self {
        let store = Store::format(cfg.geometry, cfg.store.clone(), cfg.faults.clone());
        if cfg.background_writeback {
            // Reboots reuse the same scheduler, so the mode survives
            // every recovery in the sequence.
            store.scheduler().set_writeback_mode(
                shardstore_dependency::WritebackMode::Background(
                    shardstore_dependency::WritebackConfig::default(),
                ),
            );
        }
        Self {
            store,
            puts_so_far: Vec::new(),
            history: BTreeMap::new(),
            has_failed: false,
            uncertain: std::collections::BTreeSet::new(),
            skipped_no_space: 0,
        }
    }

    /// Marks every key (model-side and implementation-side) uncertain —
    /// used when a failed background operation (flush, reclaim, shutdown,
    /// pump) leaves no way to attribute ambiguity to specific keys.
    pub fn mark_all_uncertain(&mut self, model_keys: impl IntoIterator<Item = u128>) {
        self.uncertain.extend(model_keys);
        if let Ok(keys) = self.store.list() {
            self.uncertain.extend(keys);
        }
        self.uncertain.extend(self.history.keys().copied());
    }

    /// Records a written value for the never-wrong-data check.
    pub fn record_write(&mut self, key: u128, value: Arc<Vec<u8>>) {
        self.puts_so_far.push(key);
        self.history.entry(key).or_default().push(value);
    }

    /// True if `bytes` was ever written to `key`.
    pub fn was_written(&self, key: u128, bytes: &[u8]) -> bool {
        self.history.get(&key).map(|h| h.iter().any(|v| ***v == *bytes)).unwrap_or(false)
    }

    /// Treats an error as tolerable only when a failure was injected.
    pub fn tolerate(&self, e: &StoreError) -> bool {
        self.has_failed && !matches!(e, StoreError::OutOfService)
    }
}

fn diverge(op_index: usize, op: &KvOp, detail: impl Into<String>) -> Divergence {
    Divergence {
        op_index,
        op: format!("{op:?}"),
        detail: detail.into(),
        timeline: String::new(),
        dropped_events: 0,
    }
}

fn is_no_space(e: &StoreError) -> bool {
    matches!(
        e,
        StoreError::Chunk(shardstore_chunk::ChunkError::NoSpace { .. })
            | StoreError::Lsm(shardstore_lsm::LsmError::Chunk(
                shardstore_chunk::ChunkError::NoSpace { .. }
            ))
    )
}

/// Runs a sequence of crash-free operations, checking conformance against
/// the reference model after every step (Fig. 3's loop).
///
/// A thin frontend over the deterministic simulator: the empty (clean)
/// schedule reproduces the historical straight-line loop event for
/// event, so seeds keep finding the same bugs through the new entry
/// point. Perturbed schedules go through
/// [`crate::simulate::run_conformance_sim`].
pub fn run_conformance(ops: &[KvOp], cfg: &ConformanceConfig) -> Result<RunReport, Divergence> {
    let outcome = crate::simulate::run_conformance_sim(
        ops,
        cfg,
        &shardstore_sim::SimSchedule::clean(),
        &crate::simulate::SimOptions::default(),
    )?;
    Ok(outcome.report)
}

/// One conformance step: applies `op` to both implementation and model
/// and compares the outcomes (§4.1, with the §4.4 relaxation).
pub(crate) fn apply_op(
    ctx: &mut RunCtx,
    model: &mut KvModel,
    i: usize,
    op: &KvOp,
    page_size: usize,
    cfg: &ConformanceConfig,
) -> Result<(), Divergence> {
    match op {
        KvOp::Get(kr) => {
            let key = kr.resolve(&ctx.puts_so_far);
            let got = ctx.store.get(key);
            let expected = model.get(key);
            compare_get(ctx, i, op, key, got, expected)?;
        }
        KvOp::Put(kr, spec) => {
            let key = kr.resolve(&ctx.puts_so_far);
            let value = Arc::new(spec.materialize(key, page_size));
            match ctx.store.put(key, &value) {
                Ok(_dep) => {
                    model.put(key, &value);
                    ctx.record_write(key, value);
                }
                Err(e) if is_no_space(&e) => {
                    // Resource exhaustion: out of scope (§4.4); the model
                    // is not updated so both sides stay equivalent.
                    ctx.skipped_no_space += 1;
                }
                Err(e) if ctx.tolerate(&e) => {
                    // The put may have partially applied: the key's state
                    // is ambiguous between the old and new value.
                    ctx.record_write(key, value);
                    ctx.uncertain.insert(key);
                }
                Err(e) => return Err(diverge(i, op, format!("put failed: {e}"))),
            }
        }
        KvOp::PutBatch(elems) => {
            // All key references resolve against the state before the
            // batch; the batch itself is atomic per element (equivalent
            // to the puts applied in order).
            let batch: Vec<(u128, Arc<Vec<u8>>)> = elems
                .iter()
                .map(|(kr, spec)| {
                    let key = kr.resolve(&ctx.puts_so_far);
                    (key, Arc::new(spec.materialize(key, page_size)))
                })
                .collect();
            let arg: Vec<(u128, Vec<u8>)> =
                batch.iter().map(|(k, v)| (*k, v.to_vec())).collect();
            match ctx.store.put_batch(&arg) {
                Ok(_deps) => {
                    for (key, value) in batch {
                        model.put(key, &value);
                        ctx.record_write(key, value);
                    }
                }
                Err(e) if is_no_space(&e) => {
                    ctx.skipped_no_space += 1;
                }
                Err(e) if ctx.tolerate(&e) => {
                    // Any prefix of the batch may have applied: every
                    // batched key's state is ambiguous.
                    for (key, value) in batch {
                        ctx.record_write(key, value);
                        ctx.uncertain.insert(key);
                    }
                }
                Err(e) => return Err(diverge(i, op, format!("put_batch failed: {e}"))),
            }
        }
        KvOp::Delete(kr) => {
            let key = kr.resolve(&ctx.puts_so_far);
            match ctx.store.delete(key) {
                Ok(_dep) => {
                    model.delete(key);
                }
                Err(e) if is_no_space(&e) => {
                    ctx.skipped_no_space += 1;
                }
                Err(e) if ctx.tolerate(&e) => {
                    ctx.uncertain.insert(key);
                }
                Err(e) => return Err(diverge(i, op, format!("delete failed: {e}"))),
            }
        }
        KvOp::Scan(a, b) => {
            let ka = a.resolve(&ctx.puts_so_far);
            let kb = b.resolve(&ctx.puts_so_far);
            let (start, end) = (ka.min(kb), ka.max(kb));
            let got = ctx.store.scan(start, end);
            let expected = model.scan(start, end);
            compare_scan(ctx, i, op, start, end, got, expected)?;
        }
        KvOp::IndexFlush => {
            if let Err(e) = ctx.store.flush_index() {
                if !ctx.tolerate(&e) && !is_no_space(&e) {
                    return Err(diverge(i, op, format!("flush failed: {e}")));
                }
                ctx.mark_all_uncertain(model.list());
            }
        }
        KvOp::Compact => {
            if let Err(e) = ctx.store.compact_index() {
                if !ctx.tolerate(&e) && !is_no_space(&e) {
                    return Err(diverge(i, op, format!("compact failed: {e}")));
                }
                ctx.mark_all_uncertain(model.list());
            }
        }
        KvOp::Reclaim(stream) => {
            if let Err(e) = ctx.store.reclaim(*stream) {
                if !ctx.tolerate(&e) && !is_no_space(&e) {
                    return Err(diverge(i, op, format!("reclaim failed: {e}")));
                }
                ctx.mark_all_uncertain(model.list());
            }
        }
        KvOp::CacheDrop => {
            ctx.store.drop_caches();
        }
        KvOp::Pump(n) => {
            let sched = ctx.store.scheduler();
            if let Err(e) = sched.issue_ready(*n as usize).and_then(|_| sched.flush_issued()) {
                if !ctx.has_failed {
                    return Err(diverge(i, op, format!("pump failed: {e}")));
                }
                ctx.mark_all_uncertain(model.list());
            }
        }
        KvOp::Reboot => {
            // A genuinely full disk can leave the shutdown flush nowhere
            // to write even after reclamation (§4.4 resource exhaustion):
            // the memtable's keys — and only those — may come back stale
            // or absent after the reboot. Capture them so the model can
            // be reconciled below; flushed state must still survive, and
            // the reconciliation insists any surviving value was actually
            // written (never-wrong-data is not relaxed).
            let mut lost_unflushed: Vec<u128> = Vec::new();
            if let Err(e) = ctx.store.clean_shutdown() {
                if !ctx.tolerate(&e) && !is_no_space(&e) {
                    return Err(diverge(i, op, format!("clean shutdown failed: {e}")));
                }
                lost_unflushed = ctx.store.unflushed_keys();
                ctx.mark_all_uncertain(model.list());
            }
            // Everything must be durable after a clean shutdown: recover
            // from the disk alone.
            match ctx.store.dirty_reboot(&CrashPlan::LoseAll) {
                Ok(recovered) => ctx.store = recovered,
                Err(e) => {
                    if !ctx.has_failed {
                        return Err(diverge(i, op, format!("recovery failed: {e}")));
                    }
                    // Recovery blocked by a permanent injected failure:
                    // re-create the store to keep the run going.
                    ctx.store.scheduler().disk().clear_failures();
                    ctx.store = ctx
                        .store
                        .dirty_reboot(&CrashPlan::LoseAll)
                        .map_err(|e| diverge(i, op, format!("recovery failed twice: {e}")))?;
                }
            }
            for key in lost_unflushed {
                match ctx.store.get(key) {
                    Ok(Some(v)) => {
                        if model.get(key).map(|e| **e == *v).unwrap_or(false) {
                            continue;
                        }
                        if !ctx.was_written(key, &v) {
                            return Err(diverge(
                                i,
                                op,
                                format!(
                                    "key {key} returned bytes never written after a \
                                     no-space shutdown"
                                ),
                            ));
                        }
                        model.put(key, &v);
                    }
                    Ok(None) => {
                        model.delete(key);
                    }
                    Err(_) if ctx.has_failed => {}
                    Err(e) => {
                        return Err(diverge(
                            i,
                            op,
                            format!("get({key}) failed after a no-space shutdown: {e}"),
                        ));
                    }
                }
            }
        }
        KvOp::DirtyReboot(_) => {
            // Only meaningful in the crash runner; treated as a no-op here
            // so alphabets can be shared.
        }
        KvOp::FailDiskOnce(raw) => {
            let disk = ctx.store.scheduler().disk().clone();
            let target = KvOp::fail_target(*raw, cfg.geometry.extent_count);
            disk.inject_fail_once(target);
            ctx.has_failed = true;
        }
    }
    Ok(())
}

fn compare_get(
    ctx: &RunCtx,
    i: usize,
    op: &KvOp,
    key: u128,
    got: Result<Option<Vec<u8>>, StoreError>,
    expected: Option<Arc<Vec<u8>>>,
) -> Result<(), Divergence> {
    let uncertain = ctx.uncertain.contains(&key);
    match (got, expected, ctx.has_failed) {
        (Ok(None), None, _) => Ok(()),
        (Ok(Some(g)), Some(e), _) if *g == **e => Ok(()),
        // An operation itself erroring is tolerated once failures are in
        // play (the disk really can fail reads).
        (Err(_), _, true) => Ok(()),
        // Missing or stale data is tolerated only for keys whose own
        // state is ambiguous — never as a blanket pass. Silent data loss
        // for untouched keys (the issue #5 signature) stays a violation.
        (Ok(None), Some(_), true) if uncertain => Ok(()),
        (Ok(Some(g)), _, true) if uncertain && ctx.was_written(key, &g) => Ok(()),
        (Ok(Some(g)), Some(e), _) => Err(diverge(
            i,
            op,
            format!("get({key}) returned {} bytes, model has {} bytes", g.len(), e.len()),
        )),
        (Ok(Some(_)), None, _) => {
            Err(diverge(i, op, format!("get({key}) returned data for an absent key")))
        }
        (Ok(None), Some(_), _) => {
            Err(diverge(i, op, format!("get({key}) lost data the model still has")))
        }
        (Err(e), _, false) => Err(diverge(i, op, format!("get({key}) failed: {e}"))),
    }
}

/// Compares a scan result against the model's range, with the §4.4
/// relaxations: after an injected failure the scan may error, and
/// *uncertain* keys may be missing or extra — but a certain key must
/// appear exactly when the model has it, and any returned bytes must be
/// some value actually written to that key (a scan never fabricates).
pub(crate) fn compare_scan(
    ctx: &RunCtx,
    i: usize,
    op: &KvOp,
    start: u128,
    end: u128,
    got: Result<Vec<(u128, ValueBuf)>, StoreError>,
    expected: Vec<(u128, Arc<Vec<u8>>)>,
) -> Result<(), Divergence> {
    let got = match got {
        Ok(g) => g,
        Err(_) if ctx.has_failed => return Ok(()),
        Err(e) => return Err(diverge(i, op, format!("scan({start}, {end}) failed: {e}"))),
    };
    if !got.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(diverge(i, op, "scan entries are not strictly ascending".to_string()));
    }
    if let Some((k, _)) = got.iter().find(|(k, _)| *k < start || *k > end) {
        return Err(diverge(i, op, format!("scan returned key {k} outside [{start}, {end}]")));
    }
    if !ctx.has_failed {
        let got_keys: Vec<u128> = got.iter().map(|(k, _)| *k).collect();
        let exp_keys: Vec<u128> = expected.iter().map(|(k, _)| *k).collect();
        if got_keys != exp_keys {
            return Err(diverge(
                i,
                op,
                format!("scan key sets diverge: impl {got_keys:?} vs model {exp_keys:?}"),
            ));
        }
        for ((key, gv), (_, ev)) in got.iter().zip(&expected) {
            if *gv != **ev {
                return Err(diverge(
                    i,
                    op,
                    format!(
                        "scan value mismatch for key {key}: impl {} bytes, model {} bytes",
                        gv.len(),
                        ev.len()
                    ),
                ));
            }
        }
    } else {
        let got_keys: std::collections::BTreeSet<u128> = got.iter().map(|(k, _)| *k).collect();
        for (key, _) in expected.iter().filter(|(k, _)| !ctx.uncertain.contains(k)) {
            if !got_keys.contains(key) {
                return Err(diverge(
                    i,
                    op,
                    format!("scan lost key {key} although no operation on it failed"),
                ));
            }
        }
        let exp_keys: std::collections::BTreeSet<u128> =
            expected.iter().map(|(k, _)| *k).collect();
        for (key, value) in &got {
            if !exp_keys.contains(key) && !ctx.uncertain.contains(key) {
                return Err(diverge(
                    i,
                    op,
                    format!("scan returned key {key} the model deleted"),
                ));
            }
            if !ctx.was_written(*key, &value.to_vec()) {
                return Err(diverge(
                    i,
                    op,
                    format!("scan returned bytes for key {key} that were never written"),
                ));
            }
        }
    }
    Ok(())
}

/// The §4.1 invariant: implementation and model hold the same key-value
/// mapping (relaxed to the no-corruption check after injected failures).
pub(crate) fn check_invariants(
    ctx: &RunCtx,
    model: &KvModel,
    i: usize,
    op: &KvOp,
) -> Result<(), Divergence> {
    let impl_keys = match ctx.store.list() {
        Ok(k) => k,
        Err(e) => {
            if ctx.has_failed {
                return Ok(());
            }
            return Err(diverge(i, op, format!("list failed: {e}")));
        }
    };
    let model_keys = model.list();
    if !ctx.has_failed {
        if impl_keys != model_keys {
            return Err(diverge(
                i,
                op,
                format!("key sets diverge: impl {impl_keys:?} vs model {model_keys:?}"),
            ));
        }
        for key in &model_keys {
            let expected = model.get(*key).expect("listed key present");
            match ctx.store.get(*key) {
                Ok(Some(got)) if got == **expected => {}
                Ok(other) => {
                    return Err(diverge(
                        i,
                        op,
                        format!(
                            "value mismatch for key {key}: impl {:?} bytes",
                            other.map(|v| v.len())
                        ),
                    ));
                }
                Err(e) => return Err(diverge(i, op, format!("get({key}) failed: {e}"))),
            }
        }
    } else {
        // Relaxed mode: the key sets may differ only on uncertain keys,
        // and anything readable must have been written at some point.
        for key in model_keys.iter().filter(|k| !ctx.uncertain.contains(k)) {
            if !impl_keys.contains(key) {
                return Err(diverge(
                    i,
                    op,
                    format!("key {key} lost although no operation on it failed"),
                ));
            }
        }
        for key in impl_keys.iter().filter(|k| !ctx.uncertain.contains(k)) {
            if !model_keys.contains(key) {
                return Err(diverge(
                    i,
                    op,
                    format!("key {key} present although the model deleted it"),
                ));
            }
        }
        for key in &impl_keys {
            if let Ok(Some(got)) = ctx.store.get(*key) {
                if !ctx.was_written(*key, &got) {
                    return Err(diverge(
                        i,
                        op,
                        format!("key {key} returned bytes that were never written"),
                    ));
                }
            }
        }
    }
    Ok(())
}
