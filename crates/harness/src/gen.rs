//! Proptest strategies for operation sequences, with the paper's §4.2
//! argument biasing as a toggle.
//!
//! Biasing is probabilistic only: it increases the chance of interesting
//! cases (gets of previously-put keys, page-size-adjacent values) but
//! every case remains possible. The toggle exists because the E4
//! experiment quantifies what biasing buys over default randomness.

use proptest::prelude::*;

use crate::ops::{KeyRef, KvOp, NodeOp, RebootType, ValueSpec};
use shardstore_chunk::Stream;

/// Generation configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Apply argument biasing (§4.2). Off = uniform arguments.
    pub bias: bool,
    /// Include `DirtyReboot` in the alphabet (§5).
    pub crash_ops: bool,
    /// Include `FailDiskOnce` in the alphabet (§4.4).
    pub failure_ops: bool,
    /// Maximum sequence length.
    pub max_len: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self { bias: true, crash_ops: false, failure_ops: false, max_len: 40 }
    }
}

impl GenConfig {
    /// Sequential crash-free conformance (§4).
    pub fn conformance() -> Self {
        Self::default()
    }

    /// Crash-consistency checking (§5).
    pub fn crash() -> Self {
        Self { crash_ops: true, ..Self::default() }
    }

    /// Failure injection (§4.4).
    pub fn failure() -> Self {
        Self { failure_ops: true, ..Self::default() }
    }

    /// Everything at once (crashes + failures).
    pub fn full() -> Self {
        Self { crash_ops: true, failure_ops: true, ..Self::default() }
    }

    /// Disables §4.2 biasing (the E4 ablation).
    pub fn unbiased(mut self) -> Self {
        self.bias = false;
        self
    }
}

/// Key strategy: biased mode prefers previously-put keys (via
/// [`KeyRef::Recent`]) and a small literal domain so collisions happen.
pub fn key_ref(bias: bool) -> BoxedStrategy<KeyRef> {
    if bias {
        prop_oneof![
            3 => any::<u8>().prop_map(KeyRef::Recent),
            2 => (0u8..16).prop_map(KeyRef::Literal),
            1 => any::<u8>().prop_map(KeyRef::Literal),
        ]
        .boxed()
    } else {
        any::<u8>().prop_map(KeyRef::Literal).boxed()
    }
}

/// Value-size strategy: biased mode includes page-size-adjacent lengths.
pub fn value_spec(bias: bool) -> BoxedStrategy<ValueSpec> {
    if bias {
        prop_oneof![
            3 => (0u8..64).prop_map(ValueSpec::Small),
            2 => (0u8..5).prop_map(ValueSpec::NearPage),
            2 => (0u8..24).prop_map(ValueSpec::FrameSpill),
        ]
        .boxed()
    } else {
        any::<u8>().prop_map(ValueSpec::Small).boxed()
    }
}

fn reboot_type() -> impl Strategy<Value = RebootType> {
    (any::<bool>(), 0u8..8, any::<u64>())
        .prop_map(|(flush_index, issue_ios, keep_mask)| RebootType {
            flush_index,
            issue_ios,
            keep_mask,
        })
}

/// One operation from the KV alphabet.
pub fn kv_op(cfg: GenConfig) -> BoxedStrategy<KvOp> {
    let mut options: Vec<(u32, BoxedStrategy<KvOp>)> = vec![
        (4, key_ref(cfg.bias).prop_map(KvOp::Get).boxed()),
        (
            4,
            (key_ref(cfg.bias), value_spec(cfg.bias))
                .prop_map(|(k, v)| KvOp::Put(k, v))
                .boxed(),
        ),
        (
            2,
            proptest::collection::vec((key_ref(cfg.bias), value_spec(cfg.bias)), 2..6)
                .prop_map(KvOp::PutBatch)
                .boxed(),
        ),
        (2, key_ref(cfg.bias).prop_map(KvOp::Delete).boxed()),
        (
            2,
            (key_ref(cfg.bias), key_ref(cfg.bias))
                .prop_map(|(a, b)| KvOp::Scan(a, b))
                .boxed(),
        ),
        (1, Just(KvOp::IndexFlush).boxed()),
        (1, Just(KvOp::Compact).boxed()),
        (
            1,
            prop_oneof![Just(Stream::Data), Just(Stream::Lsm), Just(Stream::Meta)]
                .prop_map(KvOp::Reclaim)
                .boxed(),
        ),
        (1, Just(KvOp::CacheDrop).boxed()),
        (1, (0u8..16).prop_map(KvOp::Pump).boxed()),
        (1, Just(KvOp::Reboot).boxed()),
    ];
    if cfg.crash_ops {
        options.push((2, reboot_type().prop_map(KvOp::DirtyReboot).boxed()));
    }
    if cfg.failure_ops {
        options.push((1, any::<u8>().prop_map(KvOp::FailDiskOnce).boxed()));
    }
    proptest::strategy::Union::new_weighted(options).boxed()
}

/// A sequence of KV operations.
pub fn kv_ops(cfg: GenConfig) -> impl Strategy<Value = Vec<KvOp>> {
    proptest::collection::vec(kv_op(cfg), 1..cfg.max_len)
}

/// One operation from the node-level (control-plane) alphabet.
pub fn node_op(cfg: GenConfig) -> BoxedStrategy<NodeOp> {
    let kv = key_ref(cfg.bias);
    let vs = value_spec(cfg.bias);
    prop_oneof![
        4 => key_ref(cfg.bias).prop_map(NodeOp::Get),
        4 => (key_ref(cfg.bias), value_spec(cfg.bias)).prop_map(|(k, v)| NodeOp::Put(k, v)),
        2 => key_ref(cfg.bias).prop_map(NodeOp::Delete),
        1 => Just(NodeOp::List),
        1 => (0u8..4).prop_map(NodeOp::RemoveDisk),
        1 => (0u8..4).prop_map(NodeOp::ReturnDisk),
        1 => proptest::collection::vec((kv.clone(), vs), 1..4).prop_map(NodeOp::BulkCreate),
        1 => proptest::collection::vec(kv, 1..4).prop_map(NodeOp::BulkRemove),
        1 => (key_ref(cfg.bias), 0u8..4).prop_map(|(k, d)| NodeOp::Migrate(k, d)),
    ]
    .boxed()
}

/// A sequence of node operations.
pub fn node_ops(cfg: GenConfig) -> impl Strategy<Value = Vec<NodeOp>> {
    proptest::collection::vec(node_op(cfg), 1..cfg.max_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRunner;

    fn sample<T: std::fmt::Debug>(s: impl Strategy<Value = T>, n: usize) -> Vec<T> {
        let mut runner = TestRunner::deterministic();
        (0..n).map(|_| s.new_tree(&mut runner).unwrap().current()).collect()
    }

    #[test]
    fn biased_keys_include_recent_references() {
        let keys = sample(key_ref(true), 200);
        assert!(keys.iter().any(|k| matches!(k, KeyRef::Recent(_))));
        assert!(keys.iter().any(|k| matches!(k, KeyRef::Literal(_))));
    }

    #[test]
    fn unbiased_keys_are_all_literals() {
        let keys = sample(key_ref(false), 100);
        assert!(keys.iter().all(|k| matches!(k, KeyRef::Literal(_))));
    }

    #[test]
    fn biased_values_include_near_page_sizes() {
        let vals = sample(value_spec(true), 200);
        assert!(vals.iter().any(|v| matches!(v, ValueSpec::NearPage(_))));
    }

    #[test]
    fn all_configs_generate_put_batches() {
        let seqs = sample(kv_ops(GenConfig::conformance()), 80);
        assert!(seqs.iter().flatten().any(|op| matches!(op, KvOp::PutBatch(_))));
    }

    #[test]
    fn all_configs_generate_scans() {
        let seqs = sample(kv_ops(GenConfig::conformance()), 80);
        assert!(seqs.iter().flatten().any(|op| matches!(op, KvOp::Scan(_, _))));
    }

    #[test]
    fn crash_config_generates_dirty_reboots() {
        let seqs = sample(kv_ops(GenConfig::crash()), 50);
        assert!(seqs.iter().flatten().any(|op| matches!(op, KvOp::DirtyReboot(_))));
    }

    #[test]
    fn conformance_config_never_generates_dirty_reboots_or_failures() {
        let seqs = sample(kv_ops(GenConfig::conformance()), 50);
        assert!(!seqs.iter().flatten().any(|op| op.is_crash_op() || op.is_failure_op()));
    }

    #[test]
    fn failure_config_generates_fail_ops() {
        let seqs = sample(kv_ops(GenConfig::failure()), 80);
        assert!(seqs.iter().flatten().any(|op| matches!(op, KvOp::FailDiskOnce(_))));
    }
}
