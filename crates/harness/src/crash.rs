//! Crash-consistency checking (§5 of the paper).
//!
//! The alphabet extends the conformance alphabet with
//! `DirtyReboot(RebootType)`: the reboot type decides which volatile
//! component state is flushed or issued before the crash, and which
//! disk-cache pages survive it (coarse per-component choices plus
//! block-level page subsets — both granularities from §5).
//!
//! Two properties are checked, verbatim from the paper:
//!
//! 1. **Persistence** — if a dependency says an operation persisted
//!    before a crash, it is readable after the crash (unless superseded
//!    by a later persisted operation), and anything read back must be a
//!    value that was actually written (no corruption).
//! 2. **Forward progress** — after a non-crashing shutdown, every
//!    operation's dependency reports persistent.

use std::collections::BTreeSet;
use std::sync::Arc;

use shardstore_faults::coverage;
use shardstore_model::CrashAwareKvModel;
use shardstore_vdisk::CrashPlan;

use crate::conformance::{ConformanceConfig, Divergence, RunCtx, RunReport};
use crate::ops::{KvOp, RebootType};

fn diverge(op_index: usize, op: &KvOp, detail: impl Into<String>) -> Divergence {
    Divergence {
        op_index,
        op: format!("{op:?}"),
        detail: detail.into(),
        timeline: String::new(),
        dropped_events: 0,
    }
}

/// Runs a sequence that may include dirty reboots, checking the §5
/// persistence and forward-progress properties at every crash and clean
/// shutdown.
///
/// A thin frontend over the deterministic simulator (clean schedule =
/// the historical loop); perturbed schedules go through
/// [`crate::simulate::run_crash_sim`].
pub fn run_crash_consistency(
    ops: &[KvOp],
    cfg: &ConformanceConfig,
) -> Result<RunReport, Divergence> {
    let outcome = crate::simulate::run_crash_sim(
        ops,
        cfg,
        &shardstore_sim::SimSchedule::clean(),
        &crate::simulate::SimOptions::default(),
    )?;
    Ok(outcome.report)
}

/// One crash-consistency step (the historical loop body), shared by the
/// frontend above and the simulator's crash world.
pub(crate) fn crash_step(
    ctx: &mut RunCtx,
    model: &mut CrashAwareKvModel,
    i: usize,
    op: &KvOp,
    cfg: &ConformanceConfig,
) -> Result<(), Divergence> {
    let page_size = cfg.geometry.page_size;
    {
        match op {
            KvOp::Get(kr) => {
                let key = kr.resolve(&ctx.puts_so_far);
                let got = ctx.store.get(key);
                match got {
                    Ok(Some(bytes)) => {
                        let current = model.current(key);
                        let matches_current =
                            current.as_ref().map(|c| ***c == *bytes).unwrap_or(false);
                        if !matches_current && !ctx.has_failed {
                            return Err(diverge(i, op, format!("get({key}) wrong value")));
                        }
                        if !matches_current && !ctx.was_written(key, &bytes) {
                            return Err(diverge(
                                i,
                                op,
                                format!("get({key}) returned bytes never written"),
                            ));
                        }
                    }
                    Ok(None) => {
                        if model.current(key).is_some() && !ctx.has_failed {
                            return Err(diverge(i, op, format!("get({key}) lost data")));
                        }
                    }
                    Err(e) => {
                        if !ctx.has_failed {
                            return Err(diverge(i, op, format!("get({key}) failed: {e}")));
                        }
                    }
                }
            }
            KvOp::Put(kr, spec) => {
                let key = kr.resolve(&ctx.puts_so_far);
                let value = Arc::new(spec.materialize(key, page_size));
                match ctx.store.put(key, &value) {
                    Ok(dep) => {
                        model.put(key, &value, dep);
                        ctx.record_write(key, value);
                    }
                    Err(e) if crate::conformance_no_space(&e) => {
                        ctx.skipped_no_space += 1;
                    }
                    Err(e) if ctx.tolerate(&e) => {
                        // Record the attempted mutation with a dependency
                        // that can never persist: the crash-aware model
                        // then allows either outcome but never demands
                        // the failed write survive.
                        let dead = ctx.store.scheduler().promise().dependency();
                        model.put(key, &value, dead);
                        ctx.record_write(key, value);
                        ctx.uncertain.insert(key);
                    }
                    Err(e) => return Err(diverge(i, op, format!("put failed: {e}"))),
                }
            }
            KvOp::PutBatch(elems) => {
                let batch: Vec<(u128, Arc<Vec<u8>>)> = elems
                    .iter()
                    .map(|(kr, spec)| {
                        let key = kr.resolve(&ctx.puts_so_far);
                        (key, Arc::new(spec.materialize(key, page_size)))
                    })
                    .collect();
                let arg: Vec<(u128, Vec<u8>)> =
                    batch.iter().map(|(k, v)| (*k, v.to_vec())).collect();
                match ctx.store.put_batch(&arg) {
                    Ok(deps) => {
                        for ((key, value), dep) in batch.into_iter().zip(deps) {
                            model.put(key, &value, dep);
                            ctx.record_write(key, value);
                        }
                    }
                    Err(e) if crate::conformance_no_space(&e) => {
                        ctx.skipped_no_space += 1;
                    }
                    Err(e) if ctx.tolerate(&e) => {
                        for (key, value) in batch {
                            let dead = ctx.store.scheduler().promise().dependency();
                            model.put(key, &value, dead);
                            ctx.record_write(key, value);
                            ctx.uncertain.insert(key);
                        }
                    }
                    Err(e) => return Err(diverge(i, op, format!("put_batch failed: {e}"))),
                }
            }
            KvOp::Delete(kr) => {
                let key = kr.resolve(&ctx.puts_so_far);
                match ctx.store.delete(key) {
                    Ok(dep) => model.delete(key, dep),
                    Err(e) if crate::conformance_no_space(&e) => {
                        ctx.skipped_no_space += 1;
                    }
                    Err(e) if ctx.tolerate(&e) => {
                        let dead = ctx.store.scheduler().promise().dependency();
                        model.delete(key, dead);
                        ctx.uncertain.insert(key);
                    }
                    Err(e) => return Err(diverge(i, op, format!("delete failed: {e}"))),
                }
            }
            KvOp::Scan(a, b) => {
                let ka = a.resolve(&ctx.puts_so_far);
                let kb = b.resolve(&ctx.puts_so_far);
                let (start, end) = (ka.min(kb), ka.max(kb));
                match ctx.store.scan(start, end) {
                    Ok(entries) => {
                        // Between crashes execution is sequential and
                        // deterministic, so the scan must agree with the
                        // crash-free current state key by key.
                        for (key, value) in &entries {
                            if *key < start || *key > end {
                                return Err(diverge(
                                    i,
                                    op,
                                    format!("scan returned key {key} outside [{start}, {end}]"),
                                ));
                            }
                            let current = model.current(*key);
                            let matches_current =
                                current.as_ref().map(|c| *value == ***c).unwrap_or(false);
                            if !matches_current && !ctx.has_failed {
                                return Err(diverge(
                                    i,
                                    op,
                                    format!("scan returned wrong value for key {key}"),
                                ));
                            }
                            if !matches_current && !ctx.was_written(*key, &value.to_vec()) {
                                return Err(diverge(
                                    i,
                                    op,
                                    format!("scan returned bytes never written for key {key}"),
                                ));
                            }
                        }
                        if !ctx.has_failed {
                            let got: BTreeSet<u128> =
                                entries.iter().map(|(k, _)| *k).collect();
                            for key in model.tracked_keys() {
                                if (start..=end).contains(&key)
                                    && model.current(key).is_some()
                                    && !got.contains(&key)
                                {
                                    return Err(diverge(
                                        i,
                                        op,
                                        format!("scan lost key {key}"),
                                    ));
                                }
                            }
                        }
                    }
                    Err(e) => {
                        if !ctx.has_failed {
                            return Err(diverge(i, op, format!("scan failed: {e}")));
                        }
                    }
                }
            }
            KvOp::IndexFlush => {
                if let Err(e) = ctx.store.flush_index() {
                    if !ctx.tolerate(&e) && !crate::conformance_no_space(&e) {
                        return Err(diverge(i, op, format!("flush failed: {e}")));
                    }
                }
            }
            KvOp::Compact => {
                if let Err(e) = ctx.store.compact_index() {
                    if !ctx.tolerate(&e) && !crate::conformance_no_space(&e) {
                        return Err(diverge(i, op, format!("compact failed: {e}")));
                    }
                }
            }
            KvOp::Reclaim(stream) => {
                match ctx.store.reclaim(*stream) {
                    Ok(true) => model.note_reclaim(),
                    Ok(false) => {}
                    Err(e) => {
                        if !ctx.tolerate(&e) && !crate::conformance_no_space(&e) {
                            return Err(diverge(i, op, format!("reclaim failed: {e}")));
                        }
                    }
                }
            }
            KvOp::CacheDrop => ctx.store.drop_caches(),
            KvOp::Pump(n) => {
                let sched = ctx.store.scheduler();
                if let Err(e) = sched.issue_ready(*n as usize).and_then(|_| sched.flush_issued())
                {
                    if !ctx.has_failed {
                        return Err(diverge(i, op, format!("pump failed: {e}")));
                    }
                }
            }
            KvOp::Reboot => {
                let mut shutdown_no_space = false;
                if let Err(e) = ctx.store.clean_shutdown() {
                    if !ctx.tolerate(&e) && !crate::conformance_no_space(&e) {
                        return Err(diverge(i, op, format!("clean shutdown failed: {e}")));
                    }
                    shutdown_no_space = crate::conformance_no_space(&e);
                }
                // Forward progress: every dependency persistent after a
                // non-crashing shutdown (skipped once failures fired —
                // failed writes legitimately never persist — and when the
                // shutdown flush itself had no space to write: unflushed
                // dependencies then legitimately stay unpersistent, and
                // the crash-aware model already permits their loss).
                if !ctx.has_failed && !shutdown_no_space {
                    if let Err(key) = model.check_forward_progress() {
                        coverage::hit("crashcheck.forward_progress_violation");
                        return Err(diverge(
                            i,
                            op,
                            format!("forward progress: dependency for key {key} not persistent after clean shutdown"),
                        ));
                    }
                }
                match ctx.store.dirty_reboot(&CrashPlan::LoseAll) {
                    Ok(recovered) => ctx.store = recovered,
                    Err(e) => {
                        if !ctx.has_failed {
                            return Err(diverge(i, op, format!("recovery failed: {e}")));
                        }
                        ctx.store.scheduler().disk().clear_failures();
                        ctx.store = ctx
                            .store
                            .dirty_reboot(&CrashPlan::LoseAll)
                            .map_err(|e| diverge(i, op, format!("recovery failed twice: {e}")))?;
                    }
                }
                model.crash();
            }
            KvOp::DirtyReboot(rt) => {
                dirty_reboot(ctx, model, i, op, rt)?;
            }
            KvOp::FailDiskOnce(raw) => {
                let disk = ctx.store.scheduler().disk().clone();
                disk.inject_fail_once(KvOp::fail_target(*raw, cfg.geometry.extent_count));
                ctx.has_failed = true;
            }
        }
    }
    Ok(())
}

pub(crate) fn dirty_reboot(
    ctx: &mut RunCtx,
    model: &mut CrashAwareKvModel,
    i: usize,
    op: &KvOp,
    rt: &RebootType,
) -> Result<(), Divergence> {
    coverage::hit("crashcheck.dirty_reboot");
    // Pre-crash volatile-state treatment (§5's RebootType).
    if rt.flush_index {
        let _ = ctx.store.flush_index();
    }
    let sched = ctx.store.scheduler();
    if rt.issue_ios > 0 {
        let _ = sched.issue_ready(rt.issue_ios as usize);
    }
    // Block-level survival: choose a page subset via the mask.
    let pages = sched.disk().volatile_pages();
    let keep: BTreeSet<_> = pages
        .into_iter()
        .enumerate()
        .filter(|(idx, _)| rt.keep_mask & (1u64 << (idx % 64)) != 0)
        .map(|(_, p)| p)
        .collect();
    let plan = if keep.is_empty() { CrashPlan::LoseAll } else { CrashPlan::Keep(keep) };
    // Crash + recover. Dependency persistence is frozen by the crash
    // (pending/issued writes become permanently lost), so polling the
    // model's expectations *after* the crash sees exactly the pre-crash
    // persistence.
    let recovered = match ctx.store.dirty_reboot(&plan) {
        Ok(s) => s,
        Err(e) => {
            if ctx.has_failed {
                ctx.store.scheduler().disk().clear_failures();
                ctx.store
                    .dirty_reboot(&CrashPlan::LoseAll)
                    .map_err(|e| diverge(i, op, format!("recovery failed twice: {e}")))?
            } else {
                return Err(diverge(i, op, format!("recovery failed: {e}")));
            }
        }
    };
    ctx.store = recovered;
    // The §5 persistence check, one key at a time, collecting the
    // observed post-recovery state to resynchronize the model.
    let mut observations: std::collections::BTreeMap<u128, Option<Arc<Vec<u8>>>> =
        std::collections::BTreeMap::new();
    for key in model.tracked_keys() {
        let exp = model.expectation(key);
        let observed = match ctx.store.get(key) {
            Ok(v) => v.map(Arc::new),
            Err(e) => {
                if ctx.has_failed {
                    continue;
                }
                return Err(diverge(i, op, format!("post-crash get({key}) failed: {e}")));
            }
        };
        observations.insert(key, observed.clone());
        // The §5 persistence property is exactly the allowed-set check:
        // the set contains the last persisted mutation's value plus every
        // later (possibly surviving) unpersisted mutation — so a persisted
        // value can only be "missing" if nothing in the set matches.
        if exp.persisted.is_some() && !exp.permits(&observed) && !ctx.has_failed {
            coverage::hit("crashcheck.persistence_violation");
            return Err(diverge(
                i,
                op,
                format!(
                    "persistence violation for key {key}: persisted {:?} bytes, observed {:?} bytes",
                    exp.persisted.as_ref().and_then(|v| v.as_ref()).map(|v| v.len()),
                    observed.as_ref().map(|v| v.len())
                ),
            ));
        }
        if !exp.permits(&observed) {
            // Corruption (bytes never written) is never allowed, failure
            // or not.
            let corrupt = observed
                .as_ref()
                .map(|o| !ctx.was_written(key, o))
                .unwrap_or(false);
            if corrupt || !ctx.has_failed {
                coverage::hit("crashcheck.consistency_violation");
                return Err(diverge(
                    i,
                    op,
                    format!(
                        "consistency violation for key {key}: observed {:?} bytes not in allowed set",
                        observed.as_ref().map(|v| v.len())
                    ),
                ));
            }
        }
    }
    model.crash_with_observations(&observations);
    Ok(())
}
