//! Deterministic whole-system simulation (the VOPR, ISSUE 8's tentpole).
//!
//! This module binds the [`shardstore_sim`] substrate — one seeded event
//! loop owning logical time and a unified queue of timer ticks, message
//! deliveries, disk-fault armings, and whole-node crash-restarts — to the
//! concrete harness runners. Each *world* wraps one system under test
//! plus its reference model:
//!
//! - [`run_conformance_sim`] — a [`shardstore_core::Store`] against
//!   [`KvModel`] (§4, the crash-free refinement);
//! - [`run_crash_sim`] — a store against [`CrashAwareKvModel`] (§5), the
//!   only world that honors crash-restart schedule points;
//! - [`run_node_sim_on`] — a multi-disk [`Node`] control plane against
//!   [`KvModel`];
//! - [`run_rpc_sim`] — the same control-plane alphabet driven through
//!   the request plane: a manual-mode [`Engine`] whose executors only
//!   make progress when the event loop delivers, with every request
//!   round-tripped through the wire codec.
//!
//! Operations double as messages: `Apply(i)` *sends* operation `i`
//! (consulting the schedule's drop/delay tables), and `Deliver(i)`
//! executes it against both implementation and model. Because the model
//! updates at delivery order, drops, delays, and reorders are naturally
//! consistent — a clean schedule delivers each message immediately after
//! its send, reproducing the historical straight-line runner loops event
//! for event, so every seeded-bug seed keeps failing through this entry
//! point.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use shardstore_core::rpc::{ErrorCode, Request, Response};
use shardstore_core::{Engine, EngineConfig, Node, RpcClient, Store};
use shardstore_faults::coverage;
use shardstore_model::{CrashAwareKvModel, KvModel};
use shardstore_sim::{CrashPoint, SimCtx, SimReport, SimSchedule, Simulator, World};
use shardstore_vdisk::ExtentId;

use crate::conformance::{
    apply_op, check_invariants, ConformanceConfig, Divergence, RunCtx, RunReport,
};
use crate::crash::{crash_step, dirty_reboot};
use crate::node_conformance::{node_step, NodeRunState};
use crate::ops::{KvOp, NodeOp, RebootType};

/// Per-run options orthogonal to the schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// Compute a byte-stable run fingerprint (obs trace timeline plus a
    /// final-state dump) for determinism regression checks. Off by
    /// default: detection loops run thousands of executions and never
    /// read it.
    pub fingerprint: bool,
}

/// The result of one simulated execution that did not diverge.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The historical runner report (op counts, §4.4 skips).
    pub report: RunReport,
    /// Event-loop statistics (events, deliveries, simulated end time).
    pub sim: SimReport,
    /// Run fingerprint, when [`SimOptions::fingerprint`] was set.
    pub fingerprint: Option<String>,
    /// End-of-run metrics snapshot (merged across disks for node
    /// worlds): counters, gauges, and the logical-latency histograms.
    pub metrics: shardstore_obs::metrics::MetricsSnapshot,
}

/// The delivery plan a world consults when *sending* a message: drops
/// erase the message entirely (the op never executes anywhere), delays
/// push its delivery past later sends (reordering).
struct NetPlan {
    drops: BTreeSet<usize>,
    delays: BTreeMap<usize, u64>,
}

impl NetPlan {
    fn new(schedule: &SimSchedule) -> Self {
        Self {
            drops: schedule.drops.iter().copied().collect(),
            delays: schedule.delays.iter().copied().collect(),
        }
    }

    /// Sends message `m`: schedules its delivery (or drops it). A clean
    /// schedule delivers at `now + 1`, before the next op's send.
    fn send(&self, ctx: &mut SimCtx<'_>, m: usize) {
        if self.drops.contains(&m) {
            coverage::hit("sim.perturb.drop");
            return;
        }
        let delay = self.delays.get(&m).copied().unwrap_or(0);
        if delay > 0 {
            coverage::hit("sim.perturb.delay");
        }
        ctx.schedule_delivery(ctx.now + 1 + delay, m);
    }
}

/// Coverage probe name for a KV-alphabet operation kind.
pub(crate) fn kv_probe(op: &KvOp) -> &'static str {
    match op {
        KvOp::Get(_) => "sim.op.get",
        KvOp::Put(..) => "sim.op.put",
        KvOp::PutBatch(_) => "sim.op.put_batch",
        KvOp::Delete(_) => "sim.op.delete",
        KvOp::Scan(..) => "sim.op.scan",
        KvOp::IndexFlush => "sim.op.index_flush",
        KvOp::Compact => "sim.op.compact",
        KvOp::Reclaim(_) => "sim.op.reclaim",
        KvOp::CacheDrop => "sim.op.cache_drop",
        KvOp::Pump(_) => "sim.op.pump",
        KvOp::Reboot => "sim.op.reboot",
        KvOp::DirtyReboot(_) => "sim.op.dirty_reboot",
        KvOp::FailDiskOnce(_) => "sim.op.fail_disk",
    }
}

/// Coverage probe name for a node-alphabet operation kind.
fn node_probe(op: &NodeOp) -> &'static str {
    match op {
        NodeOp::Get(_) => "sim.op.get",
        NodeOp::Put(..) => "sim.op.put",
        NodeOp::Delete(_) => "sim.op.delete",
        NodeOp::List => "sim.op.list",
        NodeOp::RemoveDisk(_) => "sim.op.remove_disk",
        NodeOp::ReturnDisk(_) => "sim.op.return_disk",
        NodeOp::BulkCreate(_) => "sim.op.bulk_create",
        NodeOp::BulkRemove(_) => "sim.op.bulk_remove",
        NodeOp::Migrate(..) => "sim.op.migrate",
    }
}

/// Arms a schedule fault point on a store's disk. The raw extent wraps
/// into the live data extents (skipping the superblock extent 0, whose
/// loss is unrecoverable by design and would drown every run in
/// uncertifiable recoveries).
pub(crate) fn arm_store_fault(store: &Store, f: &shardstore_sim::FaultPoint, extent_count: u32) {
    let live = extent_count.saturating_sub(1).max(1);
    let target = ExtentId(1 + f.extent % live);
    let disk = store.scheduler().disk().clone();
    match f.kind {
        shardstore_sim::SimFaultKind::Transient(n) => disk.inject_fail_times(target, n),
        shardstore_sim::SimFaultKind::Permanent => disk.inject_fail_always(target),
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A byte-stable fingerprint of a store after a run: the full obs trace
/// timeline plus the final key-value mapping (length + content hash per
/// key). Two deterministic runs of the same `(ops, schedule)` must
/// produce equal fingerprints.
fn store_fingerprint(store: &Store) -> String {
    let mut out = String::new();
    let records = store.obs().trace().snapshot();
    out.push_str(&shardstore_obs::oracle::render_timeline(&records));
    out.push_str("\n--- final state ---\n");
    match store.list() {
        Ok(keys) => {
            for key in keys {
                match store.get(key) {
                    Ok(Some(v)) => {
                        out.push_str(&format!("{key}: {} bytes fnv {:016x}\n", v.len(), fnv(&v)));
                    }
                    Ok(None) => out.push_str(&format!("{key}: absent\n")),
                    Err(e) => out.push_str(&format!("{key}: error {e}\n")),
                }
            }
        }
        Err(e) => out.push_str(&format!("list error: {e}\n")),
    }
    out
}

/// Merges every in-service disk's metrics snapshot into one node-wide
/// view (same-bounds histograms add bucket-wise).
fn node_metrics(node: &Node) -> shardstore_obs::metrics::MetricsSnapshot {
    let mut out = shardstore_obs::metrics::MetricsSnapshot::default();
    for d in 0..node.disk_count() {
        if let Some(obs) = node.disk_obs(d) {
            out.merge(&obs.snapshot());
        }
    }
    out
}

/// Per-disk [`store_fingerprint`] over a whole node.
fn node_fingerprint(node: &Node) -> String {
    let mut out = String::new();
    for d in 0..node.disk_count() {
        match node.store(d) {
            Some(store) => {
                out.push_str(&format!("=== disk {d} ===\n"));
                out.push_str(&store_fingerprint(&store));
            }
            None => out.push_str(&format!("=== disk {d}: out of service ===\n")),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Store worlds (KV alphabet)
// ---------------------------------------------------------------------------

/// The crash-free conformance world: [`apply_op`] + [`check_invariants`]
/// per delivery. Crash-restart points are ignored ([`KvModel`] is not
/// crash-aware); disk-fault points engage the §4.4 relaxation exactly
/// like an in-alphabet `FailDiskOnce`.
struct ConformanceWorld<'a> {
    ops: &'a [KvOp],
    cfg: &'a ConformanceConfig,
    ctx: RunCtx,
    model: KvModel,
    net: NetPlan,
}

impl World for ConformanceWorld<'_> {
    type Error = Divergence;

    fn apply(&mut self, ctx: &mut SimCtx<'_>, i: usize) -> Result<(), Divergence> {
        self.net.send(ctx, i);
        Ok(())
    }

    fn deliver(&mut self, _ctx: &mut SimCtx<'_>, m: usize) -> Result<(), Divergence> {
        let op = &self.ops[m];
        coverage::hit(kv_probe(op));
        let page_size = self.cfg.geometry.page_size;
        apply_op(&mut self.ctx, &mut self.model, m, op, page_size, self.cfg)
            .and_then(|()| check_invariants(&self.ctx, &self.model, m, op))
            .map_err(|d| d.with_timeline(&self.ctx.store))
    }

    fn tick(&mut self, _ctx: &mut SimCtx<'_>) -> Result<(), Divergence> {
        // A timer tick pumps background IO, exactly like an in-alphabet
        // pump at a synthetic index past the sequence.
        let page_size = self.cfg.geometry.page_size;
        apply_op(&mut self.ctx, &mut self.model, self.ops.len(), &KvOp::Pump(4), page_size, self.cfg)
            .map_err(|d| d.with_timeline(&self.ctx.store))
    }

    fn arm_fault(&mut self, f: &shardstore_sim::FaultPoint) -> Result<(), Divergence> {
        arm_store_fault(&self.ctx.store, f, self.cfg.geometry.extent_count);
        self.ctx.has_failed = true;
        Ok(())
    }
}

/// Runs the crash-free conformance checker under the simulator.
pub fn run_conformance_sim(
    ops: &[KvOp],
    cfg: &ConformanceConfig,
    schedule: &SimSchedule,
    opts: &SimOptions,
) -> Result<SimOutcome, Divergence> {
    let mut world = ConformanceWorld {
        ops,
        cfg,
        ctx: RunCtx::new(cfg),
        model: KvModel::new(),
        net: NetPlan::new(schedule),
    };
    let sim = Simulator::run(&mut world, ops.len(), schedule)?;
    let fingerprint = opts.fingerprint.then(|| store_fingerprint(&world.ctx.store));
    Ok(SimOutcome {
        report: RunReport {
            ops: ops.len(),
            skipped_no_space: world.ctx.skipped_no_space,
            has_failed: world.ctx.has_failed,
        },
        sim,
        fingerprint,
        metrics: world.ctx.store.obs().snapshot(),
    })
}

/// The crash-consistency world: [`crash_step`] per delivery, plus real
/// whole-node crash-restarts at the schedule's crash points (a dirty
/// reboot with the point's block-survival mask, checked by the §5
/// persistence property).
struct CrashWorld<'a> {
    ops: &'a [KvOp],
    cfg: &'a ConformanceConfig,
    ctx: RunCtx,
    model: CrashAwareKvModel,
    net: NetPlan,
}

impl World for CrashWorld<'_> {
    type Error = Divergence;

    fn apply(&mut self, ctx: &mut SimCtx<'_>, i: usize) -> Result<(), Divergence> {
        self.net.send(ctx, i);
        Ok(())
    }

    fn deliver(&mut self, _ctx: &mut SimCtx<'_>, m: usize) -> Result<(), Divergence> {
        let op = &self.ops[m];
        coverage::hit(kv_probe(op));
        crash_step(&mut self.ctx, &mut self.model, m, op, self.cfg)
    }

    fn tick(&mut self, _ctx: &mut SimCtx<'_>) -> Result<(), Divergence> {
        crash_step(&mut self.ctx, &mut self.model, self.ops.len(), &KvOp::Pump(4), self.cfg)
    }

    fn arm_fault(&mut self, f: &shardstore_sim::FaultPoint) -> Result<(), Divergence> {
        arm_store_fault(&self.ctx.store, f, self.cfg.geometry.extent_count);
        self.ctx.has_failed = true;
        Ok(())
    }

    fn crash_restart(&mut self, c: &CrashPoint) -> Result<(), Divergence> {
        let rt =
            RebootType { flush_index: false, issue_ios: 0, keep_mask: c.keep_mask };
        let op = KvOp::DirtyReboot(rt);
        dirty_reboot(&mut self.ctx, &mut self.model, c.at_op, &op, &rt)
    }
}

/// Runs the crash-consistency checker under the simulator.
pub fn run_crash_sim(
    ops: &[KvOp],
    cfg: &ConformanceConfig,
    schedule: &SimSchedule,
    opts: &SimOptions,
) -> Result<SimOutcome, Divergence> {
    let mut world = CrashWorld {
        ops,
        cfg,
        ctx: RunCtx::new(cfg),
        model: CrashAwareKvModel::new(cfg.faults.clone()),
        net: NetPlan::new(schedule),
    };
    let sim = Simulator::run(&mut world, ops.len(), schedule)?;
    let fingerprint = opts.fingerprint.then(|| store_fingerprint(&world.ctx.store));
    Ok(SimOutcome {
        report: RunReport {
            ops: ops.len(),
            skipped_no_space: world.ctx.skipped_no_space,
            has_failed: world.ctx.has_failed,
        },
        sim,
        fingerprint,
        metrics: world.ctx.store.obs().snapshot(),
    })
}

// ---------------------------------------------------------------------------
// Node worlds (control-plane alphabet)
// ---------------------------------------------------------------------------

/// The control-plane conformance world: [`node_step`] per delivery.
/// Fault and crash points are ignored — the node checker's oracles are
/// not failure-relaxed, so arming faults would flag honest unavailability
/// as divergence. Network perturbations (drop/delay/reorder) apply.
struct NodeWorld<'a> {
    ops: &'a [NodeOp],
    cfg: &'a ConformanceConfig,
    node: &'a Node,
    st: NodeRunState,
    net: NetPlan,
}

impl World for NodeWorld<'_> {
    type Error = Divergence;

    fn apply(&mut self, ctx: &mut SimCtx<'_>, i: usize) -> Result<(), Divergence> {
        self.net.send(ctx, i);
        Ok(())
    }

    fn deliver(&mut self, _ctx: &mut SimCtx<'_>, m: usize) -> Result<(), Divergence> {
        let op = &self.ops[m];
        coverage::hit(node_probe(op));
        node_step(&mut self.st, self.node, self.cfg, m, op)
    }

    fn tick(&mut self, _ctx: &mut SimCtx<'_>) -> Result<(), Divergence> {
        pump_node(self.node);
        Ok(())
    }
}

/// Tolerantly pumps every in-service disk's IO scheduler (a node-world
/// timer tick; errors surface through the per-op oracles, not here).
fn pump_node(node: &Node) {
    for d in 0..node.disk_count() {
        if let Some(store) = node.store(d) {
            let sched = store.scheduler();
            let _ = sched.issue_ready(4).and_then(|_| sched.flush_issued());
        }
    }
}

/// Runs the control-plane conformance checker under the simulator
/// against a freshly-built node with `num_disks` disks.
pub fn run_node_sim(
    ops: &[NodeOp],
    cfg: &ConformanceConfig,
    num_disks: usize,
    schedule: &SimSchedule,
    opts: &SimOptions,
) -> Result<SimOutcome, Divergence> {
    let node = Node::new(num_disks, cfg.geometry, cfg.store.clone(), cfg.faults.clone());
    if cfg.background_writeback {
        for disk in 0..num_disks {
            if let Some(store) = node.store(disk) {
                store.scheduler().set_writeback_mode(
                    shardstore_dependency::WritebackMode::Background(
                        shardstore_dependency::WritebackConfig::default(),
                    ),
                );
            }
        }
    }
    run_node_sim_on(ops, cfg, &node, schedule, opts)
}

/// Runs the control-plane conformance checker under the simulator
/// against a caller-provided node.
pub fn run_node_sim_on(
    ops: &[NodeOp],
    cfg: &ConformanceConfig,
    node: &Node,
    schedule: &SimSchedule,
    opts: &SimOptions,
) -> Result<SimOutcome, Divergence> {
    let mut world = NodeWorld {
        ops,
        cfg,
        node,
        st: NodeRunState::new(node),
        net: NetPlan::new(schedule),
    };
    let sim = Simulator::run(&mut world, ops.len(), schedule)?;
    let fingerprint = opts.fingerprint.then(|| node_fingerprint(node));
    Ok(SimOutcome {
        report: RunReport {
            ops: ops.len(),
            skipped_no_space: world.st.skipped,
            has_failed: false,
        },
        sim,
        fingerprint,
        metrics: node_metrics(node),
    })
}

// ---------------------------------------------------------------------------
// RPC world (request plane under simulated time)
// ---------------------------------------------------------------------------

/// The request-plane world: the node-alphabet drives a manual-mode
/// [`Engine`] whose per-disk executors only make progress when the event
/// loop says so. Every request round-trips through the wire codec, and
/// responses are checked against [`KvModel`] with the same disk-removal
/// relaxations as [`node_step`]. Fault and crash points are ignored for
/// the same reason as [`NodeWorld`].
struct RpcWorld<'a> {
    ops: &'a [NodeOp],
    cfg: &'a ConformanceConfig,
    engine: Engine,
    client: RpcClient,
    st: NodeRunState,
    net: NetPlan,
}

fn rpc_diverge(op_index: usize, op: &NodeOp, detail: impl Into<String>) -> Divergence {
    Divergence {
        op_index,
        op: format!("{op:?}"),
        detail: detail.into(),
        timeline: String::new(),
        dropped_events: 0,
    }
}

impl RpcWorld<'_> {
    fn node(&self) -> &Node {
        self.engine.node()
    }

    /// Issues one request through the wire codec and the manual engine:
    /// encode, decode (the codec must be canonical), submit, drain the
    /// executors, and collect the reply.
    fn rpc(&self, request: Request) -> Result<Response, String> {
        let frame = request.encode();
        let decoded =
            Request::decode(&frame).map_err(|e| format!("wire roundtrip failed: {e}"))?;
        if decoded.encode() != frame {
            return Err("wire re-encode is not canonical".to_string());
        }
        let reply = self.client.call_nowait(decoded);
        self.engine.drain();
        reply.poll().ok_or_else(|| "no response after engine drain".to_string())
    }

    fn rpc_at(&self, i: usize, op: &NodeOp, request: Request) -> Result<Response, Divergence> {
        self.rpc(request).map_err(|detail| rpc_diverge(i, op, detail))
    }

    /// Attaches the per-disk causal timelines of the most recent request
    /// on each disk, so a minimized request-plane repro shows the failing
    /// request's admission→IO→ack (or failure) path.
    fn with_node_timeline(&self, mut d: Divergence) -> Divergence {
        let mut out = String::new();
        for disk in 0..self.node().disk_count() {
            if let Some(obs) = self.node().disk_obs(disk) {
                let trace = obs.trace();
                let records = trace.snapshot();
                let dropped = trace.dropped();
                d.dropped_events = d.dropped_events.max(dropped);
                let causal =
                    shardstore_obs::oracle::render_last_req_timeline(&records, dropped);
                if !causal.is_empty() {
                    out.push_str(&format!(
                        "=== disk {disk}: causal timeline (last request) ===\n{causal}"
                    ));
                }
            }
        }
        if !out.is_empty() {
            d.timeline = out;
        }
        d
    }
}

impl World for RpcWorld<'_> {
    type Error = Divergence;

    fn apply(&mut self, ctx: &mut SimCtx<'_>, i: usize) -> Result<(), Divergence> {
        self.net.send(ctx, i);
        Ok(())
    }

    fn deliver(&mut self, _ctx: &mut SimCtx<'_>, m: usize) -> Result<(), Divergence> {
        let op = &self.ops[m];
        coverage::hit(node_probe(op));
        self.deliver_op(m, op).map_err(|d| self.with_node_timeline(d))?;
        // Catalog/index consistency is an always-on invariant, exactly as
        // in the direct control-plane world.
        if let Err(detail) = self.node().check_catalog_consistent() {
            return Err(self.with_node_timeline(rpc_diverge(m, op, detail)));
        }
        Ok(())
    }

    fn tick(&mut self, _ctx: &mut SimCtx<'_>) -> Result<(), Divergence> {
        self.engine.drain();
        pump_node(self.node());
        Ok(())
    }

    fn settle(&mut self) -> Result<(), Divergence> {
        self.engine.drain();
        self.engine.shutdown();
        self.node()
            .check_catalog_consistent()
            .map_err(|detail| {
                self.with_node_timeline(Divergence {
                    op_index: self.ops.len(),
                    op: "settle".to_string(),
                    detail,
                    timeline: String::new(),
                    dropped_events: 0,
                })
            })
    }
}

impl RpcWorld<'_> {
    #[allow(clippy::too_many_lines)]
    fn deliver_op(&mut self, i: usize, op: &NodeOp) -> Result<(), Divergence> {
        let page_size = self.cfg.geometry.page_size;
        match op {
            NodeOp::Get(kr) => {
                let key = kr.resolve(&self.st.puts_so_far);
                let disk = self.node().route(key);
                match self.rpc_at(i, op, Request::Get { shard: key })? {
                    Response::Error(e)
                        if e.code == ErrorCode::OutOfService && self.st.removed[disk] => {}
                    Response::Error(e) if e.code == ErrorCode::NoSpace => {}
                    Response::Error(e) => {
                        return Err(rpc_diverge(i, op, format!("get failed: {e}")));
                    }
                    resp @ (Response::Data(_) | Response::NotFound) => {
                        if self.st.removed[disk] {
                            return Err(rpc_diverge(i, op, "get served from a removed disk"));
                        }
                        let got = match resp {
                            Response::Data(v) => Some(v.to_vec()),
                            _ => None,
                        };
                        let expected = self.st.model.get(key);
                        let ok = match (&got, &expected) {
                            (None, None) => true,
                            (Some(g), Some(e)) => *g == ***e,
                            _ => false,
                        };
                        if !ok {
                            return Err(rpc_diverge(
                                i,
                                op,
                                format!(
                                    "get({key}) mismatch: impl {:?} vs model {:?} bytes",
                                    got.map(|v| v.len()),
                                    expected.map(|v| v.len())
                                ),
                            ));
                        }
                    }
                    other => {
                        return Err(rpc_diverge(i, op, format!("unexpected response {other:?}")));
                    }
                }
            }
            NodeOp::Put(kr, spec) => {
                let key = kr.resolve(&self.st.puts_so_far);
                let disk = self.node().route(key);
                let value = Arc::new(spec.materialize(key, page_size));
                match self.rpc_at(i, op, Request::Put { shard: key, data: value.to_vec() })? {
                    Response::Ok => {
                        if self.st.removed[disk] {
                            return Err(rpc_diverge(i, op, "put accepted by a removed disk"));
                        }
                        self.st.model.put(key, &value);
                        self.st.puts_so_far.push(key);
                    }
                    Response::Error(e)
                        if e.code == ErrorCode::OutOfService && self.st.removed[disk] => {}
                    Response::Error(e) if e.code == ErrorCode::NoSpace => self.st.skipped += 1,
                    other => {
                        return Err(rpc_diverge(i, op, format!("put failed: {other:?}")));
                    }
                }
            }
            NodeOp::Delete(kr) => {
                let key = kr.resolve(&self.st.puts_so_far);
                let disk = self.node().route(key);
                match self.rpc_at(i, op, Request::Delete { shard: key })? {
                    Response::Ok => {
                        self.st.model.delete(key);
                    }
                    Response::Error(e)
                        if e.code == ErrorCode::OutOfService && self.st.removed[disk] => {}
                    Response::Error(e) if e.code == ErrorCode::NoSpace => self.st.skipped += 1,
                    other => {
                        return Err(rpc_diverge(i, op, format!("delete failed: {other:?}")));
                    }
                }
            }
            NodeOp::List => {
                let listed = match self.rpc_at(i, op, Request::List)? {
                    Response::Shards(shards) => shards,
                    other => {
                        return Err(rpc_diverge(i, op, format!("list failed: {other:?}")));
                    }
                };
                for key in &listed {
                    if self.st.model.get(*key).is_none() {
                        return Err(rpc_diverge(i, op, format!("listed phantom shard {key}")));
                    }
                }
                for key in self.st.model.list() {
                    if !self.st.removed[self.node().route(key)] && !listed.contains(&key) {
                        return Err(rpc_diverge(i, op, format!("listing missed shard {key}")));
                    }
                }
            }
            NodeOp::RemoveDisk(d) => {
                let disk = *d as usize % self.node().disk_count();
                match self.rpc_at(i, op, Request::RemoveDisk { disk: disk as u32 })? {
                    Response::Ok => self.st.removed[disk] = true,
                    Response::Error(e)
                        if e.code == ErrorCode::OutOfService && self.st.removed[disk] => {}
                    Response::Error(e) if e.code == ErrorCode::NoSpace => self.st.skipped += 1,
                    other => {
                        return Err(rpc_diverge(i, op, format!("remove_disk failed: {other:?}")));
                    }
                }
            }
            NodeOp::ReturnDisk(d) => {
                let disk = *d as usize % self.node().disk_count();
                match self.rpc_at(i, op, Request::ReturnDisk { disk: disk as u32 })? {
                    Response::Ok => {
                        self.st.removed[disk] = false;
                        // Disk-return durability, checked through the
                        // request plane: every model shard on this disk is
                        // served again with its data intact.
                        for key in self.st.model.list() {
                            if self.node().route(key) != disk {
                                continue;
                            }
                            let expected =
                                self.st.model.get(key).expect("listed key").clone();
                            match self.rpc_at(i, op, Request::Get { shard: key })? {
                                Response::Data(got) if got.to_vec() == **expected => {}
                                other => {
                                    return Err(rpc_diverge(
                                        i,
                                        op,
                                        format!(
                                            "shard {key} lost across disk removal/return: {other:?}"
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                    Response::Error(e) if e.code == ErrorCode::NoSpace => self.st.skipped += 1,
                    other => {
                        return Err(rpc_diverge(i, op, format!("return_disk failed: {other:?}")));
                    }
                }
            }
            NodeOp::BulkCreate(batch) => {
                let resolved: Vec<(u128, Vec<u8>)> = batch
                    .iter()
                    .map(|(kr, spec)| {
                        let key = kr.resolve(&self.st.puts_so_far);
                        (key, spec.materialize(key, page_size))
                    })
                    .collect();
                if resolved.iter().any(|(k, _)| self.st.removed[self.node().route(*k)]) {
                    return Ok(());
                }
                match self.rpc_at(i, op, Request::BulkCreate { shards: resolved.clone() })? {
                    Response::Ok => {
                        for (key, value) in resolved {
                            self.st.model.put(key, &value);
                            self.st.puts_so_far.push(key);
                        }
                    }
                    Response::Error(e) if e.code == ErrorCode::NoSpace => self.st.skipped += 1,
                    other => {
                        return Err(rpc_diverge(i, op, format!("bulk create failed: {other:?}")));
                    }
                }
            }
            NodeOp::BulkRemove(batch) => {
                let resolved: Vec<u128> =
                    batch.iter().map(|kr| kr.resolve(&self.st.puts_so_far)).collect();
                if resolved.iter().any(|k| self.st.removed[self.node().route(*k)]) {
                    return Ok(());
                }
                match self.rpc_at(i, op, Request::BulkRemove { shards: resolved.clone() })? {
                    Response::Ok => {
                        for key in resolved {
                            self.st.model.delete(key);
                        }
                    }
                    Response::Error(e) if e.code == ErrorCode::NoSpace => self.st.skipped += 1,
                    other => {
                        return Err(rpc_diverge(i, op, format!("bulk remove failed: {other:?}")));
                    }
                }
            }
            NodeOp::Migrate(kr, d) => {
                let key = kr.resolve(&self.st.puts_so_far);
                let to_disk = *d as usize % self.node().disk_count();
                let from_disk = self.node().route(key);
                let request = Request::Migrate { shard: key, to_disk: to_disk as u32 };
                if self.st.removed[from_disk] || self.st.removed[to_disk] {
                    match self.rpc_at(i, op, request)? {
                        Response::Error(e) if e.code == ErrorCode::OutOfService => {}
                        Response::Error(e) if e.code == ErrorCode::NoSpace => {
                            self.st.skipped += 1;
                        }
                        Response::Error(e) => {
                            return Err(rpc_diverge(i, op, format!("migrate failed: {e}")));
                        }
                        _ => {}
                    }
                    return Ok(());
                }
                match self.rpc_at(i, op, request)? {
                    Response::Ok => {
                        let expected = self.st.model.get(key);
                        let got = match self.rpc_at(i, op, Request::Get { shard: key })? {
                            Response::Data(v) => Some(v.to_vec()),
                            Response::NotFound => None,
                            other => {
                                return Err(rpc_diverge(
                                    i,
                                    op,
                                    format!("post-migrate get failed: {other:?}"),
                                ));
                            }
                        };
                        let ok = match (&expected, &got) {
                            (None, None) => true,
                            (Some(e), Some(g)) => ***e == **g,
                            _ => false,
                        };
                        if !ok {
                            return Err(rpc_diverge(
                                i,
                                op,
                                format!("shard {key} changed across migration"),
                            ));
                        }
                        if expected.is_some() && self.node().route(key) != to_disk {
                            return Err(rpc_diverge(i, op, "placement not updated"));
                        }
                    }
                    Response::Error(e) if e.code == ErrorCode::NoSpace => self.st.skipped += 1,
                    other => {
                        return Err(rpc_diverge(i, op, format!("migrate failed: {other:?}")));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Runs the node alphabet through the request plane under the simulator:
/// a manual-mode engine (no worker threads — the event loop is the only
/// source of executor progress), wire-codec round-trips on every
/// request, and model conformance checks on every response.
pub fn run_rpc_sim(
    ops: &[NodeOp],
    cfg: &ConformanceConfig,
    num_disks: usize,
    schedule: &SimSchedule,
    opts: &SimOptions,
) -> Result<SimOutcome, Divergence> {
    let node = Node::new(num_disks, cfg.geometry, cfg.store.clone(), cfg.faults.clone());
    let engine = Engine::start_manual(node.clone(), EngineConfig::default());
    let client = engine.client();
    let st = NodeRunState::new(&node);
    let mut world = RpcWorld { ops, cfg, engine, client, st, net: NetPlan::new(schedule) };
    let sim = Simulator::run(&mut world, ops.len(), schedule)?;
    let fingerprint = opts.fingerprint.then(|| node_fingerprint(&node));
    Ok(SimOutcome {
        report: RunReport {
            ops: ops.len(),
            skipped_no_space: world.st.skipped,
            has_failed: false,
        },
        sim,
        fingerprint,
        metrics: node_metrics(&node),
    })
}
