//! Deterministic fault-schedule sweeps: §4.4's failure injection taken
//! systematic.
//!
//! The random alphabets inject transient failures at random points
//! ([`KvOp::FailDiskOnce`]); this module instead *enumerates* fault
//! schedules — the cross product of target extent, operation index, and
//! fault kind (a counted transient burst, or a permanent extent death) —
//! and replays each schedule against generated operation sequences.
//!
//! Every run checks three properties:
//!
//! - **Conformance under faults** (§4.4's relaxation): operations may
//!   fail and keys touched by failed operations become uncertain, but no
//!   read ever returns bytes that were never written, and no *untouched*
//!   key is silently lost.
//! - **Durability under quarantine**: a key whose put was acknowledged
//!   (its dependency reported persistent) must afterwards read back as an
//!   acknowledged-or-later value for that key, or fail with a
//!   *distinguishable* degraded error once its extent is quarantined —
//!   never `None`, and never wrong bytes.
//! - **No lost acks**: a dependency that has reported persistent must
//!   never revert. Retry and quarantine bookkeeping in the scheduler must
//!   not un-acknowledge a durable write.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use shardstore_core::{Store, StoreConfig, StoreError};
use shardstore_dependency::Dependency;
use shardstore_faults::FaultConfig;
use shardstore_model::KvModel;
use shardstore_vdisk::{CrashPlan, ExtentId, Geometry};

use crate::detect::sample_sequences;
use crate::gen::{kv_ops, GenConfig};
use crate::ops::KvOp;

/// The kind of fault a schedule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The next `n` IOs to the extent fail with a *transient* error.
    /// `n` at or below the scheduler's retry budget is absorbed
    /// invisibly; above it, the error surfaces and the write requeues.
    Transient(u32),
    /// Every IO to the extent fails permanently: the extent is expected
    /// to be quarantined on first contact.
    Permanent,
}

/// One point in the fault-schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Target extent. Extent 0 (the superblock) is never enumerated: a
    /// dead superblock extent is node death, not degraded mode.
    pub extent: ExtentId,
    /// The fault is armed immediately before this operation index.
    pub op_index: usize,
    /// What kind of fault fires.
    pub kind: FaultKind,
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Transient(n) => {
                write!(f, "transient×{n} on extent {} before op {}", self.extent.0, self.op_index)
            }
            FaultKind::Permanent => {
                write!(f, "permanent fault on extent {} before op {}", self.extent.0, self.op_index)
            }
        }
    }
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Disk geometry for the stores under test.
    pub geometry: Geometry,
    /// Store configuration.
    pub store: StoreConfig,
    /// Run the stores with the background writeback engine.
    pub background_writeback: bool,
    /// Base seed for sequence generation (sweeps are deterministic).
    pub seed: u64,
    /// Number of generated operation sequences to sweep.
    pub sequences: u64,
    /// Enumerate every `extent_stride`-th extent starting at 1.
    pub extent_stride: u32,
    /// Enumerate every `op_stride`-th operation index starting at 0.
    pub op_stride: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            geometry: Geometry::small(),
            store: StoreConfig::small(),
            background_writeback: false,
            seed: 0xFA17,
            sequences: 4,
            extent_stride: 3,
            op_stride: 7,
        }
    }
}

impl SweepConfig {
    /// Enables the background writeback engine for every store.
    pub fn background(mut self) -> Self {
        self.background_writeback = true;
        self
    }

    /// The fault schedules enumerated for a sequence of `seq_len` ops.
    pub fn schedules(&self, seq_len: usize) -> Vec<FaultSchedule> {
        let kinds = [
            FaultKind::Transient(1),
            FaultKind::Transient(shardstore_dependency::DEFAULT_RETRY_BUDGET + 1),
            FaultKind::Permanent,
        ];
        let mut out = Vec::new();
        let mut extent = 1u32;
        while extent < self.geometry.extent_count {
            let mut op_index = 0usize;
            while op_index < seq_len {
                for kind in kinds {
                    out.push(FaultSchedule { extent: ExtentId(extent), op_index, kind });
                }
                op_index += self.op_stride.max(1);
            }
            extent += self.extent_stride.max(1);
        }
        out
    }
}

/// A property violation found by the sweep.
#[derive(Debug, Clone)]
pub struct SweepViolation {
    /// The schedule that exposed it.
    pub schedule: FaultSchedule,
    /// Index of the sequence (within the sweep) it fired on.
    pub sequence: u64,
    /// Index of the operation at which the violation was observed.
    pub op_index: usize,
    /// Which property failed and how.
    pub detail: String,
    /// Per-op trace timeline from the failing run (tail of the trace
    /// log), rendered for the minimized counterexample report.
    pub timeline: String,
}

impl fmt::Display for SweepViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep violation (seq {}, {}) at op {}: {}",
            self.sequence, self.schedule, self.op_index, self.detail
        )?;
        if !self.timeline.is_empty() {
            write!(f, "\n--- trace timeline (tail) ---\n{}", self.timeline)?;
        }
        Ok(())
    }
}

impl std::error::Error for SweepViolation {}

/// Aggregate statistics from a completed sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepReport {
    /// Sequences swept.
    pub sequences: u64,
    /// Fault schedules executed in total.
    pub schedules: u64,
    /// Runs in which the scheduler absorbed the fault via in-call retry.
    pub retried_runs: u64,
    /// Runs that ended with at least one quarantined extent.
    pub quarantined_runs: u64,
    /// Degraded read errors observed (and tolerated) across all runs.
    pub degraded_reads: u64,
    /// Acknowledged dependencies tracked across all runs.
    pub acks_tracked: u64,
}

/// One acknowledged-durability tracking record: a put (or delete) whose
/// dependency we watch for the no-lost-ack property.
struct Tracked {
    key: u128,
    /// Index into the key's write history; `None` for a delete.
    hist_idx: Option<usize>,
    dep: Dependency,
    acked: bool,
}

struct SweepCtx {
    store: Store,
    model: KvModel,
    history: BTreeMap<u128, Vec<Arc<Vec<u8>>>>,
    tracked: Vec<Tracked>,
    puts_so_far: Vec<u128>,
    uncertain: std::collections::BTreeSet<u128>,
    /// Keys deleted at or after their last acked write (a later `None`
    /// read is then legal).
    deleted_after_ack: std::collections::BTreeSet<u128>,
    fault_armed: bool,
    degraded_reads: u64,
}

impl SweepCtx {
    fn was_written(&self, key: u128, bytes: &[u8]) -> bool {
        self.history.get(&key).map(|h| h.iter().any(|v| ***v == *bytes)).unwrap_or(false)
    }

    fn record_write(&mut self, key: u128, value: Arc<Vec<u8>>) -> usize {
        self.puts_so_far.push(key);
        let h = self.history.entry(key).or_default();
        h.push(value);
        h.len() - 1
    }

    /// Polls every tracked dependency, promoting to acked and enforcing
    /// the no-lost-ack property.
    fn poll_acks(&mut self, at: usize) -> Result<(), String> {
        let obs = self.store.obs();
        for t in &mut self.tracked {
            let persistent = t.dep.is_persistent();
            if t.acked && !persistent {
                return Err(format!(
                    "no-lost-ack violated at op {at}: key {} was acknowledged durable and reverted",
                    t.key
                ));
            }
            if persistent && !t.acked {
                t.acked = true;
                // Record the acknowledgement in the trace so the
                // acked-durability trace oracle can check that every write
                // the op announced had persisted by this point.
                if let Some(n) = t.dep.trace_node() {
                    obs.trace().event(shardstore_obs::TraceEvent::Acked { dep: n });
                }
                if t.hist_idx.is_none() {
                    self.deleted_after_ack.insert(t.key);
                }
            }
        }
        Ok(())
    }

    /// The latest acknowledged *write* per key (deletes supersede).
    fn acked_values(&self) -> BTreeMap<u128, usize> {
        let mut out = BTreeMap::new();
        for t in self.tracked.iter().filter(|t| t.acked) {
            match t.hist_idx {
                Some(idx) => {
                    out.insert(t.key, idx);
                }
                None => {
                    out.remove(&t.key);
                }
            }
        }
        out
    }

    fn tolerate(&self, e: &StoreError) -> bool {
        self.fault_armed && !matches!(e, StoreError::OutOfService)
    }

    /// True if the key's most recent tracked write was never acknowledged
    /// (or the key was never written through the tracked path). Under an
    /// armed fault such a write may legitimately vanish — its data write
    /// can be `Lost` to a quarantine before persisting, the doomed index
    /// entry is then filtered out of the next flush, and the client was
    /// never told otherwise. Only *acknowledged* state carries a
    /// durability promise, and that promise is enforced separately by
    /// `poll_acks` (acks never revert) and `check_acked_durability`
    /// (acked keys stay readable or fail degraded).
    fn latest_write_unacked(&self, key: u128) -> bool {
        match self.tracked.iter().rev().find(|t| t.key == key && t.hist_idx.is_some()) {
            Some(t) => !t.acked,
            None => true,
        }
    }
}

fn is_no_space(e: &StoreError) -> bool {
    matches!(
        e,
        StoreError::Chunk(shardstore_chunk::ChunkError::NoSpace { .. })
            | StoreError::Lsm(shardstore_lsm::LsmError::Chunk(
                shardstore_chunk::ChunkError::NoSpace { .. }
            ))
    )
}

/// The fault-sweep world: a store under one enumerated fault schedule,
/// interpreted event by event through the deterministic simulator. The
/// sweep has no network, so there is nothing to deliver — `apply`
/// executes the operation directly, and the enumerated fault arms via
/// the simulator's `ArmFault` event "immediately before" the scheduled
/// operation, exactly where the historical loop armed it.
struct SweepWorld<'a> {
    ops: &'a [KvOp],
    cfg: &'a SweepConfig,
    ctx: SweepCtx,
    obs: shardstore_obs::Obs,
    schedule: FaultSchedule,
}

impl SweepWorld<'_> {
    fn violation(&self, i: usize, detail: String) -> SweepViolation {
        let trace = self.obs.trace();
        let records = trace.snapshot();
        let mut timeline = shardstore_obs::oracle::render_timeline_tail(&records, 60);
        // The causal timeline of the most recent request: one request's
        // admission→IO→ack (or failure) path, reconstructed by ReqId.
        let causal =
            shardstore_obs::oracle::render_last_req_timeline(&records, trace.dropped());
        if !causal.is_empty() {
            timeline.push_str("--- causal timeline (last request) ---\n");
            timeline.push_str(&causal);
        }
        SweepViolation { schedule: self.schedule, sequence: 0, op_index: i, detail, timeline }
    }
}

impl shardstore_sim::World for SweepWorld<'_> {
    type Error = SweepViolation;

    fn apply(
        &mut self,
        _ctx: &mut shardstore_sim::SimCtx<'_>,
        i: usize,
    ) -> Result<(), SweepViolation> {
        let op = &self.ops[i];
        shardstore_faults::coverage::hit(crate::simulate::kv_probe(op));
        let page_size = self.cfg.geometry.page_size;
        apply_swept_op(&mut self.ctx, i, op, page_size).map_err(|d| self.violation(i, d))?;
        self.ctx.poll_acks(i).map_err(|d| self.violation(i, d))?;
        check_step(&self.ctx, i).map_err(|d| self.violation(i, d))
    }

    fn arm_fault(&mut self, f: &shardstore_sim::FaultPoint) -> Result<(), SweepViolation> {
        crate::simulate::arm_store_fault(&self.ctx.store, f, self.cfg.geometry.extent_count);
        self.ctx.fault_armed = true;
        Ok(())
    }

    fn settle(&mut self) -> Result<(), SweepViolation> {
        // Settle: drive all remaining IO (absorbing leftover transient
        // counts), then check acked durability one final time.
        let n = self.ops.len();
        for _ in 0..4 {
            if self.ctx.store.pump().is_ok() {
                break;
            }
        }
        self.ctx.poll_acks(n).map_err(|d| self.violation(n, d))?;
        check_acked_durability(&mut self.ctx, n).map_err(|d| self.violation(n, d))?;
        // Trace-based oracles: re-derive the causal properties from the
        // run's event log alone. A wrapped (truncated) trace cannot be
        // certified and is skipped — never treated as a pass or a failure.
        if let Ok(records) = shardstore_obs::oracle::certify(self.obs.trace()) {
            let budget = shardstore_dependency::DEFAULT_RETRY_BUDGET;
            let mut checks: Vec<(&str, Result<(), shardstore_obs::oracle::OracleViolation>)> = vec![
                ("span-wellformed", shardstore_obs::oracle::check_span_wellformed(&records)),
                ("acked-durability", shardstore_obs::oracle::check_acked_durability(&records)),
                ("retry-budget", shardstore_obs::oracle::check_retry_budget(&records, budget)),
                ("cache-coherence", shardstore_obs::oracle::check_cache_coherence(&records)),
                (
                    "compaction-discipline",
                    shardstore_obs::oracle::check_compaction_discipline(&records),
                ),
            ];
            // Under background writeback the quarantine event (emitted by
            // the writeback thread) and a concurrent cache hit on the main
            // thread have no defined trace order, so the isolation oracle
            // only holds in deterministic mode.
            if !self.cfg.background_writeback {
                checks.push((
                    "quarantine-isolation",
                    shardstore_obs::oracle::check_quarantine_isolation(&records),
                ));
            }
            for (name, res) in checks {
                if let Err(e) = res {
                    return Err(self.violation(n, format!("trace oracle {name} failed: {e}")));
                }
            }
        }
        Ok(())
    }
}

/// Runs one operation sequence under one fault schedule, checking all
/// three sweep properties. Returns per-run observations on success.
///
/// A thin frontend over the deterministic simulator: the enumerated
/// [`FaultSchedule`] becomes a one-point [`shardstore_sim::SimSchedule`]
/// and [`SweepWorld`] carries the checker state.
pub fn run_schedule(
    ops: &[KvOp],
    schedule: FaultSchedule,
    cfg: &SweepConfig,
    faults: &FaultConfig,
) -> Result<(bool, bool, u64, u64), SweepViolation> {
    let store = Store::format(cfg.geometry, cfg.store.clone(), faults.clone());
    if cfg.background_writeback {
        store.scheduler().set_writeback_mode(shardstore_dependency::WritebackMode::Background(
            shardstore_dependency::WritebackConfig::default(),
        ));
    }
    let ctx = SweepCtx {
        store,
        model: KvModel::new(),
        history: BTreeMap::new(),
        tracked: Vec::new(),
        puts_so_far: Vec::new(),
        uncertain: std::collections::BTreeSet::new(),
        deleted_after_ack: std::collections::BTreeSet::new(),
        fault_armed: false,
        degraded_reads: 0,
    };
    let obs = ctx.store.obs();
    let retries_before = ctx.store.scheduler().counter("sched.retries");
    let kind = match schedule.kind {
        FaultKind::Transient(n) => shardstore_sim::SimFaultKind::Transient(n),
        FaultKind::Permanent => shardstore_sim::SimFaultKind::Permanent,
    };
    // The raw extent is offset by one so the world's wrap into live
    // geometry (`1 + raw % (extent_count - 1)`) lands exactly on the
    // enumerated extent (schedules never target the superblock extent 0).
    let sim_schedule = shardstore_sim::SimSchedule {
        faults: vec![shardstore_sim::FaultPoint {
            at_op: schedule.op_index,
            extent: schedule.extent.0.saturating_sub(1),
            kind,
        }],
        ..shardstore_sim::SimSchedule::clean()
    };
    let mut world = SweepWorld { ops, cfg, ctx, obs, schedule };
    shardstore_sim::Simulator::run(&mut world, ops.len(), &sim_schedule)?;
    // A permanent schedule on an extent the run never touched simply never
    // quarantines: an uninteresting schedule, not a violation.
    let retried = world.ctx.store.scheduler().counter("sched.retries") > retries_before;
    let quarantined = !world.ctx.store.quarantined_extents().is_empty();
    let acks = world.ctx.tracked.iter().filter(|t| t.acked).count() as u64;
    Ok((retried, quarantined, world.ctx.degraded_reads, acks))
}

fn apply_swept_op(
    ctx: &mut SweepCtx,
    i: usize,
    op: &KvOp,
    page_size: usize,
) -> Result<(), String> {
    match op {
        KvOp::Get(kr) => {
            let key = kr.resolve(&ctx.puts_so_far);
            let got = ctx.store.get(key);
            check_get(ctx, i, key, got)?;
        }
        KvOp::Put(kr, spec) => {
            let key = kr.resolve(&ctx.puts_so_far);
            let value = Arc::new(spec.materialize(key, page_size));
            match ctx.store.put(key, &value) {
                Ok(dep) => {
                    ctx.model.put(key, &value);
                    let hist_idx = ctx.record_write(key, value);
                    ctx.deleted_after_ack.remove(&key);
                    ctx.tracked.push(Tracked { key, hist_idx: Some(hist_idx), dep, acked: false });
                }
                Err(e) if is_no_space(&e) => {}
                Err(e) if ctx.tolerate(&e) => {
                    ctx.record_write(key, value);
                    ctx.uncertain.insert(key);
                }
                Err(e) => return Err(format!("put({key}) failed without a fault: {e}")),
            }
        }
        KvOp::PutBatch(elems) => {
            let batch: Vec<(u128, Arc<Vec<u8>>)> = elems
                .iter()
                .map(|(kr, spec)| {
                    let key = kr.resolve(&ctx.puts_so_far);
                    (key, Arc::new(spec.materialize(key, page_size)))
                })
                .collect();
            let arg: Vec<(u128, Vec<u8>)> = batch.iter().map(|(k, v)| (*k, v.to_vec())).collect();
            match ctx.store.put_batch(&arg) {
                Ok(deps) => {
                    for ((key, value), dep) in batch.into_iter().zip(deps) {
                        ctx.model.put(key, &value);
                        let hist_idx = ctx.record_write(key, value);
                        ctx.deleted_after_ack.remove(&key);
                        ctx.tracked.push(Tracked {
                            key,
                            hist_idx: Some(hist_idx),
                            dep,
                            acked: false,
                        });
                    }
                }
                Err(e) if is_no_space(&e) => {}
                Err(e) if ctx.tolerate(&e) => {
                    for (key, value) in batch {
                        ctx.record_write(key, value);
                        ctx.uncertain.insert(key);
                    }
                }
                Err(e) => return Err(format!("put_batch failed without a fault: {e}")),
            }
        }
        KvOp::Delete(kr) => {
            let key = kr.resolve(&ctx.puts_so_far);
            match ctx.store.delete(key) {
                Ok(dep) => {
                    ctx.model.delete(key);
                    ctx.tracked.push(Tracked { key, hist_idx: None, dep, acked: false });
                }
                Err(e) if is_no_space(&e) => {}
                Err(e) if ctx.tolerate(&e) => {
                    // A partially-applied delete makes later absence legal.
                    ctx.uncertain.insert(key);
                    ctx.deleted_after_ack.insert(key);
                }
                Err(e) => return Err(format!("delete({key}) failed without a fault: {e}")),
            }
        }
        KvOp::Scan(a, b) => {
            let ka = a.resolve(&ctx.puts_so_far);
            let kb = b.resolve(&ctx.puts_so_far);
            let (start, end) = (ka.min(kb), ka.max(kb));
            match ctx.store.scan(start, end) {
                Ok(entries) => {
                    // Without a fault armed the scan must be exactly the
                    // model's range; with one, missing keys fall under the
                    // per-key relaxations below.
                    if !ctx.fault_armed {
                        let got: Vec<u128> = entries.iter().map(|(k, _)| *k).collect();
                        let exp: Vec<u128> =
                            ctx.model.scan(start, end).iter().map(|(k, _)| *k).collect();
                        if got != exp {
                            return Err(format!(
                                "scan key sets diverge: impl {got:?} vs model {exp:?}"
                            ));
                        }
                    }
                    // Each returned entry must be a readable key's current
                    // or once-written value — reuse the point-get check.
                    for (key, value) in entries {
                        check_get(ctx, i, key, Ok(Some(value.to_vec())))?;
                    }
                }
                Err(e) => {
                    if e.is_degraded() {
                        // Degraded mode: the scan crossed a quarantined
                        // extent and honestly refused (§4.4) — it must
                        // error rather than silently skip the key.
                        ctx.degraded_reads += 1;
                    } else if !ctx.fault_armed {
                        return Err(format!("scan failed without a fault: {e}"));
                    }
                }
            }
        }
        KvOp::IndexFlush => background_op(ctx, "flush", |c| c.store.flush_index())?,
        KvOp::Compact => background_op(ctx, "compact", |c| c.store.compact_index())?,
        KvOp::Reclaim(stream) => {
            let stream = *stream;
            background_op(ctx, "reclaim", |c| c.store.reclaim(stream).map(|_| ()))?
        }
        KvOp::CacheDrop => ctx.store.drop_caches(),
        KvOp::Pump(n) => {
            let sched = ctx.store.scheduler();
            let r = sched.issue_ready(*n as usize).and_then(|_| sched.flush_issued());
            if let Err(e) = r {
                if !ctx.fault_armed {
                    return Err(format!("pump failed without a fault: {e}"));
                }
                mark_all_uncertain(ctx);
            }
            // Pumping may have surfaced a permanent fault; let the store
            // quarantine and evacuate.
            let _ = ctx.store.evacuate_pending();
        }
        KvOp::Reboot => {
            // On a no-space shutdown the memtable's keys — and only
            // those — may roll back across the reboot (§4.4 resource
            // exhaustion). Capture them so the model can be reconciled
            // to the surviving state; never-wrong-data stays enforced.
            let mut lost_unflushed: Vec<u128> = Vec::new();
            if let Err(e) = ctx.store.clean_shutdown() {
                if !ctx.tolerate(&e) && !is_no_space(&e) {
                    return Err(format!("clean shutdown failed without a fault: {e}"));
                }
                lost_unflushed = ctx.store.unflushed_keys();
                mark_all_uncertain(ctx);
            }
            match ctx.store.dirty_reboot(&CrashPlan::LoseAll) {
                Ok(recovered) => ctx.store = recovered,
                Err(e) => {
                    if !ctx.fault_armed {
                        return Err(format!("recovery failed without a fault: {e}"));
                    }
                    // Recovery blocked by the injected fault (a dead node
                    // would be re-replicated from other hosts). Clear the
                    // fault and retry so the sequence can continue; the
                    // relaxation stays active.
                    ctx.store.scheduler().disk().clear_failures();
                    mark_all_uncertain(ctx);
                    ctx.store = ctx
                        .store
                        .dirty_reboot(&CrashPlan::LoseAll)
                        .map_err(|e| format!("recovery failed twice: {e}"))?;
                }
            }
            for key in lost_unflushed {
                match ctx.store.get(key) {
                    Ok(Some(v)) => {
                        if ctx.model.get(key).map(|e| **e == *v).unwrap_or(false) {
                            continue;
                        }
                        if !ctx.was_written(key, &v) {
                            return Err(format!(
                                "key {key} returned bytes never written after a no-space \
                                 shutdown"
                            ));
                        }
                        ctx.model.put(key, &v);
                    }
                    Ok(None) => {
                        ctx.model.delete(key);
                    }
                    Err(_) if ctx.fault_armed => {}
                    Err(e) => {
                        return Err(format!(
                            "get({key}) failed after a no-space shutdown: {e}"
                        ));
                    }
                }
            }
        }
        KvOp::DirtyReboot(_) | KvOp::FailDiskOnce(_) => {
            // Not part of the sweep alphabet (faults come from the
            // schedule); treated as no-ops so alphabets can be shared.
        }
    }
    Ok(())
}

fn background_op(
    ctx: &mut SweepCtx,
    what: &str,
    f: impl FnOnce(&mut SweepCtx) -> Result<(), StoreError>,
) -> Result<(), String> {
    if let Err(e) = f(ctx) {
        if !ctx.tolerate(&e) && !is_no_space(&e) {
            return Err(format!("{what} failed without a fault: {e}"));
        }
        mark_all_uncertain(ctx);
    }
    Ok(())
}

fn mark_all_uncertain(ctx: &mut SweepCtx) {
    let model_keys = ctx.model.list();
    ctx.uncertain.extend(model_keys);
    if let Ok(keys) = ctx.store.list() {
        ctx.uncertain.extend(keys);
    }
    let hist_keys: Vec<u128> = ctx.history.keys().copied().collect();
    ctx.uncertain.extend(hist_keys);
}

fn check_get(
    ctx: &mut SweepCtx,
    _i: usize,
    key: u128,
    got: Result<Option<Vec<u8>>, StoreError>,
) -> Result<(), String> {
    let expected = ctx.model.get(key);
    let uncertain = ctx.uncertain.contains(&key);
    match (got, expected, ctx.fault_armed) {
        (Ok(None), None, _) => Ok(()),
        (Ok(Some(g)), Some(e), _) if *g == **e => Ok(()),
        (Err(e), _, true) => {
            if e.is_degraded() {
                ctx.degraded_reads += 1;
            }
            Ok(())
        }
        (Ok(None), Some(_), true) if uncertain || ctx.latest_write_unacked(key) => Ok(()),
        (Ok(Some(g)), _, true)
            if (uncertain || ctx.latest_write_unacked(key)) && ctx.was_written(key, &g) =>
        {
            Ok(())
        }
        (Ok(Some(g)), Some(e), _) => Err(format!(
            "get({key}) returned {} bytes, model has {} bytes",
            g.len(),
            e.len()
        )),
        (Ok(Some(_)), None, _) => Err(format!("get({key}) returned data for an absent key")),
        (Ok(None), Some(_), _) => Err(format!("get({key}) lost data the model still has")),
        (Err(e), _, false) => Err(format!("get({key}) failed without a fault: {e}")),
    }
}

/// Per-step relaxed conformance check (the §4.4 invariant): untouched
/// keys are never silently lost, and nothing readable was never written.
fn check_step(ctx: &SweepCtx, _i: usize) -> Result<(), String> {
    let impl_keys = match ctx.store.list() {
        Ok(k) => k,
        Err(_) if ctx.fault_armed => return Ok(()),
        Err(e) => return Err(format!("list failed without a fault: {e}")),
    };
    let model_keys = ctx.model.list();
    if !ctx.fault_armed {
        if impl_keys != model_keys {
            return Err(format!(
                "key sets diverge: impl {impl_keys:?} vs model {model_keys:?}"
            ));
        }
        return Ok(());
    }
    for key in model_keys.iter().filter(|k| !ctx.uncertain.contains(k)) {
        if !impl_keys.contains(key) && !ctx.latest_write_unacked(*key) {
            return Err(format!("acked key {key} lost although no operation on it failed"));
        }
    }
    for key in &impl_keys {
        if let Ok(Some(got)) = ctx.store.get(*key) {
            if !ctx.was_written(*key, &got) {
                return Err(format!("key {key} returned bytes that were never written"));
            }
        }
    }
    Ok(())
}

/// The durability-under-quarantine property, checked after the sequence
/// settles: every key with an acknowledged write reads back as its acked
/// value or a later-written one, or fails *degraded* — never `None`
/// (unless deleted after the ack), and never unwritten bytes.
fn check_acked_durability(ctx: &mut SweepCtx, _at: usize) -> Result<(), String> {
    let acked = ctx.acked_values();
    for (key, acked_idx) in acked {
        if ctx.deleted_after_ack.contains(&key) {
            continue;
        }
        // A later (possibly unacked) delete makes absence legal; only
        // keys the model still holds carry the strict obligation.
        if ctx.model.get(key).is_none() {
            continue;
        }
        // Tolerate leftover transient counts: retry the read a couple of
        // times before judging.
        let mut last = ctx.store.get(key);
        for _ in 0..2 {
            if last.is_ok() {
                break;
            }
            last = ctx.store.get(key);
        }
        match last {
            Ok(Some(got)) => {
                let hist = ctx.history.get(&key).expect("acked key has history");
                let ok = hist[acked_idx..].iter().any(|v| ***v == *got);
                if !ok {
                    return Err(format!(
                        "durability violated: acked key {key} read back bytes older than (or \
                         foreign to) its acknowledged write"
                    ));
                }
            }
            Ok(None) => {
                return Err(format!(
                    "durability violated: acked key {key} is silently missing (no delete, no \
                     degraded error)"
                ));
            }
            Err(e) if e.is_degraded() => {
                ctx.degraded_reads += 1;
            }
            Err(e) => {
                // At quiescence the only legitimate read failure for an
                // acknowledged key is a *distinguishable* degraded error
                // (its extent quarantined). Anything else — e.g. a
                // NotFound because some maintenance pass forgot the chunk
                // — is silent loss of acknowledged data.
                return Err(format!(
                    "durability violated: acked key {key} unreadable with a non-degraded \
                     error: {e}"
                ));
            }
        }
    }
    Ok(())
}

/// Sweeps every enumerated fault schedule over `cfg.sequences` generated
/// operation sequences. Returns aggregate statistics, or the first
/// property violation found.
pub fn run_sweep(cfg: &SweepConfig, faults: &FaultConfig) -> Result<SweepReport, SweepViolation> {
    let mut report = SweepReport::default();
    let sequences: Vec<Vec<KvOp>> =
        sample_sequences(kv_ops(GenConfig::conformance()), cfg.seed, cfg.sequences).collect();
    for (seq_idx, ops) in sequences.iter().enumerate() {
        report.sequences += 1;
        for schedule in cfg.schedules(ops.len()) {
            report.schedules += 1;
            match run_schedule(ops, schedule, cfg, faults) {
                Ok((retried, quarantined, degraded, acks)) => {
                    if retried {
                        report.retried_runs += 1;
                    }
                    if quarantined {
                        report.quarantined_runs += 1;
                    }
                    report.degraded_reads += degraded;
                    report.acks_tracked += acks;
                }
                Err(mut v) => {
                    v.sequence = seq_idx as u64;
                    return Err(v);
                }
            }
        }
    }
    Ok(report)
}
