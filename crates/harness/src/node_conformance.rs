//! Conformance checking for the multi-disk node's control plane.
//!
//! Same refinement idea as [`crate::conformance`], but over [`NodeOp`]
//! sequences against the API-level [`KvModel`]. Disk removal and return
//! are modelled explicitly: while a disk is out of service, its shards
//! are unavailable (requests error), but *returning* the disk must bring
//! every shard back — the property issue #4 violated.

use std::sync::Arc;

use shardstore_core::{Node, StoreConfig, StoreError};
use shardstore_model::KvModel;
use shardstore_vdisk::Geometry;

use crate::conformance::{ConformanceConfig, Divergence};
use crate::ops::NodeOp;

fn diverge(op_index: usize, op: &NodeOp, detail: impl Into<String>) -> Divergence {
    Divergence {
        op_index,
        op: format!("{op:?}"),
        detail: detail.into(),
        timeline: String::new(),
        dropped_events: 0,
    }
}

fn is_no_space(e: &StoreError) -> bool {
    crate::conformance_no_space(e)
}

/// Runs a node-level operation sequence against the KV model.
///
/// The model is oblivious to disks; the runner tracks which disks are out
/// of service and expects `OutOfService` errors for shards routed to
/// them, while keeping the model unchanged (the data still exists, it is
/// just unavailable — and must be *available again* after `ReturnDisk`).
pub fn run_node_conformance(
    ops: &[NodeOp],
    cfg: &ConformanceConfig,
    num_disks: usize,
) -> Result<(), Divergence> {
    let node = Node::new(num_disks, cfg.geometry, cfg.store.clone(), cfg.faults.clone());
    if cfg.background_writeback {
        for disk in 0..num_disks {
            if let Some(store) = node.store(disk) {
                store.scheduler().set_writeback_mode(
                    shardstore_dependency::WritebackMode::Background(
                        shardstore_dependency::WritebackConfig::default(),
                    ),
                );
            }
        }
    }
    run_node_conformance_on(ops, cfg, &node)
}

/// Like [`run_node_conformance`] but against a caller-provided node.
///
/// A thin frontend over the deterministic simulator (clean schedule =
/// the historical loop).
pub fn run_node_conformance_on(
    ops: &[NodeOp],
    cfg: &ConformanceConfig,
    node: &Node,
) -> Result<(), Divergence> {
    crate::simulate::run_node_sim_on(
        ops,
        cfg,
        node,
        &shardstore_sim::SimSchedule::clean(),
        &crate::simulate::SimOptions::default(),
    )
    .map(|_| ())
}

/// Mutable checker state threaded through [`node_step`].
pub(crate) struct NodeRunState {
    pub model: KvModel,
    pub puts_so_far: Vec<u128>,
    pub removed: Vec<bool>,
    pub skipped: usize,
}

impl NodeRunState {
    pub fn new(node: &Node) -> Self {
        Self {
            model: KvModel::new(),
            puts_so_far: Vec::new(),
            removed: vec![false; node.disk_count()],
            skipped: 0,
        }
    }
}

/// One control-plane conformance step (the historical loop body), shared
/// by the frontend above and the simulator's node world.
pub(crate) fn node_step(
    st: &mut NodeRunState,
    node: &Node,
    cfg: &ConformanceConfig,
    i: usize,
    op: &NodeOp,
) -> Result<(), Divergence> {
    if node_step_op(st, node, cfg, i, op)? {
        // The historical loop `continue`d past the catalog check for
        // skipped batches; preserved verbatim.
        return Ok(());
    }
    // Catalog/index consistency is an always-on invariant.
    if let Err(detail) = node.check_catalog_consistent() {
        return Err(diverge(i, op, detail));
    }
    Ok(())
}

/// The op dispatch itself; returns true when the historical loop would
/// have `continue`d (skipping the catalog check).
fn node_step_op(
    st: &mut NodeRunState,
    node: &Node,
    cfg: &ConformanceConfig,
    i: usize,
    op: &NodeOp,
) -> Result<bool, Divergence> {
    let _ = (Geometry::small(), StoreConfig::small());
    let model = &mut st.model;
    let puts_so_far = &mut st.puts_so_far;
    let removed = &mut st.removed;
    let page_size = cfg.geometry.page_size;
    let skipped = &mut st.skipped;
    {
        match op {
            NodeOp::Get(kr) => {
                let key = kr.resolve(puts_so_far);
                let disk = node.route(key);
                match node.get(key) {
                    Err(StoreError::OutOfService) if removed[disk] => {}
                    Err(e) if is_no_space(&e) => {}
                    Err(e) => return Err(diverge(i, op, format!("get failed: {e}"))),
                    Ok(got) => {
                        if removed[disk] {
                            return Err(diverge(i, op, "get served from a removed disk"));
                        }
                        let expected = model.get(key);
                        let ok = match (&got, &expected) {
                            (None, None) => true,
                            (Some(g), Some(e)) => *g == ***e,
                            _ => false,
                        };
                        if !ok {
                            return Err(diverge(
                                i,
                                op,
                                format!(
                                    "get({key}) mismatch: impl {:?} vs model {:?} bytes",
                                    got.map(|v| v.len()),
                                    expected.map(|v| v.len())
                                ),
                            ));
                        }
                    }
                }
            }
            NodeOp::Put(kr, spec) => {
                let key = kr.resolve(puts_so_far);
                let disk = node.route(key);
                let value = Arc::new(spec.materialize(key, page_size));
                match node.put(key, &value) {
                    Ok(_) => {
                        if removed[disk] {
                            return Err(diverge(i, op, "put accepted by a removed disk"));
                        }
                        model.put(key, &value);
                        puts_so_far.push(key);
                    }
                    Err(StoreError::OutOfService) if removed[disk] => {}
                    Err(e) if is_no_space(&e) => *skipped += 1,
                    Err(e) => return Err(diverge(i, op, format!("put failed: {e}"))),
                }
            }
            NodeOp::Delete(kr) => {
                let key = kr.resolve(puts_so_far);
                let disk = node.route(key);
                match node.delete(key) {
                    Ok(_) => {
                        model.delete(key);
                    }
                    Err(StoreError::OutOfService) if removed[disk] => {}
                    Err(e) if is_no_space(&e) => *skipped += 1,
                    Err(e) => return Err(diverge(i, op, format!("delete failed: {e}"))),
                }
            }
            NodeOp::List => {
                let listed = node.list();
                // The listing must cover every model key on an in-service
                // disk, and nothing the model does not have.
                for key in &listed {
                    if model.get(*key).is_none() {
                        return Err(diverge(i, op, format!("listed phantom shard {key}")));
                    }
                }
                for key in model.list() {
                    if !removed[node.route(key)] && !listed.contains(&key) {
                        return Err(diverge(i, op, format!("listing missed shard {key}")));
                    }
                }
            }
            NodeOp::RemoveDisk(d) => {
                let disk = *d as usize % node.disk_count();
                match node.remove_disk(disk) {
                    Ok(()) => removed[disk] = true,
                    Err(StoreError::OutOfService) if removed[disk] => {}
                    Err(e) if is_no_space(&e) => *skipped += 1,
                    Err(e) => return Err(diverge(i, op, format!("remove_disk failed: {e}"))),
                }
            }
            NodeOp::ReturnDisk(d) => {
                let disk = *d as usize % node.disk_count();
                match node.return_disk(disk) {
                    Ok(()) => {
                        removed[disk] = false;
                        // The core durability property of disk return:
                        // every model shard on this disk is available
                        // again with its data intact.
                        for key in model.list() {
                            if node.route(key) != disk {
                                continue;
                            }
                            let expected = model.get(key).expect("listed key");
                            match node.get(key) {
                                Ok(Some(got)) if got == **expected => {}
                                other => {
                                    return Err(diverge(
                                        i,
                                        op,
                                        format!(
                                            "shard {key} lost across disk removal/return: {other:?}"
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                    Err(e) if is_no_space(&e) => *skipped += 1,
                    Err(e) => return Err(diverge(i, op, format!("return_disk failed: {e}"))),
                }
            }
            NodeOp::BulkCreate(batch) => {
                let resolved: Vec<(u128, Vec<u8>)> = batch
                    .iter()
                    .map(|(kr, spec)| {
                        let key = kr.resolve(puts_so_far);
                        (key, spec.materialize(key, page_size))
                    })
                    .collect();
                // Skip batches touching removed disks (the control plane
                // would not target them).
                if resolved.iter().any(|(k, _)| removed[node.route(*k)]) {
                    return Ok(true);
                }
                match node.bulk_create(&resolved) {
                    Ok(_) => {
                        for (key, value) in resolved {
                            model.put(key, &value);
                            puts_so_far.push(key);
                        }
                    }
                    Err(e) if is_no_space(&e) => *skipped += 1,
                    Err(e) => return Err(diverge(i, op, format!("bulk create failed: {e}"))),
                }
            }
            NodeOp::BulkRemove(batch) => {
                let resolved: Vec<u128> =
                    batch.iter().map(|kr| kr.resolve(puts_so_far)).collect();
                if resolved.iter().any(|k| removed[node.route(*k)]) {
                    return Ok(true);
                }
                match node.bulk_remove(&resolved) {
                    Ok(_) => {
                        for key in resolved {
                            model.delete(key);
                        }
                    }
                    Err(e) if is_no_space(&e) => *skipped += 1,
                    Err(e) => return Err(diverge(i, op, format!("bulk remove failed: {e}"))),
                }
            }
            NodeOp::Migrate(kr, d) => {
                let key = kr.resolve(puts_so_far);
                let to_disk = *d as usize % node.disk_count();
                let from_disk = node.route(key);
                if removed[from_disk] || removed[to_disk] {
                    match node.migrate(key, to_disk) {
                        Err(StoreError::OutOfService) => {}
                        Err(e) if is_no_space(&e) => *skipped += 1,
                        Err(e) => {
                            return Err(diverge(i, op, format!("migrate failed: {e}")))
                        }
                        Ok(_) => {}
                    }
                    return Ok(true);
                }
                match node.migrate(key, to_disk) {
                    Ok(_) => {
                        // Migration must preserve the data exactly.
                        let expected = model.get(key);
                        let got = node.get(key).map_err(|e| {
                            diverge(i, op, format!("post-migrate get failed: {e}"))
                        })?;
                        let ok = match (&expected, &got) {
                            (None, None) => true,
                            (Some(e), Some(g)) => ***e == **g,
                            _ => false,
                        };
                        if !ok {
                            return Err(diverge(
                                i,
                                op,
                                format!("shard {key} changed across migration"),
                            ));
                        }
                        // Placement flips only for shards that exist; a
                        // missing shard's migrate is a no-op.
                        if expected.is_some() && node.route(key) != to_disk {
                            return Err(diverge(i, op, "placement not updated"));
                        }
                    }
                    Err(e) if is_no_space(&e) => *skipped += 1,
                    Err(e) => return Err(diverge(i, op, format!("migrate failed: {e}"))),
                }
            }
        }
    }
    let _ = skipped;
    Ok(false)
}
