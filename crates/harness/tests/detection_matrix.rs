//! The Fig. 5 detection matrix as a test: every one of the sixteen
//! historical issues, when seeded back into the system, is re-discovered
//! by the checker the paper credits with the find.
//!
//! Budgets here are CI-sized; the `fig5_bugs` bench binary runs the same
//! matrix with full budgets and reports attempts and minimization stats.

use shardstore_faults::BugId;
use shardstore_harness::detect::{detect, seed_override, DetectBudget};

fn budget() -> DetectBudget {
    DetectBudget { max_sequences: 30_000, conc_iterations: 6_000, seed: seed_override(0x5EED) }
}

fn assert_detected(bug: BugId) {
    let d = detect(bug, budget());
    assert!(
        d.detected,
        "{bug} should be detected by {} within budget ({} attempts): {}",
        d.method, d.attempts, d.detail
    );
}

#[test]
fn detects_b1_reclamation_off_by_one() {
    assert_detected(BugId::B1ReclamationOffByOne);
}

#[test]
fn detects_b2_cache_not_drained() {
    assert_detected(BugId::B2CacheNotDrained);
}

#[test]
fn detects_b3_metadata_shutdown_flush() {
    assert_detected(BugId::B3MetadataShutdownFlush);
}

#[test]
fn detects_b4_disk_removal_loses_shards() {
    assert_detected(BugId::B4DiskRemovalLosesShards);
}

#[test]
fn detects_b5_reclamation_transient_error() {
    assert_detected(BugId::B5ReclamationTransientError);
}

#[test]
fn detects_b6_ownership_dependency() {
    assert_detected(BugId::B6OwnershipDependency);
}

#[test]
fn detects_b7_soft_hard_pointer_mismatch() {
    assert_detected(BugId::B7SoftHardPointerMismatch);
}

#[test]
fn detects_b8_missing_pointer_dependency() {
    assert_detected(BugId::B8MissingPointerDependency);
}

#[test]
fn detects_b9_model_crash_reclamation() {
    assert_detected(BugId::B9ModelCrashReclamation);
}

#[test]
fn detects_b10_uuid_collision() {
    assert_detected(BugId::B10UuidCollision);
}

#[test]
fn detects_b11_locator_race() {
    assert_detected(BugId::B11LocatorRace);
}

#[test]
fn detects_b12_superblock_deadlock() {
    assert_detected(BugId::B12SuperblockDeadlock);
}

#[test]
fn detects_b13_list_remove_race() {
    assert_detected(BugId::B13ListRemoveRace);
}

#[test]
fn detects_b14_compaction_reclaim_race() {
    assert_detected(BugId::B14CompactionReclaimRace);
}

#[test]
fn detects_b15_model_locator_reuse() {
    assert_detected(BugId::B15ModelLocatorReuse);
}

#[test]
fn detects_b16_bulk_ops_race() {
    assert_detected(BugId::B16BulkOpsRace);
}

#[test]
fn detection_minimizes_counterexamples() {
    // §4.3: the minimized counterexample is no larger than the original.
    let d = detect(BugId::B1ReclamationOffByOne, budget());
    assert!(d.detected);
    let (original, minimized) = d.minimized.expect("PBT detection reports sizes");
    assert!(minimized.ops <= original.ops);
    assert!(minimized.bytes_written <= original.bytes_written);
    assert!(minimized.ops <= 12, "B1 should minimize to a short sequence: {minimized:?}");
}

#[test]
fn detection_is_deterministic_per_seed() {
    let a = detect(BugId::B3MetadataShutdownFlush, budget());
    let b = detect(BugId::B3MetadataShutdownFlush, budget());
    assert_eq!(a.detected, b.detected);
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.detail, b.detail);
}
