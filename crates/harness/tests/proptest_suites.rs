//! The paper's property-based validation suites (§4, §5), run against the
//! *fixed* system: random operation sequences must never diverge from the
//! reference models. These are the release-blocking checks of §8.4 —
//! "pay-as-you-go", so CI can raise the case counts.

use proptest::prelude::*;
use shardstore_harness::gen::{kv_ops, node_ops, GenConfig};
use shardstore_harness::node_conformance::run_node_conformance;
use shardstore_harness::{run_conformance, run_crash_consistency, ConformanceConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// §4: sequential crash-free conformance with the KV model.
    #[test]
    fn conformance_holds_on_random_sequences(ops in kv_ops(GenConfig::conformance())) {
        let cfg = ConformanceConfig::default();
        if let Err(d) = run_conformance(&ops, &cfg) {
            prop_assert!(false, "divergence: {d}");
        }
    }

    /// §5: crash consistency (persistence + forward progress) across
    /// random crash points with block-level page survival.
    #[test]
    fn crash_consistency_holds_on_random_sequences(ops in kv_ops(GenConfig::crash())) {
        let cfg = ConformanceConfig::default();
        if let Err(d) = run_crash_consistency(&ops, &cfg) {
            prop_assert!(false, "crash divergence: {d}");
        }
    }

    /// §4.4: conformance with injected IO failures (relaxed equivalence,
    /// never-wrong-data).
    #[test]
    fn failure_injection_holds_on_random_sequences(ops in kv_ops(GenConfig::failure())) {
        let cfg = ConformanceConfig::default();
        if let Err(d) = run_conformance(&ops, &cfg) {
            prop_assert!(false, "failure divergence: {d}");
        }
    }

    /// §5 + §4.4 combined: crashes and failures in one alphabet.
    #[test]
    fn combined_crash_and_failure_hold(ops in kv_ops(GenConfig::full())) {
        let cfg = ConformanceConfig::default();
        if let Err(d) = run_crash_consistency(&ops, &cfg) {
            prop_assert!(false, "combined divergence: {d}");
        }
    }

    /// Control-plane conformance: routing, listing, disk removal/return,
    /// bulk operations.
    #[test]
    fn node_conformance_holds_on_random_sequences(ops in node_ops(GenConfig::conformance())) {
        let cfg = ConformanceConfig::default();
        if let Err(d) = run_node_conformance(&ops, &cfg, 2) {
            prop_assert!(false, "node divergence: {d}");
        }
    }

    /// §4.2 ablation sanity: the unbiased generator also passes (it just
    /// explores less interesting states).
    #[test]
    fn unbiased_conformance_holds(ops in kv_ops(GenConfig::conformance().unbiased())) {
        let cfg = ConformanceConfig::default();
        if let Err(d) = run_conformance(&ops, &cfg) {
            prop_assert!(false, "divergence: {d}");
        }
    }
}
