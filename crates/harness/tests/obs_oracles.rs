//! Trace-fingerprint spot checks: seeded faults leave the expected event
//! fingerprints in the trace log, the trace oracles judge them correctly,
//! and a detection-matrix failure path prints a per-op timeline alongside
//! its minimized counterexample.

use shardstore_chunk::{ChunkError, Locator, Referencer, Stream};
use shardstore_core::{Store, StoreConfig};
use shardstore_dependency::Dependency;
use shardstore_faults::{BugId, FaultConfig};
use shardstore_harness::detect::{detect, seed_override, DetectBudget};
use shardstore_obs::oracle::{
    check_cache_coherence, check_quarantine_isolation, check_retry_budget,
};
use shardstore_obs::TraceEvent;
use shardstore_vdisk::{ExtentId, Geometry};

fn store_with(faults: FaultConfig) -> Store {
    Store::format(Geometry::small(), StoreConfig::small(), faults)
}

/// A transient fault burst below the retry budget is absorbed invisibly —
/// but it must leave `Retry` events and a retry counter behind, and the
/// attempts must stay within budget.
#[test]
fn transient_fault_leaves_retry_fingerprint() {
    let store = store_with(FaultConfig::none());
    let disk = store.scheduler().disk().clone();
    let extent_count = Geometry::small().extent_count;
    for e in 1..extent_count {
        disk.inject_fail_times(ExtentId(e), 1);
    }
    let dep = store.put(7, b"retry me").expect("put succeeds");
    store.flush_index().expect("flush succeeds");
    store.pump().expect("a single transient failure is absorbed by retry");
    assert!(dep.is_persistent(), "pumped put must be durable");

    let obs = store.obs();
    let records = obs.trace().snapshot();
    let retried = records
        .iter()
        .any(|r| matches!(r.event, TraceEvent::Retry { .. }));
    assert!(retried, "trace must contain Retry events for the absorbed fault");
    let failed = records
        .iter()
        .any(|r| matches!(r.event, TraceEvent::WriteFailed { transient: true, .. }));
    assert!(failed, "trace must record the transient write failure itself");
    let snap = obs.snapshot();
    assert!(
        snap.counter("sched.retries") > 0,
        "retry counter must reflect the absorbed fault"
    );
    check_retry_budget(&records, shardstore_dependency::DEFAULT_RETRY_BUDGET)
        .expect("absorbed retries stay within budget");
}

/// A permanent extent fault quarantines the extent: the trace must carry
/// the `Quarantine` event, the quarantine counter must tick, and the
/// isolation oracle must hold (no cache hit served from the dead extent).
#[test]
fn permanent_fault_leaves_quarantine_fingerprint() {
    let store = store_with(FaultConfig::none());
    let disk = store.scheduler().disk().clone();
    let extent_count = Geometry::small().extent_count;
    for e in 1..extent_count {
        disk.inject_fail_always(ExtentId(e));
    }
    let _ = store.put(7, b"doomed");
    let _ = store.flush_index();
    let _ = store.pump();
    assert!(
        !store.quarantined_extents().is_empty(),
        "a permanent fault on every data extent must quarantine at least one"
    );

    let obs = store.obs();
    let records = obs.trace().snapshot();
    let quarantined = records
        .iter()
        .any(|r| matches!(r.event, TraceEvent::Quarantine { .. }));
    assert!(quarantined, "trace must contain the Quarantine event");
    let snap = obs.snapshot();
    assert!(
        snap.counter("extent.quarantines") > 0,
        "quarantine counter must tick"
    );
    check_quarantine_isolation(&records)
        .expect("no cache hit may be served from a quarantined extent");
}

/// A referencer that declares every chunk dead (forces a full reclaim).
struct NoneLive;
impl Referencer for NoneLive {
    fn is_live(&self, _l: &Locator) -> bool {
        false
    }
    fn relocated(&self, _o: &Locator, _n: &Locator, d: &Dependency) -> Dependency {
        d.clone()
    }
    fn quiesce(&self) -> Result<Option<Dependency>, ChunkError> {
        Ok(None)
    }
}

/// The seeded B2 bug (cache not drained on extent reset) must leave the
/// exact fingerprint the cache-coherence oracle looks for: a `CacheHit`
/// on a reset extent with no repopulating `CacheMiss` in between. The
/// same scenario on a clean store passes the oracle.
#[test]
fn b2_cache_bug_leaves_stale_hit_fingerprint() {
    for seeded in [false, true] {
        let faults = if seeded {
            FaultConfig::seed(BugId::B2CacheNotDrained)
        } else {
            FaultConfig::none()
        };
        let store = store_with(faults);
        let cache = store.cache();
        let none = store.scheduler().none();
        let out = cache.put(Stream::Data, b"stale!", &none).expect("put succeeds");
        store.pump().expect("fault-free pump");
        cache.get(&out.locator).expect("read populates the cache");
        drop(out.guard);
        cache
            .reclaim(out.locator.extent, Stream::Data, &NoneLive)
            .expect("reclaim succeeds")
            .expect("the extent is reclaimed");
        // On the buggy store this read is served stale from the cache; on
        // the clean store the drained cache turns it into a miss + error.
        let after = cache.get(&out.locator);
        assert_eq!(after.is_ok(), seeded, "only the seeded cache serves the dead chunk");

        let records = store.obs().trace().snapshot();
        let verdict = check_cache_coherence(&records);
        if seeded {
            let err = verdict.expect_err("the oracle must flag the stale hit");
            assert_eq!(err.oracle, "cache_coherence");
        } else {
            verdict.expect("a drained cache passes the coherence oracle");
        }
    }
}

/// End-to-end: the detection matrix path for the B2 cache bug finds a
/// minimized counterexample and its report carries the per-op trace
/// timeline of the failing run.
#[test]
fn detection_report_carries_trace_timeline() {
    let budget = DetectBudget {
        max_sequences: 30_000,
        conc_iterations: 1,
        seed: seed_override(0x5EED),
    };
    let d = detect(BugId::B2CacheNotDrained, budget);
    assert!(d.detected, "B2 must be detected within budget: {}", d.detail);
    assert!(
        d.detail.contains("trace timeline"),
        "the counterexample report must include the trace timeline, got: {}",
        d.detail
    );
}
