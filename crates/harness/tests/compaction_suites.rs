//! Compaction-focused suites for the tiered compactor and the v2
//! block-indexed table format.
//!
//! Three layers of checking:
//!
//! 1. **Seed-matrix conformance** — deterministic runs of the §4
//!    conformance checker (and the §5 crash checker) over generated
//!    sequences, asserting the sampled sequences actually contained
//!    `KvOp::Compact` so a generator weight change cannot silently turn
//!    the suite into a no-op (the `scan_suites` pattern). Seeds are
//!    overridable via `SHARDSTORE_SEED` for the CI fault matrix.
//! 2. **Directed mid-compaction crashes** — a crash-point matrix over
//!    the writes a tiered compaction round schedules: at every prefix of
//!    the compaction's IO, crash and recover, asserting recovery lands
//!    on the *old* table set or the *new* one (never a mix) and that
//!    every acked key still reads its exact value, tombstones included.
//! 3. **Reclaim integration** — after a compaction retires a run of
//!    tables, their chunks are dead: reclamation must find a victim,
//!    shrink the LSM extent footprint, and leave every value readable
//!    cold, with the `lsm.compaction.*` counters accounting for the
//!    round.

use std::collections::BTreeMap;

use shardstore_chunk::Stream;
use shardstore_core::{Store, StoreConfig};
use shardstore_faults::FaultConfig;
use shardstore_harness::detect::{sample_sequences, seed_override};
use shardstore_harness::gen::{kv_ops, GenConfig};
use shardstore_harness::ops::KvOp;
use shardstore_harness::{run_conformance, run_crash_consistency, ConformanceConfig};
use shardstore_vdisk::{CrashPlan, Geometry};

const SEEDS: [u64; 4] = [0xC04A_0001, 0xC04A_0002, 0xC04A_0003, 0xC04A_0004];
const SEQUENCES: u64 = 24;

fn count_compactions(ops: &[KvOp]) -> usize {
    ops.iter().filter(|op| matches!(op, KvOp::Compact)).count()
}

fn run_seed(seed: u64, cfg: &ConformanceConfig) {
    let mut compactions = 0usize;
    for ops in sample_sequences(kv_ops(GenConfig::conformance()), seed_override(seed), SEQUENCES)
    {
        compactions += count_compactions(&ops);
        if let Err(d) = run_conformance(&ops, cfg) {
            panic!("seed {seed:#x}: compaction conformance divergence: {d}");
        }
    }
    assert!(
        compactions > 0,
        "seed {seed:#x} sampled no compactions — generator weights changed?"
    );
}

#[test]
fn compaction_conformance_holds_on_seed_matrix_deterministic() {
    for seed in SEEDS {
        run_seed(seed, &ConformanceConfig::default());
    }
}

#[test]
fn compaction_conformance_holds_on_seed_matrix_background() {
    for seed in SEEDS {
        run_seed(seed, &ConformanceConfig::default().background());
    }
}

#[test]
fn compaction_crash_consistency_holds_on_seed_matrix() {
    // Crash alphabet: dirty reboots interleaved with compactions. The
    // recovered store must satisfy the §5 persistence facts no matter
    // where the crash fell relative to a compaction's swap.
    for seed in SEEDS {
        let cfg = ConformanceConfig::default();
        let mut compactions = 0usize;
        for ops in sample_sequences(kv_ops(GenConfig::crash()), seed_override(seed), SEQUENCES) {
            compactions += count_compactions(&ops);
            if let Err(d) = run_crash_consistency(&ops, &cfg) {
                panic!("seed {seed:#x}: compaction crash divergence: {d}");
            }
        }
        assert!(compactions > 0, "seed {seed:#x} sampled no compactions");
    }
}

/// Builds a store holding a stack of eight single-key tables — two
/// generations of keys 0..4 with key 2 deleted above its insert — and
/// pumps everything durable. Returns the store plus the expected
/// post-recovery view of every key. The automatic flush-time compaction
/// trigger is parked high so the stack survives setup intact and the
/// explicit `compact_index` below is the only compaction in play.
fn stacked_store(background: bool) -> (Store, BTreeMap<u128, Option<Vec<u8>>>) {
    let config =
        StoreConfig::small().to_builder().compaction_trigger_tables(64).build().unwrap();
    let store = Store::format(Geometry::small(), config, FaultConfig::none());
    let mut expected: BTreeMap<u128, Option<Vec<u8>>> = BTreeMap::new();
    for k in 0..4u128 {
        store.put(k, format!("old-{k}").as_bytes()).unwrap();
        store.flush_index().unwrap();
    }
    for k in [0u128, 1, 3] {
        store.put(k, format!("new-{k}").as_bytes()).unwrap();
        store.flush_index().unwrap();
        expected.insert(k, Some(format!("new-{k}").into_bytes()));
    }
    store.delete(2).unwrap();
    store.flush_index().unwrap();
    expected.insert(2, None);
    store.pump().unwrap();
    if background {
        store.scheduler().set_writeback_mode(
            shardstore_dependency::WritebackMode::Background(
                shardstore_dependency::WritebackConfig::default(),
            ),
        );
    }
    (store, expected)
}

fn check_recovered(store: &Store, expected: &BTreeMap<u128, Option<Vec<u8>>>, at: &str) {
    for (k, want) in expected {
        let got = store.get(*k).unwrap_or_else(|e| panic!("{at}: get({k}) failed: {e}"));
        assert_eq!(&got, want, "{at}: key {k} wrong after mid-compaction crash");
    }
}

/// Crash-point matrix over a tiered compaction's scheduled writes: for
/// every prefix length of the compaction's IO (issued and flushed in
/// dependency order, the rest lost), recovery must see either the
/// pre-compaction table set or the post-compaction one — never a mix —
/// and every acked key must read back exactly.
#[test]
fn mid_compaction_crash_recovers_old_or_new_table_set() {
    // One clean run end-to-end pins the two legal table counts.
    let (store, _) = stacked_store(false);
    let tables_before = store.index().table_count();
    store.compact_index().unwrap();
    store.pump().unwrap();
    let tables_after = store.index().table_count();
    assert!(
        tables_after < tables_before,
        "compaction did not shrink the table set ({tables_before} -> {tables_after})"
    );

    let mut seen_old = false;
    let mut seen_new = false;
    for crash_point in 0..=16usize {
        let (store, expected) = stacked_store(false);
        store.compact_index().unwrap();
        // Persist exactly `crash_point` IOs in dependency order; the
        // rest die with the crash.
        let sched = store.scheduler();
        for _ in 0..crash_point {
            let _ = sched.issue_ready(1).and_then(|_| sched.flush_issued());
        }
        let recovered = store
            .dirty_reboot(&CrashPlan::LoseAll)
            .unwrap_or_else(|e| panic!("crash point {crash_point}: recovery failed: {e}"));
        let tables = recovered.index().table_count();
        assert!(
            tables == tables_before || tables == tables_after,
            "crash point {crash_point}: recovered a mixed table set \
             ({tables} tables; legal: {tables_before} or {tables_after})"
        );
        seen_old |= tables == tables_before;
        seen_new |= tables == tables_after;
        check_recovered(&recovered, &expected, &format!("crash point {crash_point}"));
        // Cold, too: the recovered view must come from disk, not a cache.
        recovered.drop_caches();
        check_recovered(&recovered, &expected, &format!("crash point {crash_point} (cold)"));
    }
    // The matrix must actually straddle the swap: losing everything
    // lands on the old set, persisting everything on the new one.
    assert!(seen_old, "no crash point recovered the old table set");
    assert!(seen_new, "no crash point recovered the new table set");
}

/// The same property under the background writeback engine: a crash
/// right after `compact_index` returns (with the engine mid-drain)
/// must recover old-or-new with exact values, and a quiesced engine
/// must land on the new set.
#[test]
fn mid_compaction_crash_recovers_under_background_writeback() {
    let (store, _) = stacked_store(false);
    let tables_before = store.index().table_count();
    store.compact_index().unwrap();
    store.pump().unwrap();
    let tables_after = store.index().table_count();

    // Crash with the engine mid-drain: whatever prefix the worker got
    // durable, recovery must be consistent.
    let (store, expected) = stacked_store(true);
    store.compact_index().unwrap();
    let recovered = store.dirty_reboot(&CrashPlan::LoseAll).expect("recovery failed");
    let tables = recovered.index().table_count();
    assert!(
        tables == tables_before || tables == tables_after,
        "background crash recovered a mixed table set \
         ({tables} tables; legal: {tables_before} or {tables_after})"
    );
    check_recovered(&recovered, &expected, "background mid-drain crash");

    // Quiesce the engine, then crash: the swap is fully durable.
    let (store, expected) = stacked_store(true);
    store.compact_index().unwrap();
    store.scheduler().quiesce().unwrap();
    let recovered = store.dirty_reboot(&CrashPlan::LoseAll).expect("recovery failed");
    assert_eq!(
        recovered.index().table_count(),
        tables_after,
        "quiesced compaction not fully durable"
    );
    check_recovered(&recovered, &expected, "background quiesced crash");
}

/// A compaction whose writes fail at pump time: the store absorbs the
/// transient faults (quarantining the hit extents and evacuating their
/// live chunks) or surfaces an error — either way, a crash straight
/// after must recover the old table set or the new one with every acked
/// key reading exactly. The merged table's metadata record persisting
/// without its data would be the mix this test exists to rule out.
#[test]
fn mid_compaction_write_failure_never_mixes_table_sets() {
    let (store, _) = stacked_store(false);
    let tables_before = store.index().table_count();
    store.compact_index().unwrap();
    store.pump().unwrap();
    let tables_after = store.index().table_count();

    let (store, expected) = stacked_store(false);
    store.compact_index().unwrap();
    // Fail IO on every extent past the scheduler's in-call retry budget:
    // whichever extent the merged table and its metadata record land on,
    // the write burst exhausts its retries. The store either surfaces
    // the error or absorbs it by quarantining the hit extents.
    let disk = store.scheduler().disk().clone();
    for ext in 0..Geometry::small().extent_count {
        disk.inject_fail_times(
            shardstore_vdisk::ExtentId(ext),
            2 * shardstore_dependency::DEFAULT_RETRY_BUDGET,
        );
    }
    let pump_failed = store.pump().is_err();
    if !pump_failed {
        assert!(
            !store.quarantined_extents().is_empty(),
            "pump neither failed nor quarantined — injected faults vanished"
        );
    }
    disk.clear_failures();
    let recovered = store.dirty_reboot(&CrashPlan::LoseAll).expect("recovery failed");
    let tables = recovered.index().table_count();
    assert!(
        tables == tables_before || tables == tables_after,
        "write failure during compaction left a mixed table set \
         ({tables} tables; legal: {tables_before} or {tables_after})"
    );
    check_recovered(&recovered, &expected, "failed-write crash");
}

/// Reclaim integration: a compaction round retires its input tables,
/// so their chunks are dead and reclamation must (a) find a victim,
/// (b) shrink the LSM extent footprint, and (c) leave every value
/// readable cold afterwards — with the `lsm.compaction.*` counters
/// accounting for the round.
#[test]
fn compaction_retired_tables_are_reclaimable() {
    let (store, expected) = stacked_store(false);
    let obs = store.obs();
    let registry = obs.registry();
    let picked_before = registry.counter("lsm.compaction.picked").get();
    let bytes_in_before = registry.counter("lsm.compaction.bytes_in").get();
    let bytes_out_before = registry.counter("lsm.compaction.bytes_out").get();
    let stats_before = store.cache().chunk_store().stats();

    store.compact_index().unwrap();
    store.pump().unwrap();

    let picked = registry.counter("lsm.compaction.picked").get() - picked_before;
    let bytes_in = registry.counter("lsm.compaction.bytes_in").get() - bytes_in_before;
    let bytes_out = registry.counter("lsm.compaction.bytes_out").get() - bytes_out_before;
    assert!(picked >= 2, "a tiered pick merges at least two tables (picked {picked})");
    assert!(bytes_in > 0, "compaction read no bytes");
    assert!(bytes_out > 0, "compaction wrote no bytes");
    assert!(
        bytes_out <= bytes_in,
        "merging shadowed versions must not grow the data ({bytes_in} -> {bytes_out})"
    );

    // The retired run's chunks are dead: reclamation finds a victim.
    let mut reclaimed = 0usize;
    while store.reclaim(Stream::Lsm).unwrap() {
        reclaimed += 1;
        store.pump().unwrap();
    }
    assert!(reclaimed > 0, "no LSM extent was reclaimable after compaction retired tables");
    // The retired tables' chunks were dead, so reclamation must have
    // *dropped* chunks (freed their space), not just relocated live ones.
    let stats_after = store.cache().chunk_store().stats();
    assert!(
        stats_after.reclaims > stats_before.reclaims,
        "chunk store recorded no reclaim passes"
    );
    assert!(
        stats_after.dropped > stats_before.dropped,
        "reclaim dropped no dead chunks — retired tables were not marked dead"
    );

    // Everything still reads exactly — cold, so the reads traverse the
    // relocated chunks rather than a warm cache.
    store.drop_caches();
    for (k, want) in &expected {
        assert_eq!(&store.get(*k).unwrap(), want, "key {k} wrong after reclaim");
    }
}

/// The flush-time trigger: once the live table count reaches the
/// configured threshold, the next automatic flush schedules a bounded
/// compaction round in passing — in both writeback modes — and the
/// store keeps serving exact values throughout.
#[test]
fn flush_time_trigger_schedules_compaction() {
    for background in [false, true] {
        let config = StoreConfig::small().to_builder().flush_threshold(1).build().unwrap();
        let store = Store::format(Geometry::small(), config, FaultConfig::none());
        if background {
            store.scheduler().set_writeback_mode(
                shardstore_dependency::WritebackMode::Background(
                    shardstore_dependency::WritebackConfig::default(),
                ),
            );
        }
        let obs = store.obs();
        let registry = obs.registry();
        let picked_before = registry.counter("lsm.compaction.picked").get();
        // flush_threshold(1): every put flushes a table, so the table
        // count climbs to the trigger and maybe_flush compacts.
        for round in 0..3u32 {
            for k in 0..8u128 {
                store.put(k, format!("r{round}-{k}").as_bytes()).unwrap();
            }
        }
        let picked = registry.counter("lsm.compaction.picked").get() - picked_before;
        assert!(picked >= 2, "automatic trigger never compacted (background={background})");
        assert!(
            store.index().table_count() < 24,
            "table count unbounded despite trigger (background={background})"
        );
        if background {
            store.scheduler().quiesce().unwrap();
        } else {
            store.pump().unwrap();
        }
        store.drop_caches();
        for k in 0..8u128 {
            assert_eq!(
                store.get(k).unwrap(),
                Some(format!("r2-{k}").into_bytes()),
                "key {k} wrong after trigger-driven compactions (background={background})"
            );
        }
    }
}
