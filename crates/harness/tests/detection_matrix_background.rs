//! The Fig. 5 detection matrix re-run with the background writeback
//! engine enabled: group commit and the concurrent pump must not mask a
//! single historical issue. Property-based detections run their stores
//! with a live pump thread racing the generated sequences; concurrency
//! detections schedule the pump as an extra task under the model
//! checker.
//!
//! Unlike the deterministic matrix, these runs are *not* reproducible
//! per seed — the uncontrolled pump thread races the sequences on wall
//! time — so this suite only asserts detection, never attempt counts.

use shardstore_faults::{BugId, FaultConfig};
use shardstore_harness::conformance::{run_conformance, ConformanceConfig};
use shardstore_harness::crash::run_crash_consistency;
use shardstore_harness::detect::{detect, detect_background, sample_sequences, seed_override, DetectBudget};
use shardstore_harness::gen::{kv_ops, GenConfig};

fn budget() -> DetectBudget {
    DetectBudget { max_sequences: 30_000, conc_iterations: 6_000, seed: seed_override(0x5EED) }
}

fn assert_detected(bug: BugId) {
    let d = detect_background(bug, budget());
    assert!(
        d.detected,
        "{bug} should survive the background writeback engine: {} found nothing in {} attempts: {}",
        d.method, d.attempts, d.detail
    );
}

#[test]
fn background_detects_b1_reclamation_off_by_one() {
    assert_detected(BugId::B1ReclamationOffByOne);
}

#[test]
fn background_detects_b2_cache_not_drained() {
    assert_detected(BugId::B2CacheNotDrained);
}

#[test]
fn background_detects_b3_metadata_shutdown_flush() {
    assert_detected(BugId::B3MetadataShutdownFlush);
}

#[test]
fn background_detects_b4_disk_removal_loses_shards() {
    assert_detected(BugId::B4DiskRemovalLosesShards);
}

#[test]
fn background_detects_b5_reclamation_transient_error() {
    assert_detected(BugId::B5ReclamationTransientError);
}

#[test]
fn background_detects_b6_ownership_dependency() {
    assert_detected(BugId::B6OwnershipDependency);
}

#[test]
fn background_detects_b7_soft_hard_pointer_mismatch() {
    assert_detected(BugId::B7SoftHardPointerMismatch);
}

#[test]
fn background_detects_b8_missing_pointer_dependency() {
    assert_detected(BugId::B8MissingPointerDependency);
}

#[test]
fn background_detects_b9_model_crash_reclamation() {
    assert_detected(BugId::B9ModelCrashReclamation);
}

#[test]
fn background_detects_b10_uuid_collision() {
    assert_detected(BugId::B10UuidCollision);
}

#[test]
fn background_detects_b11_locator_race() {
    assert_detected(BugId::B11LocatorRace);
}

#[test]
fn background_detects_b12_superblock_deadlock() {
    assert_detected(BugId::B12SuperblockDeadlock);
}

#[test]
fn background_detects_b13_list_remove_race() {
    assert_detected(BugId::B13ListRemoveRace);
}

#[test]
fn background_detects_b14_compaction_reclaim_race() {
    assert_detected(BugId::B14CompactionReclaimRace);
}

#[test]
fn background_detects_b15_model_locator_reuse() {
    assert_detected(BugId::B15ModelLocatorReuse);
}

#[test]
fn background_detects_b16_bulk_ops_race() {
    assert_detected(BugId::B16BulkOpsRace);
}

#[test]
fn background_writeback_causes_no_false_positives() {
    // The flip side of the matrix: on fixed code the live pump thread
    // must not manufacture divergences — neither in crash-free
    // conformance nor across dirty reboots, where the pump races the
    // crash itself.
    let cfg = ConformanceConfig::default().background();
    for ops in sample_sequences(kv_ops(GenConfig::conformance()), 0xBA5E, 150) {
        run_conformance(&ops, &cfg).expect("background conformance diverged on fixed code");
    }
    let cfg = ConformanceConfig::with_faults(FaultConfig::none()).background();
    for ops in sample_sequences(kv_ops(GenConfig::crash()), 0xBA5E ^ 1, 150) {
        run_crash_consistency(&ops, &cfg).expect("background crash check diverged on fixed code");
    }
}

#[test]
fn background_minimizes_counterexamples_like_deterministic_mode() {
    // Regression for the quiesce-before-minimize rule: background-mode
    // detections replay their candidate under a deterministic config and
    // minimize the replay, so a logic bug like B1 must come back with a
    // minimized counterexample of the same quality as the deterministic
    // matrix produces — not `None` just because a pump thread was racing
    // when the divergence was first observed.
    let det = detect(BugId::B1ReclamationOffByOne, budget());
    let bg = detect_background(BugId::B1ReclamationOffByOne, budget());
    assert!(det.detected && bg.detected);

    let (det_orig, det_min) = det.minimized.expect("deterministic detection reports sizes");
    let (bg_orig, bg_min) = bg
        .minimized
        .expect("background detection must minimize via deterministic replay");
    assert!(det_min.ops <= det_orig.ops);
    assert!(bg_min.ops <= bg_orig.ops);
    assert!(bg_min.bytes_written <= bg_orig.bytes_written);
    // Same quality bar as the deterministic matrix applies to both modes.
    assert!(det_min.ops <= 12, "deterministic B1 counterexample: {det_min:?}");
    assert!(bg_min.ops <= 12, "background B1 counterexample: {bg_min:?}");
}
