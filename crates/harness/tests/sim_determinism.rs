//! Determinism regression tests for the whole-system simulator (ISSUE 8
//! satellite): the same seed and configuration must produce a
//! byte-identical observability trace and final state across two runs —
//! for a clean schedule *and* for one with message drops and a mid-run
//! node crash-restart. Any divergence here means wall-clock time, map
//! iteration order, or an unseeded RNG leaked into an execution, which
//! would break seed replay and auto-minimization.

use shardstore_harness::conformance::ConformanceConfig;
use shardstore_harness::detect::sample_sequences;
use shardstore_harness::gen::{kv_ops, node_ops, GenConfig};
use shardstore_harness::ops::{KvOp, NodeOp};
use shardstore_harness::simulate::{
    run_conformance_sim, run_crash_sim, run_rpc_sim, SimOptions, SimOutcome,
};
use shardstore_sim::{CrashPoint, PerturbProfile, SimSchedule};

fn kv_sequence(seed: u64, cfg: GenConfig) -> Vec<KvOp> {
    sample_sequences(kv_ops(cfg), seed, 1).next().expect("one sequence")
}

fn node_sequence(seed: u64) -> Vec<NodeOp> {
    sample_sequences(node_ops(GenConfig::conformance()), seed, 1).next().expect("one sequence")
}

fn fingerprints_of(outcome: &SimOutcome) -> &str {
    outcome.fingerprint.as_deref().expect("fingerprint requested")
}

/// A schedule with message drops and a mid-run whole-node crash-restart
/// (plus timer ticks), the perturbation shape the satellite task names.
fn drops_and_crash(n_ops: usize) -> SimSchedule {
    SimSchedule {
        crashes: vec![CrashPoint { at_op: n_ops / 2, keep_mask: 0xDEAD_BEEF_0BAD_F00D }],
        tick_every: 4,
        drops: vec![n_ops / 5, n_ops / 3, (2 * n_ops) / 3],
        delays: vec![(n_ops / 4, 24), (n_ops / 2 + 1, 40)],
        ..SimSchedule::clean()
    }
}

#[test]
fn crash_world_clean_schedule_is_deterministic() {
    let cfg = ConformanceConfig::default();
    let opts = SimOptions { fingerprint: true };
    let ops = kv_sequence(0xDE7E_0001, GenConfig::crash());
    let schedule = SimSchedule::clean();
    let a = run_crash_sim(&ops, &cfg, &schedule, &opts).expect("clean run passes");
    let b = run_crash_sim(&ops, &cfg, &schedule, &opts).expect("clean run passes");
    assert_eq!(a.sim, b.sim, "event accounting diverged between identical runs");
    assert_eq!(
        fingerprints_of(&a),
        fingerprints_of(&b),
        "obs trace + final state diverged on a clean schedule"
    );
}

#[test]
fn crash_world_drops_and_crash_restart_are_deterministic() {
    let cfg = ConformanceConfig::default();
    let opts = SimOptions { fingerprint: true };
    let ops = kv_sequence(0xDE7E_0002, GenConfig::crash());
    let schedule = drops_and_crash(ops.len());
    let a = run_crash_sim(&ops, &cfg, &schedule, &opts).expect("perturbed run passes");
    let b = run_crash_sim(&ops, &cfg, &schedule, &opts).expect("perturbed run passes");
    assert_eq!(a.sim, b.sim, "event accounting diverged between identical runs");
    assert!(a.sim.crashes >= 1, "schedule's crash-restart never fired");
    assert!(a.sim.deliveries < a.sim.ops, "drops should suppress some deliveries");
    assert_eq!(
        fingerprints_of(&a),
        fingerprints_of(&b),
        "obs trace + final state diverged under drops + crash-restart"
    );
}

#[test]
fn conformance_world_perturbed_schedule_is_deterministic() {
    let cfg = ConformanceConfig::default();
    let opts = SimOptions { fingerprint: true };
    let ops = kv_sequence(0xDE7E_0003, GenConfig::conformance());
    // Delivery perturbations only (the conformance oracles are not
    // crash-aware); same seed ⇒ same schedule ⇒ same execution.
    let schedule = SimSchedule {
        tick_every: 3,
        drops: vec![ops.len() / 4],
        delays: vec![(ops.len() / 2, 33)],
        ..SimSchedule::clean()
    };
    let a = run_conformance_sim(&ops, &cfg, &schedule, &opts).expect("run passes");
    let b = run_conformance_sim(&ops, &cfg, &schedule, &opts).expect("run passes");
    assert_eq!(a.sim, b.sim);
    assert_eq!(fingerprints_of(&a), fingerprints_of(&b));
}

#[test]
fn rpc_world_perturbed_schedule_is_deterministic() {
    let cfg = ConformanceConfig::default();
    let opts = SimOptions { fingerprint: true };
    let ops = node_sequence(0xDE7E_0004);
    let schedule = SimSchedule {
        tick_every: 5,
        drops: vec![ops.len() / 3],
        delays: vec![(ops.len() / 2, 20)],
        ..SimSchedule::clean()
    };
    let a = run_rpc_sim(&ops, &cfg, 3, &schedule, &opts).expect("run passes");
    let b = run_rpc_sim(&ops, &cfg, 3, &schedule, &opts).expect("run passes");
    assert_eq!(a.sim, b.sim);
    assert_eq!(fingerprints_of(&a), fingerprints_of(&b));
}

#[test]
fn perturbed_schedules_replay_identically_from_their_seed() {
    // The swarm contract: a failing seed is reproducible because the
    // schedule derivation itself is a pure function of the seed.
    let cfg = ConformanceConfig::default();
    let opts = SimOptions { fingerprint: true };
    let profile = PerturbProfile::default();
    for seed in [0xD5EE_D001u64, 0xD5EE_D002, 0xD5EE_D003, 0xD5EE_D004] {
        let ops = kv_sequence(seed, GenConfig::crash());
        let s1 = SimSchedule::perturbed(seed, ops.len(), &profile);
        let s2 = SimSchedule::perturbed(seed, ops.len(), &profile);
        assert_eq!(s1, s2, "schedule derivation is not seed-pure");
        let a = run_crash_sim(&ops, &cfg, &s1, &opts).expect("seeded run passes");
        let b = run_crash_sim(&ops, &cfg, &s2, &opts).expect("seeded run passes");
        assert_eq!(a.sim, b.sim, "seed {seed:#x} diverged");
        assert_eq!(fingerprints_of(&a), fingerprints_of(&b), "seed {seed:#x} diverged");
    }
}
