//! Stateless-model-checking suites (§6): the fixed system passes every
//! explored interleaving; each seeded concurrency bug from Fig. 5 is
//! found by its harness.

use shardstore_conc::{CheckError, CheckOptions};
use shardstore_faults::{BugId, FaultConfig};
use shardstore_harness::concurrent::{
    bulk_ops_harness, fig4_background_harness, fig4_index_harness,
    get_vs_compaction_background_harness, get_vs_compaction_harness, kv_linearizability_harness,
    list_remove_harness, maintenance_harness, put_batch_maintenance_harness, put_reclaim_harness,
    read_vs_relocation_harness, scan_vs_compaction_background_harness, scan_vs_compaction_harness,
    scan_vs_flush_harness, scan_vs_put_batch_harness, scan_vs_relocation_harness,
    superblock_pool_harness,
};

const ITERS: usize = 400;

#[test]
fn fig4_holds_on_fixed_code() {
    fig4_index_harness(FaultConfig::none(), CheckOptions::random(11, ITERS)).unwrap();
    fig4_index_harness(FaultConfig::none(), CheckOptions::pct(11, 3, ITERS)).unwrap();
}

#[test]
fn fig4_finds_issue_14() {
    let err = fig4_index_harness(
        FaultConfig::seed(BugId::B14CompactionReclaimRace),
        CheckOptions::pct(11, 3, 5_000),
    )
    .expect_err("issue #14 should be found");
    assert!(matches!(err, CheckError::Failure { .. }), "unexpected: {err}");
}

#[test]
fn fig4_background_holds_on_fixed_code() {
    fig4_background_harness(FaultConfig::none(), CheckOptions::random(21, ITERS)).unwrap();
    fig4_background_harness(FaultConfig::none(), CheckOptions::pct(21, 3, ITERS)).unwrap();
}

#[test]
fn fig4_background_still_finds_issue_14() {
    // The background writeback engine must not mask the compaction /
    // reclamation race: the same seeded bug stays discoverable with the
    // pump running as an extra scheduled task.
    let err = fig4_background_harness(
        FaultConfig::seed(BugId::B14CompactionReclaimRace),
        CheckOptions::pct(21, 3, 5_000),
    )
    .expect_err("issue #14 should be found under background writeback");
    assert!(matches!(err, CheckError::Failure { .. }), "unexpected: {err}");
}

#[test]
fn scans_stay_consistent_across_flushes() {
    scan_vs_flush_harness(FaultConfig::none(), CheckOptions::random(24, ITERS)).unwrap();
    scan_vs_flush_harness(FaultConfig::none(), CheckOptions::pct(24, 3, ITERS)).unwrap();
}

#[test]
fn scans_observe_batch_prefixes_only() {
    scan_vs_put_batch_harness(FaultConfig::none(), CheckOptions::random(25, ITERS)).unwrap();
    scan_vs_put_batch_harness(FaultConfig::none(), CheckOptions::pct(25, 3, ITERS)).unwrap();
}

#[test]
fn scans_survive_relocation_races() {
    scan_vs_relocation_harness(FaultConfig::none(), CheckOptions::random(26, ITERS)).unwrap();
    scan_vs_relocation_harness(FaultConfig::none(), CheckOptions::pct(26, 3, ITERS)).unwrap();
}

#[test]
fn gets_stay_fresh_during_tiered_compaction() {
    get_vs_compaction_harness(FaultConfig::none(), CheckOptions::random(27, ITERS)).unwrap();
    get_vs_compaction_harness(FaultConfig::none(), CheckOptions::pct(27, 3, ITERS)).unwrap();
}

#[test]
fn gets_stay_fresh_during_tiered_compaction_background() {
    get_vs_compaction_background_harness(FaultConfig::none(), CheckOptions::random(27, ITERS))
        .unwrap();
    get_vs_compaction_background_harness(FaultConfig::none(), CheckOptions::pct(27, 3, ITERS))
        .unwrap();
}

#[test]
fn scans_stay_consistent_during_tiered_compaction() {
    scan_vs_compaction_harness(FaultConfig::none(), CheckOptions::random(28, ITERS)).unwrap();
    scan_vs_compaction_harness(FaultConfig::none(), CheckOptions::pct(28, 3, ITERS)).unwrap();
}

#[test]
fn scans_stay_consistent_during_tiered_compaction_background() {
    scan_vs_compaction_background_harness(FaultConfig::none(), CheckOptions::random(28, ITERS))
        .unwrap();
    scan_vs_compaction_background_harness(FaultConfig::none(), CheckOptions::pct(28, 3, ITERS))
        .unwrap();
}

#[test]
fn put_batch_survives_maintenance_races() {
    put_batch_maintenance_harness(FaultConfig::none(), CheckOptions::random(22, ITERS)).unwrap();
    put_batch_maintenance_harness(FaultConfig::none(), CheckOptions::pct(22, 3, ITERS)).unwrap();
}

#[test]
fn superblock_pool_holds_on_fixed_code() {
    superblock_pool_harness(FaultConfig::none(), CheckOptions::random(12, ITERS)).unwrap();
    superblock_pool_harness(FaultConfig::none(), CheckOptions::pct(12, 3, ITERS)).unwrap();
}

#[test]
fn superblock_pool_finds_issue_12_deadlock() {
    let err = superblock_pool_harness(
        FaultConfig::seed(BugId::B12SuperblockDeadlock),
        CheckOptions::random(12, 5_000),
    )
    .expect_err("issue #12 should be found");
    assert!(matches!(err, CheckError::Deadlock { .. }), "unexpected: {err}");
}

#[test]
fn put_reclaim_holds_on_fixed_code() {
    put_reclaim_harness(FaultConfig::none(), CheckOptions::random(13, ITERS)).unwrap();
    put_reclaim_harness(FaultConfig::none(), CheckOptions::pct(13, 3, ITERS)).unwrap();
}

#[test]
fn put_reclaim_finds_issue_11() {
    let err = put_reclaim_harness(
        FaultConfig::seed(BugId::B11LocatorRace),
        CheckOptions::pct(13, 3, 5_000),
    )
    .expect_err("issue #11 should be found");
    assert!(matches!(err, CheckError::Failure { .. }), "unexpected: {err}");
}

#[test]
fn list_remove_holds_on_fixed_code() {
    list_remove_harness(FaultConfig::none(), CheckOptions::random(14, ITERS)).unwrap();
}

#[test]
fn list_remove_finds_issue_13() {
    let err = list_remove_harness(
        FaultConfig::seed(BugId::B13ListRemoveRace),
        CheckOptions::random(14, 5_000),
    )
    .expect_err("issue #13 should be found");
    match err {
        CheckError::Failure { message, .. } => {
            assert!(message.contains("listed shard must exist"), "unexpected: {message}");
        }
        other => panic!("expected failure, got {other}"),
    }
}

#[test]
fn bulk_ops_holds_on_fixed_code() {
    bulk_ops_harness(FaultConfig::none(), CheckOptions::random(15, ITERS)).unwrap();
}

#[test]
fn bulk_ops_finds_issue_16() {
    let err =
        bulk_ops_harness(FaultConfig::seed(BugId::B16BulkOpsRace), CheckOptions::random(15, 5_000))
            .expect_err("issue #16 should be found");
    match err {
        CheckError::Failure { message, .. } => {
            assert!(message.contains("catalog"), "unexpected: {message}");
        }
        other => panic!("expected failure, got {other}"),
    }
}

#[test]
fn concurrent_kv_history_is_linearizable() {
    kv_linearizability_harness(FaultConfig::none(), CheckOptions::random(16, ITERS)).unwrap();
    kv_linearizability_harness(FaultConfig::none(), CheckOptions::pct(16, 3, ITERS)).unwrap();
}

#[test]
fn maintenance_tasks_do_not_deadlock() {
    maintenance_harness(FaultConfig::none(), CheckOptions::random(17, ITERS)).unwrap();
    maintenance_harness(FaultConfig::none(), CheckOptions::pct(17, 3, ITERS)).unwrap();
}

#[test]
fn reads_never_see_stale_caches_under_relocation() {
    read_vs_relocation_harness(FaultConfig::none(), CheckOptions::random(19, ITERS)).unwrap();
    read_vs_relocation_harness(FaultConfig::none(), CheckOptions::pct(19, 3, ITERS)).unwrap();
}

#[test]
fn failing_schedules_replay_deterministically() {
    // Find a failing schedule for issue #13, then replay it and check the
    // same failure reproduces (§4.3's determinism requirement, applied to
    // the model checker).
    let err = list_remove_harness(
        FaultConfig::seed(BugId::B13ListRemoveRace),
        CheckOptions::random(14, 5_000),
    )
    .expect_err("issue #13 should be found");
    let schedule = err.schedule().expect("failure carries a schedule").clone();
    let faults = FaultConfig::seed(BugId::B13ListRemoveRace);
    let replayed = shardstore_conc::replay(&schedule, 200_000, move || {
        // Re-run the same body the harness uses.
        let node = shardstore_core::Node::new(
            1,
            shardstore_vdisk::Geometry::small(),
            shardstore_core::StoreConfig::small(),
            faults.clone(),
        );
        node.put(1, b"one").unwrap();
        node.put(2, b"two").unwrap();
        let n1 = node.clone();
        let lister = shardstore_conc::thread::spawn(move || {
            let listed = n1.list_verified().unwrap();
            for (shard, size) in listed {
                assert!(size == 3, "shard {shard} listed with wrong size {size}");
            }
        });
        let n2 = node.clone();
        let remover = shardstore_conc::thread::spawn(move || {
            n2.delete(2).unwrap();
        });
        lister.join().unwrap();
        remover.join().unwrap();
    });
    assert!(replayed.is_err(), "replay should reproduce the failure");
}

#[test]
fn migration_races_are_linearizable() {
    shardstore_harness::concurrent::migrate_harness(
        FaultConfig::none(),
        CheckOptions::random(18, 600),
    )
    .unwrap();
    shardstore_harness::concurrent::migrate_harness(
        FaultConfig::none(),
        CheckOptions::pct(18, 3, 600),
    )
    .unwrap();
}

#[test]
fn node_rpc_histories_are_linearizable() {
    shardstore_harness::node_rpc::node_rpc_linearizability_harness(
        FaultConfig::none(),
        CheckOptions::random(21, ITERS),
    )
    .unwrap();
    shardstore_harness::node_rpc::node_rpc_linearizability_harness(
        FaultConfig::none(),
        CheckOptions::pct(21, 3, ITERS),
    )
    .unwrap();
}

#[test]
fn node_rpc_histories_are_linearizable_with_background_writeback() {
    shardstore_harness::node_rpc::node_rpc_linearizability_background_harness(
        FaultConfig::none(),
        CheckOptions::random(22, ITERS),
    )
    .unwrap();
    shardstore_harness::node_rpc::node_rpc_linearizability_background_harness(
        FaultConfig::none(),
        CheckOptions::pct(22, 3, ITERS),
    )
    .unwrap();
}

#[test]
fn node_rpc_fanout_keeps_catalogs_consistent() {
    shardstore_harness::node_rpc::node_rpc_fanout_harness(
        FaultConfig::none(),
        CheckOptions::random(23, ITERS),
    )
    .unwrap();
    shardstore_harness::node_rpc::node_rpc_fanout_harness(
        FaultConfig::none(),
        CheckOptions::pct(23, 3, ITERS),
    )
    .unwrap();
}
