//! Coverage-metrics suites (§4.2, §8.3).
//!
//! The paper's one known near-miss (§8.3): a bug hid in the cache-miss
//! path because every test configured a very large cache, so the
//! property-based tests never reached that path; coverage monitoring was
//! introduced to catch exactly such blind spots. This suite reproduces
//! the mechanism: run the same random workload under a production-sized
//! cache and under the test-sized cache, and show that the coverage
//! probes expose the blind spot.
//!
//! Coverage state is process-global, so all assertions live in a single
//! test function.

use shardstore_core::StoreConfig;
use shardstore_faults::{coverage, FaultConfig};
use shardstore_harness::conformance::{run_conformance, ConformanceConfig};
use shardstore_harness::detect::sample_sequences;
use shardstore_harness::gen::{kv_ops, GenConfig};
use shardstore_vdisk::Geometry;

/// Coverage state is process-global; serialize the tests in this binary.
static COVERAGE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn run_workload(cfg: &ConformanceConfig, sequences: u64) {
    for ops in sample_sequences(kv_ops(GenConfig::conformance()), 0xC0DE, sequences) {
        run_conformance(&ops, cfg).expect("fixed system conforms");
    }
}

#[test]
fn coverage_metrics_expose_cache_blind_spot() {
    let _serial = COVERAGE_LOCK.lock().unwrap();
    // 1. Production-shaped configuration: a cache far larger than the
    //    whole disk. The miss/eviction paths are a blind spot.
    let oversized = ConformanceConfig {
        geometry: Geometry::small(),
        store: StoreConfig::small()
            .to_builder()
            .cache_capacity(1 << 24) // bigger than the disk itself
            .build()
            .unwrap(),
        faults: FaultConfig::none(),
        ..ConformanceConfig::default()
    };
    let _rec = coverage::Recording::start();
    run_workload(&oversized, 40);
    let evictions_oversized = coverage::count("cache.evict");
    let misses_oversized = coverage::count("cache.miss");
    coverage::reset();

    // 2. The test-sized configuration exercises both paths.
    let test_sized = ConformanceConfig::default();
    run_workload(&test_sized, 40);
    let evictions_small = coverage::count("cache.evict");
    let misses_small = coverage::count("cache.miss");

    // The blind spot is visible purely from the metrics — this is the
    // check §8.3 motivates adding to CI: probes that a harness *intends*
    // to exercise must actually fire.
    assert_eq!(
        evictions_oversized, 0,
        "an oversized cache never evicts — the blind spot"
    );
    assert!(
        evictions_small > 0,
        "the test-sized cache must exercise the eviction path"
    );
    assert!(
        misses_small > misses_oversized,
        "the test-sized cache must exercise the miss path more ({misses_small} vs {misses_oversized})"
    );
}

#[test]
fn intended_probes_fire_during_validation_runs() {
    let _serial = COVERAGE_LOCK.lock().unwrap();
    // The release-blocking variant: a canonical conformance run must hit
    // every probe the harness relies on (new functionality that adds a
    // probe without reaching it fails here — §4.2's erosion guard).
    let _rec = coverage::Recording::start();
    let cfg = ConformanceConfig::default();
    for ops in sample_sequences(kv_ops(GenConfig::crash()), 0xFACE, 120) {
        let _ = shardstore_harness::run_crash_consistency(&ops, &cfg);
    }
    for probe in [
        "lsm.flush.done",
        "lsm.metadata.written",
        "lsm.get.memtable",
        "lsm.get.sstable",
        "lsm.get.miss",
        "cache.hit",
        "cache.miss",
        "chunk.put.open_new_extent",
        "chunk.scan.skip_page",
        "chunk.recover.scan_extent",
        "superblock.extent.reset",
        "superblock.update.coalesced",
        "superblock.update.new_write",
        "store.recovered",
        "crashcheck.dirty_reboot",
    ] {
        assert!(coverage::count(probe) > 0, "validation blind spot: probe {probe} never fired");
    }
}
