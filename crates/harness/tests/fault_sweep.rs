//! Fault-schedule sweep suite: deterministic enumeration of (extent ×
//! op-index × fault-kind) schedules over generated operation sequences.
//!
//! Two halves:
//!
//! - **No false positives**: on the fixed code, every enumerated schedule
//!   passes conformance, durability-under-quarantine, and no-lost-ack, in
//!   both writeback modes.
//! - **Teeth**: with bug #5 seeded (reclamation swallows a transient read
//!   error), a crafted reclaim-heavy sequence swept with transient faults
//!   produces a violation — proving the sweep can actually see silent
//!   data loss.

use shardstore_chunk::Stream;
use shardstore_faults::{BugId, FaultConfig};
use shardstore_harness::detect::seed_override;
use shardstore_harness::fault_sweep::{
    run_schedule, run_sweep, FaultKind, FaultSchedule, SweepConfig,
};
use shardstore_harness::ops::{KeyRef, KvOp, ValueSpec};
use shardstore_vdisk::ExtentId;

#[test]
fn sweep_finds_no_false_positives_deterministic() {
    let cfg = SweepConfig { seed: seed_override(0xFA17), ..SweepConfig::default() };
    let report = run_sweep(&cfg, &FaultConfig::none()).unwrap_or_else(|v| panic!("{v}"));
    assert!(report.schedules > 100, "sweep too small: {report:?}");
    assert!(report.acks_tracked > 0, "no acks observed: {report:?}");
    assert!(report.retried_runs > 0, "no transient fault was ever absorbed: {report:?}");
    assert!(report.quarantined_runs > 0, "no permanent fault ever quarantined: {report:?}");
}

#[test]
fn sweep_finds_no_false_positives_background() {
    let cfg = SweepConfig { seed: seed_override(0xFA17), sequences: 2, ..SweepConfig::default() }.background();
    let report = run_sweep(&cfg, &FaultConfig::none()).unwrap_or_else(|v| panic!("{v}"));
    assert!(report.schedules > 50, "sweep too small: {report:?}");
    assert!(report.acks_tracked > 0, "no acks observed: {report:?}");
}

/// A reclaim-heavy sequence: fill extents, create garbage with deletes,
/// reclaim, then read everything back. Returns the ops and the index of
/// the `Reclaim` op (where the teeth schedules arm their fault).
fn reclaim_heavy_sequence() -> (Vec<KvOp>, usize) {
    let mut ops = Vec::new();
    for k in 0..10u8 {
        ops.push(KvOp::Put(KeyRef::Literal(k), ValueSpec::Small(80)));
    }
    ops.push(KvOp::IndexFlush);
    ops.push(KvOp::Pump(255));
    for k in 0..5u8 {
        ops.push(KvOp::Delete(KeyRef::Literal(k)));
    }
    ops.push(KvOp::IndexFlush);
    ops.push(KvOp::Pump(255));
    let reclaim_idx = ops.len();
    ops.push(KvOp::Reclaim(Stream::Data));
    ops.push(KvOp::Pump(255));
    for k in 5..10u8 {
        ops.push(KvOp::Get(KeyRef::Literal(k)));
    }
    (ops, reclaim_idx)
}

fn teeth_schedules(cfg: &SweepConfig, reclaim_idx: usize) -> Vec<FaultSchedule> {
    (1..cfg.geometry.extent_count)
        .map(|e| FaultSchedule {
            extent: ExtentId(e),
            op_index: reclaim_idx,
            kind: FaultKind::Transient(1),
        })
        .collect()
}

#[test]
fn sweep_detects_seeded_reclamation_bug() {
    let cfg = SweepConfig { seed: seed_override(0xFA17), ..SweepConfig::default() };
    let (ops, reclaim_idx) = reclaim_heavy_sequence();
    let seeded = FaultConfig::seed(BugId::B5ReclamationTransientError);
    let violations: Vec<_> = teeth_schedules(&cfg, reclaim_idx)
        .into_iter()
        .filter_map(|s| run_schedule(&ops, s, &cfg, &seeded).err())
        .collect();
    assert!(
        !violations.is_empty(),
        "seeded bug #5 not detected by any transient-at-reclaim schedule"
    );
    // The same schedules on the fixed code must be clean (the reclaim
    // pass aborts on the transient error instead of forgetting chunks).
    for s in teeth_schedules(&cfg, reclaim_idx) {
        if let Err(v) = run_schedule(&ops, s, &cfg, &FaultConfig::none()) {
            panic!("false positive on fixed code: {v}");
        }
    }
}


/// Prints the sweep report for EXPERIMENTS.md (run with `-- --ignored`).
#[test]
#[ignore]
fn print_sweep_report() {
    let cfg = SweepConfig::default();
    let report = run_sweep(&cfg, &FaultConfig::none()).unwrap();
    println!("deterministic: {report:?}");
    let cfg = SweepConfig::default().background();
    let report = run_sweep(&cfg, &FaultConfig::none()).unwrap();
    println!("background: {report:?}");
}
