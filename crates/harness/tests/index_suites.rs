//! The Fig. 3 property-based test, as it appears in the paper: the
//! persistent LSM index against its hash-map reference model, plus the
//! §3.2 model-as-mock pattern.

use proptest::prelude::*;
use shardstore_faults::FaultConfig;
use shardstore_harness::index_conformance::{index_ops, run_index_conformance};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `proptest_index` (Fig. 3): random op sequences over the index
    /// alphabet, compared against the reference after every operation.
    #[test]
    fn proptest_index(ops in index_ops(true, 40)) {
        if let Err(d) = run_index_conformance(&ops, &FaultConfig::none()) {
            prop_assert!(false, "index divergence: {d}");
        }
    }

    /// The unbiased variant also holds (it just reaches fewer states).
    #[test]
    fn proptest_index_unbiased(ops in index_ops(false, 40)) {
        if let Err(d) = run_index_conformance(&ops, &FaultConfig::none()) {
            prop_assert!(false, "index divergence: {d}");
        }
    }
}

/// §3.2 "Mocking": the reference models double as mocks in unit tests.
/// This is the pattern the paper credits with keeping models up to date —
/// API-layer tests use the hash-map index model instead of the real LSM
/// tree, and the chunk-store model instead of real chunk storage.
mod model_as_mock {
    use shardstore_chunk::Locator;
    use shardstore_faults::FaultConfig;
    use shardstore_model::{ChunkStoreModel, IndexModel};

    /// A toy API layer generic over its index, so tests can instantiate it
    /// with the model.
    struct ApiLayer<I> {
        index: I,
        chunks: ChunkStoreModel,
    }

    trait IndexLike {
        fn put(&mut self, key: u128, locators: Vec<Locator>);
        fn get(&self, key: u128) -> Option<Vec<Locator>>;
        fn delete(&mut self, key: u128);
    }

    impl IndexLike for IndexModel {
        fn put(&mut self, key: u128, locators: Vec<Locator>) {
            IndexModel::put(self, key, locators)
        }
        fn get(&self, key: u128) -> Option<Vec<Locator>> {
            IndexModel::get(self, key)
        }
        fn delete(&mut self, key: u128) {
            IndexModel::delete(self, key)
        }
    }

    impl<I: IndexLike> ApiLayer<I> {
        fn put_object(&mut self, key: u128, data: &[u8]) {
            let locator = self.chunks.put(data);
            self.index.put(key, vec![locator]);
        }

        fn get_object(&self, key: u128) -> Option<Vec<u8>> {
            let locators = self.index.get(key)?;
            let mut out = Vec::new();
            for l in locators {
                out.extend_from_slice(&self.chunks.get(&l)?);
            }
            Some(out)
        }

        fn delete_object(&mut self, key: u128) {
            if let Some(locators) = self.index.get(key) {
                for l in locators {
                    self.chunks.delete(&l);
                }
            }
            self.index.delete(key);
        }
    }

    #[test]
    fn api_layer_unit_test_against_mocks() {
        let mut api = ApiLayer {
            index: IndexModel::new(),
            chunks: ChunkStoreModel::new(FaultConfig::none()),
        };
        api.put_object(1, b"mocked object");
        assert_eq!(api.get_object(1).unwrap(), b"mocked object");
        api.put_object(1, b"overwritten");
        assert_eq!(api.get_object(1).unwrap(), b"overwritten");
        api.delete_object(1);
        assert_eq!(api.get_object(1), None);
        assert!(api.chunks.is_empty() || api.chunks.len() == 1, "old chunk may linger (GC's job)");
    }
}
