//! Scan-focused conformance suites: deterministic seed-matrix runs of the
//! §4 conformance checker over sequences that exercise `KvOp::Scan`, in
//! both writeback modes. The generic proptest suites already include
//! scans in the alphabet; these runs pin four named seeds (overridable
//! via `SHARDSTORE_SEED` for the CI fault matrix) and assert the sampled
//! sequences actually contained scans — a weight change in the generator
//! must not silently turn this suite into a no-op.

use shardstore_harness::detect::{sample_sequences, seed_override};
use shardstore_harness::gen::{kv_ops, GenConfig};
use shardstore_harness::ops::KvOp;
use shardstore_harness::{run_conformance, run_crash_consistency, ConformanceConfig};

const SEEDS: [u64; 4] = [0x5CA4_0001, 0x5CA4_0002, 0x5CA4_0003, 0x5CA4_0004];
const SEQUENCES: u64 = 24;

fn count_scans(ops: &[KvOp]) -> usize {
    ops.iter().filter(|op| matches!(op, KvOp::Scan(_, _))).count()
}

fn run_seed(seed: u64, cfg: &ConformanceConfig) {
    let mut scans = 0usize;
    for ops in sample_sequences(kv_ops(GenConfig::conformance()), seed_override(seed), SEQUENCES)
    {
        scans += count_scans(&ops);
        if let Err(d) = run_conformance(&ops, cfg) {
            panic!("seed {seed:#x}: scan conformance divergence: {d}");
        }
    }
    assert!(scans > 0, "seed {seed:#x} sampled no scans — generator weights changed?");
}

#[test]
fn scan_conformance_holds_on_seed_matrix_deterministic() {
    for seed in SEEDS {
        run_seed(seed, &ConformanceConfig::default());
    }
}

#[test]
fn scan_conformance_holds_on_seed_matrix_background() {
    for seed in SEEDS {
        run_seed(seed, &ConformanceConfig::default().background());
    }
}

#[test]
fn scan_crash_consistency_holds_on_seed_matrix() {
    // Crash alphabet (dirty reboots interleaved with scans): scans after
    // recovery must still agree with the persistence facts.
    for seed in SEEDS {
        let cfg = ConformanceConfig::default();
        let mut scans = 0usize;
        for ops in sample_sequences(kv_ops(GenConfig::crash()), seed_override(seed), SEQUENCES) {
            scans += count_scans(&ops);
            if let Err(d) = run_crash_consistency(&ops, &cfg) {
                panic!("seed {seed:#x}: scan crash divergence: {d}");
            }
        }
        assert!(scans > 0, "seed {seed:#x} sampled no scans");
    }
}
