//! Property tests for the simulator-aware auto-minimizer (ISSUE 8
//! satellite). The contract under test:
//!
//! 1. the minimized repro's op sequence is a subsequence of the
//!    original's (removal-only shrinking — no op is ever rewritten);
//! 2. the minimized repro still fails, in the same failure *class* as
//!    the original (same detector, digit runs normalized);
//! 3. the minimizer never returns a passing repro.
//!
//! The detectors here are synthetic predicates over `(ops, schedule)` —
//! deterministic stand-ins for harness divergences — plus one real
//! end-to-end case through the crash-consistency world.

use proptest::prelude::*;
use shardstore_harness::conformance::ConformanceConfig;
use shardstore_harness::detect::sample_sequences;
use shardstore_harness::gen::{kv_ops, GenConfig};
use shardstore_harness::minimize::{failure_class, minimize_repro, SimRepro};
use shardstore_harness::ops::{KeyRef, KvOp, ValueSpec};
use shardstore_harness::simulate::{run_crash_sim, SimOptions};
use shardstore_sim::{PerturbProfile, SimSchedule};

fn is_subsequence<T: PartialEq>(needle: &[T], haystack: &[T]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

/// Checks the full minimizer contract for one repro + detector pair.
fn check_contract<Op: Clone + PartialEq + std::fmt::Debug>(
    repro: &SimRepro<Op>,
    fails: impl Fn(&SimRepro<Op>) -> Option<String>,
) -> SimRepro<Op> {
    let original = fails(repro).expect("repro must fail to be minimized");
    let minimized = minimize_repro(repro, &fails);
    assert!(
        is_subsequence(&minimized.ops, &repro.ops),
        "minimized ops are not a subsequence of the original:\n  original {:?}\n  minimized {:?}",
        repro.ops,
        minimized.ops
    );
    let still = fails(&minimized).expect("minimizer returned a passing repro");
    assert_eq!(
        failure_class(&still),
        failure_class(&original),
        "minimizer traded one failure for another"
    );
    assert!(minimized.ops.len() <= repro.ops.len());
    minimized
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Synthetic detector: fires iff a `Delete` of a literal key is
    /// present. The minimizer must strip everything else.
    #[test]
    fn minimized_repro_is_failing_subsequence(
        ops in kv_ops(GenConfig::conformance()),
        seed in 0u64..1 << 48,
    ) {
        let schedule = SimSchedule::perturbed(seed, ops.len(), &PerturbProfile::default());
        let mut ops = ops;
        // Plant the op the detector wants somewhere deterministic.
        let at = ops.len() / 2;
        ops.insert(at, KvOp::Delete(KeyRef::Literal(7)));
        let repro = SimRepro { ops, schedule };
        let fails = |r: &SimRepro<KvOp>| {
            r.ops
                .iter()
                .position(|o| matches!(o, KvOp::Delete(KeyRef::Literal(7))))
                .map(|i| format!("phantom delete of key 7 at op {i}"))
        };
        let minimized = check_contract(&repro, fails);
        // This detector needs exactly one op; the minimizer must find it.
        prop_assert_eq!(minimized.ops, vec![KvOp::Delete(KeyRef::Literal(7))]);
    }

    /// Synthetic detector coupling ops *and* schedule: fires only while a
    /// put and at least one schedule fault coexist. Schedule points must
    /// shrink without detaching from the ops they perturb.
    #[test]
    fn schedule_points_shrink_with_the_op_sequence(
        ops in kv_ops(GenConfig::conformance()),
        seed in 0u64..1 << 48,
    ) {
        let mut ops = ops;
        ops.push(KvOp::Put(KeyRef::Literal(3), ValueSpec::Small(9)));
        let schedule = SimSchedule::perturbed(seed, ops.len(), &PerturbProfile {
            faults: 2,
            ..PerturbProfile::default()
        });
        let repro = SimRepro { ops, schedule };
        let fails = |r: &SimRepro<KvOp>| {
            let has_put =
                r.ops.iter().any(|o| matches!(o, KvOp::Put(KeyRef::Literal(3), _)));
            (has_put && !r.schedule.faults.is_empty()).then(|| {
                format!(
                    "put of key 3 lost under fault at op {}",
                    r.schedule.faults[0].at_op
                )
            })
        };
        let minimized = check_contract(&repro, fails);
        prop_assert_eq!(minimized.ops.len(), 1);
        prop_assert_eq!(minimized.schedule.faults.len(), 1);
        prop_assert!(minimized.schedule.crashes.is_empty());
        prop_assert!(minimized.schedule.drops.is_empty());
        prop_assert!(minimized.schedule.delays.is_empty());
        prop_assert_eq!(minimized.schedule.tick_every, 0);
    }

    /// A detector whose message embeds indices that shift during
    /// shrinking: the failure-*class* comparison must hold it together.
    #[test]
    fn shifting_detector_indices_stay_in_class(
        ops in kv_ops(GenConfig::conformance()),
    ) {
        let mut ops = ops;
        ops.push(KvOp::Compact);
        let repro = SimRepro { ops, schedule: SimSchedule::clean() };
        let fails = |r: &SimRepro<KvOp>| {
            r.ops
                .iter()
                .position(|o| matches!(o, KvOp::Compact))
                .map(|i| format!("compaction discipline violated at op {i} of {}", r.ops.len()))
        };
        check_contract(&repro, fails);
    }
}

#[test]
#[should_panic(expected = "passing repro")]
fn minimizer_rejects_a_passing_repro() {
    let repro =
        SimRepro { ops: vec![KvOp::Get(KeyRef::Literal(1))], schedule: SimSchedule::clean() };
    let _ = minimize_repro(&repro, |_| None);
}

/// End-to-end: a real divergence (a schedule fault the crash world's
/// relaxations do not cover would be a bug, so instead plant a model
/// mismatch by corrupting the op stream is impossible — use a seeded
/// detector over the real runner's *output*): the repro fails through
/// the actual crash world and the minimizer preserves that failure.
#[test]
fn minimizes_through_the_real_crash_world() {
    let cfg = ConformanceConfig::default();
    let ops: Vec<KvOp> = sample_sequences(kv_ops(GenConfig::crash()), 0x51A1, 1)
        .next()
        .expect("one sequence");
    let schedule = SimSchedule::perturbed(0x51A1, ops.len(), &PerturbProfile::default());
    let repro = SimRepro { ops, schedule };
    // Real executions on a bug-free build pass, so wrap the runner with a
    // detector that also fires on a structural property — the run must
    // both *pass* and contain at least one put. Failure class is then the
    // detector's own message; the minimizer works against the real
    // simulator executions throughout.
    let fails = |r: &SimRepro<KvOp>| {
        let outcome = run_crash_sim(&r.ops, &cfg, &r.schedule, &SimOptions::default());
        match outcome {
            Err(d) => Some(format!("real divergence: {d}")),
            Ok(_) => r
                .ops
                .iter()
                .any(|o| matches!(o, KvOp::Put(_, _)))
                .then(|| "run passed but contained a put".to_string()),
        }
    };
    if fails(&repro).is_none() {
        // Degenerate sequence without puts; nothing to minimize.
        return;
    }
    let minimized = minimize_repro(&repro, fails);
    assert!(is_subsequence(&minimized.ops, &repro.ops));
    assert_eq!(minimized.ops.iter().filter(|o| matches!(o, KvOp::Put(_, _))).count(), 1);
}

fn is_subsequence_smoke() {
    // Guard the helper itself (it is load-bearing for every assertion).
    assert!(is_subsequence(&[1, 3], &[1, 2, 3]));
    assert!(!is_subsequence(&[3, 1], &[1, 2, 3]));
}

#[test]
fn subsequence_helper_works() {
    is_subsequence_smoke();
}
