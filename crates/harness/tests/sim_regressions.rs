//! Regressions found by the simulator swarm (ISSUE 8). Each test is a
//! minimized `(ops, schedule)` repro pinned verbatim, so the bug it
//! found stays found.

use shardstore_core::Store;
use shardstore_faults::{coverage, FaultConfig};
use shardstore_harness::conformance::ConformanceConfig;
use shardstore_harness::ops::{KeyRef, KvOp, ValueSpec};
use shardstore_harness::simulate::{run_crash_sim, SimOptions};
use shardstore_sim::{FaultPoint, SimFaultKind, SimSchedule};
use shardstore_vdisk::{CrashPlan, ExtentId};

/// Swarm seed 0x5f2b (crash world): a permanent extent fault armed
/// before any operation, one batched put, one reboot. The flush during
/// shutdown placed the SSTable chunk on the failing extent; quarantine
/// marked that write `Lost`, doomed-edge pruning (correctly) let the
/// metadata record persist with the dangling table reference — and
/// recovery then died on the unreadable table, turning one dead extent
/// into node death. Recovery must instead drop the unreadable table
/// (its entries were never acknowledged — their promises wait on the
/// lost write forever) and keep the node alive.
fn seed_0x5f2b_ops() -> Vec<KvOp> {
    vec![
        KvOp::PutBatch(vec![
            (KeyRef::Literal(2), ValueSpec::Small(28)),
            (KeyRef::Recent(126), ValueSpec::FrameSpill(2)),
            (KeyRef::Literal(132), ValueSpec::Small(4)),
            (KeyRef::Recent(39), ValueSpec::Small(10)),
            (KeyRef::Recent(147), ValueSpec::FrameSpill(22)),
        ]),
        KvOp::Reboot,
    ]
}

#[test]
fn swarm_seed_0x5f2b_recovery_survives_table_lost_to_quarantine() {
    let cfg = ConformanceConfig::default();
    let schedule = SimSchedule {
        faults: vec![FaultPoint { at_op: 0, extent: 46, kind: SimFaultKind::Permanent }],
        ..SimSchedule::clean()
    };
    let outcome = run_crash_sim(&seed_0x5f2b_ops(), &cfg, &schedule, &SimOptions::default())
        .expect("recovery must survive a table chunk lost to extent quarantine");
    assert!(outcome.report.has_failed, "the schedule's fault should have armed");
}

#[test]
fn recovery_drops_unreadable_table_and_keeps_the_node_alive() {
    // The same failure, driven by hand at the store API so the repair is
    // pinned independent of the harness relaxations. A batch of many
    // small entries keeps the data chunks on healthy extent 2 while the
    // flush's (larger) table chunk spills onto failing extent 4 — so
    // exactly the table is lost, and its metadata reference dangles.
    let _rec = coverage::Recording::start();
    let cfg = ConformanceConfig::default();
    let store = Store::format(cfg.geometry, cfg.store, FaultConfig::none());
    // A key made durable before the fault arms, with its data and table
    // chunks on healthy extents: it must survive everything below.
    store.put(500, b"durable before the fault").unwrap();
    store.flush_index().unwrap();
    store.pump().unwrap();
    // Permanent death of extent 4; the shutdown flush's SSTable chunk
    // lands on it and is lost to quarantine, while the metadata record
    // (with its dangling table reference) persists via doomed-edge
    // pruning.
    store.scheduler().disk().inject_fail_always(ExtentId(4));
    let page = cfg.geometry.page_size;
    let batch: Vec<(u128, Vec<u8>)> =
        (0..16u128).map(|k| (k, ValueSpec::Small(4).materialize(k, page))).collect();
    let deps = store.put_batch(&batch).unwrap();
    store.clean_shutdown().unwrap();
    assert_eq!(store.quarantined_extents(), vec![ExtentId(4)]);
    // The batch's entries seal over the lost table write: even though
    // their data chunks landed on a healthy extent, none may ever
    // acknowledge.
    for dep in &deps {
        assert!(!dep.is_persistent(), "a write lost to quarantine must never acknowledge");
    }
    // Recovery drops the unreadable table instead of dying.
    let recovered = store
        .dirty_reboot(&CrashPlan::LoseAll)
        .expect("one dead extent must not be node death");
    assert!(
        coverage::count("lsm.recover.dropped_unreadable_table") > 0,
        "recovery should have dropped the dangling table reference"
    );
    // The never-acknowledged batch may be gone; the acknowledged key
    // must not be.
    assert_eq!(
        recovered.get(500).unwrap().as_deref(),
        Some(b"durable before the fault".as_slice())
    );
    // And the recovered store keeps serving.
    recovered.put(501, b"written after recovery").unwrap();
    assert_eq!(
        recovered.get(501).unwrap().as_deref(),
        Some(b"written after recovery".as_slice())
    );
}
