//! Property suites for the observability plane itself: histogram bucket
//! arithmetic (the quantile estimates behind the introspection report)
//! and trace-ring wraparound (sequence numbers must stay continuous so
//! truncated traces are detectable, never silently rewritten).

use proptest::prelude::*;
use shardstore_obs::metrics::Registry;
use shardstore_obs::{TraceEvent, TraceLog};

/// Strictly ascending histogram bounds (1–8 finite buckets).
fn arb_bounds() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..1_000, 1..8).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// The exact quantile of a sorted sample at rank `ceil(q * n)` (1-based,
/// clamped), mirroring the histogram's rank rule.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// The index of the bucket a value falls into (bounds are inclusive
/// upper bounds; one past the end is the overflow bucket).
fn bucket_of(bounds: &[u64], value: u64) -> usize {
    bounds.partition_point(|&b| b < value)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bucketing is monotone and gap-free: every value lands in exactly
    /// one bucket, the per-bucket counts sum to the total, and cumulative
    /// counts are non-decreasing across the bucket sequence.
    #[test]
    fn histogram_buckets_are_monotone_and_gap_free(
        bounds in arb_bounds(),
        values in proptest::collection::vec(0u64..2_000, 1..64),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("t", &bounds);
        for &v in &values {
            h.record(v);
        }
        let snap = reg.snapshot();
        let s = &snap.histograms["t"];
        prop_assert_eq!(s.counts.len(), bounds.len() + 1, "one overflow bucket past the bounds");
        prop_assert_eq!(s.counts.iter().sum::<u64>(), values.len() as u64, "no value lost or double-counted");
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        // Each value is in the one bucket its bound dictates.
        let mut expect = vec![0u64; bounds.len() + 1];
        for &v in &values {
            expect[bucket_of(&bounds, v)] += 1;
        }
        prop_assert_eq!(&s.counts, &expect, "bucketing disagrees with the partition rule");
        // Boundary values land *inside* their bound (inclusive upper).
        for (i, &b) in bounds.iter().enumerate() {
            prop_assert_eq!(bucket_of(&bounds, b), i, "bound {} is not inclusive", b);
            prop_assert_eq!(bucket_of(&bounds, b + 1), i + 1, "gap after bound {}", b);
        }
    }

    /// A histogram quantile is within one bucket of the exact sample
    /// quantile: the exact value's bucket either contains the reported
    /// bound or is adjacent to it (bucketing can only round up to the
    /// bucket bound, never skip a bucket).
    #[test]
    fn histogram_quantiles_are_within_one_bucket_of_exact(
        bounds in arb_bounds(),
        values in proptest::collection::vec(0u64..2_000, 1..64),
        q in 0.01f64..1.0,
    ) {
        let reg = Registry::new();
        let h = reg.histogram("t", &bounds);
        for &v in &values {
            h.record(v);
        }
        let snap = reg.snapshot();
        let s = &snap.histograms["t"];
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let got = s.quantile(q);
        if got == u64::MAX {
            // Overflow bucket: the exact value must be above every bound.
            prop_assert!(exact > *bounds.last().unwrap());
        } else {
            let exact_bucket = bucket_of(&bounds, exact);
            let got_bucket = bucket_of(&bounds, got);
            prop_assert!(
                got_bucket.abs_diff(exact_bucket) <= 1,
                "quantile {} reported {} (bucket {}), exact {} (bucket {})",
                q, got, got_bucket, exact, exact_bucket
            );
        }
    }

    /// The trace ring drops oldest-first under wraparound, but sequence
    /// numbers stay continuous: the survivors are exactly the last
    /// `capacity` seqs, `dropped()` accounts for every evicted record,
    /// and no seq is ever reused or reordered.
    #[test]
    fn trace_ring_wraparound_keeps_seq_continuity(
        capacity in 1usize..32,
        events in 1usize..200,
    ) {
        let log = TraceLog::new(capacity);
        for i in 0..events {
            log.event(TraceEvent::CacheHit { extent: i as u32, offset: 0 });
        }
        let records = log.snapshot();
        let kept = events.min(capacity);
        prop_assert_eq!(records.len(), kept);
        prop_assert_eq!(log.dropped(), (events - kept) as u64, "drop accounting disagrees");
        // Survivors are the newest `kept` events, in order, seq-contiguous.
        let first = (events - kept) as u64;
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.seq, first + i as u64, "seq gap or reorder after wraparound");
        }
    }
}

/// Req frames survive wraparound: a stamped record keeps its request id
/// even when earlier records of the same request were evicted.
#[test]
fn wrapped_trace_keeps_request_stamps() {
    let log = TraceLog::new(4);
    let _frame = log.req_frame(77);
    for i in 0..10u32 {
        log.event(TraceEvent::CacheHit { extent: i, offset: 0 });
    }
    let records = log.snapshot();
    assert_eq!(records.len(), 4);
    assert!(records.iter().all(|r| r.req == Some(77)), "stamp lost under wraparound");
    assert_eq!(log.dropped(), 6);
}
