//! Swarm smoke tests (ISSUE 8): a batch of compressed-time seeds through
//! the deterministic simulator must find nothing on a bug-free build
//! (zero false positives), and the schedules it executes must actually
//! exercise every coverage group — fault kinds, operation kinds, and
//! delivery perturbations. Losing a group means the swarm is sweeping a
//! schedule space it never reaches (the §8.3 coverage-miss failure mode,
//! recast for schedules).

use shardstore_faults::coverage;
use shardstore_harness::conformance::ConformanceConfig;
use shardstore_harness::detect::sample_sequences;
use shardstore_harness::gen::{kv_ops, node_ops, GenConfig};
use shardstore_harness::ops::{KvOp, NodeOp};
use shardstore_harness::simulate::{
    run_conformance_sim, run_crash_sim, run_node_sim, run_rpc_sim, SimOptions,
};
use shardstore_harness::swarm::{run_swarm, SwarmConfig};
use shardstore_sim::SimSchedule;

#[test]
fn swarm_finds_nothing_on_a_clean_build_and_covers_every_group() {
    let _rec = coverage::Recording::start();
    let config = SwarmConfig { runs: 8, ..SwarmConfig::default() };
    let outcome = run_swarm(&config);
    let rendered: Vec<String> = outcome
        .failures
        .iter()
        .map(|f| format!("seed {:#x} ({}): {}\n{}", f.seed, f.world, f.message, f.repro))
        .collect();
    assert!(
        outcome.failures.is_empty(),
        "swarm found {} false positives on a bug-free build:\n{}",
        outcome.failures.len(),
        rendered.join("\n---\n")
    );
    assert!(outcome.stats.events > 0, "swarm dispatched no events");
    assert!(outcome.stats.ops > 0, "swarm applied no operations");
    let cov = coverage::schedule_coverage();
    assert!(
        cov.all_groups_covered(),
        "swarm schedules left a coverage group empty:\n{}",
        cov.render()
    );
}

#[test]
fn clean_schedules_have_zero_false_positives_across_seeds() {
    // The acceptance bar: ≥ 4 seeds, clean schedules, every world —
    // nothing may fire on a bug-free build.
    let cfg = ConformanceConfig::default();
    let opts = SimOptions::default();
    let clean = SimSchedule::clean();
    for seed in [0x0BAD_5EED_0001u64, 0x0BAD_5EED_0002, 0x0BAD_5EED_0003, 0x0BAD_5EED_0004] {
        let kv: Vec<KvOp> = sample_sequences(kv_ops(GenConfig::conformance()), seed, 1)
            .next()
            .expect("one sequence");
        run_conformance_sim(&kv, &cfg, &clean, &opts)
            .unwrap_or_else(|d| panic!("conformance false positive at seed {seed:#x}: {d}"));
        let kv: Vec<KvOp> =
            sample_sequences(kv_ops(GenConfig::crash()), seed, 1).next().expect("one sequence");
        run_crash_sim(&kv, &cfg, &clean, &opts)
            .unwrap_or_else(|d| panic!("crash false positive at seed {seed:#x}: {d}"));
        let node: Vec<NodeOp> = sample_sequences(node_ops(GenConfig::conformance()), seed, 1)
            .next()
            .expect("one sequence");
        run_node_sim(&node, &cfg, 3, &clean, &opts)
            .unwrap_or_else(|d| panic!("node false positive at seed {seed:#x}: {d}"));
        run_rpc_sim(&node, &cfg, 3, &clean, &opts)
            .unwrap_or_else(|d| panic!("rpc false positive at seed {seed:#x}: {d}"));
    }
}
