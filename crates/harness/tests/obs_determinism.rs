//! Determinism of the observability layer: two runs of the same operation
//! sequence under the same `SHARDSTORE_SEED` must produce byte-identical
//! trace logs and metric snapshots. Trace events carry only logical
//! counters (sequence numbers, node ids, extent numbers) — never wall
//! clock — so this holds in deterministic writeback mode and, once the
//! background pump is quiesced before reading, in background mode too.

use std::time::Duration;

use shardstore_core::{Store, StoreConfig};
use shardstore_dependency::{WritebackConfig, WritebackMode};
use shardstore_faults::FaultConfig;
use shardstore_harness::detect::{sample_sequences, seed_override};
use shardstore_harness::gen::{kv_ops, GenConfig};
use shardstore_harness::ops::KvOp;
use shardstore_vdisk::{CrashPlan, Geometry};

/// Minimal deterministic interpreter for the conformance alphabet: applies
/// each op, ignoring outcomes (conformance is checked elsewhere — here only
/// the *trace* matters, and it must not depend on anything but the ops).
fn apply(store: &mut Store, puts: &mut Vec<u128>, op: &KvOp, page_size: usize) {
    match op {
        KvOp::Get(kr) => {
            let _ = store.get(kr.resolve(puts));
        }
        KvOp::Put(kr, spec) => {
            let key = kr.resolve(puts);
            let value = spec.materialize(key, page_size);
            if store.put(key, &value).is_ok() {
                puts.push(key);
            }
        }
        KvOp::PutBatch(elems) => {
            let batch: Vec<(u128, Vec<u8>)> = elems
                .iter()
                .map(|(kr, spec)| {
                    let key = kr.resolve(puts);
                    (key, spec.materialize(key, page_size))
                })
                .collect();
            if store.put_batch(&batch).is_ok() {
                puts.extend(batch.iter().map(|(k, _)| *k));
            }
        }
        KvOp::Delete(kr) => {
            let _ = store.delete(kr.resolve(puts));
        }
        KvOp::Scan(a, b) => {
            let (ka, kb) = (a.resolve(puts), b.resolve(puts));
            let _ = store.scan(ka.min(kb), ka.max(kb));
        }
        KvOp::IndexFlush => {
            let _ = store.flush_index();
        }
        KvOp::Compact => {
            let _ = store.compact_index();
        }
        KvOp::Reclaim(stream) => {
            let _ = store.reclaim(*stream);
        }
        KvOp::CacheDrop => store.drop_caches(),
        KvOp::Pump(n) => {
            let sched = store.scheduler();
            let _ = sched.issue_ready(*n as usize).and_then(|_| sched.flush_issued());
        }
        KvOp::Reboot => {
            let _ = store.clean_shutdown();
            if let Ok(recovered) = store.dirty_reboot(&CrashPlan::LoseAll) {
                *store = recovered;
            }
        }
        KvOp::DirtyReboot(_) | KvOp::FailDiskOnce(_) => {}
    }
}

/// Runs one sequence and returns the rendered trace plus the metrics
/// snapshot JSON. In background mode the pump is configured with a batch
/// window far longer than the test (so it never fires mid-run on its own
/// schedule) and quiesced — drained deterministically on the caller
/// thread — before the trace is read.
fn run_once(ops: &[KvOp], background: bool) -> (String, String) {
    let geometry = Geometry::small();
    let mut store = Store::format(geometry, StoreConfig::small(), FaultConfig::none());
    if background {
        store.scheduler().set_writeback_mode(WritebackMode::Background(WritebackConfig {
            batch_window: Duration::from_secs(600),
            max_batch: usize::MAX,
        }));
    }
    let mut puts = Vec::new();
    for op in ops {
        apply(&mut store, &mut puts, op, geometry.page_size);
    }
    store.scheduler().quiesce().expect("quiesce after a fault-free run");
    let obs = store.obs();
    (obs.trace().render(), obs.snapshot().to_json())
}

fn check_mode(background: bool) {
    let seed = seed_override(0x0B5_D1CE);
    let sequences: Vec<Vec<KvOp>> =
        sample_sequences(kv_ops(GenConfig::conformance()), seed, 3).collect();
    for (i, ops) in sequences.iter().enumerate() {
        let (trace_a, snap_a) = run_once(ops, background);
        let (trace_b, snap_b) = run_once(ops, background);
        assert!(
            !trace_a.is_empty(),
            "sequence {i}: a non-empty op sequence must leave a trace"
        );
        assert_eq!(trace_a, trace_b, "sequence {i}: trace logs diverge between identical runs");
        assert_eq!(snap_a, snap_b, "sequence {i}: metric snapshots diverge between identical runs");
    }
}

#[test]
fn traces_and_metrics_are_deterministic() {
    check_mode(false);
}

#[test]
fn traces_and_metrics_are_deterministic_under_background_writeback() {
    check_mode(true);
}

#[test]
fn metrics_snapshot_json_round_trips_from_a_real_run() {
    let seed = seed_override(0x0B5_D1CE);
    let ops: Vec<KvOp> = sample_sequences(kv_ops(GenConfig::conformance()), seed, 1)
        .next()
        .expect("one sequence");
    let geometry = Geometry::small();
    let mut store = Store::format(geometry, StoreConfig::small(), FaultConfig::none());
    let mut puts = Vec::new();
    for op in &ops {
        apply(&mut store, &mut puts, op, geometry.page_size);
    }
    let snap = store.obs().snapshot();
    let json = snap.to_json();
    let back = shardstore_obs::MetricsSnapshot::from_json(&json).expect("snapshot parses back");
    assert_eq!(snap, back, "snapshot JSON round-trip must be lossless");
}
