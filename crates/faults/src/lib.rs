//! Seeded-fault registry and coverage probes for the ShardStore validation
//! effort.
//!
//! The paper's headline result (Fig. 5) is a catalog of 16 issues that the
//! lightweight formal methods stack prevented from reaching production. To
//! reproduce that table we re-introduce each issue as a *seeded fault*: a
//! guarded code path inside the relevant component that restores the
//! historical buggy behaviour. The default build always runs the fixed code;
//! a fault only activates when a test explicitly constructs a [`FaultConfig`]
//! naming its [`BugId`].
//!
//! This crate also hosts the lightweight *coverage probe* mechanism used by
//! §4.2 of the paper: components mark interesting code paths with
//! [`coverage::hit`], and test harnesses read the global [`coverage`]
//! registry to detect blind spots (e.g. a cache-miss path that biased
//! generation never reaches).

pub mod coverage;

use std::fmt;
use std::sync::Arc;

/// Identifier for one of the 16 production issues from Fig. 5 of the paper.
///
/// Each variant documents the component it lives in and the property it
/// violates, mirroring the paper's table rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugId {
    /// #1 chunk store: off-by-one in reclamation for chunks of size close to
    /// `PAGE_SIZE` (functional correctness).
    B1ReclamationOffByOne,
    /// #2 buffer cache: cache not drained after resetting an extent
    /// (functional correctness).
    B2CacheNotDrained,
    /// #3 index: metadata not flushed on shutdown if an extent was reset
    /// (functional correctness).
    B3MetadataShutdownFlush,
    /// #4 API: shards lost when a disk is removed from service and later
    /// returned (functional correctness).
    B4DiskRemovalLosesShards,
    /// #5 chunk store: reclamation forgets chunks after a transient read IO
    /// error (functional correctness, failure injection).
    B5ReclamationTransientError,
    /// #6 superblock: extent-ownership dependency incorrect after a reboot
    /// (crash consistency).
    B6OwnershipDependency,
    /// #7 superblock: mismatch between soft and hard write pointers in a
    /// crash after an extent reset (crash consistency).
    B7SoftHardPointerMismatch,
    /// #8 buffer cache: writes missing a dependency on the soft write
    /// pointer update (crash consistency).
    B8MissingPointerDependency,
    /// #9 chunk store: *reference model* not updated correctly after a crash
    /// during reclamation (crash consistency; a bug in the spec, not the
    /// implementation).
    B9ModelCrashReclamation,
    /// #10 chunk store: reclamation forgets chunks after a crash and UUID
    /// collision (crash consistency; the worked example of §5).
    B10UuidCollision,
    /// #11 chunk store: chunk locators invalid after a race between write
    /// and flush (concurrency).
    B11LocatorRace,
    /// #12 superblock: buffer pool exhaustion deadlocks threads waiting for
    /// a superblock update (concurrency).
    B12SuperblockDeadlock,
    /// #13 API: race between control-plane listing and removal of shards
    /// (concurrency).
    B13ListRemoveRace,
    /// #14 index: race between reclamation and LSM compaction loses recent
    /// index entries (concurrency; the worked example of §6).
    B14CompactionReclaimRace,
    /// #15 chunk store reference model: re-used chunk locators that other
    /// code assumed unique (concurrency; a model bug).
    B15ModelLocatorReuse,
    /// #16 API: race between control-plane bulk create and bulk remove
    /// (concurrency).
    B16BulkOpsRace,
}

impl BugId {
    /// All sixteen issues, in Fig. 5 order.
    pub const ALL: [BugId; 16] = [
        BugId::B1ReclamationOffByOne,
        BugId::B2CacheNotDrained,
        BugId::B3MetadataShutdownFlush,
        BugId::B4DiskRemovalLosesShards,
        BugId::B5ReclamationTransientError,
        BugId::B6OwnershipDependency,
        BugId::B7SoftHardPointerMismatch,
        BugId::B8MissingPointerDependency,
        BugId::B9ModelCrashReclamation,
        BugId::B10UuidCollision,
        BugId::B11LocatorRace,
        BugId::B12SuperblockDeadlock,
        BugId::B13ListRemoveRace,
        BugId::B14CompactionReclaimRace,
        BugId::B15ModelLocatorReuse,
        BugId::B16BulkOpsRace,
    ];

    /// The Fig. 5 row number (1-based).
    pub fn number(self) -> u8 {
        BugId::ALL.iter().position(|b| *b == self).expect("in ALL") as u8 + 1
    }

    /// The component column of Fig. 5.
    pub fn component(self) -> &'static str {
        use BugId::*;
        match self {
            B1ReclamationOffByOne | B5ReclamationTransientError | B9ModelCrashReclamation
            | B10UuidCollision | B11LocatorRace | B15ModelLocatorReuse => "Chunk store",
            B2CacheNotDrained | B8MissingPointerDependency => "Buffer cache",
            B3MetadataShutdownFlush | B14CompactionReclaimRace => "Index",
            B4DiskRemovalLosesShards | B13ListRemoveRace | B16BulkOpsRace => "API",
            B6OwnershipDependency | B7SoftHardPointerMismatch | B12SuperblockDeadlock => {
                "Superblock"
            }
        }
    }

    /// The top-level property the issue violates (Fig. 5 section headers).
    pub fn property(self) -> Property {
        use BugId::*;
        match self {
            B1ReclamationOffByOne | B2CacheNotDrained | B3MetadataShutdownFlush
            | B4DiskRemovalLosesShards | B5ReclamationTransientError => {
                Property::FunctionalCorrectness
            }
            B6OwnershipDependency | B7SoftHardPointerMismatch | B8MissingPointerDependency
            | B9ModelCrashReclamation | B10UuidCollision => Property::CrashConsistency,
            B11LocatorRace | B12SuperblockDeadlock | B13ListRemoveRace
            | B14CompactionReclaimRace | B15ModelLocatorReuse | B16BulkOpsRace => {
                Property::Concurrency
            }
        }
    }

    /// One-line description matching the Fig. 5 row.
    pub fn description(self) -> &'static str {
        use BugId::*;
        match self {
            B1ReclamationOffByOne => {
                "Off-by-one error in reclamation for chunks of size close to PAGE_SIZE"
            }
            B2CacheNotDrained => "Cache was not correctly drained after resetting an extent",
            B3MetadataShutdownFlush => {
                "Metadata was not flushed correctly during shutdown if an extent was reset"
            }
            B4DiskRemovalLosesShards => {
                "Shards could be lost if a disk was removed from service and then later returned"
            }
            B5ReclamationTransientError => {
                "Reclamation could forget chunks after a transient read IO error"
            }
            B6OwnershipDependency => {
                "Superblock Dependency for extent ownership was incorrect after a reboot"
            }
            B7SoftHardPointerMismatch => {
                "Mismatch between soft and hard write pointers in a crash after an extent reset"
            }
            B8MissingPointerDependency => {
                "Writes did not include a dependency on the soft write pointer update"
            }
            B9ModelCrashReclamation => {
                "Reference model was not updated correctly after a crash during reclamation"
            }
            B10UuidCollision => "Reclamation could forget chunks after a crash and UUID collision",
            B11LocatorRace => {
                "Chunk locators could become invalid after a race between write and flush"
            }
            B12SuperblockDeadlock => {
                "Buffer pool exhaustion could cause threads waiting for a superblock update to deadlock"
            }
            B13ListRemoveRace => {
                "Race between control plane operations for listing and removal of shards"
            }
            B14CompactionReclaimRace => {
                "Race between reclamation and LSM compaction could lose recent index entries"
            }
            B15ModelLocatorReuse => {
                "Reference model could re-use chunk locators, which other code assumed were unique"
            }
            B16BulkOpsRace => {
                "Race between control plane bulk operations for creating and removing shards"
            }
        }
    }
}

impl fmt::Display for BugId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {}", self.number(), self.component())
    }
}

/// The top-level correctness property a bug violates (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// Sequential crash-free equivalence with the reference model (§4).
    FunctionalCorrectness,
    /// Persistence and forward progress across crashes (§5).
    CrashConsistency,
    /// Linearizability / absence of races and deadlocks (§6).
    Concurrency,
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::FunctionalCorrectness => write!(f, "Functional Correctness"),
            Property::CrashConsistency => write!(f, "Crash Consistency"),
            Property::Concurrency => write!(f, "Concurrency"),
        }
    }
}

/// Runtime fault configuration threaded through every component constructor.
///
/// Cloning is cheap (the seeded set is shared). The default configuration
/// seeds no bugs, which means every component runs its fixed, production
/// behaviour.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    seeded: Arc<[BugId]>,
}

impl FaultConfig {
    /// Configuration with no seeded faults (the fixed system).
    pub fn none() -> Self {
        Self::default()
    }

    /// Configuration that re-introduces a single historical bug.
    pub fn seed(bug: BugId) -> Self {
        Self { seeded: Arc::new([bug]) }
    }

    /// Configuration that re-introduces several historical bugs at once.
    pub fn seed_all(bugs: &[BugId]) -> Self {
        Self { seeded: bugs.to_vec().into() }
    }

    /// Returns true if `bug` is seeded, i.e. the component should take the
    /// historical buggy path instead of the fixed one.
    #[inline]
    pub fn is(&self, bug: BugId) -> bool {
        self.seeded.contains(&bug)
    }

    /// The set of seeded bugs.
    pub fn seeded(&self) -> &[BugId] {
        &self.seeded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bugs_numbered_in_order() {
        for (i, bug) in BugId::ALL.iter().enumerate() {
            assert_eq!(bug.number() as usize, i + 1);
        }
    }

    #[test]
    fn property_partition_matches_fig5() {
        let count = |p: Property| BugId::ALL.iter().filter(|b| b.property() == p).count();
        assert_eq!(count(Property::FunctionalCorrectness), 5);
        assert_eq!(count(Property::CrashConsistency), 5);
        assert_eq!(count(Property::Concurrency), 6);
    }

    #[test]
    fn default_config_seeds_nothing() {
        let cfg = FaultConfig::none();
        for bug in BugId::ALL {
            assert!(!cfg.is(bug));
        }
    }

    #[test]
    fn seeded_config_activates_only_its_bug() {
        let cfg = FaultConfig::seed(BugId::B10UuidCollision);
        assert!(cfg.is(BugId::B10UuidCollision));
        assert!(!cfg.is(BugId::B1ReclamationOffByOne));
    }

    #[test]
    fn seed_all_activates_every_listed_bug() {
        let cfg = FaultConfig::seed_all(&[BugId::B1ReclamationOffByOne, BugId::B2CacheNotDrained]);
        assert!(cfg.is(BugId::B1ReclamationOffByOne));
        assert!(cfg.is(BugId::B2CacheNotDrained));
        assert!(!cfg.is(BugId::B3MetadataShutdownFlush));
    }

    #[test]
    fn descriptions_are_nonempty_and_components_known() {
        for bug in BugId::ALL {
            assert!(!bug.description().is_empty());
            assert!(matches!(
                bug.component(),
                "Chunk store" | "Buffer cache" | "Index" | "API" | "Superblock"
            ));
        }
    }

    #[test]
    fn display_includes_number() {
        assert_eq!(format!("{}", BugId::B10UuidCollision), "#10 Chunk store");
    }
}
