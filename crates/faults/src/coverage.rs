//! Lightweight code-coverage probes (§4.2 of the paper).
//!
//! Property-based testing can silently lose coverage as a system evolves: a
//! new cache, a new API argument, or an overly large default configuration
//! can make whole code paths unreachable from the existing operation
//! alphabet (the paper's §8.3 recounts exactly such a miss). To monitor
//! this, components mark interesting code paths with [`hit`], and test
//! harnesses snapshot the global registry with [`snapshot`] to assert that
//! the paths they intend to exercise were actually reached.
//!
//! Probes are keyed by a static string such as `"cache.miss"` or
//! `"chunk.reclaim.evacuate"`. Recording is disabled by default so that the
//! probes cost a single relaxed atomic load in production-shaped code; call
//! [`enable`] from a harness to start counting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<&'static str, u64>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Enables probe recording process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disables probe recording process-wide.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Records a hit of the named probe if recording is enabled.
#[inline]
pub fn hit(name: &'static str) {
    if ENABLED.load(Ordering::Relaxed) {
        let mut map = registry().lock().expect("coverage registry poisoned");
        *map.entry(name).or_insert(0) += 1;
    }
}

/// Returns the hit count of a single probe.
pub fn count(name: &'static str) -> u64 {
    registry().lock().expect("coverage registry poisoned").get(name).copied().unwrap_or(0)
}

/// Snapshots all probe counts, sorted by probe name.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    let map = registry().lock().expect("coverage registry poisoned");
    let mut v: Vec<_> = map.iter().map(|(k, v)| (*k, *v)).collect();
    v.sort_unstable();
    v
}

/// Clears all recorded counts (does not change the enabled flag).
pub fn reset() {
    registry().lock().expect("coverage registry poisoned").clear();
}

/// Simulator schedule coverage: which fault kinds, operation kinds, and
/// delivery perturbations the executed schedules actually exercised.
///
/// The deterministic simulator hits `sim.*` probes as it dispatches
/// events — `sim.fault.*` when a disk fault arms, `sim.op.*` when a world
/// applies/delivers an operation, and `sim.perturb.*` for schedule
/// perturbations (ticks, crash-restarts, message drops and delays). A
/// swarm run with zero coverage in one of these groups is sweeping a
/// schedule space it never actually reaches (the paper's §8.3 coverage
/// miss, recast for schedules).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleCoverage {
    /// `sim.fault.*` probes: disk fault kinds armed.
    pub fault_kinds: Vec<(&'static str, u64)>,
    /// `sim.op.*` probes: operation kinds applied or delivered.
    pub op_kinds: Vec<(&'static str, u64)>,
    /// `sim.perturb.*` probes: delivery/timing perturbations exercised.
    pub perturbations: Vec<(&'static str, u64)>,
}

impl ScheduleCoverage {
    /// True when every group has at least one probe with a nonzero count.
    pub fn all_groups_covered(&self) -> bool {
        let nonzero = |v: &[(&'static str, u64)]| v.iter().any(|(_, n)| *n > 0);
        nonzero(&self.fault_kinds) && nonzero(&self.op_kinds) && nonzero(&self.perturbations)
    }

    /// Total hits across all `sim.*` probes.
    pub fn total_hits(&self) -> u64 {
        [&self.fault_kinds, &self.op_kinds, &self.perturbations]
            .into_iter()
            .flatten()
            .map(|(_, n)| n)
            .sum()
    }

    /// Renders a one-line-per-probe report, grouped, for logs and test
    /// failure messages.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, group) in [
            ("fault kinds", &self.fault_kinds),
            ("op kinds", &self.op_kinds),
            ("perturbations", &self.perturbations),
        ] {
            out.push_str(title);
            out.push_str(":\n");
            if group.is_empty() {
                out.push_str("  (none)\n");
            }
            for (name, n) in group {
                out.push_str(&format!("  {name}: {n}\n"));
            }
        }
        out
    }
}

/// Reports simulator schedule coverage from the current probe counts,
/// grouped by the `sim.*` prefix families.
pub fn schedule_coverage() -> ScheduleCoverage {
    let mut cov = ScheduleCoverage::default();
    for (name, n) in snapshot() {
        if let Some(_rest) = name.strip_prefix("sim.fault.") {
            cov.fault_kinds.push((name, n));
        } else if let Some(_rest) = name.strip_prefix("sim.op.") {
            cov.op_kinds.push((name, n));
        } else if let Some(_rest) = name.strip_prefix("sim.perturb.") {
            cov.perturbations.push((name, n));
        }
    }
    cov
}

/// RAII guard that enables recording on construction and disables it (and
/// clears counts) when dropped. Useful in tests.
#[derive(Debug)]
pub struct Recording(());

impl Recording {
    /// Starts a fresh recording session.
    pub fn start() -> Self {
        reset();
        enable();
        Recording(())
    }
}

impl Drop for Recording {
    fn drop(&mut self) {
        disable();
        reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: coverage state is process-global, so these tests serialize on a
    // local mutex to avoid interfering with each other under the parallel
    // test runner.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_probes_do_not_record() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        disable();
        hit("coverage.test.disabled");
        assert_eq!(count("coverage.test.disabled"), 0);
    }

    #[test]
    fn enabled_probes_count_hits() {
        let _g = TEST_LOCK.lock().unwrap();
        let _rec = Recording::start();
        hit("coverage.test.enabled");
        hit("coverage.test.enabled");
        assert_eq!(count("coverage.test.enabled"), 2);
    }

    #[test]
    fn snapshot_is_sorted() {
        let _g = TEST_LOCK.lock().unwrap();
        let _rec = Recording::start();
        hit("coverage.test.b");
        hit("coverage.test.a");
        let snap = snapshot();
        let names: Vec<_> = snap.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn schedule_coverage_groups_sim_probes() {
        let _g = TEST_LOCK.lock().unwrap();
        let _rec = Recording::start();
        hit("sim.fault.transient");
        hit("sim.op.put");
        hit("sim.op.get");
        hit("sim.perturb.drop");
        hit("unrelated.probe");
        let cov = schedule_coverage();
        assert_eq!(cov.fault_kinds, vec![("sim.fault.transient", 1)]);
        assert_eq!(cov.op_kinds, vec![("sim.op.get", 1), ("sim.op.put", 1)]);
        assert_eq!(cov.perturbations, vec![("sim.perturb.drop", 1)]);
        assert!(cov.all_groups_covered());
        assert_eq!(cov.total_hits(), 4);
        assert!(cov.render().contains("sim.op.put: 1"));
    }

    #[test]
    fn schedule_coverage_reports_missing_groups() {
        let _g = TEST_LOCK.lock().unwrap();
        let _rec = Recording::start();
        hit("sim.op.put");
        let cov = schedule_coverage();
        assert!(!cov.all_groups_covered());
        assert!(cov.render().contains("(none)"));
    }

    #[test]
    fn recording_guard_resets_on_drop() {
        let _g = TEST_LOCK.lock().unwrap();
        {
            let _rec = Recording::start();
            hit("coverage.test.guard");
            assert_eq!(count("coverage.test.guard"), 1);
        }
        assert_eq!(count("coverage.test.guard"), 0);
    }
}
