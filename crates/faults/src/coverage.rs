//! Lightweight code-coverage probes (§4.2 of the paper).
//!
//! Property-based testing can silently lose coverage as a system evolves: a
//! new cache, a new API argument, or an overly large default configuration
//! can make whole code paths unreachable from the existing operation
//! alphabet (the paper's §8.3 recounts exactly such a miss). To monitor
//! this, components mark interesting code paths with [`hit`], and test
//! harnesses snapshot the global registry with [`snapshot`] to assert that
//! the paths they intend to exercise were actually reached.
//!
//! Probes are keyed by a static string such as `"cache.miss"` or
//! `"chunk.reclaim.evacuate"`. Recording is disabled by default so that the
//! probes cost a single relaxed atomic load in production-shaped code; call
//! [`enable`] from a harness to start counting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<&'static str, u64>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Enables probe recording process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disables probe recording process-wide.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Records a hit of the named probe if recording is enabled.
#[inline]
pub fn hit(name: &'static str) {
    if ENABLED.load(Ordering::Relaxed) {
        let mut map = registry().lock().expect("coverage registry poisoned");
        *map.entry(name).or_insert(0) += 1;
    }
}

/// Returns the hit count of a single probe.
pub fn count(name: &'static str) -> u64 {
    registry().lock().expect("coverage registry poisoned").get(name).copied().unwrap_or(0)
}

/// Snapshots all probe counts, sorted by probe name.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    let map = registry().lock().expect("coverage registry poisoned");
    let mut v: Vec<_> = map.iter().map(|(k, v)| (*k, *v)).collect();
    v.sort_unstable();
    v
}

/// Clears all recorded counts (does not change the enabled flag).
pub fn reset() {
    registry().lock().expect("coverage registry poisoned").clear();
}

/// RAII guard that enables recording on construction and disables it (and
/// clears counts) when dropped. Useful in tests.
#[derive(Debug)]
pub struct Recording(());

impl Recording {
    /// Starts a fresh recording session.
    pub fn start() -> Self {
        reset();
        enable();
        Recording(())
    }
}

impl Drop for Recording {
    fn drop(&mut self) {
        disable();
        reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: coverage state is process-global, so these tests serialize on a
    // local mutex to avoid interfering with each other under the parallel
    // test runner.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_probes_do_not_record() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        disable();
        hit("coverage.test.disabled");
        assert_eq!(count("coverage.test.disabled"), 0);
    }

    #[test]
    fn enabled_probes_count_hits() {
        let _g = TEST_LOCK.lock().unwrap();
        let _rec = Recording::start();
        hit("coverage.test.enabled");
        hit("coverage.test.enabled");
        assert_eq!(count("coverage.test.enabled"), 2);
    }

    #[test]
    fn snapshot_is_sorted() {
        let _g = TEST_LOCK.lock().unwrap();
        let _rec = Recording::start();
        hit("coverage.test.b");
        hit("coverage.test.a");
        let snap = snapshot();
        let names: Vec<_> = snap.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn recording_guard_resets_on_drop() {
        let _g = TEST_LOCK.lock().unwrap();
        {
            let _rec = Recording::start();
            hit("coverage.test.guard");
            assert_eq!(count("coverage.test.guard"), 1);
        }
        assert_eq!(count("coverage.test.guard"), 0);
    }
}
