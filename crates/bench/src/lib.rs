//! Shared helpers for the figure/table regeneration binaries.

/// Prints a fixed-width table row.
pub fn row(cells: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:<w$}  ", w = *w));
    }
    println!("{}", line.trim_end());
}

/// Prints a rule matching the given column widths.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

/// Formats a `Duration` compactly.
pub fn fmt_duration(d: std::time::Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0}µs", d.as_secs_f64() * 1e6)
    }
}
