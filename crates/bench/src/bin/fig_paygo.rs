//! E4 — the "pay-as-you-go" curve (§1, §4.2): detection probability grows
//! with the number of random sequences, and §4.2's argument biasing
//! shifts the whole curve left (more bugs per sequence).
//!
//! Method: for each of `TRIALS` independent seeds, run the checker until
//! it finds the seeded bug (or the cap) and record the attempt count;
//! P(detect within N) is then the fraction of seeds whose count is ≤ N.
//!
//! ```sh
//! cargo run --release -p shardstore-bench --bin fig_paygo
//! ```

use shardstore_bench::{row, rule};
use shardstore_faults::{BugId, FaultConfig};
use shardstore_harness::conformance::{run_conformance, ConformanceConfig};
use shardstore_harness::crash::run_crash_consistency;
use shardstore_harness::detect::sample_sequences;
use shardstore_harness::gen::{kv_ops, GenConfig};

const TRIALS: u64 = 12;
const CAP: u64 = 30_000;
const CHECKPOINTS: [u64; 6] = [100, 300, 1_000, 3_000, 10_000, 30_000];

fn attempts_to_detect(bug: BugId, gen_cfg: GenConfig, seed: u64, crash_runner: bool) -> u64 {
    let cfg = ConformanceConfig::with_faults(FaultConfig::seed(bug));
    for (i, ops) in sample_sequences(kv_ops(gen_cfg), seed, CAP).enumerate() {
        let failed = if crash_runner {
            run_crash_consistency(&ops, &cfg).is_err()
        } else {
            run_conformance(&ops, &cfg).is_err()
        };
        if failed {
            return i as u64 + 1;
        }
    }
    CAP + 1
}

fn curve(bug: BugId, gen_cfg: GenConfig, crash_runner: bool) -> Vec<f64> {
    let counts: Vec<u64> = (0..TRIALS)
        .map(|t| attempts_to_detect(bug, gen_cfg, 0xBEEF + t * 7919, crash_runner))
        .collect();
    CHECKPOINTS
        .iter()
        .map(|n| counts.iter().filter(|c| **c <= *n).count() as f64 / TRIALS as f64)
        .collect()
}

fn main() {
    println!("Pay-as-you-go: P(bug detected within N sequences), {TRIALS} trials per point\n");
    let mut widths = vec![34usize];
    widths.extend(CHECKPOINTS.iter().map(|_| 8usize));
    let mut header: Vec<String> = vec!["Configuration".into()];
    header.extend(CHECKPOINTS.iter().map(|n| format!("N={n}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    row(&header_refs, &widths);
    rule(&widths);

    let cases: [(&str, BugId, GenConfig, bool); 4] = [
        ("#1 off-by-one, biased", BugId::B1ReclamationOffByOne, GenConfig::conformance(), false),
        (
            "#1 off-by-one, unbiased",
            BugId::B1ReclamationOffByOne,
            GenConfig::conformance().unbiased(),
            false,
        ),
        ("#7 pointer mismatch, biased", BugId::B7SoftHardPointerMismatch, GenConfig::crash(), true),
        (
            "#7 pointer mismatch, unbiased",
            BugId::B7SoftHardPointerMismatch,
            GenConfig::crash().unbiased(),
            true,
        ),
    ];
    for (label, bug, gen_cfg, crash_runner) in cases {
        let probabilities = curve(bug, gen_cfg, crash_runner);
        let mut cells: Vec<String> = vec![label.into()];
        cells.extend(probabilities.iter().map(|p| format!("{:.2}", p)));
        let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
        row(&refs, &widths);
    }
    println!("\nExpected shape: probabilities increase with N (pay-as-you-go), and the");
    println!("biased generator dominates the unbiased one at every N (§4.2). The gap is");
    println!("largest for issue #7, whose trigger needs both a reclamation-heavy state");
    println!("and frame-boundary sizes — the paper's argument for corner-case biasing.");
}
