//! E5 — coarse vs block-level crash states (§5 "Block-level crash
//! states"). The paper implemented an exhaustive block-level variant of
//! `DirtyReboot`, found that it "has not found additional bugs and is
//! dramatically slower", and kept the coarse sampling as the default.
//!
//! This binary reproduces that comparison on the issue #8 scenario (a
//! missing soft-write-pointer dependency): the same workload prefix is
//! crashed either with randomly sampled page-survival masks (coarse) or
//! with every one of the 2^p masks (exhaustive block-level), and both the
//! time per crash state and the time-to-detection are reported.
//!
//! ```sh
//! cargo run --release -p shardstore-bench --bin fig_crashgran
//! ```

use shardstore_bench::{fmt_duration, row, rule};
use shardstore_faults::{BugId, FaultConfig};
use shardstore_harness::conformance::ConformanceConfig;
use shardstore_harness::crash::run_crash_consistency;
use shardstore_harness::ops::{KeyRef, KvOp, RebootType, ValueSpec};

/// The workload prefix: a put whose index entry gets flushed, IO issued
/// into the disk cache, then the crash under test.
fn sequence(keep_mask: u64) -> Vec<KvOp> {
    vec![
        KvOp::Put(KeyRef::Literal(1), ValueSpec::Small(40)),
        KvOp::IndexFlush,
        // Pump the data writes to durability, one dependency level per
        // round (chunk → SSTable → metadata); the superblock update (the
        // write the buggy dependency omits) is the only thing left
        // queued, so its survival is decided by the crash mask below.
        KvOp::Pump(4),
        KvOp::Pump(4),
        KvOp::Pump(4),
        KvOp::DirtyReboot(RebootType { flush_index: false, issue_ios: 8, keep_mask }),
        KvOp::Get(KeyRef::Literal(1)),
    ]
}

fn runs_to_detection(masks: impl Iterator<Item = u64>, cfg: &ConformanceConfig) -> (u64, bool) {
    let mut states = 0;
    for mask in masks {
        states += 1;
        if run_crash_consistency(&sequence(mask), cfg).is_err() {
            return (states, true);
        }
    }
    (states, false)
}

fn main() {
    let cfg = ConformanceConfig::with_faults(FaultConfig::seed(BugId::B8MissingPointerDependency));
    // The prefix populates about 6-10 volatile pages at the crash point;
    // exhaustive block-level enumeration covers every subset of the first
    // `P` pages.
    const P: u32 = 12;

    println!("§5 — coarse sampled crash states vs exhaustive block-level enumeration");
    println!("(issue #8 seeded; every crash state replays the workload prefix)\n");
    let widths = [26, 16, 14, 14, 12];
    row(&["Mode", "Crash states", "Detected", "Total time", "Per state"], &widths);
    rule(&widths);

    // Coarse: random masks, as the default DirtyReboot generator samples.
    let start = std::time::Instant::now();
    let mut rng_state = 0x1234_5678_9ABC_DEF0u64;
    let coarse_masks = std::iter::repeat_with(move || {
        // xorshift64 for deterministic mask sampling.
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    })
    .take(1 << P);
    let (states, detected) = runs_to_detection(coarse_masks, &cfg);
    let elapsed = start.elapsed();
    row(
        &[
            "coarse (random masks)",
            &states.to_string(),
            if detected { "yes" } else { "no" },
            &fmt_duration(elapsed),
            &fmt_duration(elapsed / states.max(1) as u32),
        ],
        &widths,
    );

    // Exhaustive block-level: every subset of the first P pages, in order.
    let start = std::time::Instant::now();
    let (states, detected) = runs_to_detection(0..(1u64 << P), &cfg);
    let elapsed = start.elapsed();
    row(
        &[
            "block-level (exhaustive)",
            &states.to_string(),
            if detected { "yes" } else { "no" },
            &fmt_duration(elapsed),
            &fmt_duration(elapsed / states.max(1) as u32),
        ],
        &widths,
    );

    // And the worst case for exhaustive enumeration: the fixed system,
    // where the full 2^P space must be swept to conclude "no bug".
    let fixed = ConformanceConfig::default();
    let start = std::time::Instant::now();
    let (states, detected) = runs_to_detection(0..(1u64 << P), &fixed);
    let elapsed = start.elapsed();
    row(
        &[
            "block-level, fixed code",
            &states.to_string(),
            if detected { "yes (BUG)" } else { "no" },
            &fmt_duration(elapsed),
            &fmt_duration(elapsed / states.max(1) as u32),
        ],
        &widths,
    );
    assert!(!detected, "the fixed system must pass every crash state");

    println!("\nExpected shape: both modes find the seeded bug; coarse sampling finds it");
    println!("after a handful of states, while proving absence exhaustively costs the");
    println!("full 2^{P} sweep — the paper's \"dramatically slower\" with \"no additional");
    println!("bugs\", which is why coarse states are the default.");
}
