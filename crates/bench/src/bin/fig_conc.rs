//! E6 — the soundness–scalability trade-off of §6: exhaustive checking
//! (Loom's role, our bounded DFS) explodes with harness size, while
//! randomized schedulers (Shuttle's role: random walk and PCT) keep
//! finding bugs in large harnesses.
//!
//! Two measurements:
//! 1. schedule-space growth: DFS-explored interleavings of a tiny lock
//!    harness as the number of tasks grows;
//! 2. time/iterations to find each seeded concurrency bug per scheduler.
//!
//! ```sh
//! cargo run --release -p shardstore-bench --bin fig_conc
//! ```

use std::sync::Arc;

use shardstore_bench::{fmt_duration, row, rule};
use shardstore_conc::sync::Mutex;
use shardstore_conc::{check, thread, CheckOptions};
use shardstore_faults::{BugId, FaultConfig};
use shardstore_harness::concurrent::{
    fig4_index_harness, list_remove_harness, put_reclaim_harness, superblock_pool_harness,
};

fn dfs_space(tasks: usize) -> (usize, bool, std::time::Duration) {
    let start = std::time::Instant::now();
    let result = check(CheckOptions::dfs(2_000_000).with_max_steps(1_000_000), move || {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..tasks)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    *counter.lock() += 1;
                    *counter.lock() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2 * tasks as u32);
    });
    let report = result.expect("lock harness is correct");
    (report.iterations, report.exhausted, start.elapsed())
}

fn main() {
    println!("§6 — soundness vs scalability\n");
    println!("(a) Exhaustive DFS: interleavings of N tasks, two locked increments each");
    let widths = [8, 16, 12, 12];
    row(&["Tasks", "Interleavings", "Exhausted", "Time"], &widths);
    rule(&widths);
    for tasks in [1, 2, 3] {
        let (iterations, exhausted, elapsed) = dfs_space(tasks);
        row(
            &[
                &tasks.to_string(),
                &iterations.to_string(),
                if exhausted { "yes" } else { "capped" },
                &fmt_duration(elapsed),
            ],
            &widths,
        );
    }
    println!("(the growth is factorial; a ShardStore end-to-end harness has 10^3+ steps,");
    println!(" which is why the paper uses Loom only for small correctness-critical code)\n");

    println!("(b) Time-to-bug per scheduler on the seeded Fig. 5 concurrency issues");
    let widths = [8, 14, 14, 14];
    row(&["Issue", "random", "PCT(d=3)", "round-robin"], &widths);
    rule(&widths);
    type Harness = fn(
        FaultConfig,
        CheckOptions,
    )
        -> Result<shardstore_conc::CheckReport, shardstore_conc::CheckError>;
    let cases: [(&str, BugId, Harness); 4] = [
        ("#11", BugId::B11LocatorRace, put_reclaim_harness),
        ("#12", BugId::B12SuperblockDeadlock, superblock_pool_harness),
        ("#13", BugId::B13ListRemoveRace, list_remove_harness),
        ("#14", BugId::B14CompactionReclaimRace, fig4_index_harness),
    ];
    for (label, bug, harness) in cases {
        let mut cells: Vec<String> = vec![label.into()];
        for scheduler in ["random", "pct", "rr"] {
            let options = match scheduler {
                "random" => CheckOptions::random(0xC0FFEE ^ bug.number() as u64, 20_000),
                "pct" => CheckOptions::pct(0xC0FFEE ^ bug.number() as u64, 3, 20_000),
                _ => CheckOptions::round_robin(),
            };
            let options = CheckOptions { iterations: options.iterations.max(1), ..options };
            match harness(FaultConfig::seed(bug), options) {
                Ok(_) => cells.push("not found".into()),
                Err(e) => {
                    let iteration = match e {
                        shardstore_conc::CheckError::Failure { iteration, .. }
                        | shardstore_conc::CheckError::Deadlock { iteration, .. }
                        | shardstore_conc::CheckError::StepLimit { iteration, .. } => iteration,
                    };
                    cells.push(format!("iter {}", iteration + 1));
                }
            }
        }
        let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
        row(&refs, &widths);
    }
    println!("\nExpected shape: the deterministic round-robin baseline misses most bugs");
    println!("(one fixed interleaving); the random walk finds shallow races; PCT also");
    println!("finds the deep issue #14 window, mirroring why Shuttle implements it.");
}
