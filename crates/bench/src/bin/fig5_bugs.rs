//! E1 — regenerates Fig. 5 of the paper: the sixteen issues prevented
//! from reaching production, re-discovered here from seeded faults by the
//! matching checker.
//!
//! ```sh
//! cargo run --release -p shardstore-bench --bin fig5_bugs
//! ```

use shardstore_bench::{fmt_duration, row, rule};
use shardstore_faults::{BugId, Property};
use shardstore_harness::detect::{detect, DetectBudget};

fn main() {
    let budget = DetectBudget::default();
    println!("Fig. 5 — ShardStore issues prevented from reaching production");
    println!(
        "(each issue seeded back into the implementation and re-discovered; budget: {} sequences / {} schedules per bug)\n",
        budget.max_sequences, budget.conc_iterations
    );
    let widths = [4, 12, 60, 10, 36, 10, 9];
    row(
        &["ID", "Component", "Description", "Detected", "Checker", "Attempts", "Time"],
        &widths,
    );
    rule(&widths);
    let mut section = None;
    let mut all_detected = true;
    for bug in BugId::ALL {
        if section != Some(bug.property()) {
            section = Some(bug.property());
            let header = match bug.property() {
                Property::FunctionalCorrectness => "Functional Correctness",
                Property::CrashConsistency => "Crash Consistency",
                Property::Concurrency => "Concurrency",
            };
            println!("\n  {header}");
        }
        let start = std::time::Instant::now();
        let d = detect(bug, budget);
        all_detected &= d.detected;
        let mut description = bug.description().to_string();
        description.truncate(60);
        row(
            &[
                &format!("#{}", bug.number()),
                bug.component(),
                &description,
                if d.detected { "yes" } else { "NO" },
                d.method,
                &d.attempts.to_string(),
                &fmt_duration(start.elapsed()),
            ],
            &widths,
        );
        if let Some((orig, min)) = d.minimized {
            println!(
                "      minimized: {} ops / {} crashes / {} B written  →  {} ops / {} crashes / {} B",
                orig.ops, orig.crashes, orig.bytes_written, min.ops, min.crashes,
                min.bytes_written
            );
        }
    }
    println!();
    if all_detected {
        println!("all 16 issues detected — Fig. 5 reproduced");
    } else {
        println!("WARNING: some issues were not detected within budget");
        std::process::exit(1);
    }
}
