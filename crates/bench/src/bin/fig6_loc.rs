//! E2 — regenerates Fig. 6 of the paper: lines of code for the
//! implementation and the validation artifacts, side by side with the
//! paper's numbers. The shape to reproduce: reference models are a tiny
//! fraction of the implementation (paper: ~1%), and the validation
//! artifacts together stay far below the 3–10× overhead of full formal
//! verification (paper: ~20% of the implementation).
//!
//! ```sh
//! cargo run --release -p shardstore-bench --bin fig6_loc
//! ```

use std::path::{Path, PathBuf};

use shardstore_bench::{row, rule};

/// Lines in one file, split at the `#[cfg(test)]` marker: everything from
/// the inline test module onward counts as test code.
fn split_file(path: &Path) -> (usize, usize) {
    let Ok(content) = std::fs::read_to_string(path) else { return (0, 0) };
    let mut impl_lines = 0;
    let mut test_lines = 0;
    let mut in_tests = false;
    for line in content.lines() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests {
            test_lines += 1;
        } else {
            impl_lines += 1;
        }
    }
    (impl_lines, test_lines)
}

fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return out };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(rs_files(&path));
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    out.sort();
    out
}

fn count(dir: &Path) -> (usize, usize) {
    rs_files(dir).iter().map(|f| split_file(f)).fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let crate_dir = |name: &str| root.join("crates").join(name).join("src");
    let test_dir = |name: &str| root.join("crates").join(name).join("tests");

    // Implementation: the storage node and its substrates.
    let impl_crates = ["vdisk", "dependency", "superblock", "chunk", "cache", "lsm", "core"];
    let mut impl_lines = 0;
    let mut unit_test_lines = 0;
    for c in &impl_crates {
        let (i, t) = count(&crate_dir(c));
        impl_lines += i;
        unit_test_lines += t;
        let (i2, t2) = count(&test_dir(c));
        unit_test_lines += i2 + t2;
    }
    // faults: BugId registry + coverage probes — implementation-side
    // plumbing for the validation effort.
    let (faults_impl, faults_test) = count(&crate_dir("faults"));
    impl_lines += faults_impl;
    unit_test_lines += faults_test;
    // Workspace-level integration tests and examples.
    let (ti, tt) = count(&root.join("tests"));
    unit_test_lines += ti + tt;

    // Specification: the reference models (the bounded-exhaustive model
    // verifier is tooling — the paper's Prusti experiments — not spec).
    let mut model_impl = 0;
    let mut model_verify = 0;
    for f in rs_files(&crate_dir("model")) {
        let (i, t) = split_file(&f);
        unit_test_lines += t;
        if f.file_name().unwrap() == "verify.rs" {
            model_verify += i;
        } else {
            model_impl += i;
        }
    }

    // Validation artifacts, by property (the paper's three rows).
    let harness_src = crate_dir("harness");
    let mut functional = 0;
    let mut crash = 0;
    let mut concurrency = 0;
    for f in rs_files(&harness_src) {
        let (i, t) = split_file(&f);
        let lines = i + t;
        let name = f.file_name().unwrap().to_string_lossy().to_string();
        match name.as_str() {
            "crash.rs" => crash += lines,
            "concurrent.rs" | "lin.rs" => concurrency += lines,
            _ => functional += lines,
        }
    }
    for f in rs_files(&test_dir("harness")) {
        let (i, t) = split_file(&f);
        let lines = i + t;
        let name = f.file_name().unwrap().to_string_lossy().to_string();
        if name.contains("concurrent") {
            concurrency += lines;
        } else {
            functional += lines;
        }
    }

    // Tooling: the stateless model checker (the paper used Shuttle/Loom as
    // external tools, so this row has no Fig. 6 counterpart) and the bench
    // harness.
    let (conc_impl, conc_test) = count(&crate_dir("conc"));
    let (conc_ti, conc_tt) = count(&test_dir("conc"));
    let checker_lines = conc_impl + conc_test + conc_ti + conc_tt;
    let (bench_impl, bench_test) = count(&root.join("crates/bench"));
    let bench_lines = bench_impl + bench_test;
    let (example_lines, _) = count(&root.join("examples"));

    println!("Fig. 6 — Lines of code (this reproduction vs the paper)\n");
    let widths = [44, 12, 12];
    row(&["Component", "This repo", "Paper"], &widths);
    rule(&widths);
    println!("ShardStore");
    row(&["  Implementation", &impl_lines.to_string(), "44,048"], &widths);
    row(&["  Unit tests & integration tests", &unit_test_lines.to_string(), "19,540"], &widths);
    println!("Specification");
    row(&["  Reference models (§3.2)", &model_impl.to_string(), "450"], &widths);
    println!("Validation");
    row(&["  Functional correctness checks (§4)", &functional.to_string(), "4,860"], &widths);
    row(&["  Crash consistency checks (§5)", &crash.to_string(), "2,661"], &widths);
    row(&["  Concurrency checks (§6)", &concurrency.to_string(), "901"], &widths);
    println!("Tooling (external in the paper)");
    row(&["  Stateless model checker", &checker_lines.to_string(), "(Shuttle/Loom)"], &widths);
    row(&["  Model verifier (§3.2)", &model_verify.to_string(), "(Prusti)"], &widths);
    row(&["  Benchmark harness", &bench_lines.to_string(), "—"], &widths);
    row(&["  Examples", &example_lines.to_string(), "—"], &widths);
    rule(&widths);
    let total = impl_lines
        + unit_test_lines
        + model_impl
        + model_verify
        + functional
        + crash
        + concurrency
        + checker_lines
        + bench_lines
        + example_lines;
    row(&["Total", &total.to_string(), "72,460"], &widths);

    let validation = functional + crash + concurrency;
    println!("\nShape checks (the paper's claims):");
    println!(
        "  reference models = {:.1}% of implementation (paper: ~1%)",
        100.0 * model_impl as f64 / impl_lines as f64
    );
    println!(
        "  models + validation = {:.1}% of implementation (paper: ~20%, vs 300-1000% for full verification)",
        100.0 * (model_impl + validation) as f64 / impl_lines as f64
    );
    println!(
        "  tests = {:.0}% of code base (paper: ~31%)",
        100.0 * unit_test_lines as f64 / total as f64
    );
}
