//! The deployment-gate soak (§1, §4.2): run as many random validation
//! sequences as the budget allows, across every checker, in parallel —
//! the scaled-down version of the paper's "tens of millions of random
//! test sequences before every ShardStore deployment".
//!
//! ```sh
//! cargo run --release -p shardstore-bench --bin soak -- [sequences-per-suite] [threads]
//! ```
//!
//! Defaults: 20,000 sequences per suite across all available cores. The
//! binary exits non-zero on the first divergence, printing the failing
//! seed and sequence index for reproduction.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use shardstore_bench::{fmt_duration, row, rule};
use shardstore_faults::coverage;
use shardstore_harness::conformance::{run_conformance, ConformanceConfig};
use shardstore_harness::crash::run_crash_consistency;
use shardstore_harness::detect::sample_sequences;
use shardstore_harness::gen::{kv_ops, node_ops, GenConfig};
use shardstore_harness::index_conformance::{index_ops, run_index_conformance};
use shardstore_harness::node_conformance::run_node_conformance;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let per_suite: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let threads: usize = args
        .get(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));

    coverage::enable();
    println!("soak: {per_suite} sequences per suite on {threads} thread(s)\n");
    let widths = [24, 14, 12, 14];
    row(&["Suite", "Sequences", "Time", "Seq/s"], &widths);
    rule(&widths);

    type Runner = Box<dyn Fn(u64, u64) -> Result<(), String> + Send + Sync>;
    let suites: Vec<(&str, Runner)> = vec![
        (
            "conformance",
            Box::new(|seed, n| {
                let cfg = ConformanceConfig::default();
                for (i, ops) in sample_sequences(kv_ops(GenConfig::conformance()), seed, n).enumerate() {
                    run_conformance(&ops, &cfg)
                        .map_err(|d| format!("seed {seed} seq {i}: {d}"))?;
                }
                Ok(())
            }),
        ),
        (
            "crash consistency",
            Box::new(|seed, n| {
                let cfg = ConformanceConfig::default();
                for (i, ops) in sample_sequences(kv_ops(GenConfig::crash()), seed, n).enumerate() {
                    run_crash_consistency(&ops, &cfg)
                        .map_err(|d| format!("seed {seed} seq {i}: {d}"))?;
                }
                Ok(())
            }),
        ),
        (
            "failure injection",
            Box::new(|seed, n| {
                let cfg = ConformanceConfig::default();
                for (i, ops) in sample_sequences(kv_ops(GenConfig::full()), seed, n).enumerate() {
                    run_crash_consistency(&ops, &cfg)
                        .map_err(|d| format!("seed {seed} seq {i}: {d}"))?;
                }
                Ok(())
            }),
        ),
        (
            "index conformance",
            Box::new(|seed, n| {
                let faults = shardstore_faults::FaultConfig::none();
                for (i, ops) in sample_sequences(index_ops(true, 40), seed, n).enumerate() {
                    run_index_conformance(&ops, &faults)
                        .map_err(|d| format!("seed {seed} seq {i}: {d}"))?;
                }
                Ok(())
            }),
        ),
        (
            "node conformance",
            Box::new(|seed, n| {
                let cfg = ConformanceConfig::default();
                for (i, ops) in sample_sequences(node_ops(GenConfig::conformance()), seed, n).enumerate() {
                    run_node_conformance(&ops, &cfg, 2)
                        .map_err(|d| format!("seed {seed} seq {i}: {d}"))?;
                }
                Ok(())
            }),
        ),
    ];

    let failed = Arc::new(AtomicBool::new(false));
    let mut grand_total = 0u64;
    let start_all = std::time::Instant::now();
    for (name, runner) in suites {
        let runner = Arc::new(runner);
        let start = std::time::Instant::now();
        let done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let runner = Arc::clone(&runner);
                let done = Arc::clone(&done);
                let failed = Arc::clone(&failed);
                let share = per_suite / threads as u64
                    + if (t as u64) < per_suite % threads as u64 { 1 } else { 0 };
                scope.spawn(move || {
                    let seed = 0xA5EED ^ (t as u64) << 32;
                    match runner(seed, share) {
                        Ok(()) => {
                            done.fetch_add(share, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("\nDIVERGENCE in {name}: {e}");
                            failed.store(true, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        let n = done.load(Ordering::Relaxed);
        grand_total += n;
        row(
            &[
                name,
                &n.to_string(),
                &fmt_duration(elapsed),
                &format!("{:.0}", n as f64 / elapsed.as_secs_f64()),
            ],
            &widths,
        );
        if failed.load(Ordering::Relaxed) {
            std::process::exit(1);
        }
    }
    rule(&widths);
    println!(
        "total: {grand_total} sequences in {} — extrapolates to {:.0}M sequences per night",
        fmt_duration(start_all.elapsed()),
        grand_total as f64 / start_all.elapsed().as_secs_f64() * 8.0 * 3600.0 / 1e6
    );
    println!("\ncoverage highlights:");
    for (name, count) in coverage::snapshot() {
        if count > 0
            && (name.starts_with("crashcheck") || name.contains("reclaim") || name.contains("b"))
        {
            continue;
        }
        let _ = (name, count);
    }
    let mut snapshot = coverage::snapshot();
    snapshot.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (name, count) in snapshot.iter().take(12) {
        println!("  {name}: {count}");
    }
}
