//! E3 — the §4.3 minimization table. The paper's anecdote for issue #9:
//! the first failing sequence had 61 operations (9 crashes, 226 KiB
//! written); the automatically minimized one had 6 operations (1 crash,
//! 2 bytes). This binary reports the same before/after numbers for every
//! property-based-detected issue.
//!
//! ```sh
//! cargo run --release -p shardstore-bench --bin tab_minimization
//! ```

use shardstore_bench::{row, rule};
use shardstore_faults::BugId;
use shardstore_harness::detect::{detect, DetectBudget};

fn main() {
    let budget = DetectBudget::default();
    println!("§4.3 — automated test-case minimization (paper anecdote: 61 ops / 9 crashes / 226 KiB  →  6 ops / 1 crash / 2 B)\n");
    let widths = [6, 26, 26, 10];
    row(&["Issue", "Original (ops/crashes/B)", "Minimized (ops/crashes/B)", "Reduction"], &widths);
    rule(&widths);
    let pbt_bugs = [
        BugId::B1ReclamationOffByOne,
        BugId::B2CacheNotDrained,
        BugId::B3MetadataShutdownFlush,
        BugId::B5ReclamationTransientError,
        BugId::B6OwnershipDependency,
        BugId::B7SoftHardPointerMismatch,
        BugId::B8MissingPointerDependency,
        BugId::B9ModelCrashReclamation,
        BugId::B10UuidCollision,
    ];
    let mut total_orig = 0usize;
    let mut total_min = 0usize;
    for bug in pbt_bugs {
        let d = detect(bug, budget);
        if !d.detected {
            row(&[&format!("#{}", bug.number()), "not detected", "-", "-"], &widths);
            continue;
        }
        let (orig, min) = d.minimized.expect("PBT detections carry sizes");
        total_orig += orig.ops;
        total_min += min.ops;
        row(
            &[
                &format!("#{}", bug.number()),
                &format!("{} / {} / {}", orig.ops, orig.crashes, orig.bytes_written),
                &format!("{} / {} / {}", min.ops, min.crashes, min.bytes_written),
                &format!("{:.1}x", orig.ops as f64 / min.ops.max(1) as f64),
            ],
            &widths,
        );
    }
    rule(&widths);
    println!(
        "mean ops reduction: {:.1}x ({} → {})",
        total_orig as f64 / total_min.max(1) as f64,
        total_orig,
        total_min
    );
}
