//! Swarm-mode simulator driver: a batch of compressed-time seeds through
//! the deterministic whole-system simulator, reporting simulated events
//! per second and auto-minimizing any failing seed.
//!
//! ```sh
//! cargo run --release -p shardstore-bench --bin sim_swarm -- [runs] [base-seed]
//! ```
//!
//! `SHARDSTORE_SEED` overrides the base seed (the CI seed-matrix knob).
//! On success the throughput baseline is written to `BENCH_sim.json`; on
//! failure the minimized `(ops, schedule)` repro is written to
//! `sim_swarm_minimized.txt` (the CI artifact) and the process exits
//! non-zero.

use shardstore_bench::{fmt_duration, row, rule};
use shardstore_faults::coverage;
use shardstore_harness::swarm::{run_swarm, SwarmConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    let base_seed: u64 = std::env::var("SHARDSTORE_SEED")
        .ok()
        .and_then(|s| parse_seed(&s))
        .or_else(|| args.get(2).and_then(|a| parse_seed(a)))
        .unwrap_or(0x5EED);

    coverage::enable();
    println!("sim swarm: {runs} seeds starting at {base_seed:#x}\n");
    let config = SwarmConfig { base_seed, runs, ..SwarmConfig::default() };
    let outcome = run_swarm(&config);

    let widths = [22, 16];
    row(&["Metric", "Value"], &widths);
    rule(&widths);
    let s = &outcome.stats;
    for (name, value) in [
        ("seeds", runs as u64),
        ("events", s.events),
        ("ops applied", s.ops),
        ("deliveries", s.deliveries),
        ("timer ticks", s.ticks),
        ("faults armed", s.faults_armed),
        ("crash-restarts", s.crashes),
    ] {
        row(&[name, &value.to_string()], &widths);
    }
    row(
        &[
            "elapsed",
            &fmt_duration(std::time::Duration::from_secs_f64(outcome.elapsed_secs)),
        ],
        &widths,
    );
    row(&["events/sec", &format!("{:.0}", outcome.events_per_sec())], &widths);

    let cov = coverage::schedule_coverage();
    println!("\nschedule coverage:\n{}", cov.render());
    if !cov.all_groups_covered() {
        eprintln!("warning: a schedule-coverage group is empty — widen the perturbation profile");
    }

    if !outcome.failures.is_empty() {
        let mut report = String::new();
        for f in &outcome.failures {
            report.push_str(&format!(
                "seed {:#x} ({} world): {}\nminimized to {} op(s):\n{}\n\n",
                f.seed, f.world, f.message, f.minimized_ops, f.repro
            ));
        }
        eprintln!("\n{} failing seed(s):\n{report}", outcome.failures.len());
        if let Err(e) = std::fs::write("sim_swarm_minimized.txt", &report) {
            eprintln!("could not write sim_swarm_minimized.txt: {e}");
        } else {
            eprintln!("minimized repro(s) written to sim_swarm_minimized.txt");
        }
        std::process::exit(1);
    }

    let json = format!(
        "[\n  {{\"id\": \"sim_swarm/batch\", \"seeds\": {}, \"base_seed\": {}, \"events\": {}, \
         \"ops\": {}, \"deliveries\": {}, \"ticks\": {}, \"faults_armed\": {}, \"crashes\": {}, \
         \"elapsed_secs\": {:.4}, \"events_per_sec\": {:.1}}}\n]\n",
        runs,
        base_seed,
        s.events,
        s.ops,
        s.deliveries,
        s.ticks,
        s.faults_armed,
        s.crashes,
        outcome.elapsed_secs,
        outcome.events_per_sec(),
    );
    match std::fs::write("BENCH_sim.json", json) {
        Ok(()) => println!("baseline written to BENCH_sim.json"),
        Err(e) => eprintln!("could not write BENCH_sim.json: {e}"),
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
