//! Swarm-mode simulator driver: a batch of compressed-time seeds through
//! the deterministic whole-system simulator, reporting simulated events
//! per second and auto-minimizing any failing seed.
//!
//! ```sh
//! cargo run --release -p shardstore-bench --bin sim_swarm -- [runs] [base-seed]
//! ```
//!
//! `SHARDSTORE_SEED` overrides the base seed (the CI seed-matrix knob).
//! On success the throughput baseline is written to `BENCH_sim.json` and
//! the per-seed observability report (coverage deltas plus
//! logical-latency quantiles per op kind) to `BENCH_sim.metrics.json`;
//! on failure the minimized `(ops, schedule)` repro is written to
//! `sim_swarm_minimized.txt` (the CI artifact) and the process exits
//! non-zero.

use shardstore_bench::{fmt_duration, row, rule};
use shardstore_faults::coverage;
use shardstore_harness::swarm::{run_swarm, SeedReport, SwarmConfig};
use shardstore_obs::json::Json;
use shardstore_obs::metrics::MetricsSnapshot;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    let base_seed: u64 = std::env::var("SHARDSTORE_SEED")
        .ok()
        .and_then(|s| parse_seed(&s))
        .or_else(|| args.get(2).and_then(|a| parse_seed(a)))
        .unwrap_or(0x5EED);

    coverage::enable();
    println!("sim swarm: {runs} seeds starting at {base_seed:#x}\n");
    let config = SwarmConfig { base_seed, runs, ..SwarmConfig::default() };
    let outcome = run_swarm(&config);

    let widths = [22, 16];
    row(&["Metric", "Value"], &widths);
    rule(&widths);
    let s = &outcome.stats;
    for (name, value) in [
        ("seeds", runs as u64),
        ("events", s.events),
        ("ops applied", s.ops),
        ("deliveries", s.deliveries),
        ("timer ticks", s.ticks),
        ("faults armed", s.faults_armed),
        ("crash-restarts", s.crashes),
    ] {
        row(&[name, &value.to_string()], &widths);
    }
    row(
        &[
            "elapsed",
            &fmt_duration(std::time::Duration::from_secs_f64(outcome.elapsed_secs)),
        ],
        &widths,
    );
    row(&["events/sec", &format!("{:.0}", outcome.events_per_sec())], &widths);

    let cov = coverage::schedule_coverage();
    println!("\nschedule coverage:\n{}", cov.render());
    if !cov.all_groups_covered() {
        eprintln!("warning: a schedule-coverage group is empty — widen the perturbation profile");
    }

    if !outcome.failures.is_empty() {
        let mut report = String::new();
        for f in &outcome.failures {
            let truncation = if f.dropped_events > 0 {
                format!(" [{} trace events dropped — timelines incomplete]", f.dropped_events)
            } else {
                String::new()
            };
            report.push_str(&format!(
                "seed {:#x} ({} world){truncation}: {}\nminimized to {} op(s):\n{}\n\n",
                f.seed, f.world, f.message, f.minimized_ops, f.repro
            ));
        }
        eprintln!("\n{} failing seed(s):\n{report}", outcome.failures.len());
        if let Err(e) = std::fs::write("sim_swarm_minimized.txt", &report) {
            eprintln!("could not write sim_swarm_minimized.txt: {e}");
        } else {
            eprintln!("minimized repro(s) written to sim_swarm_minimized.txt");
        }
        std::process::exit(1);
    }

    let json = format!(
        "[\n  {{\"id\": \"sim_swarm/batch\", \"seeds\": {}, \"base_seed\": {}, \"events\": {}, \
         \"ops\": {}, \"deliveries\": {}, \"ticks\": {}, \"faults_armed\": {}, \"crashes\": {}, \
         \"elapsed_secs\": {:.4}, \"events_per_sec\": {:.1}}}\n]\n",
        runs,
        base_seed,
        s.events,
        s.ops,
        s.deliveries,
        s.ticks,
        s.faults_armed,
        s.crashes,
        outcome.elapsed_secs,
        outcome.events_per_sec(),
    );
    match std::fs::write("BENCH_sim.json", json) {
        Ok(()) => println!("baseline written to BENCH_sim.json"),
        Err(e) => eprintln!("could not write BENCH_sim.json: {e}"),
    }

    let metrics_json = metrics_report(base_seed, &outcome.seed_reports).render();
    match std::fs::write("BENCH_sim.metrics.json", metrics_json + "\n") {
        Ok(()) => println!("per-seed metrics written to BENCH_sim.metrics.json"),
        Err(e) => eprintln!("could not write BENCH_sim.metrics.json: {e}"),
    }
}

/// Logical-latency quantiles per op kind from a metrics snapshot: every
/// `latency.<kind>` histogram becomes `{count, p50, p99, p999}`.
fn latency_json(metrics: &MetricsSnapshot) -> Json {
    Json::object(
        metrics
            .histograms
            .iter()
            .filter_map(|(name, h)| {
                let kind = name.strip_prefix("latency.")?;
                Some((
                    kind.to_string(),
                    Json::object(vec![
                        ("count".to_string(), Json::U64(h.count)),
                        ("p50".to_string(), Json::U64(h.p50())),
                        ("p99".to_string(), Json::U64(h.p99())),
                        ("p999".to_string(), Json::U64(h.p999())),
                    ]),
                ))
            })
            .collect(),
    )
}

/// The per-seed observability report: one entry per passing seed
/// (events, coverage deltas, latency quantiles) plus the batch-merged
/// aggregate latency view.
fn metrics_report(base_seed: u64, reports: &[SeedReport]) -> Json {
    let mut aggregate = MetricsSnapshot::default();
    let seeds: Vec<Json> = reports
        .iter()
        .map(|r| {
            aggregate.merge(&r.metrics);
            let coverage: Vec<Json> = r
                .coverage
                .iter()
                .map(|(probe, hits)| {
                    Json::object(vec![
                        ("probe".to_string(), Json::Str(probe.clone())),
                        ("hits".to_string(), Json::U64(*hits)),
                    ])
                })
                .collect();
            Json::object(vec![
                ("seed".to_string(), Json::U64(r.seed)),
                ("world".to_string(), Json::Str(r.world.to_string())),
                ("events".to_string(), Json::U64(r.events)),
                ("ops".to_string(), Json::U64(r.ops)),
                ("latency".to_string(), latency_json(&r.metrics)),
                ("coverage".to_string(), Json::Array(coverage)),
            ])
        })
        .collect();
    Json::object(vec![
        ("version".to_string(), Json::U64(1)),
        ("base_seed".to_string(), Json::U64(base_seed)),
        ("seeds".to_string(), Json::Array(seeds)),
        ("aggregate_latency".to_string(), latency_json(&aggregate)),
    ])
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
