//! Criterion bench for the ordered-read subsystem: point-get scaling of
//! the sharded memtable vs the single-lock baseline, full-catalog and
//! narrow-range scan latency with fence pruning, and the zero-copy vs
//! copy ablation on the hot read path.
//!
//! Emits `BENCH_scan.json` (via `--json`/`CRITERION_JSON`, like the
//! other benches) and a `BENCH_scan.metrics.json` sidecar whose
//! `lsm.scan.tables_pruned` counter is the acceptance evidence that
//! narrow scans skip non-overlapping tables via fences.

use std::sync::Arc;

use criterion::{criterion_group, Criterion, Throughput};
use shardstore_core::{Store, StoreConfig};
use shardstore_faults::FaultConfig;
use shardstore_vdisk::Geometry;

/// xorshift64 — cheap, deterministic, and good enough to shape a skewed
/// key distribution without pulling `rand` into the measured loop.
fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// 80/20 skew over `keys`: most probes hit the hottest fifth of the key
/// space — the shape where a single memtable lock hurts most, since the
/// hot keys all contend while hash sharding still spreads them.
fn skewed_key(rng: &mut u64, keys: u64) -> u128 {
    *rng = xorshift(*rng);
    let r = *rng;
    *rng = xorshift(*rng);
    if !r.is_multiple_of(5) { (*rng % (keys / 5)) as u128 } else { (*rng % keys) as u128 }
}

/// A store whose keys all stay memtable-resident (flush threshold far
/// above the key count), so point gets exercise the memtable locking
/// under test rather than the table read path.
fn memtable_resident_store(shards: usize, keys: u64) -> Store {
    let config = StoreConfig::default()
        .to_builder()
        .flush_threshold(1 << 20)
        .memtable_shards(shards)
        .build()
        .unwrap();
    let store = Store::format(Geometry::default(), config, FaultConfig::none());
    // Benches only measure; the deterministic trace ring would serialize
    // every op on its lock and mask the scaling being measured.
    store.obs().trace().set_enabled(false);
    let payload = vec![0x5Au8; 64];
    for k in 0..keys {
        store.put(k as u128, &payload).unwrap();
    }
    store.pump().unwrap();
    store
}

/// Point-get aggregate throughput at 1/2/4/8 threads, sharded memtable
/// (the default 8 segments) vs the single-lock baseline (1 segment), on
/// the skewed workload. Elements/sec in the report is the aggregate
/// across all threads.
fn bench_point_get_scaling(c: &mut Criterion) {
    const KEYS: u64 = 1024;
    const OPS_PER_THREAD: u64 = 2048;
    let mut group = c.benchmark_group("scan_point_get");
    for (name, shards) in [("single_lock", 1usize), ("sharded", 8)] {
        let store = Arc::new(memtable_resident_store(shards, KEYS));
        for threads in [1u64, 2, 4, 8] {
            group.throughput(Throughput::Elements(threads * OPS_PER_THREAD));
            group.bench_function(format!("{name}_{threads}t"), |b| {
                b.iter(|| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let store = Arc::clone(&store);
                            std::thread::spawn(move || {
                                let mut rng = 0x9E37_79B9 ^ (t + 1);
                                for _ in 0..OPS_PER_THREAD {
                                    let key = skewed_key(&mut rng, KEYS);
                                    std::hint::black_box(store.get_value(key).unwrap());
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                })
            });
        }
    }
    group.finish();
}

/// A 10k-key catalog spread across ~150 sequential-range tables (the
/// default flush threshold seals a table every 64 puts), so range fences
/// are maximally selective for narrow scans.
fn catalog_store() -> Store {
    const KEYS: u128 = 10_000;
    let store = Store::format(Geometry::default(), StoreConfig::default(), FaultConfig::none());
    store.obs().trace().set_enabled(false);
    let payload = vec![0xC4u8; 32];
    for k in 0..KEYS {
        store.put(k, &payload).unwrap();
    }
    store.flush_index().unwrap();
    store.pump().unwrap();
    store
}

/// Full-catalog and narrow-range scan latency. The narrow scan's fences
/// prune every non-overlapping table — asserted on the counter here and
/// recorded in the metrics sidecar.
fn bench_scan_latency(c: &mut Criterion) {
    const KEYS: u128 = 10_000;
    const WINDOW: u128 = 64;
    let store = catalog_store();
    let mut group = c.benchmark_group("scan_range");

    group.throughput(Throughput::Elements(KEYS as u64));
    group.bench_function("full_catalog_10k", |b| {
        b.iter(|| {
            let page = store.scan(0, u128::MAX).unwrap();
            assert_eq!(page.len(), KEYS as usize);
            std::hint::black_box(page);
        })
    });

    group.throughput(Throughput::Elements(WINDOW as u64));
    let pruned_before = store.obs().registry().counter("lsm.scan.tables_pruned").get();
    let mut start = 0u128;
    group.bench_function("narrow_64_of_10k", |b| {
        b.iter(|| {
            start = (start + 997) % (KEYS - WINDOW);
            let page = store.scan(start, start + WINDOW - 1).unwrap();
            assert_eq!(page.len(), WINDOW as usize);
            std::hint::black_box(page);
        })
    });
    let pruned = store.obs().registry().counter("lsm.scan.tables_pruned").get() - pruned_before;
    assert!(pruned > 0, "narrow scans pruned no tables — fences not consulted");
    eprintln!("narrow scans pruned {pruned} table reads via fences");
    group.finish();
}

/// Zero-copy vs copy ablation on warm gets: `get_value` hands back the
/// cache's shared payload segments; `get` is the same path plus one
/// deliberate `to_vec` assembly. The gap is the memcpy the hot path no
/// longer pays.
fn bench_zero_copy_ablation(c: &mut Criterion) {
    const VALUE_LEN: usize = 64 * 1024;
    let store = Store::format(Geometry::default(), StoreConfig::default(), FaultConfig::none());
    store.obs().trace().set_enabled(false);
    store.put(1, &vec![0xEEu8; VALUE_LEN]).unwrap();
    store.pump().unwrap();
    // Warm the cache so both sides measure pure in-memory reads.
    store.get_value(1).unwrap().unwrap();

    let mut group = c.benchmark_group("scan_value_path");
    group.throughput(Throughput::Bytes(VALUE_LEN as u64));
    group.bench_function("get_zero_copy_64k", |b| {
        b.iter(|| std::hint::black_box(store.get_value(1).unwrap().unwrap()))
    });
    group.bench_function("get_copy_64k", |b| {
        b.iter(|| std::hint::black_box(store.get(1).unwrap().unwrap()))
    });
    group.finish();
}

/// Runs the representative scan workload once and writes the metrics
/// snapshot as a JSON sidecar next to the committed `BENCH_scan.json`,
/// with wall-clock scan latency through the bench-only walltime opt-in.
/// The sidecar carries `lsm.scan.tables_pruned` and `lsm.scans` — the
/// fence-pruning acceptance evidence.
fn emit_metrics_sidecar() {
    use shardstore_obs::walltime::{Stopwatch, LATENCY_BOUNDS_US};

    let store = catalog_store();
    let obs = store.obs();
    let full_us = obs.registry().histogram("bench.scan_full_latency_us", LATENCY_BOUNDS_US);
    let narrow_us = obs.registry().histogram("bench.scan_narrow_latency_us", LATENCY_BOUNDS_US);
    for i in 0..16u128 {
        let sw = Stopwatch::start(full_us.clone());
        std::hint::black_box(store.scan(0, u128::MAX).unwrap());
        sw.stop();
        let start = (i * 601) % 9_900;
        let sw = Stopwatch::start(narrow_us.clone());
        std::hint::black_box(store.scan(start, start + 63).unwrap());
        sw.stop();
    }
    let pruned = obs.registry().counter("lsm.scan.tables_pruned").get();
    assert!(pruned > 0, "sidecar workload pruned no tables");

    // Machine-independent contention evidence (the wall-clock scaling
    // numbers depend on the host's core count): the probability that two
    // concurrent skewed point gets contend on the same memtable lock,
    // in ppm. A single lock conflicts always; eight hash shards conflict
    // at Σf² over the empirical shard distribution of the same stream.
    const SAMPLES: u64 = 100_000;
    let mut counts = [0u64; 8];
    let mut rng = 0x9E37_79B9u64;
    for _ in 0..SAMPLES {
        let key = skewed_key(&mut rng, 1024);
        let h = splitmix64(key as u64 ^ (key >> 64) as u64);
        counts[(h % 8) as usize] += 1;
    }
    let collision: f64 =
        counts.iter().map(|&c| (c as f64 / SAMPLES as f64).powi(2)).sum::<f64>();
    obs.registry().gauge("bench.memtable_conflict_ppm_single_lock").set(1_000_000);
    obs.registry()
        .gauge("bench.memtable_conflict_ppm_sharded")
        .set((collision * 1_000_000.0) as i64);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.metrics.json");
    std::fs::write(path, obs.snapshot().to_json()).expect("write metrics sidecar");
    eprintln!(
        "metrics sidecar written to {path} (tables_pruned = {pruned}, \
         sharded conflict probability {:.1}% vs 100% single-lock)",
        collision * 100.0
    );
}

/// The same mix the LSM uses to pick a memtable shard
/// (`shardstore_lsm::filter::splitmix64`, replicated here because it is
/// crate-private): Sebastiano Vigna's splitmix64 finalizer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

criterion_group!(benches, bench_point_get_scaling, bench_scan_latency, bench_zero_copy_ablation);

fn main() {
    benches();
    criterion::finalize();
    emit_metrics_sidecar();
}
