//! Criterion bench for tiered compaction and the v2 block-indexed table
//! format: read amplification (tables consulted and bytes decoded per
//! get) on a deep uncompacted table stack vs the same stack after
//! bounded tiered rounds, scan latency across the same ablation, the
//! block-index decode ablation (one block vs the whole table), and the
//! write-amplification evidence that a tiered round rewrites a bounded
//! run — not the whole store, as the old merge-all did.
//!
//! Emits `BENCH_compaction.json` (via `--json`/`CRITERION_JSON`, like
//! the other benches) and a `BENCH_compaction.metrics.json` sidecar
//! whose counters are the acceptance evidence.

use criterion::{criterion_group, Criterion, Throughput};
use shardstore_core::{Store, StoreConfig};
use shardstore_faults::FaultConfig;
use shardstore_vdisk::Geometry;

/// xorshift64 — deterministic key stream without pulling `rand` into
/// the measured loop.
fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

const KEYS: u128 = 256;
const GENS: u128 = 16;
const PAYLOAD: usize = 64;

/// A store with `GENS` tables, key `k` living in table `k % GENS`: every
/// table's fence range spans nearly the whole key space, so a point get
/// must walk the stack newest-first until it reaches the key's table —
/// the read-amplification shape tiered compaction exists to flatten.
///
/// Bloom filters are off and the decoded-block cache disabled: the
/// filters probabilistically hide the per-table cost and the cache hides
/// the decode cost, so the counters here measure the deterministic
/// amplification itself (production config layers both back on top).
/// The automatic compaction trigger is parked high — the explicit
/// rounds below are the compactions under measurement.
fn striped_store(block_size: usize) -> Store {
    let config = StoreConfig::default()
        .to_builder()
        .lsm_filters(false)
        .decoded_cache_tables(0)
        .compaction_trigger_tables(1 << 10)
        .block_size(block_size)
        .build()
        .unwrap();
    let store = Store::format(Geometry::default(), config, FaultConfig::none());
    store.obs().trace().set_enabled(false);
    for g in 0..GENS {
        let mut k = g;
        while k < KEYS {
            store.put(k, &vec![(k % 251) as u8; PAYLOAD]).unwrap();
            k += GENS;
        }
        store.flush_index().unwrap();
    }
    store.pump().unwrap();
    assert_eq!(store.index().table_count(), GENS as usize, "setup built the wrong stack");
    store
}

/// Runs `rounds` bounded tiered compactions.
fn compact_rounds(store: &Store, rounds: usize) {
    for _ in 0..rounds {
        store.compact_index().unwrap();
    }
    store.pump().unwrap();
}

/// Per-get read-amplification counters over a deterministic key stream:
/// (tables consulted per get × 1000, bytes decoded per get).
fn measure_gets(store: &Store, samples: u64) -> (u64, u64) {
    let obs = store.obs();
    let registry = obs.registry();
    let consulted_0 = registry.counter("lsm.get.tables_consulted").get();
    let bytes_0 = registry.counter("lsm.bytes_decoded").get();
    let mut rng = 0xA5A5_5A5Au64;
    for _ in 0..samples {
        rng = xorshift(rng);
        let key = (rng as u128) % KEYS;
        std::hint::black_box(store.get_value(key).unwrap().unwrap());
    }
    let consulted = registry.counter("lsm.get.tables_consulted").get() - consulted_0;
    let bytes = registry.counter("lsm.bytes_decoded").get() - bytes_0;
    (consulted * 1000 / samples, bytes / samples)
}

/// Point-get latency on the 16-table uncompacted stack vs the same data
/// after four tiered rounds (16 → 4 tables). The uncompacted side is
/// what a merge-all policy serves between its rare full merges — full
/// merges so expensive they are always deferred — so this gap is the
/// read-amplification win the bounded tiered rounds buy.
fn bench_get_amplification(c: &mut Criterion) {
    const OPS: u64 = 512;
    let mut group = c.benchmark_group("compaction_get");
    let uncompacted = striped_store(16);
    let compacted = striped_store(16);
    compact_rounds(&compacted, 4);
    assert!(
        compacted.index().table_count() <= 4,
        "four tiered rounds should flatten 16 tables to at most 4"
    );
    for (name, store) in [("uncompacted_16t", &uncompacted), ("tiered_4t", &compacted)] {
        group.throughput(Throughput::Elements(OPS));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = 0x1234_5678u64;
                for _ in 0..OPS {
                    rng = xorshift(rng);
                    let key = (rng as u128) % KEYS;
                    std::hint::black_box(store.get_value(key).unwrap().unwrap());
                }
            })
        });
    }
    group.finish();
}

/// Narrow-scan latency across the same ablation, under the *default*
/// read-path config (filters and caches on): a scan must consult every
/// table overlapping its window no matter how good the filters are, so
/// compaction's table-count reduction pays here in production config.
fn bench_scan_amplification(c: &mut Criterion) {
    const WINDOW: u128 = 32;
    let mut group = c.benchmark_group("compaction_scan");
    for (name, rounds) in [("uncompacted_16t", 0usize), ("tiered_4t", 4)] {
        let config = StoreConfig::default()
            .to_builder()
            .compaction_trigger_tables(1 << 10)
            .build()
            .unwrap();
        let store = Store::format(Geometry::default(), config, FaultConfig::none());
        store.obs().trace().set_enabled(false);
        for g in 0..GENS {
            let mut k = g;
            while k < KEYS {
                store.put(k, &vec![(k % 251) as u8; PAYLOAD]).unwrap();
                k += GENS;
            }
            store.flush_index().unwrap();
        }
        store.pump().unwrap();
        compact_rounds(&store, rounds);
        let mut start = 0u128;
        group.throughput(Throughput::Elements(WINDOW as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                start = (start + 97) % (KEYS - WINDOW);
                let page = store.scan(start, start + WINDOW - 1).unwrap();
                assert_eq!(page.len(), WINDOW as usize);
                std::hint::black_box(page);
            })
        });
    }
    group.finish();
}

/// Block-index decode ablation: the same single-table store with
/// 16-entry blocks vs one table-spanning block (the v1 decode shape —
/// every get decodes the whole table). The decoded-block cache is off,
/// so each get pays its decode and the gap is the per-get decode work
/// the sparse block index removes.
fn bench_block_ablation(c: &mut Criterion) {
    const OPS: u64 = 512;
    let mut group = c.benchmark_group("compaction_block");
    for (name, block_size) in [("block_16", 16usize), ("whole_table", 1 << 20)] {
        let store = striped_store(block_size);
        // Flatten to one table so the ablation isolates decode width.
        while store.index().table_count() > 1 {
            store.compact_index().unwrap();
        }
        store.pump().unwrap();
        group.throughput(Throughput::Elements(OPS));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = 0xDEAD_BEEFu64;
                for _ in 0..OPS {
                    rng = xorshift(rng);
                    let key = (rng as u128) % KEYS;
                    std::hint::black_box(store.get_value(key).unwrap().unwrap());
                }
            })
        });
    }
    group.finish();
}

/// Runs the acceptance workload once, asserts the read- and
/// write-amplification wins on the counters, and writes the metrics
/// snapshot sidecar next to the committed `BENCH_compaction.json`.
fn emit_metrics_sidecar() {
    const SAMPLES: u64 = 2_000;

    // Read amplification: uncompacted 16-table stack vs four tiered
    // rounds of the same data.
    let uncompacted = striped_store(16);
    let (consulted_before, bytes_before) = measure_gets(&uncompacted, SAMPLES);
    let compacted = striped_store(16);
    compact_rounds(&compacted, 4);
    let (consulted_after, bytes_after) = measure_gets(&compacted, SAMPLES);
    assert!(
        consulted_after < consulted_before,
        "tiered compaction did not reduce tables consulted per get \
         ({consulted_before} -> {consulted_after} milli-tables)"
    );
    assert!(
        bytes_after < bytes_before,
        "tiered compaction did not reduce bytes decoded per get \
         ({bytes_before} -> {bytes_after})"
    );

    // Block-index ablation on a single flattened table: per-get decode
    // bytes with 16-entry blocks vs one table-spanning block.
    let blocks = striped_store(16);
    while blocks.index().table_count() > 1 {
        blocks.compact_index().unwrap();
    }
    blocks.pump().unwrap();
    let (_, bytes_block) = measure_gets(&blocks, SAMPLES);
    let whole = striped_store(1 << 20);
    while whole.index().table_count() > 1 {
        whole.compact_index().unwrap();
    }
    whole.pump().unwrap();
    let (_, bytes_whole) = measure_gets(&whole, SAMPLES);
    assert!(
        bytes_block * 4 <= bytes_whole,
        "block index should cut per-get decode bytes by well over 4x \
         ({bytes_whole} whole-table vs {bytes_block} per-block)"
    );

    // Write amplification: one tiered round rewrites a bounded run. The
    // merge-all baseline rewrites at least the whole live data set per
    // round — measured here as the bytes_out of the final full-merge
    // round, whose output table holds everything.
    let tiered = striped_store(16);
    let obs = tiered.obs();
    let out_0 = obs.registry().counter("lsm.compaction.bytes_out").get();
    tiered.compact_index().unwrap();
    tiered.pump().unwrap();
    let round_bytes_out = obs.registry().counter("lsm.compaction.bytes_out").get() - out_0;

    let full = striped_store(16);
    let full_obs = full.obs();
    let mut last_round_bytes = 0u64;
    while full.index().table_count() > 1 {
        let before = full_obs.registry().counter("lsm.compaction.bytes_out").get();
        full.compact_index().unwrap();
        last_round_bytes = full_obs.registry().counter("lsm.compaction.bytes_out").get() - before;
    }
    full.pump().unwrap();
    let total_live_bytes = last_round_bytes;
    assert!(round_bytes_out > 0, "the tiered round wrote nothing");
    assert!(
        round_bytes_out * 2 <= total_live_bytes,
        "a tiered round should rewrite a bounded fraction of the store, \
         not O(total data) ({round_bytes_out} of {total_live_bytes} bytes)"
    );

    let registry = obs.registry();
    registry.gauge("bench.get_tables_consulted_milli_uncompacted").set(consulted_before as i64);
    registry.gauge("bench.get_tables_consulted_milli_tiered").set(consulted_after as i64);
    registry.gauge("bench.get_bytes_decoded_uncompacted").set(bytes_before as i64);
    registry.gauge("bench.get_bytes_decoded_tiered").set(bytes_after as i64);
    registry.gauge("bench.get_bytes_decoded_block16").set(bytes_block as i64);
    registry.gauge("bench.get_bytes_decoded_whole_table").set(bytes_whole as i64);
    registry.gauge("bench.compaction_round_bytes_out").set(round_bytes_out as i64);
    registry.gauge("bench.compaction_total_live_bytes").set(total_live_bytes as i64);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compaction.metrics.json");
    std::fs::write(path, obs.snapshot().to_json()).expect("write metrics sidecar");
    eprintln!(
        "metrics sidecar written to {path}: tables/get {:.3} -> {:.3}, bytes/get \
         {bytes_before} -> {bytes_after}, block decode {bytes_whole} -> {bytes_block}, \
         tiered round {round_bytes_out} of {total_live_bytes} live bytes",
        consulted_before as f64 / 1000.0,
        consulted_after as f64 / 1000.0,
    );
}

criterion_group!(
    benches,
    bench_get_amplification,
    bench_scan_amplification,
    bench_block_ablation
);

fn main() {
    benches();
    criterion::finalize();
    emit_metrics_sidecar();
}
