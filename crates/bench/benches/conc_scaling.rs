//! Criterion bench: stateless-model-checking throughput per scheduler —
//! the cost side of §6's soundness–scalability trade-off.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shardstore_conc::sync::Mutex;
use shardstore_conc::{check, thread, CheckOptions};

fn lock_harness(tasks: usize) -> impl Fn() + Send + Sync {
    move || {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..tasks)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    *counter.lock() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), tasks as u32);
    }
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("conc_scaling");
    const ITERS: usize = 50;
    group.throughput(Throughput::Elements(ITERS as u64));
    for tasks in [2usize, 4] {
        group.bench_function(format!("random_{tasks}_tasks"), |b| {
            b.iter(|| check(CheckOptions::random(1, ITERS), lock_harness(tasks)).unwrap())
        });
        group.bench_function(format!("pct_{tasks}_tasks"), |b| {
            b.iter(|| check(CheckOptions::pct(1, 3, ITERS), lock_harness(tasks)).unwrap())
        });
    }
    group.bench_function("dfs_exhaust_2_tasks", |b| {
        b.iter(|| {
            let report = check(CheckOptions::dfs(100_000), lock_harness(2)).unwrap();
            assert!(report.exhausted);
            report.iterations
        })
    });
    group.finish();
}

/// A full ShardStore harness iteration under the checker (the paper's
/// "end-to-end stress test" shape that only Shuttle-style randomization
/// can afford).
fn bench_store_harness(c: &mut Criterion) {
    use shardstore_faults::FaultConfig;
    use shardstore_harness::concurrent::fig4_index_harness;
    let mut group = c.benchmark_group("conc_scaling");
    group.sample_size(10);
    group.bench_function("fig4_iteration_random", |b| {
        b.iter(|| fig4_index_harness(FaultConfig::none(), CheckOptions::random(3, 5)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_store_harness);
criterion_main!(benches);
