//! Criterion bench: request-plane operations through the full stack
//! (chunking, LSM, scheduler, superblock, disk), plus the §2.2 ablation —
//! soft-updates dependency scheduling with write coalescing vs a
//! write-ahead-log-like global barrier per write.

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use shardstore_core::{Store, StoreConfig};
use shardstore_faults::FaultConfig;
use shardstore_vdisk::Geometry;

fn fresh_store() -> Store {
    Store::format(Geometry::default(), StoreConfig::default(), FaultConfig::none())
}

fn bench_put_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_ops");
    group.throughput(Throughput::Elements(1));
    let payload = vec![0xABu8; 1024];

    group.bench_function("put_1k", |b| {
        b.iter_batched(
            fresh_store,
            |store| {
                for shard in 0..32u128 {
                    store.put(shard, &payload).unwrap();
                }
                store.pump().unwrap();
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("get_1k_cached", |b| {
        let store = fresh_store();
        for shard in 0..32u128 {
            store.put(shard, &payload).unwrap();
        }
        store.flush_index().unwrap();
        store.pump().unwrap();
        let mut shard = 0u128;
        b.iter(|| {
            shard = (shard + 1) % 32;
            std::hint::black_box(store.get(shard).unwrap());
        })
    });

    group.bench_function("get_1k_cold", |b| {
        let store = fresh_store();
        for shard in 0..32u128 {
            store.put(shard, &payload).unwrap();
        }
        store.flush_index().unwrap();
        store.pump().unwrap();
        let mut shard = 0u128;
        b.iter(|| {
            store.drop_caches();
            shard = (shard + 1) % 32;
            std::hint::black_box(store.get(shard).unwrap());
        })
    });

    group.bench_function("delete", |b| {
        b.iter_batched(
            || {
                let store = fresh_store();
                for shard in 0..32u128 {
                    store.put(shard, &payload).unwrap();
                }
                store.pump().unwrap();
                store
            },
            |store| {
                for shard in 0..32u128 {
                    store.delete(shard).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The read-path ablation: table-resident gets with the fence/bloom
/// metadata and the decoded-table cache on (the default) vs off (the
/// pre-optimization read path, which re-reads and re-decodes every table
/// newest-first until the key is found).
fn bench_read_path(c: &mut Criterion) {
    const TABLES: u128 = 16;
    const KEYS_PER_TABLE: u128 = 16;
    const KEYS: u128 = TABLES * KEYS_PER_TABLE;

    // All keys table-resident: one flush per batch, no compaction, so the
    // lookup has many tables to consider.
    let table_resident_store = |config: StoreConfig| {
        let store = Store::format(Geometry::default(), config, FaultConfig::none());
        let payload = vec![0x5Au8; 256];
        for t in 0..TABLES {
            for i in 0..KEYS_PER_TABLE {
                store.put(t * KEYS_PER_TABLE + i, &payload).unwrap();
            }
            store.flush_index().unwrap();
        }
        store.pump().unwrap();
        store
    };
    let old_config =
        StoreConfig::builder().lsm_filters(false).decoded_cache_tables(0).build().unwrap();

    let mut group = c.benchmark_group("kv_read_path");
    group.throughput(Throughput::Elements(1));

    // Read-heavy skewed workload: 80% of gets hit the hottest 20% of the
    // key space, the rest are uniform — the common object-storage shape.
    for (name, config) in
        [("table_get_skewed_new", StoreConfig::default()), ("table_get_skewed_old", old_config)]
    {
        let store = table_resident_store(config);
        let mut rng: u64 = 0x9E37_79B9;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = next();
                let key = if r % 5 != 0 {
                    (next() % (KEYS as u64 / 5)) as u128
                } else {
                    (next() % KEYS as u64) as u128
                };
                std::hint::black_box(store.get(key).unwrap());
            })
        });
    }

    // Cold table reads: every volatile cache dropped before each get, so
    // the chunk reads happen but the fences/blooms still skip tables.
    let old_config =
        StoreConfig::builder().lsm_filters(false).decoded_cache_tables(0).build().unwrap();
    for (name, config) in
        [("table_get_cold_new", StoreConfig::default()), ("table_get_cold_old", old_config)]
    {
        let store = table_resident_store(config);
        let mut key = 0u128;
        group.bench_function(name, |b| {
            b.iter(|| {
                store.drop_caches();
                key = (key + 7) % KEYS;
                std::hint::black_box(store.get(key).unwrap());
            })
        });
    }
    group.finish();
}

/// The write path with group commit: the same 32-shard workload as
/// `kv_ops/put_1k`, issued one put at a time (the serial reference),
/// through [`Store::put_batch`] (one dependency group, one superblock
/// update, coalesced disk IOs), with the batch forced through the
/// WAL-like barrier scheduler (the serial-path ablation: grouping with
/// no coalescing to gain from it), and under a flush-heavy regime where
/// the LSM's group-sealed memtable flushes dominate.
fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_write_path");
    group.throughput(Throughput::Elements(1));
    let payload = vec![0xABu8; 1024];

    group.bench_function("put_serial_1k", |b| {
        b.iter_batched(
            fresh_store,
            |store| {
                for shard in 0..32u128 {
                    store.put(shard, &payload).unwrap();
                }
                store.pump().unwrap();
            },
            BatchSize::SmallInput,
        )
    });

    let make_batch = || -> Vec<(u128, Vec<u8>)> {
        (0..32u128).map(|shard| (shard, vec![0xABu8; 1024])).collect()
    };

    group.bench_function("put_batch_1k", |b| {
        b.iter_batched(
            || (fresh_store(), make_batch()),
            |(store, batch)| {
                store.put_batch(&batch).unwrap();
                store.pump().unwrap();
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("put_batch_1k_barrier", |b| {
        b.iter_batched(
            || {
                let store = fresh_store();
                store.scheduler().set_barrier_mode(true);
                (store, make_batch())
            },
            |(store, batch)| {
                store.put_batch(&batch).unwrap();
                store.pump().unwrap();
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("put_flush_heavy", |b| {
        b.iter_batched(
            fresh_store,
            |store| {
                for shard in 0..32u128 {
                    store.put(shard, &payload).unwrap();
                    if shard % 4 == 3 {
                        store.flush_index().unwrap();
                    }
                }
                store.pump().unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The §2.2 motivation: soft updates let independent writes coalesce; a
/// WAL-like barrier per write cannot.
fn bench_coalescing_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_ablation");
    let payload = vec![7u8; 256];
    for (name, barrier) in [("soft_updates", false), ("global_barrier", true)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let store = fresh_store();
                    store.scheduler().set_barrier_mode(barrier);
                    store
                },
                |store| {
                    for shard in 0..64u128 {
                        store.put(shard, &payload).unwrap();
                    }
                    store.flush_index().unwrap();
                    store.pump().unwrap();
                    store.scheduler().counter("sched.ios_issued")
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Runs the representative `kv_ops` workload once against a fresh store
/// and writes its metrics snapshot as a JSON sidecar next to the
/// committed `BENCH_kv_ops.json` baseline. Wall-clock latencies are the
/// bench-only opt-in: they go through `shardstore_obs::walltime` into a
/// histogram and never into the (deterministic) trace log.
fn emit_metrics_sidecar() {
    use shardstore_obs::walltime::{Stopwatch, LATENCY_BOUNDS_US};

    let store = fresh_store();
    let obs = store.obs();
    let put_us = obs.registry().histogram("bench.put_latency_us", LATENCY_BOUNDS_US);
    let get_us = obs.registry().histogram("bench.get_latency_us", LATENCY_BOUNDS_US);
    let payload = vec![0xABu8; 1024];
    for shard in 0..32u128 {
        let sw = Stopwatch::start(put_us.clone());
        store.put(shard, &payload).unwrap();
        sw.stop();
    }
    store.flush_index().unwrap();
    store.pump().unwrap();
    for shard in 0..32u128 {
        let sw = Stopwatch::start(get_us.clone());
        std::hint::black_box(store.get(shard).unwrap());
        sw.stop();
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kv_ops.metrics.json");
    std::fs::write(path, obs.snapshot().to_json()).expect("write metrics sidecar");
    eprintln!("metrics sidecar written to {path}");
}

criterion_group!(
    benches,
    bench_put_get,
    bench_read_path,
    bench_write_path,
    bench_coalescing_ablation
);

fn main() {
    benches();
    criterion::finalize();
    emit_metrics_sidecar();
}
