//! Criterion bench: request-plane operations through the full stack
//! (chunking, LSM, scheduler, superblock, disk), plus the §2.2 ablation —
//! soft-updates dependency scheduling with write coalescing vs a
//! write-ahead-log-like global barrier per write.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use shardstore_core::{Store, StoreConfig};
use shardstore_faults::FaultConfig;
use shardstore_vdisk::Geometry;

fn fresh_store() -> Store {
    Store::format(Geometry::default(), StoreConfig::default(), FaultConfig::none())
}

fn bench_put_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_ops");
    group.throughput(Throughput::Elements(1));
    let payload = vec![0xABu8; 1024];

    group.bench_function("put_1k", |b| {
        b.iter_batched(
            fresh_store,
            |store| {
                for shard in 0..32u128 {
                    store.put(shard, &payload).unwrap();
                }
                store.pump().unwrap();
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("get_1k_cached", |b| {
        let store = fresh_store();
        for shard in 0..32u128 {
            store.put(shard, &payload).unwrap();
        }
        store.flush_index().unwrap();
        store.pump().unwrap();
        let mut shard = 0u128;
        b.iter(|| {
            shard = (shard + 1) % 32;
            std::hint::black_box(store.get(shard).unwrap());
        })
    });

    group.bench_function("get_1k_cold", |b| {
        let store = fresh_store();
        for shard in 0..32u128 {
            store.put(shard, &payload).unwrap();
        }
        store.flush_index().unwrap();
        store.pump().unwrap();
        let mut shard = 0u128;
        b.iter(|| {
            store.cache().clear();
            shard = (shard + 1) % 32;
            std::hint::black_box(store.get(shard).unwrap());
        })
    });

    group.bench_function("delete", |b| {
        b.iter_batched(
            || {
                let store = fresh_store();
                for shard in 0..32u128 {
                    store.put(shard, &payload).unwrap();
                }
                store.pump().unwrap();
                store
            },
            |store| {
                for shard in 0..32u128 {
                    store.delete(shard).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The §2.2 motivation: soft updates let independent writes coalesce; a
/// WAL-like barrier per write cannot.
fn bench_coalescing_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_ablation");
    let payload = vec![7u8; 256];
    for (name, barrier) in [("soft_updates", false), ("global_barrier", true)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let store = fresh_store();
                    store.scheduler().set_barrier_mode(barrier);
                    store
                },
                |store| {
                    for shard in 0..64u128 {
                        store.put(shard, &payload).unwrap();
                    }
                    store.flush_index().unwrap();
                    store.pump().unwrap();
                    store.scheduler().stats().ios_issued
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_put_get, bench_coalescing_ablation);
criterion_main!(benches);
