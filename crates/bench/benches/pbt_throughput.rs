//! Criterion bench: property-based-testing throughput — the feasibility
//! basis of the paper's "tens of millions of random test sequences before
//! every deployment" claim, and the cost of each §3.1 property level.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shardstore_harness::conformance::{run_conformance, ConformanceConfig};
use shardstore_harness::crash::run_crash_consistency;
use shardstore_harness::detect::sample_sequences;
use shardstore_harness::gen::{kv_ops, GenConfig};
use shardstore_harness::index_conformance::{index_ops, run_index_conformance};
use shardstore_harness::ops::{IndexOp, KvOp};
use shardstore_faults::FaultConfig;

fn pre_sample_kv(gen_cfg: GenConfig, n: u64) -> Vec<Vec<KvOp>> {
    sample_sequences(kv_ops(gen_cfg), 42, n).collect()
}

fn bench_sequence_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbt_throughput");
    group.throughput(Throughput::Elements(1));
    let cfg = ConformanceConfig::default();

    let seqs = pre_sample_kv(GenConfig::conformance(), 256);
    let mut i = 0;
    group.bench_function("conformance_sequence", |b| {
        b.iter(|| {
            i = (i + 1) % seqs.len();
            run_conformance(&seqs[i], &cfg).unwrap()
        })
    });

    let seqs = pre_sample_kv(GenConfig::crash(), 256);
    let mut i = 0;
    group.bench_function("crash_sequence", |b| {
        b.iter(|| {
            i = (i + 1) % seqs.len();
            run_crash_consistency(&seqs[i], &cfg).unwrap()
        })
    });

    let seqs = pre_sample_kv(GenConfig::failure(), 256);
    let mut i = 0;
    group.bench_function("failure_sequence", |b| {
        b.iter(|| {
            i = (i + 1) % seqs.len();
            run_conformance(&seqs[i], &cfg).unwrap()
        })
    });

    let index_seqs: Vec<Vec<IndexOp>> =
        sample_sequences(index_ops(true, 40), 42, 256).collect();
    let mut i = 0;
    let faults = FaultConfig::none();
    group.bench_function("index_sequence", |b| {
        b.iter(|| {
            i = (i + 1) % index_seqs.len();
            run_index_conformance(&index_seqs[i], &faults).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sequence_throughput);
criterion_main!(benches);
