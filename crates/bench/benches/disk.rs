//! The real-hardware rig: the same stack-level workloads (kv ops, range
//! scans, compaction, node RPC) measured against the in-memory checking
//! backend *and* the file backend, where `flush_extent` fencing is
//! discharged as `fdatasync` on a real volume file.
//!
//! The criterion groups give the usual relative comparison; the custom
//! reporter in `main` additionally runs each workload once per backend
//! collecting raw per-op latencies and writes `BENCH_disk.json` with
//! p50/p99/p999 plus full-tilt saturation throughput — the numbers the
//! paper quotes for a storage node are tails, not means. A
//! `BENCH_disk.metrics.json` sidecar snapshots the deterministic counters
//! of a fixed file-backend workload for the trajectory gate.

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use shardstore_core::config::BackendKind;
use shardstore_core::rpc::{dispatch, Request, Response};
use shardstore_core::{Node, NodeConfig, Store, StoreConfig};
use shardstore_faults::FaultConfig;
use shardstore_obs::json::Json;
use shardstore_obs::walltime::time_us;
use shardstore_vdisk::Geometry;

/// The two backends under measurement. Volume files are store-managed
/// (created per store under a scratch dir, unlinked on drop); sparse
/// allocation keeps per-iteration setup cheap while fsync costs stay
/// real.
fn backends() -> Vec<(&'static str, StoreConfig)> {
    let mut dir = std::env::temp_dir();
    dir.push("shardstore-bench-volumes");
    let file = StoreConfig::default()
        .to_builder()
        .backend(BackendKind::File { dir, preallocate: false })
        .build()
        .unwrap();
    vec![("memory", StoreConfig::default()), ("file", file)]
}

fn fresh_store(config: &StoreConfig) -> Store {
    Store::format(Geometry::default(), config.clone(), FaultConfig::none())
}

fn fresh_node(config: &StoreConfig) -> Node {
    let node = NodeConfig::builder()
        .disks(1)
        .geometry(Geometry::default())
        .store(config.clone())
        .build()
        .unwrap();
    Node::from_config(&node)
}

/// Puts-then-pump (the fenced write path) and cold gets, per backend.
fn bench_kv_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_kv_ops");
    group.throughput(Throughput::Elements(32));
    group.sample_size(10);
    let payload = vec![0xABu8; 1024];

    for (backend, config) in backends() {
        group.bench_function(format!("put_32x1k_{backend}"), |b| {
            b.iter_batched(
                || fresh_store(&config),
                |store| {
                    for shard in 0..32u128 {
                        store.put(shard, &payload).unwrap();
                    }
                    store.pump().unwrap();
                },
                BatchSize::SmallInput,
            )
        });

        let store = fresh_store(&config);
        for shard in 0..32u128 {
            store.put(shard, &payload).unwrap();
        }
        store.flush_index().unwrap();
        store.pump().unwrap();
        let mut shard = 0u128;
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("get_cold_{backend}"), |b| {
            b.iter(|| {
                store.drop_caches();
                shard = (shard + 1) % 32;
                std::hint::black_box(store.get(shard).unwrap());
            })
        });
        group.throughput(Throughput::Elements(32));
    }
    group.finish();
}

/// Full-catalog range scans over table-resident keys, per backend.
fn bench_scan(c: &mut Criterion) {
    const KEYS: u128 = 128;
    let mut group = c.benchmark_group("disk_scan");
    group.throughput(Throughput::Elements(KEYS as u64));
    group.sample_size(10);

    for (backend, config) in backends() {
        let store = fresh_store(&config);
        let payload = vec![0x5Au8; 256];
        for k in 0..KEYS {
            store.put(k, &payload).unwrap();
            if k % 32 == 31 {
                store.flush_index().unwrap();
            }
        }
        store.pump().unwrap();
        group.bench_function(format!("scan_full_{backend}"), |b| {
            b.iter(|| {
                let got = store.scan(0, KEYS).unwrap();
                assert_eq!(got.len(), KEYS as usize);
                std::hint::black_box(got);
            })
        });
    }
    group.finish();
}

/// Build-tables-then-compact, per backend: the background write
/// amplification path where file-backend fencing costs the most.
fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_compaction");
    group.sample_size(10);
    for (backend, config) in backends() {
        group.bench_function(format!("compact_8_tables_{backend}"), |b| {
            b.iter_batched(
                || {
                    let store = fresh_store(&config);
                    let payload = vec![0x77u8; 256];
                    for t in 0..8u128 {
                        for i in 0..8u128 {
                            store.put(t * 8 + i, &payload).unwrap();
                        }
                        store.flush_index().unwrap();
                    }
                    store.pump().unwrap();
                    store
                },
                |store| {
                    store.compact_index().unwrap();
                    store.pump().unwrap();
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Put+get round-trips through the request plane, per backend.
fn bench_node_rpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_node_rpc");
    group.throughput(Throughput::Elements(2));
    group.sample_size(10);
    let payload = vec![0xEEu8; 512];
    for (backend, config) in backends() {
        let node = fresh_node(&config);
        let mut shard = 0u128;
        group.bench_function(format!("rpc_put_get_{backend}"), |b| {
            b.iter(|| {
                shard = (shard + 1) % 64;
                let put = dispatch(&node, Request::Put { shard, data: payload.clone() });
                assert_eq!(put, Response::Ok);
                std::hint::black_box(dispatch(&node, Request::Get { shard }));
            })
        });
    }
    group.finish();
}

/// Sorted-sample percentile (nearest-rank on the sorted vector).
fn percentile(sorted: &[u64], per_mille: usize) -> u64 {
    let idx = (sorted.len().saturating_sub(1)) * per_mille / 1000;
    sorted[idx]
}

/// One workload row for the report: collects per-op latency samples (for
/// the tails) and then measures full-tilt throughput over the same ops.
struct WorkloadReport {
    workload: &'static str,
    backend: &'static str,
    ops: usize,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    saturation_ops_per_sec: u64,
}

impl WorkloadReport {
    fn from_samples(
        workload: &'static str,
        backend: &'static str,
        mut samples_us: Vec<u64>,
        saturation_ops: usize,
        saturation_total_us: u64,
    ) -> Self {
        samples_us.sort_unstable();
        let saturation_ops_per_sec =
            (saturation_ops as u64).saturating_mul(1_000_000) / saturation_total_us.max(1);
        Self {
            workload,
            backend,
            ops: samples_us.len(),
            p50_us: percentile(&samples_us, 500),
            p99_us: percentile(&samples_us, 990),
            p999_us: percentile(&samples_us, 999),
            saturation_ops_per_sec,
        }
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("id".into(), Json::Str(format!("disk/{}/{}", self.workload, self.backend))),
            ("ops".into(), Json::U64(self.ops as u64)),
            ("p50_us".into(), Json::U64(self.p50_us)),
            ("p99_us".into(), Json::U64(self.p99_us)),
            ("p999_us".into(), Json::U64(self.p999_us)),
            ("saturation_ops_per_sec".into(), Json::U64(self.saturation_ops_per_sec)),
        ])
    }
}

/// Runs the four workloads against one backend, returning a report row
/// per workload.
fn measure_backend(backend: &'static str, config: &StoreConfig) -> Vec<WorkloadReport> {
    let mut rows = Vec::new();
    let payload = vec![0xABu8; 1024];

    // kv_ops: fenced single-shard puts (each op is put + pump, so the
    // file backend's fdatasync is inside every sample), then the same
    // count at full tilt for saturation.
    let store = fresh_store(config);
    const KV_OPS: usize = 512;
    let mut samples = Vec::with_capacity(KV_OPS);
    for i in 0..KV_OPS {
        let ((), us) = time_us(|| {
            store.put((i % 64) as u128, &payload).unwrap();
            store.pump().unwrap();
        });
        samples.push(us);
    }
    let ((), total_us) = time_us(|| {
        for i in 0..KV_OPS {
            store.put((i % 64) as u128, &payload).unwrap();
        }
        store.pump().unwrap();
    });
    rows.push(WorkloadReport::from_samples("kv_ops", backend, samples, KV_OPS, total_us));

    // scan: narrow 16-key range scans over a table-resident catalog.
    let store = fresh_store(config);
    const SCAN_KEYS: u128 = 128;
    const SCANS: usize = 256;
    for k in 0..SCAN_KEYS {
        store.put(k, &payload).unwrap();
        if k % 32 == 31 {
            store.flush_index().unwrap();
        }
    }
    store.pump().unwrap();
    let mut samples = Vec::with_capacity(SCANS);
    for i in 0..SCANS {
        let start = ((i as u128) * 7) % (SCAN_KEYS - 16);
        let (got, us) = time_us(|| store.scan(start, start + 16).unwrap());
        std::hint::black_box(got);
        samples.push(us);
    }
    let ((), total_us) = time_us(|| {
        for i in 0..SCANS {
            let start = ((i as u128) * 7) % (SCAN_KEYS - 16);
            std::hint::black_box(store.scan(start, start + 16).unwrap());
        }
    });
    rows.push(WorkloadReport::from_samples("scan", backend, samples, SCANS, total_us));

    // compaction: each op is flush-a-table + bounded compaction round.
    let store = fresh_store(config);
    const COMPACTIONS: usize = 24;
    let mut samples = Vec::with_capacity(COMPACTIONS);
    for t in 0..COMPACTIONS {
        for i in 0..8u128 {
            store.put((t as u128 * 8 + i) % 96, &payload).unwrap();
        }
        let ((), us) = time_us(|| {
            store.flush_index().unwrap();
            store.compact_index().unwrap();
            store.pump().unwrap();
        });
        samples.push(us);
    }
    let total_us: u64 = samples.iter().sum();
    rows.push(WorkloadReport::from_samples(
        "compaction",
        backend,
        samples,
        COMPACTIONS,
        total_us,
    ));

    // node_rpc: put+get round-trips through the request plane.
    let node = fresh_node(config);
    const RPCS: usize = 384;
    let mut samples = Vec::with_capacity(RPCS);
    for i in 0..RPCS {
        let shard = (i % 64) as u128;
        let ((), us) = time_us(|| {
            assert_eq!(
                dispatch(&node, Request::Put { shard, data: payload.clone() }),
                Response::Ok
            );
            std::hint::black_box(dispatch(&node, Request::Get { shard }));
        });
        samples.push(us);
    }
    let ((), total_us) = time_us(|| {
        for i in 0..RPCS {
            let shard = (i % 64) as u128;
            dispatch(&node, Request::Put { shard, data: payload.clone() });
            std::hint::black_box(dispatch(&node, Request::Get { shard }));
        }
    });
    rows.push(WorkloadReport::from_samples("node_rpc", backend, samples, RPCS, total_us));

    rows
}

/// Writes `BENCH_disk.json`: per-workload, per-backend latency tails and
/// saturation throughput.
fn emit_disk_report() {
    let mut rows = Vec::new();
    for (backend, config) in backends() {
        rows.extend(measure_backend(backend, &config));
    }
    for r in &rows {
        println!(
            "{:<24} p50 {:>6} µs | p99 {:>6} µs | p999 {:>6} µs | saturation {:>8} ops/s",
            format!("disk/{}/{}", r.workload, r.backend),
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.saturation_ops_per_sec,
        );
    }
    let report = Json::Array(rows.iter().map(WorkloadReport::to_json).collect());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_disk.json");
    std::fs::write(path, format!("{}\n", report.render())).expect("write disk report");
    println!("wrote {path}");
}

/// Runs a fixed workload against the *file* backend and snapshots its
/// metrics as the committed sidecar: the counters (fsync-driven
/// `disk.flushes`, scheduler IO counts, LSM activity) are deterministic
/// for this workload, so the trajectory gate can hold them to 2x.
fn emit_metrics_sidecar() {
    use shardstore_obs::walltime::{Stopwatch, LATENCY_BOUNDS_US};

    let (_, config) = backends().remove(1);
    let store = fresh_store(&config);
    let obs = store.obs();
    let put_us = obs.registry().histogram("bench.disk.put_latency_us", LATENCY_BOUNDS_US);
    let get_us = obs.registry().histogram("bench.disk.get_latency_us", LATENCY_BOUNDS_US);
    let payload = vec![0xABu8; 1024];
    for shard in 0..32u128 {
        let sw = Stopwatch::start(put_us.clone());
        store.put(shard, &payload).unwrap();
        sw.stop();
    }
    store.flush_index().unwrap();
    store.pump().unwrap();
    for shard in 0..32u128 {
        let sw = Stopwatch::start(get_us.clone());
        std::hint::black_box(store.get(shard).unwrap());
        sw.stop();
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_disk.metrics.json");
    std::fs::write(path, obs.snapshot().to_json()).expect("write metrics sidecar");
    eprintln!("metrics sidecar written to {path}");
}

criterion_group!(benches, bench_kv_ops, bench_scan, bench_compaction, bench_node_rpc);

fn main() {
    benches();
    criterion::finalize();
    emit_disk_report();
    emit_metrics_sidecar();
}
