//! Criterion bench: the parallel request plane vs the old single-thread
//! serve loop.
//!
//! Four pipelined clients issue a put-heavy KV workload against a node.
//! The baseline reproduces the pre-engine architecture — one dispatcher
//! thread draining one channel through a synchronous `rpc::dispatch` —
//! while the engine rows route the same workload through per-disk
//! executors with batched dispatch (co-routed puts funnel into
//! `put_batch` group commit). Both paths skip the wire codec so the
//! comparison isolates the request plane itself.
//!
//! The committed baseline is `BENCH_node_rpc.json` (regenerate with
//! `cargo bench --bench node_rpc -- --json BENCH_node_rpc.json`); the
//! engine at 4 disks must hold ≥2x the serial baseline's aggregate
//! throughput.

use std::sync::mpsc;

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use shardstore_core::rpc::{dispatch, Request, Response};
use shardstore_core::{Engine, EngineConfig, Node, NodeConfig, StoreConfig};
use shardstore_vdisk::Geometry;

const CLIENTS: usize = 4;
/// Puts per client, issued in pipelined windows of `WINDOW`.
const PUTS: usize = 96;
/// Gets per client (over the shards that client just wrote).
const GETS: usize = 16;
const WINDOW: usize = 32;
const PAYLOAD: usize = 1024;
const TOTAL_OPS: u64 = (CLIENTS * (PUTS + GETS)) as u64;

fn fresh_node(disks: usize) -> Node {
    let config = NodeConfig::builder()
        .disks(disks)
        .geometry(Geometry::default())
        .store(StoreConfig::default())
        .build()
        .unwrap();
    Node::from_config(&config)
}

/// Client `c` owns shards ≡ c (mod CLIENTS); with CLIENTS divisible by
/// the disk count, each client's traffic lands on one disk.
fn shard_for(client: usize, i: usize) -> u128 {
    (client + i * CLIENTS) as u128
}

/// The pre-engine request plane: every request from every client funnels
/// through one channel into one synchronous dispatch loop.
fn run_serial(node: Node) {
    type Envelope = (Request, mpsc::Sender<Response>);
    let (tx, rx) = mpsc::channel::<Envelope>();
    let dispatcher = std::thread::spawn(move || {
        while let Ok((req, reply)) = rx.recv() {
            let _ = reply.send(dispatch(&node, req));
        }
    });
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                let payload = vec![c as u8; PAYLOAD];
                let mut issued = 0;
                while issued < PUTS {
                    let window = WINDOW.min(PUTS - issued);
                    let (rtx, rrx) = mpsc::channel();
                    for i in issued..issued + window {
                        let req =
                            Request::Put { shard: shard_for(c, i), data: payload.clone() };
                        tx.send((req, rtx.clone())).unwrap();
                    }
                    for _ in 0..window {
                        assert_eq!(rrx.recv().unwrap(), Response::Ok);
                    }
                    issued += window;
                }
                let (rtx, rrx) = mpsc::channel();
                for i in 0..GETS {
                    tx.send((Request::Get { shard: shard_for(c, i) }, rtx.clone())).unwrap();
                }
                for _ in 0..GETS {
                    assert!(matches!(rrx.recv().unwrap(), Response::Data(_)));
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }
    drop(tx);
    dispatcher.join().unwrap();
}

/// The same workload through the engine: pipelined windows of nowait
/// calls so per-disk executors see runs of co-routed puts to batch.
fn run_engine(engine: &Engine) {
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || {
                let payload = vec![c as u8; PAYLOAD];
                let mut issued = 0;
                while issued < PUTS {
                    let window = WINDOW.min(PUTS - issued);
                    let pending: Vec<_> = (issued..issued + window)
                        .map(|i| {
                            client.call_nowait(Request::Put {
                                shard: shard_for(c, i),
                                data: payload.clone(),
                            })
                        })
                        .collect();
                    for p in pending {
                        assert_eq!(p.wait(), Response::Ok);
                    }
                    issued += window;
                }
                let pending: Vec<_> = (0..GETS)
                    .map(|i| client.call_nowait(Request::Get { shard: shard_for(c, i) }))
                    .collect();
                for p in pending {
                    assert!(matches!(p.wait(), Response::Data(_)));
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }
}

fn bench_node_rpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_rpc");
    group.throughput(Throughput::Elements(TOTAL_OPS));

    group.bench_function("serial_baseline_4disks", |b| {
        b.iter_batched(|| fresh_node(4), run_serial, BatchSize::SmallInput)
    });

    for disks in [1usize, 2, 4] {
        // Queue bound sized so a full window per client fits even when
        // every client routes to the same single disk.
        let engine_config = EngineConfig::builder()
            .queue_depth(CLIENTS * WINDOW)
            .batch_window(WINDOW)
            .build()
            .unwrap();
        group.bench_function(format!("engine_{disks}disk"), |b| {
            b.iter_batched(
                || Engine::start(fresh_node(disks), engine_config),
                |engine| {
                    run_engine(&engine);
                    engine.shutdown();
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_node_rpc);

fn main() {
    benches();
    criterion::finalize();
}
