//! Criterion bench: substrate-level costs — virtual-disk IO, dependency
//! scheduling, chunk framing, and the on-disk codecs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shardstore_chunk::{decode_frame_at, encode_frame, scan_extent};
use shardstore_dependency::IoScheduler;
use shardstore_faults::FaultConfig;
use shardstore_lsm::codec::{decode_sstable, encode_sstable, IndexValue};
use shardstore_vdisk::{Disk, ExtentId, Geometry};

fn bench_disk(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_io");
    let disk = Disk::new(Geometry::default());
    let page = vec![0x5Au8; 4096];
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("write_page", |b| {
        let mut offset = 0usize;
        b.iter(|| {
            disk.write(ExtentId(1), offset, &page).unwrap();
            offset = (offset + 4096) % (Geometry::default().extent_size() - 4096);
        })
    });
    group.bench_function("read_page", |b| {
        b.iter(|| std::hint::black_box(disk.read(ExtentId(1), 0, 4096).unwrap()))
    });
    group.bench_function("flush_extent", |b| {
        b.iter(|| {
            disk.write(ExtentId(2), 0, &page).unwrap();
            disk.flush_extent(ExtentId(2)).unwrap();
        })
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.throughput(Throughput::Elements(64));
    group.bench_function("submit_pump_64_chained", |b| {
        b.iter(|| {
            let disk = Disk::new(Geometry::default());
            let sched = IoScheduler::new(disk);
            let mut dep = sched.none();
            for i in 0..64usize {
                dep = sched.submit_write(ExtentId(1), i * 64, vec![1u8; 64], &dep);
            }
            sched.pump().unwrap();
            assert!(dep.is_persistent());
        })
    });
    group.bench_function("submit_pump_64_independent", |b| {
        b.iter(|| {
            let disk = Disk::new(Geometry::default());
            let sched = IoScheduler::new(disk);
            let none = sched.none();
            let deps: Vec<_> = (0..64usize)
                .map(|i| sched.submit_write(ExtentId(1), i * 64, vec![1u8; 64], &none))
                .collect();
            sched.pump().unwrap();
            assert!(deps.iter().all(|d| d.is_persistent()));
        })
    });
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let payload = vec![0xC3u8; 4096];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("frame_encode_4k", |b| {
        b.iter(|| std::hint::black_box(encode_frame(&payload, 0xFEED)))
    });
    let frame = encode_frame(&payload, 0xFEED);
    group.bench_function("frame_decode_4k", |b| {
        b.iter(|| decode_frame_at(&frame, 0, frame.len()).unwrap())
    });
    // An extent image with 16 packed frames.
    let mut image = Vec::new();
    for i in 0..16u128 {
        image.extend_from_slice(&encode_frame(&payload[..1024], i + 1));
    }
    group.bench_function("scan_extent_16_chunks", |b| {
        b.iter(|| {
            let frames = scan_extent(&image, image.len(), 4096, &FaultConfig::none());
            assert_eq!(frames.len(), 16);
        })
    });
    let entries: Vec<_> = (0..256u128)
        .map(|k| {
            (
                k,
                IndexValue::Present(vec![shardstore_chunk::Locator {
                    extent: ExtentId(1),
                    offset: k as u32,
                    len: 64,
                    uuid: k,
                }]),
            )
        })
        .collect();
    group.bench_function("sstable_encode_256", |b| {
        b.iter(|| std::hint::black_box(encode_sstable(&entries, 16)))
    });
    let bytes = encode_sstable(&entries, 16);
    group.bench_function("sstable_decode_256", |b| {
        b.iter(|| assert_eq!(decode_sstable(&bytes).unwrap().len(), 256))
    });
    group.finish();
}

criterion_group!(benches, bench_disk, bench_scheduler, bench_codecs);
criterion_main!(benches);
