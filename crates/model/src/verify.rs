//! Bounded-exhaustive verification of the reference models themselves
//! (§3.2 "Model verification").
//!
//! The paper experimented with proving properties of the models with the
//! Prusti verifier — e.g. "the LSM-tree reference model removes a
//! key-value mapping if and only if it receives a delete operation for
//! that key". This module takes the small-scope route instead: because
//! the models are tiny state machines, their properties can be checked
//! *exhaustively* over every operation sequence up to a bound on a small
//! domain. Within that scope the result is a proof, not a sample — the
//! role Prusti/Alloy play in the paper, with no external tooling.
//!
//! By the small-scope hypothesis (and because the models are
//! domain-oblivious: they never branch on key or value contents beyond
//! equality), bugs like issue #15 show up already at tiny scopes.

use crate::{ChunkStoreModel, IndexModel, KvModel};
use shardstore_chunk::Locator;
use shardstore_faults::FaultConfig;

/// One abstract operation over the small scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeOp {
    /// Put key `k` with value tag `v`.
    Put(u8, u8),
    /// Delete key `k`.
    Delete(u8),
    /// A background operation (flush/compact/reclaim) — must be a no-op.
    Background,
}

/// A property violation found during exhaustive checking.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The operation sequence that exposed the violation.
    pub sequence: Vec<ScopeOp>,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model violation on {:?}: {}", self.sequence, self.detail)
    }
}

fn enumerate(keys: u8, values: u8, len: usize) -> Vec<Vec<ScopeOp>> {
    let mut alphabet = Vec::new();
    for k in 0..keys {
        for v in 0..values {
            alphabet.push(ScopeOp::Put(k, v));
        }
    }
    for k in 0..keys {
        alphabet.push(ScopeOp::Delete(k));
    }
    alphabet.push(ScopeOp::Background);
    let mut sequences: Vec<Vec<ScopeOp>> = vec![Vec::new()];
    let mut frontier = sequences.clone();
    for _ in 0..len {
        let mut next = Vec::new();
        for seq in &frontier {
            for op in &alphabet {
                let mut extended = seq.clone();
                extended.push(*op);
                next.push(extended);
            }
        }
        sequences.extend(next.iter().cloned());
        frontier = next;
    }
    sequences
}

fn locators_for(k: u8, v: u8) -> Vec<Locator> {
    vec![Locator {
        extent: shardstore_vdisk::ExtentId(k as u32),
        offset: v as u32,
        len: 1,
        uuid: ((k as u128) << 8) | v as u128,
    }]
}

/// The paper's example property, exhaustively within scope: after any
/// operation sequence, a key is absent from [`IndexModel`] **iff** its
/// last mutation was a delete (or it was never put) — i.e. the model
/// removes a mapping if and only if it receives a delete for that key.
/// Also checks that background operations never change the mapping.
pub fn verify_index_model(keys: u8, values: u8, max_len: usize) -> Result<u64, Violation> {
    let mut checked = 0u64;
    for sequence in enumerate(keys, values, max_len) {
        let mut model = IndexModel::new();
        // The oracle: last mutation per key, tracked independently.
        let mut last: std::collections::BTreeMap<u8, Option<u8>> =
            std::collections::BTreeMap::new();
        for op in &sequence {
            let before = model.clone();
            match op {
                ScopeOp::Put(k, v) => {
                    model.put(*k as u128, locators_for(*k, *v));
                    last.insert(*k, Some(*v));
                }
                ScopeOp::Delete(k) => {
                    model.delete(*k as u128);
                    last.insert(*k, None);
                }
                ScopeOp::Background => {
                    model.flush();
                    model.compact();
                    if model != before {
                        return Err(Violation {
                            sequence,
                            detail: "background operation changed the mapping".into(),
                        });
                    }
                }
            }
        }
        for k in 0..keys {
            let expected = last.get(&k).copied().flatten();
            let got = model.get(k as u128);
            let ok = match (expected, &got) {
                (None, None) => true,
                (Some(v), Some(l)) => *l == locators_for(k, v),
                _ => false,
            };
            if !ok {
                return Err(Violation {
                    sequence,
                    detail: format!(
                        "key {k}: last mutation {expected:?} but model has {got:?} — \
                         delete-iff-removed violated"
                    ),
                });
            }
        }
        checked += 1;
    }
    Ok(checked)
}

/// Same property for the API-level [`KvModel`].
pub fn verify_kv_model(keys: u8, values: u8, max_len: usize) -> Result<u64, Violation> {
    let mut checked = 0u64;
    for sequence in enumerate(keys, values, max_len) {
        let mut model = KvModel::new();
        let mut last: std::collections::BTreeMap<u8, Option<u8>> =
            std::collections::BTreeMap::new();
        for op in &sequence {
            match op {
                ScopeOp::Put(k, v) => {
                    model.put(*k as u128, &[*v]);
                    last.insert(*k, Some(*v));
                }
                ScopeOp::Delete(k) => {
                    model.delete(*k as u128);
                    last.insert(*k, None);
                }
                ScopeOp::Background => {}
            }
        }
        // list() agrees with per-key gets, and both agree with the oracle.
        let listed = model.list();
        for k in 0..keys {
            let expected = last.get(&k).copied().flatten();
            let got = model.get(k as u128);
            let ok = match (expected, &got) {
                (None, None) => true,
                (Some(v), Some(data)) => ***data == [v],
                _ => false,
            };
            if !ok {
                return Err(Violation {
                    sequence,
                    detail: format!("key {k}: oracle {expected:?} vs model {got:?}"),
                });
            }
            if listed.contains(&(k as u128)) != got.is_some() {
                return Err(Violation {
                    sequence,
                    detail: format!("key {k}: list()/get() disagree"),
                });
            }
        }
        checked += 1;
    }
    Ok(checked)
}

/// Locator uniqueness for [`ChunkStoreModel`], exhaustively within scope:
/// over every put/delete interleaving up to the bound, no locator is ever
/// issued twice (issue #15's violated assumption). With
/// [`shardstore_faults::BugId::B15ModelLocatorReuse`] seeded this fails.
pub fn verify_chunk_model_uniqueness(max_len: usize, faults: &FaultConfig) -> Result<u64, Violation> {
    // Restart-based exhaustive enumeration: every sequence over
    // {Put, DeleteOldest} up to the bound, each run on a fresh model.
    let mut checked = 0u64;
    for len in 0..=max_len {
        for bits in 0..(1u64 << len) {
            let model = ChunkStoreModel::new(faults.clone());
            let mut live: Vec<Locator> = Vec::new();
            let mut issued: std::collections::BTreeSet<(u32, u32, u32)> =
                std::collections::BTreeSet::new();
            let mut trace = Vec::new();
            for step in 0..len {
                if bits & (1 << step) == 0 {
                    let locator = model.put(&[step as u8]);
                    trace.push(ScopeOp::Put(0, step as u8));
                    if !issued.insert((locator.extent.0, locator.offset, locator.len)) {
                        return Err(Violation {
                            sequence: trace,
                            detail: format!("locator {locator} issued twice"),
                        });
                    }
                    live.push(locator);
                } else if !live.is_empty() {
                    let victim = live.remove(0);
                    model.delete(&victim);
                    trace.push(ScopeOp::Delete(0));
                }
            }
            checked += 1;
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shardstore_faults::BugId;

    #[test]
    fn index_model_verified_within_scope() {
        // 2 keys × 2 values, all sequences up to length 4: thousands of
        // sequences, checked exhaustively.
        let checked = verify_index_model(2, 2, 4).expect("index model correct");
        // Alphabet of 7 ops, all sequences of length ≤ 4: 2,801 sequences.
        assert_eq!(checked, 2_801);
    }

    #[test]
    fn kv_model_verified_within_scope() {
        let checked = verify_kv_model(2, 2, 4).expect("kv model correct");
        assert_eq!(checked, 2_801);
    }

    #[test]
    fn chunk_model_uniqueness_verified_within_scope() {
        let checked =
            verify_chunk_model_uniqueness(8, &FaultConfig::none()).expect("fixed model unique");
        assert!(checked > 30, "explored only {checked} states");
    }

    #[test]
    fn b15_fails_exhaustive_uniqueness() {
        let result =
            verify_chunk_model_uniqueness(8, &FaultConfig::seed(BugId::B15ModelLocatorReuse));
        assert!(result.is_err(), "the seeded model bug must be caught within scope");
    }
}
