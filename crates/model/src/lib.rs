//! Executable reference models — the specifications ShardStore is checked
//! against (§3.2 of the paper).
//!
//! Each model provides the same interface as a real component but with a
//! radically simpler implementation: the index model is an ordered map
//! instead of a persistent LSM tree; the chunk-store model is a map from
//! counter-derived locators to byte strings. Models define the *allowed
//! sequential, crash-free behaviours*; the crash-aware extension
//! ([`CrashAwareKvModel`]) additionally defines which recent mutations a
//! soft-updates crash is allowed to lose (§5).
//!
//! Models deliberately omit implementation failures (IO errors, resource
//! exhaustion): the conformance harness relaxes its checks after injected
//! failures instead (§4.4's "has failed" flag).
//!
//! Because the models live in the implementation language, they double as
//! **mocks** in unit tests (see [`ChunkStoreModel`], used exactly the way
//! Fig. 4 mocks out persistent chunk storage), which is what keeps them
//! up to date as the system evolves (§8.4).
//!
//! Two of the paper's sixteen issues were bugs in the *models* rather
//! than the implementation, and both are reproducible here:
//! [`BugId::B15ModelLocatorReuse`] (the chunk-store model re-used
//! locators) and [`BugId::B9ModelCrashReclamation`] (the crash-aware
//! model mishandled reclamation across a crash).

pub mod verify;

use std::collections::BTreeMap;
use std::sync::Arc;

use shardstore_chunk::Locator;
use shardstore_conc::sync::Mutex;
use shardstore_dependency::Dependency;
use shardstore_faults::{BugId, FaultConfig};
use shardstore_vdisk::ExtentId;

// ---------------------------------------------------------------------------
// Index model
// ---------------------------------------------------------------------------

/// Reference model for the LSM index: a plain ordered map (the paper's
/// "simple hash table"; ordered here so iteration is deterministic, per
/// §4.3's determinism-by-design principle).
///
/// Background operations (`flush`, `compact`, `reclaim`) are no-ops: they
/// must not change the key-value mapping, and running them against the
/// implementation validates exactly that (Fig. 3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexModel {
    map: BTreeMap<u128, Vec<Locator>>,
}

impl IndexModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or overwrites a key.
    pub fn put(&mut self, key: u128, locators: Vec<Locator>) {
        self.map.insert(key, locators);
    }

    /// Looks up a key.
    pub fn get(&self, key: u128) -> Option<Vec<Locator>> {
        self.map.get(&key).cloned()
    }

    /// Deletes a key.
    pub fn delete(&mut self, key: u128) {
        self.map.remove(&key);
    }

    /// All present keys, in order.
    pub fn keys(&self) -> Vec<u128> {
        self.map.keys().copied().collect()
    }

    /// Flush is a no-op in the model.
    pub fn flush(&mut self) {}

    /// Compaction is a no-op in the model.
    pub fn compact(&mut self) {}

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Chunk store model
// ---------------------------------------------------------------------------

/// Reference model for the chunk store, also usable as a mock (Fig. 4's
/// `MockChunkStore`): locators are synthesized from a counter and payloads
/// kept in a map.
///
/// With [`BugId::B15ModelLocatorReuse`] seeded, locators are derived from
/// the current map size instead of a monotonic counter, so a put after a
/// delete re-issues an existing locator — the paper's issue #15, a model
/// bug that other code's uniqueness assumptions exposed.
#[derive(Debug)]
pub struct ChunkStoreModel {
    inner: Mutex<ChunkModelState>,
    faults: FaultConfig,
}

#[derive(Debug, Default)]
struct ChunkModelState {
    chunks: BTreeMap<Locator, Arc<Vec<u8>>>,
    next_id: u64,
}

impl ChunkStoreModel {
    /// Creates an empty model.
    pub fn new(faults: FaultConfig) -> Self {
        Self { inner: Mutex::new(ChunkModelState::default()), faults }
    }

    fn synth_locator(id: u64, len: usize) -> Locator {
        // A synthetic but structurally valid locator; the extent encodes
        // the model id so locators stay unique and recognizable.
        Locator {
            extent: ExtentId((id >> 16) as u32),
            offset: (id & 0xFFFF) as u32,
            len: len as u32,
            uuid: 0xA10D_E100u128 + id as u128,
        }
    }

    /// Stores a payload, returning its locator.
    pub fn put(&self, payload: &[u8]) -> Locator {
        let mut st = self.inner.lock();
        let id = if self.faults.is(BugId::B15ModelLocatorReuse) {
            // BUG B15 (seeded): "fresh" ids derived from the current
            // population re-use locators after deletions.
            st.chunks.len() as u64
        } else {
            let id = st.next_id;
            st.next_id += 1;
            id
        };
        let locator = Self::synth_locator(id, payload.len());
        st.chunks.insert(locator, Arc::new(payload.to_vec()));
        locator
    }

    /// Reads a chunk back.
    pub fn get(&self, locator: &Locator) -> Option<Arc<Vec<u8>>> {
        self.inner.lock().chunks.get(locator).cloned()
    }

    /// Deletes a chunk.
    pub fn delete(&self, locator: &Locator) -> bool {
        self.inner.lock().chunks.remove(locator).is_some()
    }

    /// Reclamation is a no-op in the model (it must not change any
    /// observable mapping).
    pub fn reclaim(&self) {}

    /// Number of stored chunks.
    pub fn len(&self) -> usize {
        self.inner.lock().chunks.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().chunks.is_empty()
    }
}

// ---------------------------------------------------------------------------
// API-level KV model
// ---------------------------------------------------------------------------

/// Reference model for the whole storage node API: shard id → bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvModel {
    map: BTreeMap<u128, Arc<Vec<u8>>>,
}

impl KvModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a shard.
    pub fn put(&mut self, shard: u128, data: &[u8]) {
        self.map.insert(shard, Arc::new(data.to_vec()));
    }

    /// Reads a shard.
    pub fn get(&self, shard: u128) -> Option<Arc<Vec<u8>>> {
        self.map.get(&shard).cloned()
    }

    /// Deletes a shard. Returns whether it existed.
    pub fn delete(&mut self, shard: u128) -> bool {
        self.map.remove(&shard).is_some()
    }

    /// All shard ids, in order.
    pub fn list(&self) -> Vec<u128> {
        self.map.keys().copied().collect()
    }

    /// Range scan: every `(shard, value)` with `start <= shard <= end`,
    /// ascending. The specification for [`Store::scan`]-style range
    /// reads — the ordered map *is* the semantics.
    ///
    /// [`Store::scan`]: ../shardstore_core/store/struct.Store.html
    pub fn scan(&self, start: u128, end: u128) -> Vec<(u128, Arc<Vec<u8>>)> {
        if start > end {
            return Vec::new();
        }
        self.map.range(start..=end).map(|(k, v)| (*k, Arc::clone(v))).collect()
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Crash-aware KV model (§5)
// ---------------------------------------------------------------------------

/// What the crash-aware model allows for one key after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashExpectation {
    /// The value of the last mutation whose dependency had persisted
    /// before the crash (`Some(None)` = a persisted delete; `None` = no
    /// mutation ever persisted for this key).
    pub persisted: Option<Option<Arc<Vec<u8>>>>,
    /// Every value the implementation may legitimately return: the
    /// persisted value plus any later, unpersisted mutations (soft
    /// updates allow losing any suffix of unpersisted work, and an
    /// in-flight mutation may or may not have survived).
    pub allowed: Vec<Option<Arc<Vec<u8>>>>,
}

impl CrashExpectation {
    /// True if the implementation's observed value is allowed.
    pub fn permits(&self, observed: &Option<Arc<Vec<u8>>>) -> bool {
        self.allowed.iter().any(|a| match (a, observed) {
            (None, None) => true,
            (Some(x), Some(y)) => x == y,
            _ => false,
        })
    }
}

#[derive(Debug, Clone)]
struct Mutation {
    /// `Some(bytes)` for a put, `None` for a delete.
    value: Option<Arc<Vec<u8>>>,
    /// The mutation's durability dependency; `None` means the mutation is
    /// already durable (used for post-crash resynchronization, where the
    /// observed recovered state is durable by construction).
    dep: Option<Dependency>,
}

impl Mutation {
    fn is_persistent(&self) -> bool {
        self.dep.as_ref().map(|d| d.is_persistent()).unwrap_or(true)
    }
}

/// The §5 crash-aware extension of [`KvModel`]: every mutation is recorded
/// with its [`Dependency`], and [`CrashAwareKvModel::crash`] collapses
/// each key's history using the dependencies' persistence at crash time —
/// defining exactly which data soft updates allow a crash to lose.
///
/// With [`BugId::B9ModelCrashReclamation`] seeded, the model reproduces
/// the paper's issue #9: after a crash that interrupted a reclamation it
/// fails to re-widen its expectations, insisting that *unpersisted*
/// mutations survive — a bug in the specification that the conformance
/// checker surfaces as a model/implementation divergence.
#[derive(Debug, Default)]
pub struct CrashAwareKvModel {
    history: BTreeMap<u128, Vec<Mutation>>,
    faults: FaultConfig,
    reclaim_since_crash: bool,
}

impl CrashAwareKvModel {
    /// Creates an empty crash-aware model.
    pub fn new(faults: FaultConfig) -> Self {
        Self { history: BTreeMap::new(), faults, reclaim_since_crash: false }
    }

    /// Records a put with its dependency.
    pub fn put(&mut self, shard: u128, data: &[u8], dep: Dependency) {
        self.history
            .entry(shard)
            .or_default()
            .push(Mutation { value: Some(Arc::new(data.to_vec())), dep: Some(dep) });
    }

    /// Records a delete with its dependency.
    pub fn delete(&mut self, shard: u128, dep: Dependency) {
        self.history.entry(shard).or_default().push(Mutation { value: None, dep: Some(dep) });
    }

    /// Records that a reclamation pass ran (drives the seeded bug B9).
    pub fn note_reclaim(&mut self) {
        self.reclaim_since_crash = true;
    }

    /// The crash-free expected value (the latest mutation).
    pub fn current(&self, shard: u128) -> Option<Arc<Vec<u8>>> {
        self.history.get(&shard).and_then(|h| h.last()).and_then(|m| m.value.clone())
    }

    /// All shards whose latest mutation is a put.
    pub fn list(&self) -> Vec<u128> {
        self.history
            .iter()
            .filter(|(_, h)| h.last().map(|m| m.value.is_some()).unwrap_or(false))
            .map(|(k, _)| *k)
            .collect()
    }

    /// The §5 persistence check for one key, evaluated with dependency
    /// persistence *as of now* (call at the crash point, before recovery).
    pub fn expectation(&self, shard: u128) -> CrashExpectation {
        let Some(history) = self.history.get(&shard) else {
            return CrashExpectation { persisted: None, allowed: vec![None] };
        };
        let last_persisted = history.iter().rposition(|m| m.is_persistent());
        let persisted = last_persisted.map(|i| history[i].value.clone());
        let mut allowed: Vec<Option<Arc<Vec<u8>>>> = Vec::new();
        if self.faults.is(BugId::B9ModelCrashReclamation) && self.reclaim_since_crash {
            // BUG B9 (seeded): after a reclamation the model "knows" the
            // data was rewritten recently and (incorrectly) expects the
            // latest value regardless of persistence.
            allowed.push(history.last().and_then(|m| m.value.clone()));
            return CrashExpectation { persisted, allowed };
        }
        match last_persisted {
            Some(i) => {
                // The persisted value, or any later unpersisted mutation
                // that happened to survive.
                for m in &history[i..] {
                    let v = m.value.clone();
                    if !allowed.contains(&v) {
                        allowed.push(v);
                    }
                }
            }
            None => {
                // Nothing persisted: the key may be absent, or any of the
                // unpersisted mutations may have survived.
                allowed.push(None);
                for m in history {
                    let v = m.value.clone();
                    if !allowed.contains(&v) {
                        allowed.push(v);
                    }
                }
            }
        }
        CrashExpectation { persisted, allowed }
    }

    /// Applies a crash: collapse each key's history to the last persisted
    /// mutation (evaluated now) and clear unpersisted work. Call after the
    /// checks, before continuing the workload against the recovered store.
    pub fn crash(&mut self) {
        self.crash_with_observations(&BTreeMap::new());
    }

    /// Applies a crash, resynchronizing with the implementation's observed
    /// post-recovery values. Soft updates allow an *unpersisted* mutation
    /// to either survive or vanish; whichever way the crash broke, the
    /// model must adopt it (after the checker has verified the observation
    /// is in the allowed set) — otherwise later reads of legitimately
    /// surviving data would be flagged as divergences.
    pub fn crash_with_observations(
        &mut self,
        observed: &BTreeMap<u128, Option<Arc<Vec<u8>>>>,
    ) {
        let keys: Vec<u128> = self.history.keys().copied().collect();
        for key in keys {
            if let Some(obs) = observed.get(&key) {
                // Observed state is durable after recovery.
                match obs {
                    Some(v) => {
                        let history = self.history.get_mut(&key).expect("key listed");
                        history.clear();
                        history.push(Mutation { value: Some(Arc::clone(v)), dep: None });
                    }
                    None => {
                        self.history.remove(&key);
                    }
                }
                continue;
            }
            let history = self.history.get_mut(&key).expect("key listed");
            let last_persisted = history.iter().rposition(|m| m.is_persistent());
            match last_persisted {
                Some(i) => {
                    let kept = history[i].clone();
                    history.clear();
                    history.push(kept);
                }
                None => {
                    self.history.remove(&key);
                }
            }
        }
        self.reclaim_since_crash = false;
    }

    /// Every key with any recorded history (for iteration in checks).
    pub fn tracked_keys(&self) -> Vec<u128> {
        self.history.keys().copied().collect()
    }

    /// The §5 forward-progress check: after a non-crashing shutdown every
    /// recorded mutation's dependency must report persistent. Returns the
    /// first offending key, if any.
    pub fn check_forward_progress(&self) -> Result<(), u128> {
        for (key, history) in &self.history {
            for m in history {
                if !m.is_persistent() {
                    return Err(*key);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shardstore_dependency::IoScheduler;
    use shardstore_vdisk::{CrashPlan, Disk, Geometry};

    fn sched() -> IoScheduler {
        IoScheduler::new(Disk::new(Geometry::small()))
    }

    #[test]
    fn index_model_basics() {
        let mut m = IndexModel::new();
        assert!(m.is_empty());
        let l = Locator { extent: ExtentId(1), offset: 0, len: 4, uuid: 9 };
        m.put(5, vec![l]);
        assert_eq!(m.get(5), Some(vec![l]));
        m.flush();
        m.compact();
        assert_eq!(m.get(5), Some(vec![l]), "background ops must not change the mapping");
        m.delete(5);
        assert_eq!(m.get(5), None);
    }

    #[test]
    fn chunk_model_roundtrip_and_unique_locators() {
        let m = ChunkStoreModel::new(FaultConfig::none());
        let a = m.put(b"aaa");
        let b = m.put(b"bbb");
        assert_ne!(a, b);
        assert_eq!(*m.get(&a).unwrap(), b"aaa");
        assert!(m.delete(&a));
        assert!(m.get(&a).is_none());
        // Fixed model: locators never repeat even after deletion.
        let c = m.put(b"ccc");
        assert_ne!(c, a);
        assert_ne!(c, b);
    }

    #[test]
    fn b15_seeded_chunk_model_reuses_locators() {
        let m = ChunkStoreModel::new(FaultConfig::seed(BugId::B15ModelLocatorReuse));
        let a = m.put(b"aaa");
        m.delete(&a);
        let b = m.put(b"bbb");
        // The buggy model reissues the same locator with the same length.
        assert_eq!(a.extent, b.extent);
        assert_eq!(a.offset, b.offset);
    }

    #[test]
    fn kv_model_basics() {
        let mut m = KvModel::new();
        m.put(1, b"one");
        m.put(2, b"two");
        assert_eq!(m.list(), vec![1, 2]);
        assert!(m.delete(1));
        assert!(!m.delete(1));
        assert_eq!(m.get(1), None);
        assert_eq!(*m.get(2).unwrap(), b"two");
    }

    #[test]
    fn kv_model_scan_is_the_ordered_range() {
        let mut m = KvModel::new();
        for k in [5u128, 1, 9, 3] {
            m.put(k, &k.to_le_bytes());
        }
        let hits: Vec<u128> = m.scan(2, 8).iter().map(|(k, _)| *k).collect();
        assert_eq!(hits, vec![3, 5]);
        assert_eq!(m.scan(0, u128::MAX).len(), 4);
        assert!(m.scan(6, 8).is_empty());
        assert!(m.scan(8, 2).is_empty(), "inverted range is empty");
        assert_eq!(*m.scan(3, 3)[0].1, 3u128.to_le_bytes().to_vec());
    }

    #[test]
    fn crash_aware_model_keeps_persisted_data() {
        let s = sched();
        let mut m = CrashAwareKvModel::new(FaultConfig::none());
        let dep = s.submit_write(ExtentId(1), 0, b"v1".to_vec(), &s.none());
        m.put(7, b"v1", dep);
        s.pump().unwrap();
        let exp = m.expectation(7);
        assert_eq!(exp.persisted, Some(Some(Arc::new(b"v1".to_vec()))));
        assert!(exp.permits(&Some(Arc::new(b"v1".to_vec()))));
        assert!(!exp.permits(&None), "persisted data must not be lost");
        assert!(!exp.permits(&Some(Arc::new(b"other".to_vec()))));
    }

    #[test]
    fn crash_aware_model_allows_losing_unpersisted_data() {
        let s = sched();
        let mut m = CrashAwareKvModel::new(FaultConfig::none());
        let dep = s.submit_write(ExtentId(1), 0, b"v1".to_vec(), &s.none());
        m.put(7, b"v1", dep);
        // Not pumped: nothing persisted.
        let exp = m.expectation(7);
        assert_eq!(exp.persisted, None);
        assert!(exp.permits(&None));
        assert!(exp.permits(&Some(Arc::new(b"v1".to_vec()))));
        assert!(!exp.permits(&Some(Arc::new(b"junk".to_vec()))), "corruption is never allowed");
    }

    #[test]
    fn crash_aware_model_handles_persisted_then_unpersisted_overwrite() {
        let s = sched();
        let mut m = CrashAwareKvModel::new(FaultConfig::none());
        let d1 = s.submit_write(ExtentId(1), 0, b"v1".to_vec(), &s.none());
        m.put(7, b"v1", d1);
        s.pump().unwrap();
        let d2 = s.submit_write(ExtentId(1), 10, b"v2".to_vec(), &s.none());
        m.put(7, b"v2", d2);
        let exp = m.expectation(7);
        assert!(exp.permits(&Some(Arc::new(b"v1".to_vec()))));
        assert!(exp.permits(&Some(Arc::new(b"v2".to_vec()))));
        assert!(!exp.permits(&None), "the key cannot vanish: v1 persisted");
    }

    #[test]
    fn crash_collapses_history() {
        let s = sched();
        let mut m = CrashAwareKvModel::new(FaultConfig::none());
        let d1 = s.submit_write(ExtentId(1), 0, b"v1".to_vec(), &s.none());
        m.put(7, b"v1", d1);
        s.pump().unwrap();
        let d2 = s.submit_write(ExtentId(1), 10, b"v2".to_vec(), &s.none());
        m.put(7, b"v2", d2);
        s.crash(&CrashPlan::LoseAll);
        m.crash();
        assert_eq!(m.current(7), Some(Arc::new(b"v1".to_vec())));
        // Unpersisted-only keys vanish entirely.
        let d3 = s.submit_write(ExtentId(2), 0, b"x".to_vec(), &s.none());
        m.put(9, b"x", d3);
        s.crash(&CrashPlan::LoseAll);
        m.crash();
        assert_eq!(m.current(9), None);
        assert!(!m.tracked_keys().contains(&9));
    }

    #[test]
    fn persisted_delete_wins_over_earlier_put() {
        let s = sched();
        let mut m = CrashAwareKvModel::new(FaultConfig::none());
        let d1 = s.submit_write(ExtentId(1), 0, b"v1".to_vec(), &s.none());
        m.put(7, b"v1", d1);
        let d2 = s.submit_write(ExtentId(1), 10, b"tomb".to_vec(), &s.none());
        m.delete(7, d2);
        s.pump().unwrap();
        let exp = m.expectation(7);
        assert_eq!(exp.persisted, Some(None));
        assert!(exp.permits(&None));
        assert!(!exp.permits(&Some(Arc::new(b"v1".to_vec()))), "deleted data must stay deleted");
    }

    #[test]
    fn b9_seeded_model_overconstrains_after_reclaim_crash() {
        let s = sched();
        let mut m = CrashAwareKvModel::new(FaultConfig::seed(BugId::B9ModelCrashReclamation));
        let dep = s.submit_write(ExtentId(1), 0, b"v1".to_vec(), &s.none());
        m.put(7, b"v1", dep);
        m.note_reclaim();
        // Nothing persisted, yet the buggy model insists v1 survives.
        let exp = m.expectation(7);
        assert!(!exp.permits(&None), "the buggy model rejects legitimate data loss");
        assert!(exp.permits(&Some(Arc::new(b"v1".to_vec()))));
    }

    #[test]
    fn expectation_for_untouched_key_is_absent() {
        let m = CrashAwareKvModel::new(FaultConfig::none());
        let exp = m.expectation(42);
        assert_eq!(exp.persisted, None);
        assert!(exp.permits(&None));
        assert!(!exp.permits(&Some(Arc::new(b"ghost".to_vec()))));
    }
}
