//! Property-based tests of the virtual disk's core invariants.

use std::collections::BTreeSet;

use proptest::prelude::*;
use shardstore_vdisk::{CrashPlan, Disk, ExtentId, Geometry};

/// A random disk operation for the property tests.
#[derive(Debug, Clone)]
enum DiskOp {
    Write { extent: u32, offset: usize, data: Vec<u8> },
    FlushExtent { extent: u32 },
    FlushAll,
    CrashLoseAll,
    CrashKeepSome { mask: u64 },
}

fn op_strategy(geometry: Geometry) -> impl Strategy<Value = DiskOp> {
    let max_off = geometry.extent_size();
    prop_oneof![
        4 => (0..geometry.extent_count, 0..max_off, proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(extent, offset, data)| DiskOp::Write { extent, offset, data }),
        1 => (0..geometry.extent_count).prop_map(|extent| DiskOp::FlushExtent { extent }),
        1 => Just(DiskOp::FlushAll),
        1 => Just(DiskOp::CrashLoseAll),
        1 => any::<u64>().prop_map(|mask| DiskOp::CrashKeepSome { mask }),
    ]
}

/// A trivial reference model of the disk: a durable byte image and a
/// volatile byte image (at byte granularity — coarser than the disk's page
/// granularity only in the sense that we track both views exactly).
struct ModelDisk {
    geometry: Geometry,
    durable: Vec<Vec<u8>>,
    volatile: Vec<Vec<u8>>,
    dirty_pages: BTreeSet<(u32, u32)>,
}

impl ModelDisk {
    fn new(geometry: Geometry) -> Self {
        let image: Vec<Vec<u8>> =
            (0..geometry.extent_count).map(|_| vec![0u8; geometry.extent_size()]).collect();
        Self { geometry, durable: image.clone(), volatile: image, dirty_pages: BTreeSet::new() }
    }

    fn write(&mut self, extent: u32, offset: usize, data: &[u8]) {
        self.volatile[extent as usize][offset..offset + data.len()].copy_from_slice(data);
        for i in 0..data.len() {
            self.dirty_pages.insert((extent, self.geometry.page_of(offset + i)));
        }
    }

    fn sync_page(&mut self, extent: u32, page: u32) {
        let ps = self.geometry.page_size;
        let start = page as usize * ps;
        let src = self.volatile[extent as usize][start..start + ps].to_vec();
        self.durable[extent as usize][start..start + ps].copy_from_slice(&src);
    }

    fn flush_extent(&mut self, extent: u32) {
        let pages: Vec<_> =
            self.dirty_pages.iter().filter(|(e, _)| *e == extent).copied().collect();
        for (e, p) in pages {
            self.sync_page(e, p);
            self.dirty_pages.remove(&(e, p));
        }
    }

    fn flush_all(&mut self) {
        let pages: Vec<_> = self.dirty_pages.iter().copied().collect();
        for (e, p) in pages {
            self.sync_page(e, p);
        }
        self.dirty_pages.clear();
    }

    fn crash(&mut self, keep: &BTreeSet<(u32, u32)>) {
        let pages: Vec<_> = self.dirty_pages.iter().copied().collect();
        for (e, p) in pages {
            if keep.contains(&(e, p)) {
                self.sync_page(e, p);
            } else {
                // Lost: volatile view reverts to durable content.
                let ps = self.geometry.page_size;
                let start = p as usize * ps;
                let src = self.durable[e as usize][start..start + ps].to_vec();
                self.volatile[e as usize][start..start + ps].copy_from_slice(&src);
            }
        }
        self.dirty_pages.clear();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The disk agrees with a byte-exact reference model across random
    /// writes, flushes, and crashes with arbitrary surviving-page subsets.
    #[test]
    fn disk_refines_byte_model(ops in proptest::collection::vec(op_strategy(Geometry::small()), 1..60)) {
        let geometry = Geometry::small();
        let disk = Disk::new(geometry);
        let mut model = ModelDisk::new(geometry);
        for op in ops {
            match op {
                DiskOp::Write { extent, offset, data } => {
                    let len = data.len().min(geometry.extent_size() - offset);
                    let data = &data[..len];
                    disk.write(ExtentId(extent), offset, data).unwrap();
                    model.write(extent, offset, data);
                }
                DiskOp::FlushExtent { extent } => {
                    disk.flush_extent(ExtentId(extent)).unwrap();
                    model.flush_extent(extent);
                }
                DiskOp::FlushAll => {
                    disk.flush_all().unwrap();
                    model.flush_all();
                }
                DiskOp::CrashLoseAll => {
                    disk.crash(&CrashPlan::LoseAll);
                    model.crash(&BTreeSet::new());
                }
                DiskOp::CrashKeepSome { mask } => {
                    // Choose a survivor subset of the currently volatile
                    // pages using the mask bits.
                    let pages = disk.volatile_pages();
                    let keep: BTreeSet<(ExtentId, u32)> = pages
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
                        .map(|(_, k)| *k)
                        .collect();
                    let model_keep: BTreeSet<(u32, u32)> =
                        keep.iter().map(|(e, p)| (e.0, *p)).collect();
                    disk.crash(&CrashPlan::Keep(keep));
                    model.crash(&model_keep);
                }
            }
            // Invariant: every extent's readable content matches the model.
            for e in 0..geometry.extent_count {
                let got = disk.read(ExtentId(e), 0, geometry.extent_size()).unwrap();
                prop_assert_eq!(&got, &model.volatile[e as usize], "extent {} diverged", e);
            }
        }
    }

    /// After a flush-all, a crash never changes readable content.
    #[test]
    fn flushed_data_survives_any_crash(
        writes in proptest::collection::vec(
            (0u32..16, 0usize..1000, proptest::collection::vec(any::<u8>(), 1..40)),
            1..20,
        ),
        mask in any::<u64>(),
    ) {
        let geometry = Geometry::small();
        let disk = Disk::new(geometry);
        for (e, off, data) in &writes {
            let off = off % (geometry.extent_size() - data.len());
            disk.write(ExtentId(*e), off, data).unwrap();
        }
        disk.flush_all().unwrap();
        let before: Vec<_> =
            (0..16).map(|e| disk.read(ExtentId(e), 0, geometry.extent_size()).unwrap()).collect();
        // With nothing volatile, every crash plan is a no-op.
        let keep: BTreeSet<(ExtentId, u32)> = disk
            .volatile_pages()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
            .map(|(_, k)| k)
            .collect();
        disk.crash(&CrashPlan::Keep(keep));
        for e in 0..16u32 {
            let after = disk.read(ExtentId(e), 0, geometry.extent_size()).unwrap();
            prop_assert_eq!(&after, &before[e as usize]);
        }
    }
}
