//! Property-based tests of the virtual disk's core invariants.

use std::collections::BTreeSet;

use proptest::prelude::*;
use shardstore_vdisk::{CrashPlan, Disk, ExtentId, Geometry};

/// A random disk operation for the property tests.
#[derive(Debug, Clone)]
enum DiskOp {
    Write { extent: u32, offset: usize, data: Vec<u8> },
    FlushExtent { extent: u32 },
    FlushAll,
    CrashLoseAll,
    CrashKeepSome { mask: u64 },
}

fn op_strategy(geometry: Geometry) -> impl Strategy<Value = DiskOp> {
    let max_off = geometry.extent_size();
    prop_oneof![
        4 => (0..geometry.extent_count, 0..max_off, proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(extent, offset, data)| DiskOp::Write { extent, offset, data }),
        1 => (0..geometry.extent_count).prop_map(|extent| DiskOp::FlushExtent { extent }),
        1 => Just(DiskOp::FlushAll),
        1 => Just(DiskOp::CrashLoseAll),
        1 => any::<u64>().prop_map(|mask| DiskOp::CrashKeepSome { mask }),
    ]
}

/// A trivial reference model of the disk: a durable byte image and a
/// volatile byte image (at byte granularity — coarser than the disk's page
/// granularity only in the sense that we track both views exactly).
struct ModelDisk {
    geometry: Geometry,
    durable: Vec<Vec<u8>>,
    volatile: Vec<Vec<u8>>,
    dirty_pages: BTreeSet<(u32, u32)>,
}

impl ModelDisk {
    fn new(geometry: Geometry) -> Self {
        let image: Vec<Vec<u8>> =
            (0..geometry.extent_count).map(|_| vec![0u8; geometry.extent_size()]).collect();
        Self { geometry, durable: image.clone(), volatile: image, dirty_pages: BTreeSet::new() }
    }

    fn write(&mut self, extent: u32, offset: usize, data: &[u8]) {
        self.volatile[extent as usize][offset..offset + data.len()].copy_from_slice(data);
        for i in 0..data.len() {
            self.dirty_pages.insert((extent, self.geometry.page_of(offset + i)));
        }
    }

    fn sync_page(&mut self, extent: u32, page: u32) {
        let ps = self.geometry.page_size;
        let start = page as usize * ps;
        let src = self.volatile[extent as usize][start..start + ps].to_vec();
        self.durable[extent as usize][start..start + ps].copy_from_slice(&src);
    }

    fn flush_extent(&mut self, extent: u32) {
        let pages: Vec<_> =
            self.dirty_pages.iter().filter(|(e, _)| *e == extent).copied().collect();
        for (e, p) in pages {
            self.sync_page(e, p);
            self.dirty_pages.remove(&(e, p));
        }
    }

    fn flush_all(&mut self) {
        let pages: Vec<_> = self.dirty_pages.iter().copied().collect();
        for (e, p) in pages {
            self.sync_page(e, p);
        }
        self.dirty_pages.clear();
    }

    fn crash(&mut self, keep: &BTreeSet<(u32, u32)>) {
        let pages: Vec<_> = self.dirty_pages.iter().copied().collect();
        for (e, p) in pages {
            if keep.contains(&(e, p)) {
                self.sync_page(e, p);
            } else {
                // Lost: volatile view reverts to durable content.
                let ps = self.geometry.page_size;
                let start = p as usize * ps;
                let src = self.durable[e as usize][start..start + ps].to_vec();
                self.volatile[e as usize][start..start + ps].copy_from_slice(&src);
            }
        }
        self.dirty_pages.clear();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The disk agrees with a byte-exact reference model across random
    /// writes, flushes, and crashes with arbitrary surviving-page subsets.
    #[test]
    fn disk_refines_byte_model(ops in proptest::collection::vec(op_strategy(Geometry::small()), 1..60)) {
        let geometry = Geometry::small();
        let disk = Disk::new(geometry);
        let mut model = ModelDisk::new(geometry);
        for op in ops {
            match op {
                DiskOp::Write { extent, offset, data } => {
                    let len = data.len().min(geometry.extent_size() - offset);
                    let data = &data[..len];
                    disk.write(ExtentId(extent), offset, data).unwrap();
                    model.write(extent, offset, data);
                }
                DiskOp::FlushExtent { extent } => {
                    disk.flush_extent(ExtentId(extent)).unwrap();
                    model.flush_extent(extent);
                }
                DiskOp::FlushAll => {
                    disk.flush_all().unwrap();
                    model.flush_all();
                }
                DiskOp::CrashLoseAll => {
                    disk.crash(&CrashPlan::LoseAll);
                    model.crash(&BTreeSet::new());
                }
                DiskOp::CrashKeepSome { mask } => {
                    // Choose a survivor subset of the currently volatile
                    // pages using the mask bits.
                    let pages = disk.volatile_pages();
                    let keep: BTreeSet<(ExtentId, u32)> = pages
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
                        .map(|(_, k)| *k)
                        .collect();
                    let model_keep: BTreeSet<(u32, u32)> =
                        keep.iter().map(|(e, p)| (e.0, *p)).collect();
                    disk.crash(&CrashPlan::Keep(keep));
                    model.crash(&model_keep);
                }
            }
            // Invariant: every extent's readable content matches the model.
            for e in 0..geometry.extent_count {
                let got = disk.read(ExtentId(e), 0, geometry.extent_size()).unwrap();
                prop_assert_eq!(&got, &model.volatile[e as usize], "extent {} diverged", e);
            }
        }
    }

    /// After a flush-all, a crash never changes readable content.
    #[test]
    fn flushed_data_survives_any_crash(
        writes in proptest::collection::vec(
            (0u32..16, 0usize..1000, proptest::collection::vec(any::<u8>(), 1..40)),
            1..20,
        ),
        mask in any::<u64>(),
    ) {
        let geometry = Geometry::small();
        let disk = Disk::new(geometry);
        for (e, off, data) in &writes {
            let off = off % (geometry.extent_size() - data.len());
            disk.write(ExtentId(*e), off, data).unwrap();
        }
        disk.flush_all().unwrap();
        let before: Vec<_> =
            (0..16).map(|e| disk.read(ExtentId(e), 0, geometry.extent_size()).unwrap()).collect();
        // With nothing volatile, every crash plan is a no-op.
        let keep: BTreeSet<(ExtentId, u32)> = disk
            .volatile_pages()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
            .map(|(_, k)| k)
            .collect();
        disk.crash(&CrashPlan::Keep(keep));
        for e in 0..16u32 {
            let after = disk.read(ExtentId(e), 0, geometry.extent_size()).unwrap();
            prop_assert_eq!(&after, &before[e as usize]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Error precedence: a range violation is reported before any injected
    /// fault (and consumes no fault count), and a permanent fault wins
    /// over a pending transient one without consuming it.
    #[test]
    fn error_precedence_range_then_failed_then_injected(
        extent in 0u32..16,
        len in 1usize..64,
        times in 1u32..4,
    ) {
        use shardstore_vdisk::IoError;
        let geometry = Geometry::small();
        let disk = Disk::new(geometry);
        let e = ExtentId(extent);
        disk.inject_fail_times(e, times);
        disk.inject_fail_always(e);
        // Out of range beats both injected faults: no count is consumed.
        let before = disk.stats().injected_failures;
        let bad = disk.read(e, geometry.extent_size(), len);
        prop_assert!(matches!(bad, Err(IoError::OutOfRange { .. })), "{bad:?}");
        prop_assert_eq!(disk.stats().injected_failures, before);
        // In range, the permanent fault wins over the transient one …
        let got = disk.read(e, 0, len);
        prop_assert!(matches!(got, Err(IoError::Failed { extent: x }) if x == e), "{got:?}");
        // … and does NOT consume transient counts: a fresh disk with only
        // the transient injection exposes all `times` failures in a row.
        let disk2 = Disk::new(geometry);
        disk2.inject_fail_times(e, times);
        for _ in 0..times {
            let got = disk2.read(e, 0, len);
            prop_assert!(matches!(got, Err(IoError::Injected { extent: x }) if x == e), "{got:?}");
        }
        prop_assert!(disk2.read(e, 0, len).is_ok());
    }

    /// `inject_fail_times(e, n)` produces exactly `n` transient failures,
    /// each counted once in `injected_failures`, and success counters
    /// only ever advance on successful IO.
    #[test]
    fn fail_times_counted_exactly(
        extent in 0u32..16,
        times in 0u32..6,
        len in 1usize..64,
    ) {
        use shardstore_vdisk::IoError;
        let geometry = Geometry::small();
        let disk = Disk::new(geometry);
        let e = ExtentId(extent);
        disk.write(e, 0, &vec![7u8; len]).unwrap();
        let base = disk.stats();
        disk.inject_fail_times(e, times);
        let mut failures = 0u64;
        loop {
            match disk.read(e, 0, len) {
                Err(IoError::Injected { .. }) => failures += 1,
                Ok(_) => break,
                other => prop_assert!(false, "unexpected: {other:?}"),
            }
            prop_assert!(failures <= u64::from(times), "more failures than injected");
        }
        prop_assert_eq!(failures, u64::from(times));
        let stats = disk.stats();
        prop_assert_eq!(stats.injected_failures, base.injected_failures + u64::from(times));
        // Exactly one successful read happened; failed reads counted no
        // bytes.
        prop_assert_eq!(stats.reads, base.reads + 1);
        prop_assert_eq!(stats.bytes_read, base.bytes_read + len as u64);
        prop_assert_eq!(stats.writes, base.writes);
    }

    /// A flush that hits a pending injected fault leaves the volatile
    /// pages exactly as they were: nothing partially syncs, the data is
    /// still readable, and the retried flush makes all of it durable.
    #[test]
    fn failed_flush_is_atomic(
        extent in 0u32..16,
        offset in 0usize..900,
        data in proptest::collection::vec(any::<u8>(), 1..100),
    ) {
        use shardstore_vdisk::IoError;
        let geometry = Geometry::small();
        let disk = Disk::new(geometry);
        let e = ExtentId(extent);
        let offset = offset.min(geometry.extent_size() - data.len());
        let durable_before = disk.durable_snapshot(e);
        disk.write(e, offset, &data).unwrap();
        let volatile_before = disk.volatile_pages();
        disk.inject_fail_once(e);
        let r = disk.flush_extent(e);
        prop_assert!(matches!(r, Err(IoError::Injected { .. })), "{r:?}");
        // Nothing synced, nothing lost: durable image unchanged, volatile
        // set unchanged, content still readable through the cache.
        prop_assert_eq!(disk.durable_snapshot(e), durable_before);
        prop_assert_eq!(disk.volatile_pages(), volatile_before);
        prop_assert_eq!(disk.read(e, offset, data.len()).unwrap(), data.clone());
        // The retried flush succeeds and lands everything.
        disk.flush_extent(e).unwrap();
        let durable = disk.durable_snapshot(e);
        prop_assert_eq!(&durable[offset..offset + data.len()], &data[..]);
        prop_assert!(disk.volatile_pages().is_empty());
    }

    /// A crash clears pending transient faults (the reboot replaces the
    /// IO path) but keeps permanent ones (the hardware is still broken).
    #[test]
    fn crash_clears_transient_keeps_permanent(
        t_extent in 0u32..16,
        p_extent in 0u32..16,
        times in 1u32..4,
    ) {
        use shardstore_vdisk::IoError;
        let geometry = Geometry::small();
        let disk = Disk::new(geometry);
        let te = ExtentId(t_extent);
        let pe = ExtentId(p_extent);
        disk.inject_fail_times(te, times);
        disk.inject_fail_always(pe);
        disk.crash(&CrashPlan::LoseAll);
        if t_extent != p_extent {
            prop_assert!(disk.read(te, 0, 8).is_ok());
        }
        let got = disk.read(pe, 0, 8);
        prop_assert!(matches!(got, Err(IoError::Failed { extent: x }) if x == pe), "{got:?}");
        // clear_failures removes even permanent faults (the harness's
        // "replace the disk" escape hatch).
        disk.clear_failures();
        prop_assert!(disk.read(pe, 0, 8).is_ok());
    }
}
