//! User-space disk for deterministic storage-system testing — and, behind
//! the same seam, for running on real storage.
//!
//! The paper's conformance checks run the entire ShardStore stack above an
//! in-memory user-space disk (§4.1): "to ensure determinism and testing
//! performance, the implementation under test uses an in-memory user-space
//! disk, but all components above the disk layer use their actual
//! implementation code." This crate is that disk — and since the
//! [`StorageBackend`] redesign, also the production half of the argument:
//! the identical stack can boot on a [`backend::FileBackend`] mapping
//! extents onto a preallocated volume file, with `flush_extent` fencing
//! discharged as `fdatasync`.
//!
//! The device model is a *conventional* disk (not zoned): pages can be
//! written at any offset, and the append-only extent discipline of
//! ShardStore is enforced by the layers above via soft write pointers
//! persisted in the superblock (§2.1 "Append-only IO"). The disk provides
//! exactly the behaviours the validation effort needs:
//!
//! - **A volatile write cache.** Writes land in a page-granular volatile
//!   cache and only become durable on [`Disk::flush_extent`] /
//!   [`Disk::flush_all`]. Reads see the cache (read-your-writes).
//! - **Crash injection.** [`Disk::crash`] applies a [`CrashPlan`]: any
//!   subset of volatile pages may survive a crash, which models
//!   out-of-order writeback by the drive and is what makes torn multi-page
//!   chunk writes (the §5 UUID-collision scenario, issue #10) reachable.
//! - **IO failure injection.** [`Disk::inject_fail_once`] makes the next IO
//!   to an extent fail (the paper's `FailDiskOnce(ExtentId)` operation,
//!   §4.4); [`Disk::inject_fail_always`] models a permanently failed
//!   region.
//!
//! All of the above is backend-independent: the volatile cache and fault
//! machinery live in the shared [`backend::PagedBackend`] core, so crash
//! plans and fault sweeps mean the same thing over heap buffers and over a
//! real volume file. All internal maps are ordered (`BTreeMap`) so that
//! iteration order — and therefore every behaviour of the disk — is
//! deterministic. The paper calls out randomized `HashMap` iteration order
//! as exactly the kind of non-determinism that silently breaks test-case
//! minimization (§4.3).

pub mod backend;
pub mod codec;

use std::collections::BTreeSet;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::sync::OnceLock;

use shardstore_obs::{Obs, TraceEvent};

pub use backend::{CrashOutcome, FileBackend, MemBackend, StorageBackend};

/// Default page size in bytes, matching a common disk sector-cluster size.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Identifier of an extent: a contiguous fixed-size region of the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExtentId(pub u32);

impl fmt::Display for ExtentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "extent {}", self.0)
    }
}

/// Disk shape: number of extents, pages per extent, page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of extents on the disk.
    pub extent_count: u32,
    /// Number of pages in each extent.
    pub pages_per_extent: u32,
    /// Page size in bytes.
    pub page_size: usize,
}

impl Geometry {
    /// Creates a geometry, validating that all dimensions are non-zero.
    pub fn new(extent_count: u32, pages_per_extent: u32, page_size: usize) -> Self {
        assert!(extent_count > 0 && pages_per_extent > 0 && page_size > 0);
        Self { extent_count, pages_per_extent, page_size }
    }

    /// A small geometry suitable for fast property-based tests: 128-byte
    /// pages, 8 pages per extent, 16 extents. Small extents make GC and
    /// crash corner cases (extent-full, page-spill) cheap to reach.
    pub fn small() -> Self {
        Self { extent_count: 16, pages_per_extent: 8, page_size: 128 }
    }

    /// Bytes per extent.
    pub fn extent_size(&self) -> usize {
        self.pages_per_extent as usize * self.page_size
    }

    /// Total disk capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.extent_count as usize * self.extent_size()
    }

    /// The page index containing byte `offset` within an extent.
    pub fn page_of(&self, offset: usize) -> u32 {
        (offset / self.page_size) as u32
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self { extent_count: 256, pages_per_extent: 64, page_size: DEFAULT_PAGE_SIZE }
    }
}

/// Disk IO errors, including injected ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Access beyond the extent or disk bounds.
    OutOfRange {
        /// The extent accessed.
        extent: ExtentId,
        /// The offending byte offset.
        offset: usize,
        /// The access length.
        len: usize,
    },
    /// An injected one-shot failure fired for this IO.
    Injected {
        /// The extent whose IO failed.
        extent: ExtentId,
    },
    /// The extent has permanently failed.
    Failed {
        /// The failed extent.
        extent: ExtentId,
    },
    /// A real storage-backend error: the volume file could not be created,
    /// opened, read, written, or fenced, or its header failed validation.
    Backend {
        /// Human-readable failure description.
        detail: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::OutOfRange { extent, offset, len } => {
                write!(f, "out-of-range access to {extent} at offset {offset} len {len}")
            }
            IoError::Injected { extent } => write!(f, "injected IO failure on {extent}"),
            IoError::Failed { extent } => write!(f, "{extent} has permanently failed"),
            IoError::Backend { detail } => write!(f, "storage backend error: {detail}"),
        }
    }
}

impl std::error::Error for IoError {}

/// How a crash treats the volatile write cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashPlan {
    /// Every cached page is lost (power cut before any writeback).
    LoseAll,
    /// Every cached page survives (crash immediately after writeback).
    KeepAll,
    /// Exactly the listed `(extent, page)` pairs survive; the rest are
    /// lost. This is the block-level crash-state enumeration primitive
    /// (§5 "Block-level crash states").
    Keep(BTreeSet<(ExtentId, u32)>),
}

/// Cumulative IO statistics, for benches and coverage checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of successful write calls.
    pub writes: u64,
    /// Number of successful read calls.
    pub reads: u64,
    /// Number of flush operations (per-extent and whole-disk both count 1).
    pub flushes: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Number of crashes injected.
    pub crashes: u64,
    /// Number of injected IO failures that fired.
    pub injected_failures: u64,
    /// Number of real fsync/fdatasync calls issued (file backend only;
    /// always 0 on the in-memory backend).
    pub fsyncs: u64,
    /// Bytes made durable by those fsyncs (file backend only).
    pub bytes_synced: u64,
    /// Wall-clock milliseconds spent scanning this disk during store
    /// recovery (file backend only; the checked in-memory paths never
    /// touch a clock).
    pub recovery_scan_ms: u64,
}

/// The user-space disk facade.
///
/// Cheap to share: wrap in [`Arc`] via [`Disk::new`]. All operations are
/// internally synchronized with a checker-aware mutex, so the disk can be
/// used directly inside stateless-model-checking harnesses. The actual
/// storage lives behind a [`StorageBackend`]; the facade adds the
/// observability emission so backends stay pure storage.
#[derive(Debug)]
pub struct Disk {
    backend: Box<dyn StorageBackend>,
    /// Observability handle, attached once by the IO scheduler that owns
    /// this disk. Unset (e.g. in crate-local unit tests) the disk simply
    /// records nothing.
    obs: OnceLock<Obs>,
}

impl Disk {
    /// Creates a zero-filled in-memory disk with the given geometry.
    pub fn new(geometry: Geometry) -> Arc<Self> {
        Self::with_backend(Box::new(MemBackend::new(geometry)))
    }

    /// Wraps an already-constructed backend.
    pub fn with_backend(backend: Box<dyn StorageBackend>) -> Arc<Self> {
        Arc::new(Self { backend, obs: OnceLock::new() })
    }

    /// Creates a disk over a fresh volume file (see [`FileBackend::create`]).
    pub fn create_file(
        path: impl Into<PathBuf>,
        geometry: Geometry,
        preallocate: bool,
        unlink_on_drop: bool,
    ) -> Result<Arc<Self>, IoError> {
        Ok(Self::with_backend(Box::new(FileBackend::create(
            path,
            geometry,
            preallocate,
            unlink_on_drop,
        )?)))
    }

    /// Opens a disk over an existing volume file, validating its header
    /// (see [`FileBackend::open`]).
    pub fn open_file(
        path: impl Into<PathBuf>,
        unlink_on_drop: bool,
    ) -> Result<Arc<Self>, IoError> {
        Ok(Self::with_backend(Box::new(FileBackend::open(path, unlink_on_drop)?)))
    }

    /// The backend tag: `"memory"` or `"file"`.
    pub fn backend_kind(&self) -> &'static str {
        self.backend.kind()
    }

    /// The disk's geometry.
    pub fn geometry(&self) -> Geometry {
        self.backend.geometry()
    }

    /// Attaches the shared observability handle. Called once by the IO
    /// scheduler when it takes ownership of the disk; later calls are
    /// ignored (first attach wins).
    pub fn attach_obs(&self, obs: Obs) {
        let _ = self.obs.set(obs);
    }

    /// The attached observability handle, if any.
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.get()
    }

    fn note_result<T>(&self, result: Result<T, IoError>) -> Result<T, IoError> {
        match &result {
            Err(IoError::Injected { extent }) => self.note_io_failure(*extent, true),
            Err(IoError::Failed { extent }) => self.note_io_failure(*extent, false),
            _ => {}
        }
        result
    }

    fn note_io_failure(&self, extent: ExtentId, transient: bool) {
        if let Some(obs) = self.obs.get() {
            obs.registry().counter("disk.injected_failures").inc();
            obs.trace().event(TraceEvent::WriteFailed { extent: extent.0, transient });
        }
    }

    /// Writes `data` at `offset` within `extent`, into the volatile cache.
    ///
    /// The write is *not* durable until the extent is flushed; a crash may
    /// lose it, or — because caching is page-granular — lose only some of
    /// its pages.
    pub fn write(&self, extent: ExtentId, offset: usize, data: &[u8]) -> Result<(), IoError> {
        self.note_result(self.backend.write(extent, offset, data))
    }

    /// Reads `len` bytes at `offset` within `extent`, seeing the volatile
    /// cache over the durable image (read-your-writes).
    pub fn read(&self, extent: ExtentId, offset: usize, len: usize) -> Result<Vec<u8>, IoError> {
        self.note_result(self.backend.read(extent, offset, len))
    }

    /// Flushes all volatile pages of `extent` to durable storage. On the
    /// file backend this is a real `fdatasync` fence.
    pub fn flush_extent(&self, extent: ExtentId) -> Result<(), IoError> {
        self.note_result(self.backend.flush_extent(extent))?;
        if let Some(obs) = self.obs.get() {
            obs.registry().counter("disk.flushes").inc();
            obs.trace().event(TraceEvent::FlushExtent { extent: extent.0 });
        }
        Ok(())
    }

    /// Flushes the entire volatile cache (a full write barrier).
    pub fn flush_all(&self) -> Result<(), IoError> {
        self.note_result(self.backend.flush_all())
    }

    /// Simulates a fail-stop crash: volatile pages survive (become durable)
    /// or are lost according to `plan`; injected one-shot failures are
    /// cleared (the reboot replaces the IO path), permanent failures stay.
    pub fn crash(&self, plan: &CrashPlan) {
        let outcome = self.backend.crash(plan);
        if let Some(obs) = self.obs.get() {
            obs.registry().counter("disk.crashes").inc();
            obs.trace().event(TraceEvent::CrashPoint {
                pages_kept: outcome.pages_kept,
                pages_lost: outcome.pages_lost,
            });
        }
    }

    /// Lists the `(extent, page)` pairs currently in the volatile cache, in
    /// deterministic order. The crash-state enumerator uses this to build
    /// [`CrashPlan::Keep`] subsets.
    pub fn volatile_pages(&self) -> Vec<(ExtentId, u32)> {
        self.backend.volatile_pages()
    }

    /// Makes the next IO (read, write, or flush) to `extent` fail once.
    pub fn inject_fail_once(&self, extent: ExtentId) {
        self.inject_fail_times(extent, 1);
    }

    /// Makes the next `times` IOs to `extent` fail transiently (each
    /// failing IO consumes one count). A zero count injects nothing.
    /// Used to model transient-fault bursts longer than one IO, e.g. to
    /// exhaust a bounded retry budget deterministically.
    pub fn inject_fail_times(&self, extent: ExtentId, times: u32) {
        self.backend.inject_fail_times(extent, times);
    }

    /// Makes all IO to `extent` fail until [`Disk::clear_failures`].
    pub fn inject_fail_always(&self, extent: ExtentId) {
        self.backend.inject_fail_always(extent);
    }

    /// Clears all injected failures.
    pub fn clear_failures(&self) {
        self.backend.clear_failures();
    }

    /// Cumulative IO statistics.
    pub fn stats(&self) -> DiskStats {
        self.backend.stats()
    }

    /// Records wall-clock milliseconds spent scanning this disk during
    /// store recovery. Only the file-backend recovery path calls this;
    /// checked in-memory executions stay clock-free.
    pub fn note_recovery_scan_ms(&self, ms: u64) {
        self.backend.note_recovery_scan_ms(ms);
    }

    /// Returns a copy of the durable bytes of one extent (test helper).
    pub fn durable_snapshot(&self, extent: ExtentId) -> Vec<u8> {
        self.backend.durable_snapshot(extent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Arc<Disk> {
        Disk::new(Geometry::small())
    }

    #[test]
    fn read_your_writes_before_flush() {
        let d = disk();
        d.write(ExtentId(0), 10, b"hello").unwrap();
        assert_eq!(d.read(ExtentId(0), 10, 5).unwrap(), b"hello");
    }

    #[test]
    fn unwritten_bytes_read_zero() {
        let d = disk();
        assert_eq!(d.read(ExtentId(3), 0, 4).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn crash_lose_all_discards_unflushed_writes() {
        let d = disk();
        d.write(ExtentId(0), 0, b"gone").unwrap();
        d.crash(&CrashPlan::LoseAll);
        assert_eq!(d.read(ExtentId(0), 0, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn crash_preserves_flushed_writes() {
        let d = disk();
        d.write(ExtentId(0), 0, b"kept").unwrap();
        d.flush_extent(ExtentId(0)).unwrap();
        d.crash(&CrashPlan::LoseAll);
        assert_eq!(d.read(ExtentId(0), 0, 4).unwrap(), b"kept");
    }

    #[test]
    fn crash_keep_subset_is_page_granular() {
        let d = disk();
        let ps = d.geometry().page_size;
        // One write spanning two pages.
        let data = vec![7u8; ps + 4];
        d.write(ExtentId(1), 0, &data).unwrap();
        // Keep only page 0: the spill onto page 1 is lost (the §5 torn
        // chunk scenario).
        let mut keep = BTreeSet::new();
        keep.insert((ExtentId(1), 0));
        d.crash(&CrashPlan::Keep(keep));
        assert_eq!(d.read(ExtentId(1), 0, ps).unwrap(), vec![7u8; ps]);
        assert_eq!(d.read(ExtentId(1), ps, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn crash_keep_all_acts_like_flush() {
        let d = disk();
        d.write(ExtentId(2), 5, b"stay").unwrap();
        d.crash(&CrashPlan::KeepAll);
        assert_eq!(d.read(ExtentId(2), 5, 4).unwrap(), b"stay");
        assert!(d.volatile_pages().is_empty());
    }

    #[test]
    fn flush_extent_only_affects_that_extent() {
        let d = disk();
        d.write(ExtentId(0), 0, b"aa").unwrap();
        d.write(ExtentId(1), 0, b"bb").unwrap();
        d.flush_extent(ExtentId(0)).unwrap();
        d.crash(&CrashPlan::LoseAll);
        assert_eq!(d.read(ExtentId(0), 0, 2).unwrap(), b"aa");
        assert_eq!(d.read(ExtentId(1), 0, 2).unwrap(), vec![0; 2]);
    }

    #[test]
    fn fail_once_fires_exactly_once() {
        let d = disk();
        d.inject_fail_once(ExtentId(0));
        assert_eq!(d.read(ExtentId(0), 0, 1), Err(IoError::Injected { extent: ExtentId(0) }));
        assert!(d.read(ExtentId(0), 0, 1).is_ok());
    }

    #[test]
    fn fail_always_persists_until_cleared_and_survives_crash() {
        let d = disk();
        d.inject_fail_always(ExtentId(4));
        assert!(d.write(ExtentId(4), 0, b"x").is_err());
        d.crash(&CrashPlan::LoseAll);
        assert!(d.write(ExtentId(4), 0, b"x").is_err());
        d.clear_failures();
        assert!(d.write(ExtentId(4), 0, b"x").is_ok());
    }

    #[test]
    fn fail_once_is_cleared_by_crash() {
        let d = disk();
        d.inject_fail_once(ExtentId(0));
        d.crash(&CrashPlan::LoseAll);
        assert!(d.read(ExtentId(0), 0, 1).is_ok());
    }

    #[test]
    fn out_of_range_accesses_are_rejected() {
        let d = disk();
        let size = d.geometry().extent_size();
        assert!(matches!(d.write(ExtentId(0), size - 1, b"ab"), Err(IoError::OutOfRange { .. })));
        assert!(matches!(d.read(ExtentId(99), 0, 1), Err(IoError::OutOfRange { .. })));
        // Zero-length read at the very end is fine.
        assert!(d.read(ExtentId(0), size, 0).is_ok());
    }

    #[test]
    fn volatile_pages_are_listed_in_order() {
        let d = disk();
        let ps = d.geometry().page_size;
        d.write(ExtentId(2), 0, b"x").unwrap();
        d.write(ExtentId(0), ps, b"y").unwrap();
        d.write(ExtentId(0), 0, b"z").unwrap();
        assert_eq!(d.volatile_pages(), vec![(ExtentId(0), 0), (ExtentId(0), 1), (ExtentId(2), 0)]);
    }

    #[test]
    fn stats_are_tracked() {
        let d = disk();
        d.write(ExtentId(0), 0, b"abcd").unwrap();
        d.read(ExtentId(0), 0, 2).unwrap();
        d.flush_all().unwrap();
        d.crash(&CrashPlan::LoseAll);
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.bytes_written, 4);
        assert_eq!(s.bytes_read, 2);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.fsyncs, 0, "memory backend never fsyncs");
        assert_eq!(s.bytes_synced, 0);
    }

    #[test]
    fn flush_all_fails_if_any_extent_permanently_failed() {
        let d = disk();
        d.write(ExtentId(0), 0, b"q").unwrap();
        d.inject_fail_always(ExtentId(5));
        assert!(d.flush_all().is_err());
    }

    #[test]
    fn geometry_helpers() {
        let g = Geometry::small();
        assert_eq!(g.extent_size(), 8 * 128);
        assert_eq!(g.capacity(), 16 * 8 * 128);
        assert_eq!(g.page_of(0), 0);
        assert_eq!(g.page_of(127), 0);
        assert_eq!(g.page_of(128), 1);
    }

    #[test]
    fn memory_reports_its_backend_kind() {
        assert_eq!(disk().backend_kind(), "memory");
    }

    #[test]
    fn file_disk_behaves_like_memory_disk_for_crash_plans() {
        let mut path = std::env::temp_dir();
        path.push(format!("shardstore-vdisk-facade-{}.vol", std::process::id()));
        let d = Disk::create_file(&path, Geometry::small(), false, true).unwrap();
        assert_eq!(d.backend_kind(), "file");
        d.write(ExtentId(0), 0, b"gone").unwrap();
        d.write(ExtentId(1), 0, b"kept").unwrap();
        d.flush_extent(ExtentId(1)).unwrap();
        d.crash(&CrashPlan::LoseAll);
        assert_eq!(d.read(ExtentId(0), 0, 4).unwrap(), vec![0u8; 4]);
        assert_eq!(d.read(ExtentId(1), 0, 4).unwrap(), b"kept");
        assert!(d.stats().fsyncs >= 1);
    }
}
