//! Storage backends: the durable media behind the [`Disk`] facade.
//!
//! Both backends share one page-cache core ([`PagedBackend`]): writes land
//! in a volatile page-granular overlay and only reach the durable medium on
//! flush (or on the surviving half of a [`CrashPlan`]). That keeps the
//! crash-state enumeration primitive — "any subset of cached pages may
//! survive" — *identical* across media, which is what lets the conformance,
//! crash, and fault-sweep harnesses run unchanged against a real file.
//!
//! What differs per backend is only the durable medium itself:
//!
//! - [`MemBackend`] keeps durable bytes in per-extent `Vec<u8>` buffers.
//!   It is the checking substrate: deterministic, allocation-cheap, and
//!   safe under the model checker.
//! - [`FileBackend`] maps extents onto a preallocated volume file. Flushing
//!   an extent writes its dirty pages at their on-disk offsets and issues
//!   `fdatasync`, so `flush_extent` fencing discharges onto real storage
//!   barriers. Recovery then scans real bytes — every torn tail or bit
//!   flip must be caught by the CRCs in the superblock/LSM codecs, not by
//!   the test harness having perfect memory.
//!
//! [`Disk`]: crate::Disk

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use shardstore_conc::sync::Mutex;

use crate::codec::{crc32, Reader, Writer};
use crate::{CrashPlan, DiskStats, ExtentId, Geometry, IoError};

/// What a crash did to the volatile cache; the [`Disk`](crate::Disk)
/// facade turns this into trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashOutcome {
    /// Cached pages that survived (became durable).
    pub pages_kept: u32,
    /// Cached pages that were lost.
    pub pages_lost: u32,
}

/// The storage seam: everything [`Disk`](crate::Disk) needs from a
/// backend. The contract — page-granular volatile caching, flush fencing,
/// crash-plan semantics, deterministic `volatile_pages` order — is
/// specified once here and discharged per medium, following the
/// block-interface specification approach of the related block-store
/// verification work.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Stable backend tag (`"memory"` or `"file"`), reported by stats
    /// introspection.
    fn kind(&self) -> &'static str;
    /// The backend's geometry.
    fn geometry(&self) -> Geometry;
    /// Writes into the volatile cache; durable only after a flush.
    fn write(&self, extent: ExtentId, offset: usize, data: &[u8]) -> Result<(), IoError>;
    /// Reads through the volatile cache (read-your-writes).
    fn read(&self, extent: ExtentId, offset: usize, len: usize) -> Result<Vec<u8>, IoError>;
    /// Fences one extent: all its cached pages become durable.
    fn flush_extent(&self, extent: ExtentId) -> Result<(), IoError>;
    /// Whole-disk write barrier.
    fn flush_all(&self) -> Result<(), IoError>;
    /// Applies a crash plan; returns what survived.
    fn crash(&self, plan: &CrashPlan) -> CrashOutcome;
    /// Cached `(extent, page)` pairs in deterministic order.
    fn volatile_pages(&self) -> Vec<(ExtentId, u32)>;
    /// Makes the next `times` IOs to `extent` fail transiently.
    fn inject_fail_times(&self, extent: ExtentId, times: u32);
    /// Makes all IO to `extent` fail until [`StorageBackend::clear_failures`].
    fn inject_fail_always(&self, extent: ExtentId);
    /// Clears all injected failures.
    fn clear_failures(&self);
    /// Cumulative IO statistics.
    fn stats(&self) -> DiskStats;
    /// Records wall-clock time spent scanning this backend during store
    /// recovery (file backend only; the in-memory backend stays clock-free).
    fn note_recovery_scan_ms(&self, ms: u64);
    /// Copy of one extent's durable bytes (test/recovery helper).
    fn durable_snapshot(&self, extent: ExtentId) -> Vec<u8>;
}

/// The durable medium under the shared page cache. Only byte storage and
/// fencing live here; caching, crash plans, and fault injection are common.
pub trait DurableMedium: Send + fmt::Debug + 'static {
    /// Stable tag for this medium.
    fn kind(&self) -> &'static str;
    /// Reads `buf.len()` durable bytes at `offset` within `extent`.
    /// Bounds are validated by the caller.
    fn read_durable(&self, extent: u32, offset: usize, buf: &mut [u8]) -> Result<(), IoError>;
    /// Writes durable bytes at `offset` within `extent`. No fence implied.
    fn write_durable(&mut self, extent: u32, offset: usize, data: &[u8]) -> Result<(), IoError>;
    /// Fences all prior [`DurableMedium::write_durable`] calls. Returns
    /// `true` when a real fsync was issued (so the facade can count it).
    fn sync(&mut self) -> Result<bool, IoError>;
}

#[derive(Debug)]
struct State<M> {
    durable: M,
    /// Volatile page images not yet flushed, keyed `(extent, page)`.
    volatile: BTreeMap<(u32, u32), Vec<u8>>,
    /// Extents whose next IOs fail transiently, with remaining count.
    fail_once: BTreeMap<u32, u32>,
    /// Extents that permanently fail all IO.
    fail_always: BTreeSet<u32>,
    /// Bytes written durably since the last successful sync.
    unsynced_bytes: u64,
    stats: DiskStats,
}

/// Shared page-cache core implementing [`StorageBackend`] over any
/// [`DurableMedium`]. All internal maps are ordered (`BTreeMap`) so that
/// iteration order — and therefore every behaviour — is deterministic.
#[derive(Debug)]
pub struct PagedBackend<M: DurableMedium> {
    geometry: Geometry,
    state: Mutex<State<M>>,
}

impl<M: DurableMedium> PagedBackend<M> {
    fn with_medium(geometry: Geometry, medium: M) -> Self {
        Self {
            geometry,
            state: Mutex::new(State {
                durable: medium,
                volatile: BTreeMap::new(),
                fail_once: BTreeMap::new(),
                fail_always: BTreeSet::new(),
                unsynced_bytes: 0,
                stats: DiskStats::default(),
            }),
        }
    }

    fn check_range(&self, extent: ExtentId, offset: usize, len: usize) -> Result<(), IoError> {
        let size = self.geometry.extent_size();
        if extent.0 >= self.geometry.extent_count
            || offset > size
            || len > size
            || offset + len > size
        {
            return Err(IoError::OutOfRange { extent, offset, len });
        }
        Ok(())
    }

    fn check_failures(st: &mut State<M>, extent: ExtentId) -> Result<(), IoError> {
        if st.fail_always.contains(&extent.0) {
            st.stats.injected_failures += 1;
            return Err(IoError::Failed { extent });
        }
        if let Some(remaining) = st.fail_once.get_mut(&extent.0) {
            *remaining -= 1;
            if *remaining == 0 {
                st.fail_once.remove(&extent.0);
            }
            st.stats.injected_failures += 1;
            return Err(IoError::Injected { extent });
        }
        Ok(())
    }

    /// Writes one cached page durably and tracks the unsynced byte count.
    fn write_page_durable(st: &mut State<M>, key: (u32, u32), image: &[u8], ps: usize) {
        let start = key.1 as usize * ps;
        st.durable
            .write_durable(key.0, start, image)
            .expect("durable page write failed during flush/crash");
        st.unsynced_bytes += image.len() as u64;
    }

    /// Fences pending durable writes, counting real fsyncs into stats.
    fn sync_durable(st: &mut State<M>) {
        if st.unsynced_bytes == 0 {
            return;
        }
        let fenced = st.durable.sync().expect("durable sync failed during flush/crash");
        if fenced {
            st.stats.fsyncs += 1;
            st.stats.bytes_synced += st.unsynced_bytes;
        }
        st.unsynced_bytes = 0;
    }
}

impl<M: DurableMedium> StorageBackend for PagedBackend<M> {
    fn kind(&self) -> &'static str {
        self.state.lock().durable.kind()
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn write(&self, extent: ExtentId, offset: usize, data: &[u8]) -> Result<(), IoError> {
        self.check_range(extent, offset, data.len())?;
        let mut st = self.state.lock();
        Self::check_failures(&mut st, extent)?;
        let ps = self.geometry.page_size;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos;
            let page = (abs / ps) as u32;
            let page_start = page as usize * ps;
            let in_page = abs - page_start;
            let take = (ps - in_page).min(data.len() - pos);
            // Read-modify-write the page image from the current view.
            let key = (extent.0, page);
            if !st.volatile.contains_key(&key) {
                let mut image = vec![0u8; ps];
                st.durable.read_durable(extent.0, page_start, &mut image)?;
                st.volatile.insert(key, image);
            }
            let image = st.volatile.get_mut(&key).expect("just inserted");
            image[in_page..in_page + take].copy_from_slice(&data[pos..pos + take]);
            pos += take;
        }
        st.stats.writes += 1;
        st.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn read(&self, extent: ExtentId, offset: usize, len: usize) -> Result<Vec<u8>, IoError> {
        self.check_range(extent, offset, len)?;
        let mut st = self.state.lock();
        Self::check_failures(&mut st, extent)?;
        let ps = self.geometry.page_size;
        let mut out = vec![0u8; len];
        let mut pos = 0usize;
        while pos < len {
            let abs = offset + pos;
            let page = (abs / ps) as u32;
            let page_start = page as usize * ps;
            let in_page = abs - page_start;
            let take = (ps - in_page).min(len - pos);
            match st.volatile.get(&(extent.0, page)) {
                Some(image) => out[pos..pos + take].copy_from_slice(&image[in_page..in_page + take]),
                None => st.durable.read_durable(extent.0, abs, &mut out[pos..pos + take])?,
            }
            pos += take;
        }
        st.stats.reads += 1;
        st.stats.bytes_read += len as u64;
        Ok(out)
    }

    fn flush_extent(&self, extent: ExtentId) -> Result<(), IoError> {
        self.check_range(extent, 0, 0)?;
        let mut st = self.state.lock();
        Self::check_failures(&mut st, extent)?;
        let ps = self.geometry.page_size;
        let keys: Vec<_> =
            st.volatile.range((extent.0, 0)..(extent.0 + 1, 0)).map(|(k, _)| *k).collect();
        for key in keys {
            let image = st.volatile.remove(&key).expect("listed key present");
            Self::write_page_durable(&mut st, key, &image, ps);
        }
        Self::sync_durable(&mut st);
        st.stats.flushes += 1;
        Ok(())
    }

    fn flush_all(&self) -> Result<(), IoError> {
        let mut st = self.state.lock();
        // A permanently failed extent fails the whole-disk barrier.
        if let Some(e) = st.fail_always.iter().next().copied() {
            st.stats.injected_failures += 1;
            return Err(IoError::Failed { extent: ExtentId(e) });
        }
        let ps = self.geometry.page_size;
        let volatile = std::mem::take(&mut st.volatile);
        for (key, image) in volatile {
            Self::write_page_durable(&mut st, key, &image, ps);
        }
        Self::sync_durable(&mut st);
        st.stats.flushes += 1;
        Ok(())
    }

    fn crash(&self, plan: &CrashPlan) -> CrashOutcome {
        let mut st = self.state.lock();
        let ps = self.geometry.page_size;
        let volatile = std::mem::take(&mut st.volatile);
        let mut kept = 0u32;
        let mut lost = 0u32;
        for ((ext, page), image) in volatile {
            let survive = match plan {
                CrashPlan::LoseAll => false,
                CrashPlan::KeepAll => true,
                CrashPlan::Keep(set) => set.contains(&(ExtentId(ext), page)),
            };
            if survive {
                Self::write_page_durable(&mut st, (ext, page), &image, ps);
                kept += 1;
            } else {
                lost += 1;
            }
        }
        Self::sync_durable(&mut st);
        st.fail_once.clear();
        st.stats.crashes += 1;
        CrashOutcome { pages_kept: kept, pages_lost: lost }
    }

    fn volatile_pages(&self) -> Vec<(ExtentId, u32)> {
        let st = self.state.lock();
        st.volatile.keys().map(|(e, p)| (ExtentId(*e), *p)).collect()
    }

    fn inject_fail_times(&self, extent: ExtentId, times: u32) {
        if times == 0 {
            return;
        }
        let mut st = self.state.lock();
        *st.fail_once.entry(extent.0).or_insert(0) += times;
    }

    fn inject_fail_always(&self, extent: ExtentId) {
        self.state.lock().fail_always.insert(extent.0);
    }

    fn clear_failures(&self) {
        let mut st = self.state.lock();
        st.fail_once.clear();
        st.fail_always.clear();
    }

    fn stats(&self) -> DiskStats {
        self.state.lock().stats
    }

    fn note_recovery_scan_ms(&self, ms: u64) {
        self.state.lock().stats.recovery_scan_ms += ms;
    }

    fn durable_snapshot(&self, extent: ExtentId) -> Vec<u8> {
        let st = self.state.lock();
        let mut out = vec![0u8; self.geometry.extent_size()];
        st.durable.read_durable(extent.0, 0, &mut out).expect("durable snapshot read failed");
        out
    }
}

// ---------------------------------------------------------------------------
// Memory medium
// ---------------------------------------------------------------------------

/// Durable bytes held in per-extent heap buffers.
#[derive(Debug)]
pub struct MemMedium {
    extents: Vec<Vec<u8>>,
}

impl DurableMedium for MemMedium {
    fn kind(&self) -> &'static str {
        "memory"
    }

    fn read_durable(&self, extent: u32, offset: usize, buf: &mut [u8]) -> Result<(), IoError> {
        buf.copy_from_slice(&self.extents[extent as usize][offset..offset + buf.len()]);
        Ok(())
    }

    fn write_durable(&mut self, extent: u32, offset: usize, data: &[u8]) -> Result<(), IoError> {
        self.extents[extent as usize][offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> Result<bool, IoError> {
        // Heap writes are "durable" the moment they land; nothing to fence.
        Ok(false)
    }
}

/// The in-memory backend: the default, and the only backend legal under
/// the model checker (file IO would break schedule determinism).
pub type MemBackend = PagedBackend<MemMedium>;

impl MemBackend {
    /// Creates a zero-filled in-memory backend.
    pub fn new(geometry: Geometry) -> Self {
        let extents =
            (0..geometry.extent_count).map(|_| vec![0u8; geometry.extent_size()]).collect();
        Self::with_medium(geometry, MemMedium { extents })
    }
}

// ---------------------------------------------------------------------------
// File medium
// ---------------------------------------------------------------------------

/// Volume header magic. Version is part of the magic: a layout change
/// bumps the trailing digit and old volumes are rejected with `BadMagic`.
const VOLUME_MAGIC: &[u8; 8] = b"SSVOL01\n";

/// Fixed header region size; extent data starts at this file offset so
/// page 0 of extent 0 stays naturally aligned for any page size ≤ 4 KiB.
const VOLUME_HEADER_LEN: u64 = 4096;

/// Chunk size used when physically preallocating the volume.
const PREALLOC_CHUNK: usize = 1 << 20;

fn volume_header_bytes(geometry: Geometry) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(VOLUME_MAGIC);
    w.u32(geometry.extent_count);
    w.u32(geometry.pages_per_extent);
    w.u64(geometry.page_size as u64);
    let crc = crc32(w.as_bytes());
    w.u32(crc);
    w.into_bytes()
}

/// Decodes and validates a volume header, returning its geometry.
pub fn decode_volume_header(bytes: &[u8]) -> Result<Geometry, IoError> {
    let mut r = Reader::new(bytes);
    let mut parse = || -> Result<Geometry, crate::codec::CodecError> {
        r.expect(VOLUME_MAGIC)?;
        let extent_count = r.u32()?;
        let pages_per_extent = r.u32()?;
        let page_size = r.u64()?;
        let body_end = r.position();
        let crc = r.u32()?;
        if crc32(&bytes[..body_end]) != crc {
            return Err(crate::codec::CodecError::BadChecksum);
        }
        if extent_count == 0 || pages_per_extent == 0 || page_size == 0 {
            return Err(crate::codec::CodecError::BadValue);
        }
        Ok(Geometry {
            extent_count,
            pages_per_extent,
            page_size: page_size as usize,
        })
    };
    parse().map_err(|e| IoError::Backend { detail: format!("volume header: {e}") })
}

/// Durable bytes mapped onto a preallocated volume file: a 4 KiB header
/// (magic + geometry + CRC) followed by extent data at
/// `header + extent * extent_size + offset`.
pub struct FileMedium {
    file: fs::File,
    path: PathBuf,
    extent_size: u64,
    unlink_on_drop: bool,
}

impl fmt::Debug for FileMedium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileMedium")
            .field("path", &self.path)
            .field("unlink_on_drop", &self.unlink_on_drop)
            .finish()
    }
}

impl Drop for FileMedium {
    fn drop(&mut self) {
        if self.unlink_on_drop {
            let _ = fs::remove_file(&self.path);
        }
    }
}

fn backend_err(path: &Path, op: &str, e: std::io::Error) -> IoError {
    IoError::Backend { detail: format!("{op} {}: {e}", path.display()) }
}

impl FileMedium {
    fn offset_of(&self, extent: u32, offset: usize) -> u64 {
        VOLUME_HEADER_LEN + extent as u64 * self.extent_size + offset as u64
    }
}

impl DurableMedium for FileMedium {
    fn kind(&self) -> &'static str {
        "file"
    }

    fn read_durable(&self, extent: u32, offset: usize, buf: &mut [u8]) -> Result<(), IoError> {
        self.file
            .read_exact_at(buf, self.offset_of(extent, offset))
            .map_err(|e| backend_err(&self.path, "read", e))
    }

    fn write_durable(&mut self, extent: u32, offset: usize, data: &[u8]) -> Result<(), IoError> {
        self.file
            .write_all_at(data, self.offset_of(extent, offset))
            .map_err(|e| backend_err(&self.path, "write", e))
    }

    fn sync(&mut self) -> Result<bool, IoError> {
        self.file.sync_data().map_err(|e| backend_err(&self.path, "fdatasync", e))?;
        Ok(true)
    }
}

/// The file backend: extents mapped onto a preallocated volume file, with
/// `flush_extent` fencing discharged as `fdatasync`.
pub type FileBackend = PagedBackend<FileMedium>;

impl FileBackend {
    /// Creates (truncating) a volume file for `geometry` at `path`.
    ///
    /// With `preallocate`, the data region is physically written with
    /// zeros so later page writes never ENOSPC mid-flush; otherwise the
    /// file is extended sparsely with `set_len`. `unlink_on_drop` removes
    /// the file when the backend is dropped — the right default for
    /// store-managed scratch volumes, wrong for volumes a test intends to
    /// reopen after a simulated kill.
    pub fn create(
        path: impl Into<PathBuf>,
        geometry: Geometry,
        preallocate: bool,
        unlink_on_drop: bool,
    ) -> Result<Self, IoError> {
        let path = path.into();
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| backend_err(&path, "create", e))?;
        let header = volume_header_bytes(geometry);
        file.write_all(&header).map_err(|e| backend_err(&path, "write header", e))?;
        let total = VOLUME_HEADER_LEN + geometry.capacity() as u64;
        if preallocate {
            let zeros = vec![0u8; PREALLOC_CHUNK];
            let mut at = header.len() as u64;
            while at < total {
                let take = ((total - at) as usize).min(PREALLOC_CHUNK);
                file.write_all_at(&zeros[..take], at)
                    .map_err(|e| backend_err(&path, "preallocate", e))?;
                at += take as u64;
            }
        } else {
            file.set_len(total).map_err(|e| backend_err(&path, "set_len", e))?;
        }
        file.sync_all().map_err(|e| backend_err(&path, "fsync", e))?;
        let medium = FileMedium {
            file,
            path,
            extent_size: geometry.extent_size() as u64,
            unlink_on_drop,
        };
        Ok(Self::with_medium(geometry, medium))
    }

    /// Opens an existing volume file, validating its header (magic, CRC,
    /// non-zero geometry) and that the file is large enough for the
    /// geometry it claims. A truncated or corrupted header is rejected
    /// with [`IoError::Backend`] — recovery never guesses a geometry.
    pub fn open(path: impl Into<PathBuf>, unlink_on_drop: bool) -> Result<Self, IoError> {
        let path = path.into();
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| backend_err(&path, "open", e))?;
        let len = file.metadata().map_err(|e| backend_err(&path, "stat", e))?.len();
        let mut header = vec![0u8; volume_header_bytes(Geometry::small()).len()];
        if len < header.len() as u64 {
            return Err(IoError::Backend {
                detail: format!(
                    "volume header: file {} is {len} bytes, shorter than the header",
                    path.display()
                ),
            });
        }
        file.read_exact_at(&mut header, 0).map_err(|e| backend_err(&path, "read header", e))?;
        let geometry = decode_volume_header(&header)?;
        let total = VOLUME_HEADER_LEN + geometry.capacity() as u64;
        if len < total {
            return Err(IoError::Backend {
                detail: format!(
                    "volume {}: {len} bytes on disk, geometry needs {total}",
                    path.display()
                ),
            });
        }
        let medium = FileMedium {
            file,
            path,
            extent_size: geometry.extent_size() as u64,
            unlink_on_drop,
        };
        Ok(Self::with_medium(geometry, medium))
    }

    /// The backing volume file path.
    pub fn path(&self) -> PathBuf {
        self.state.lock().durable.path.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("shardstore-vdisk-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn file_backend_round_trips_and_survives_reopen() {
        let path = tmp("roundtrip.vol");
        let geo = Geometry::small();
        {
            let b = FileBackend::create(&path, geo, false, false).unwrap();
            b.write(ExtentId(1), 3, b"persisted").unwrap();
            b.flush_extent(ExtentId(1)).unwrap();
            b.write(ExtentId(2), 0, b"volatile").unwrap();
            // Dropped without flushing extent 2: those bytes must be gone.
        }
        let b = FileBackend::open(&path, true).unwrap();
        assert_eq!(b.geometry(), geo);
        assert_eq!(b.read(ExtentId(1), 3, 9).unwrap(), b"persisted");
        assert_eq!(b.read(ExtentId(2), 0, 8).unwrap(), vec![0u8; 8]);
        let s = b.stats();
        assert_eq!(s.fsyncs, 0, "fresh handle starts at zero");
        drop(b);
        assert!(!path.exists(), "unlink_on_drop removes the volume");
    }

    #[test]
    fn file_backend_counts_fsyncs_and_synced_bytes() {
        let path = tmp("fsyncs.vol");
        let geo = Geometry::small();
        let b = FileBackend::create(&path, geo, true, true).unwrap();
        b.write(ExtentId(0), 0, b"x").unwrap();
        b.flush_extent(ExtentId(0)).unwrap();
        // Flushing a clean extent is a no-op fence: no extra fsync.
        b.flush_extent(ExtentId(0)).unwrap();
        let s = b.stats();
        assert_eq!(s.flushes, 2);
        assert_eq!(s.fsyncs, 1);
        assert_eq!(s.bytes_synced, geo.page_size as u64);
    }

    #[test]
    fn header_rejects_corruption() {
        let geo = Geometry::default();
        let good = volume_header_bytes(geo);
        assert_eq!(decode_volume_header(&good).unwrap(), geo);
        // Truncation.
        assert!(decode_volume_header(&good[..good.len() - 1]).is_err());
        // Any single-bit flip.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 1;
            assert!(decode_volume_header(&bad).is_err(), "flip at byte {i} undetected");
        }
    }

    #[test]
    fn open_rejects_truncated_volume() {
        let path = tmp("truncated.vol");
        let geo = Geometry::small();
        {
            let b = FileBackend::create(&path, geo, false, false).unwrap();
            b.flush_all().unwrap();
        }
        let full = VOLUME_HEADER_LEN + geo.capacity() as u64;
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 1).unwrap();
        drop(f);
        assert!(matches!(FileBackend::open(&path, false), Err(IoError::Backend { .. })));
        fs::remove_file(&path).unwrap();
    }
}
