//! Panic-free on-disk byte-format helpers shared by every component codec.
//!
//! ShardStore treats data read from disk as untrusted: bit rot and torn
//! writes can corrupt any byte (§7 of the paper, "Serialization"). The
//! paper proved panic-freedom of its deserializers with the Crux symbolic
//! evaluator; here the same property — *no sequence of on-disk bytes can
//! panic a decoder* — is enforced structurally: every read in this module
//! is bounds-checked and returns [`CodecError`] instead of indexing
//! directly, and the property-based suites in each component crate fuzz
//! the full decoders over arbitrary byte strings.

use std::fmt;

/// Decoding failure: the input is corrupt, truncated, or inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a field could be read.
    Truncated {
        /// Bytes needed by the failed read.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A magic number or structural marker did not match.
    BadMagic,
    /// A checksum did not match the payload.
    BadChecksum,
    /// A length or count field is impossible (e.g. larger than the input).
    BadLength,
    /// An enum tag or version is unknown.
    BadValue,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "truncated input: needed {needed} bytes, {remaining} remaining")
            }
            CodecError::BadMagic => write!(f, "bad magic"),
            CodecError::BadChecksum => write!(f, "checksum mismatch"),
            CodecError::BadLength => write!(f, "impossible length field"),
            CodecError::BadValue => write!(f, "unknown tag or version"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bounds-checked cursor over untrusted bytes.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { needed: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a length-prefixed byte string (`u32` length). The length is
    /// validated against the remaining input before any allocation, so a
    /// corrupt length cannot cause huge allocations.
    pub fn var_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::BadLength);
        }
        self.bytes(len)
    }

    /// Expects an exact marker (e.g. magic bytes).
    pub fn expect(&mut self, marker: &[u8]) -> Result<(), CodecError> {
        let got = self.bytes(marker.len())?;
        if got != marker {
            return Err(CodecError::BadMagic);
        }
        Ok(())
    }
}

/// Byte-string builder matching [`Reader`].
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Appends a length-prefixed byte string.
    pub fn var_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u32(b.len() as u32);
        self.bytes(b)
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const fn make_table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = make_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = Writer::new();
        w.u8(7).u16(300).u32(70_000).u64(u64::MAX).var_bytes(b"payload").bytes(b"tail");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.var_bytes().unwrap(), b"payload");
        assert_eq!(r.bytes(4).unwrap(), b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(CodecError::Truncated { .. })));
        // Position unchanged after a failed read.
        assert_eq!(r.u16().unwrap(), u16::from_le_bytes([1, 2]));
    }

    #[test]
    fn var_bytes_rejects_oversized_length() {
        // Length field claims 1000 bytes; only 2 present.
        let mut w = Writer::new();
        w.u32(1000).bytes(b"ab");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.var_bytes(), Err(CodecError::BadLength));
    }

    #[test]
    fn expect_detects_bad_magic() {
        let mut r = Reader::new(b"XXLO");
        assert_eq!(r.expect(b"HELO"), Err(CodecError::BadMagic));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let data = b"the quick brown fox".to_vec();
        let good = crc32(&data);
        for i in 0..data.len() {
            let mut bad = data.clone();
            bad[i] ^= 1;
            assert_ne!(crc32(&bad), good, "flip at byte {i} undetected");
        }
    }
}
